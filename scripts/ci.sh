#!/usr/bin/env bash
# Offline CI gate: format, lint, build, test, and a quick DES-throughput
# regression check. Everything runs without registry access — the workspace
# has no external dependencies.
#
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== fmt =="
# rustfmt may be absent from minimal toolchains; the formatting gate is
# advisory there rather than a hard failure.
if cargo fmt --version >/dev/null 2>&1; then
    cargo fmt --all --check
else
    echo "rustfmt not installed; skipping format check"
fi

echo "== clippy =="
if cargo clippy --version >/dev/null 2>&1; then
    cargo clippy --workspace --all-targets --release -- -D warnings
else
    echo "clippy not installed; skipping lint"
fi

echo "== build =="
cargo build --workspace --release

echo "== test =="
cargo test --workspace -q

echo "== doc tests =="
cargo test --workspace -q --doc

echo "== DES throughput (quick) =="
# Quick mode covers all three rows, the million-node stress scenario
# included (one ~30 s sample of its bounded virtual-time slice).
SAGRID_BENCH_QUICK=1 SAGRID_BENCH_OUT="$PWD/target/BENCH_des_throughput.quick.json" \
    cargo bench -p sagrid-bench --bench des_throughput
echo "wrote target/BENCH_des_throughput.quick.json (committed baseline: BENCH_des_throughput.json)"

echo "== DES throughput vs committed baseline (warn-only, +/-20%) =="
# Quick samples on shared hardware are noisy, so drift is reported, never
# fatal. Compares events_per_sec per run name against the checked-in
# full-scale baseline for every row, des_million_node included.
awk '
    /"name"/           { gsub(/[",]/, ""); name = $2 }
    /"events_per_sec"/ {
        gsub(/,/, "");
        if (NR == FNR) { base[name] = $2 }
        else if (name in base) {
            delta = ($2 / base[name] - 1.0) * 100.0
            printf "  %-28s baseline %12.0f ev/s, now %12.0f ev/s (%+.1f%%)\n", \
                   name, base[name], $2, delta
            if (delta > 20 || delta < -20)
                printf "  WARNING: %s drifted more than 20%% from the baseline\n", name
        }
    }
' BENCH_des_throughput.json target/BENCH_des_throughput.quick.json

echo "== experiments smoke (parallel == serial) =="
./target/release/experiments --quick --serial > target/ci_serial.txt
./target/release/experiments --quick > target/ci_parallel.txt
diff target/ci_serial.txt target/ci_parallel.txt
echo "parallel output is byte-identical to serial"

echo "== process-mode smoke (hub + 4 workers + coordinatord on loopback) =="
# Bounded end-to-end run of the paper's crash scenario over real sockets:
# grid-local spawns the hub, four workers and the out-of-process
# coordinator, SIGKILLs one worker, and asserts the registry reports the
# crash (heartbeat timeout, not socket close), the blacklisted id never
# rejoins, and every child is reaped — no orphans. The hard timeout keeps
# a wedged run from hanging the gate.
rm -rf target/ci_grid_local
timeout 55 ./target/release/grid-local --workers 4 --scenario crash \
    --duration-ms 6000 --out target/ci_grid_local
./target/release/validate_metrics target/ci_grid_local

echo "== steal smoke (work migrates between processes over the wire) =="
# Bounded run of the wire-level work-stealing scenario: a slow root worker
# exports a fib frontier, thieves on two clusters steal jobs over TCP via
# CRS victim selection, and grid-local asserts the reassembled result
# matches the sequential value. The gate additionally requires that at
# least one remote steal actually happened — a run where every job stayed
# local would pass the arithmetic check while proving nothing.
rm -rf target/ci_grid_steal
timeout 60 ./target/release/grid-local --workers 4 --scenario steal \
    --duration-ms 30000 --out target/ci_grid_steal
./target/release/validate_metrics target/ci_grid_steal
awk '
    /"name":"net.steals.remote_ok"/ {
        n = $0
        sub(/.*"value":/, "", n); sub(/[,}].*/, "", n)
        total += n
    }
    END {
        printf "  net.steals.remote_ok total across thieves: %d\n", total
        if (total < 1) { print "  FAIL: no remote steals observed"; exit 1 }
    }
' target/ci_grid_steal/steal_thief*_metrics.jsonl

SOAK_WORKERS="${SAGRID_SOAK_WORKERS:-1000}"
echo "== churn-soak smoke (one hub thread serves ${SOAK_WORKERS} reactor workers) =="
# Bounded scale proof of the epoll reactor: the synthetic fleet joins from
# a single client-side reactor, rides out churn (disconnect +
# claim-rejoin), silent crashes (heartbeat-timeout deaths + blacklist)
# and a launcher-driven grow, while grid-local asserts the hub's OS
# thread count stays flat — independent of the connection count — and the
# teardown reaps everything orphan-free. The default 1000-worker tier
# fits the CI budget; set SAGRID_SOAK_WORKERS=10000 to opt in to the
# full-scale soak on beefier hardware.
rm -rf target/ci_grid_churn
timeout 300 ./target/release/grid-local --workers "$SOAK_WORKERS" --scenario churn-soak \
    --duration-ms 80000 --out target/ci_grid_churn
./target/release/validate_metrics target/ci_grid_churn
awk -v fleet="$SOAK_WORKERS" '
    /"name":"net.reactor.accepts"/ {
        n = $0
        sub(/.*"value":/, "", n); sub(/[,}].*/, "", n)
        total += n
    }
    END {
        printf "  net.reactor.accepts on the hub: %d\n", total
        if (total < fleet) { print "  FAIL: hub reactor accepted fewer than the fleet"; exit 1 }
    }
' target/ci_grid_churn/run_hub.jsonl

echo "== hub-crash smoke (standby hub takes over a SIGKILLed primary) =="
# Bounded end-to-end hub failover: a standby hub tails the primary's
# replication log; grid-local crashes a worker (so there is a blacklist
# worth inheriting), SIGKILLs the PRIMARY, and asserts the standby wins
# the deterministic election, promotes under a bumped fenced epoch,
# re-admits the survivors, still refuses the blacklisted victim, and the
# composed JSONL passes the hub-failover invariant. The gate additionally
# requires exactly one takeover counted in the standby's own metrics.
rm -rf target/ci_grid_hubcrash
timeout 55 ./target/release/grid-local --workers 4 --scenario hub-crash \
    --duration-ms 12000 --out target/ci_grid_hubcrash
./target/release/validate_metrics target/ci_grid_hubcrash
awk '
    /"name":"net.replica.takeovers"/ {
        n = $0
        sub(/.*"value":/, "", n); sub(/[,}].*/, "", n)
        total += n
    }
    END {
        printf "  net.replica.takeovers total across standbys: %d\n", total
        if (total != 1) { print "  FAIL: expected exactly one takeover"; exit 1 }
    }
' target/ci_grid_hubcrash/run_hub_standby*.jsonl

echo "== emit-metrics smoke (JSONL well-formed, stdout unperturbed) =="
rm -rf target/ci_metrics
./target/release/experiments --quick --serial --emit-metrics target/ci_metrics \
    > target/ci_emit.txt
diff target/ci_serial.txt target/ci_emit.txt
echo "stdout is byte-identical with --emit-metrics"
./target/release/validate_metrics target/ci_metrics

echo "== scenario fuzz smoke (25 seeded adaptation-invariant runs) =="
# Each seed deterministically generates a random scenario (grid, layout,
# timed perturbations), runs it through the DES, and asserts the four
# adaptation invariants on the emitted JSONL alone. A failing seed prints
# its exact re-run command, and the same seed always regenerates a
# byte-identical scenario file.
timeout 600 ./target/release/experiments --fuzz 25

echo "== scenario parity (one file drives both twins) =="
# The checked-in paper crash scenario runs through the DES and through
# real processes over loopback TCP from the *same* declarative file, and
# both runs are judged by the same invariant checker. Exit code 4 from
# grid-local would mean infrastructure timeout (not an invariant verdict).
./target/release/experiments --scenario scenarios/s6.json
rm -rf target/ci_scenario_parity
timeout 90 ./target/release/grid-local --scenario-file scenarios/s6.json \
    --min-decisions 3 --out target/ci_scenario_parity

echo "== mass-crash regression (hold-fire inside the detection window) =="
# The checked-in regression for the suspicion bug: 2 of 3 sites crash two
# seconds before a coordinator tick, so an evaluation deterministically
# lands inside the fault-detection window. Under the old silence-blind
# policy the coordinator shrank away survivors here; with three-state
# liveness it holds fire. Both twins run the same declarative file and
# both streams are judged by all five invariants — including
# no-suspect-shrink, checked from the JSONL alone (the 25-seed fuzz gate
# above applies the same fifth invariant to every generated scenario).
./target/release/experiments --scenario scenarios/mass_crash.json
rm -rf target/ci_mass_crash
timeout 90 ./target/release/grid-local --scenario-file scenarios/mass_crash.json \
    --min-decisions 3 --out target/ci_mass_crash

echo "CI OK"
