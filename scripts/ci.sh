#!/usr/bin/env bash
# Offline CI gate: format, lint, build, test, and a quick DES-throughput
# regression check. Everything runs without registry access — the workspace
# has no external dependencies.
#
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== fmt =="
# rustfmt may be absent from minimal toolchains; the formatting gate is
# advisory there rather than a hard failure.
if cargo fmt --version >/dev/null 2>&1; then
    cargo fmt --all --check
else
    echo "rustfmt not installed; skipping format check"
fi

echo "== clippy =="
if cargo clippy --version >/dev/null 2>&1; then
    cargo clippy --workspace --all-targets --release -- -D warnings
else
    echo "clippy not installed; skipping lint"
fi

echo "== build =="
cargo build --release

echo "== test =="
cargo test --workspace -q

echo "== DES throughput (quick) =="
SAGRID_BENCH_QUICK=1 SAGRID_BENCH_OUT="$PWD/target/BENCH_des_throughput.quick.json" \
    cargo bench -p sagrid-bench --bench des_throughput
echo "wrote target/BENCH_des_throughput.quick.json (committed baseline: BENCH_des_throughput.json)"

echo "== experiments smoke (parallel == serial) =="
./target/release/experiments --quick --serial > target/ci_serial.txt
./target/release/experiments --quick > target/ci_parallel.txt
diff target/ci_serial.txt target/ci_parallel.txt
echo "parallel output is byte-identical to serial"

echo "CI OK"
