//! Live model-free resource selection on real threads: start a saturated
//! two-worker pool, let the coordinator grow it; then slow half the pool
//! down and let the coordinator retire the overloaded workers.
//!
//! This is the paper's whole idea in one terminal session: no performance
//! model, only measured efficiency and measured speeds.
//!
//! ```sh
//! cargo run --release --example resource_selection
//! ```

use sagrid::adapt::AdaptPolicy;
use sagrid::apps::fib_par;
use sagrid::core::time::SimDuration;
use sagrid::runtime::{AdaptiveRuntime, Runtime, RuntimeConfig};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let policy = AdaptPolicy {
        monitoring_period: SimDuration::from_millis(200),
        ..AdaptPolicy::default()
    };
    let rt = Runtime::new(RuntimeConfig::single_cluster(2));
    let mut adaptive = AdaptiveRuntime::new(rt, policy, vec![8]);

    println!("phase 1: 2 workers, saturating divide-and-conquer load");
    let stop = Arc::new(AtomicBool::new(false));
    let stop_bg = stop.clone();

    let rt_handle = adaptive.runtime_handle();
    std::thread::scope(|s| {
        // Background load: keep the pool saturated while we tick.
        let bg = s.spawn(move || {
            while !stop_bg.load(Ordering::Relaxed) {
                let _ = rt_handle.run(move |ctx| fib_par(ctx, 26, 14));
            }
        });

        for round in 0..4 {
            std::thread::sleep(Duration::from_millis(250));
            let d = adaptive.tick();
            println!(
                "  tick {round}: wa_efficiency={:.3}, decision={}, workers={}",
                adaptive.coordinator().current_wa_efficiency(),
                d.kind(),
                adaptive.runtime().alive_workers().len()
            );
        }

        println!("\nphase 2: slowing half the pool to 20% speed (background load)");
        let workers = adaptive.runtime().alive_workers();
        for &w in workers.iter().take(workers.len() / 2) {
            adaptive.runtime().set_worker_speed(w, 0.2);
        }
        for round in 0..4 {
            std::thread::sleep(Duration::from_millis(250));
            let d = adaptive.tick();
            println!(
                "  tick {round}: wa_efficiency={:.3}, decision={}, workers={}",
                adaptive.coordinator().current_wa_efficiency(),
                d.kind(),
                adaptive.runtime().alive_workers().len()
            );
        }

        stop.store(true, Ordering::Relaxed);
        let _ = bg.join();
    });

    println!("\ncoordinator decision log:");
    for e in adaptive.coordinator().log() {
        println!(
            "  t={:>6.2}s wa_eff={:.3} nodes={} {}",
            e.at.as_secs_f64(),
            e.wa_efficiency,
            e.nodes,
            e.decision.kind()
        );
    }
    adaptive.into_runtime().shutdown();
}
