//! Grid rescue: the paper's crash scenario (scenario 6) on the
//! discrete-event DAS-2 emulation — watch the adaptation coordinator
//! replace two crashed clusters, node by node.
//!
//! ```sh
//! cargo run --release --example grid_rescue
//! ```

use sagrid::exp::runner::ScenarioOutcome;
use sagrid::exp::scenarios::{Scenario, ScenarioId};
use sagrid::exp::{chart, report};
use sagrid::simgrid::{AdaptMode, GridSim};

fn main() {
    println!("scenario 6: Barnes-Hut on 36 nodes / 3 clusters;");
    println!("at t = 200 s, 2 of the 3 clusters crash (24 nodes lost).\n");

    let scenario = Scenario::new(ScenarioId::S6Crash);
    let no_adapt = GridSim::run(scenario.config(AdaptMode::NoAdapt));
    let mut traced_cfg = scenario.config(AdaptMode::Adapt);
    traced_cfg.record_trace = true;
    let adapt = GridSim::run(traced_cfg);
    let out = ScenarioOutcome {
        scenario,
        no_adapt,
        adapt,
        monitor_only: None,
    };

    println!(
        "without adaptation: {}",
        report::summarize_run(&out.no_adapt)
    );
    println!("with    adaptation: {}", report::summarize_run(&out.adapt));
    println!(
        "adaptation saved {:.1}% of the runtime\n",
        out.improvement() * 100.0
    );

    println!("what the coordinator saw and did:");
    for d in &out.adapt.decisions {
        println!(
            "  t={:>7.1}s  wa_efficiency={:.3}  nodes={:>2}  -> {}",
            d.at.as_secs_f64(),
            d.wa_efficiency,
            d.nodes,
            d.decision.kind()
        );
    }

    println!("\nnode count over time (adaptive run):");
    // Collapse bursts of join/leave events that share a timestamp: print
    // the final count per instant.
    let mut collapsed: Vec<(f64, usize)> = Vec::new();
    for &(t, n) in &out.adapt.node_count_timeline {
        let secs = t.as_secs_f64();
        match collapsed.last_mut() {
            Some((lt, ln)) if (*lt - secs).abs() < 1.0 => *ln = n,
            _ => collapsed.push((secs, n)),
        }
    }
    for (t, n) in collapsed {
        println!("  t={t:>7.1}s  {n} nodes");
    }

    // Activity Gantt of a few nodes around the crash: survivors (cluster
    // 0), a crashed node (cluster 1), and a replacement that joins later.
    let sample: Vec<_> = out
        .adapt
        .activity_traces
        .iter()
        .filter(|(n, _)| [0u32, 1, 72, 73, 104, 10, 11].contains(&n.0))
        .cloned()
        .collect();
    println!();
    print!(
        "{}",
        chart::gantt(
            "activity around the crash (t = 150s .. 450s):",
            &sample,
            150.0,
            450.0,
            96,
        )
    );

    println!("\niteration durations (first 30):");
    for (i, (a, b)) in out
        .no_adapt
        .iteration_durations
        .iter()
        .zip(&out.adapt.iteration_durations)
        .take(30)
        .enumerate()
    {
        println!(
            "  iter {i:>2}: no-adapt {:>7.2}s   adapt {:>7.2}s",
            a.as_secs_f64(),
            b.as_secs_f64()
        );
    }
}
