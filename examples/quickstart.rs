//! Quickstart: write a divide-and-conquer program, run it on a malleable
//! work-stealing runtime, and watch workers join and leave mid-computation.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use sagrid::apps::{fib_par, fib_seq, nqueens_par, nqueens_seq};
use sagrid::runtime::{Runtime, RuntimeConfig};
use std::time::Instant;

fn main() {
    // A pool of 4 workers in one emulated cluster.
    let rt = Runtime::new(RuntimeConfig::single_cluster(4));

    // --- Fibonacci: the classic spawn/sync example -----------------------
    let n = 32;
    let t = Instant::now();
    let par = rt.run(move |ctx| fib_par(ctx, n, 16));
    let par_time = t.elapsed();
    let t = Instant::now();
    let seq = fib_seq(n);
    let seq_time = t.elapsed();
    assert_eq!(par, seq);
    println!("fib({n}) = {par}");
    println!("  sequential: {seq_time:?}");
    println!("  4 workers:  {par_time:?}");

    // --- Malleability: grow the pool while work is queued ----------------
    println!("\nadding 4 more workers (the computation is malleable)…");
    for _ in 0..4 {
        rt.add_worker(0);
    }
    let t = Instant::now();
    let par8 = rt.run(move |ctx| fib_par(ctx, n, 16));
    println!(
        "  8 workers:  {:?} (same answer: {})",
        t.elapsed(),
        par8 == seq
    );

    // --- N-queens: irregular search --------------------------------------
    let q = 12;
    let t = Instant::now();
    let solutions = rt.run(move |ctx| nqueens_par(ctx, q, 3));
    println!("\n{q}-queens has {solutions} solutions ({:?})", t.elapsed());
    assert_eq!(solutions, nqueens_seq(q));

    // --- Fault tolerance: crash half the pool mid-run --------------------
    println!("\ncrashing 4 of 8 workers mid-computation…");
    let result = std::thread::scope(|s| {
        s.spawn(|| {
            std::thread::sleep(std::time::Duration::from_millis(20));
            for id in rt.alive_workers().into_iter().take(4) {
                rt.crash_worker(id);
            }
        });
        rt.run(move |ctx| fib_par(ctx, n, 16))
    });
    println!(
        "  survivors still computed fib({n}) = {result} (correct: {})",
        result == seq
    );

    rt.shutdown();
}
