//! Barnes-Hut N-body on an emulated two-cluster grid — the paper's
//! evaluation workload running for real on the threaded runtime.
//!
//! ```sh
//! cargo run --release --example barnes_hut -- [n_bodies] [iterations]
//! ```

use sagrid::apps::{BarnesHut, Body};
use sagrid::runtime::{Runtime, RuntimeConfig};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(4_000);
    let iterations: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(10);

    println!("Barnes-Hut: {n} Plummer-model bodies, {iterations} iterations");
    println!("grid: 2 emulated clusters x 2 workers, 2 ms WAN latency\n");

    let rt = Runtime::new(RuntimeConfig::emulated_grid(2, 2));
    let mut sim = BarnesHut::plummer(n, 42);
    let e0 = sim.total_energy();
    let p0 = sim.total_momentum();

    for it in 0..iterations {
        let t = Instant::now();
        // Jobs must be pure (re-executable on worker crash), so each
        // iteration's job captures an immutable snapshot of the bodies and
        // returns the advanced state.
        let snapshot: Arc<Vec<Body>> = Arc::new(sim.bodies().to_vec());
        let new_bodies = rt.run(move |ctx| {
            let step_sim = BarnesHut::new(snapshot.as_ref().clone(), 0.5, 1e-3);
            let (advanced, _acc) = BarnesHut::step_par(step_sim, ctx, 64);
            advanced.bodies().to_vec()
        });
        sim = BarnesHut::new(new_bodies, 0.5, 1e-3);
        println!("iteration {it:>3}: {:?}", t.elapsed());
    }

    let e1 = sim.total_energy();
    let p1 = sim.total_momentum();
    println!("\nenergy   drift: {:+.3e} (relative)", (e1 - e0) / e0.abs());
    println!(
        "momentum drift: [{:+.2e} {:+.2e} {:+.2e}]",
        p1[0] - p0[0],
        p1[1] - p0[1],
        p1[2] - p0[2]
    );
    rt.shutdown();
}
