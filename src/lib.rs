//! # sagrid — Self-adaptive applications on the grid
//!
//! A Rust reproduction of *"Self-adaptive applications on the grid"*
//! (Wrzesinska, Maassen, Bal — PPoPP 2007): model-free resource selection
//! and adaptation for malleable divide-and-conquer applications.
//!
//! This umbrella crate re-exports the workspace's public API:
//!
//! * [`core`] — ids, virtual time, deterministic RNG, statistics
//!   records, grid configuration (including DAS-2), task-tree workloads;
//! * [`adapt`] — **the paper's contribution**: weighted average
//!   efficiency, node/cluster badness, monitoring, and the adaptation
//!   coordinator;
//! * [`runtime`] — a Satin-like malleable work-stealing
//!   divide-and-conquer runtime (real threads);
//! * [`simgrid`] — a deterministic discrete-event grid
//!   emulation at DAS-2 scale, driving the same adaptation coordinator;
//! * [`simnet`] — the discrete-event kernel and WAN model;
//! * [`registry`] — Ibis-like membership and fault
//!   detection;
//! * [`sched`] — Zorilla-like grid resource pool;
//! * [`net`] — process-mode TCP control plane (std-only wire codec,
//!   hub/worker/coordinator binaries, `grid-local` launcher);
//! * [`apps`] — divide-and-conquer applications (Fibonacci,
//!   N-queens, adaptive quadrature, TSP, Barnes-Hut);
//! * [`exp`] — the experiment harness reproducing every figure
//!   and table of the paper's evaluation.
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the system
//! inventory and per-experiment index.

pub use sagrid_adapt as adapt;
pub use sagrid_apps as apps;
pub use sagrid_core as core;
pub use sagrid_exp as exp;
pub use sagrid_net as net;
pub use sagrid_registry as registry;
pub use sagrid_runtime as runtime;
pub use sagrid_sched as sched;
pub use sagrid_simgrid as simgrid;
pub use sagrid_simnet as simnet;
