//! Integration tests for the *threaded* half of the system: real
//! divide-and-conquer applications on the malleable runtime, with the
//! paper's coordinator adapting the pool live.

use sagrid::adapt::AdaptPolicy;
use sagrid::apps::{fib_par, fib_seq, nqueens_par, nqueens_seq, tsp_par, tsp_seq, TspInstance};
use sagrid::core::metrics::Metrics;
use sagrid::core::time::SimDuration;
use sagrid::runtime::{AdaptiveRuntime, Runtime, RuntimeConfig};
use std::sync::Arc;
use std::time::Duration;

#[test]
fn applications_are_correct_across_emulated_clusters() {
    let mut cfg = RuntimeConfig::emulated_grid(2, 2);
    cfg.wan_latency = Duration::from_micros(300);
    let rt = Runtime::new(cfg);
    assert_eq!(rt.run(|ctx| fib_par(ctx, 25, 12)), fib_seq(25));
    assert_eq!(rt.run(|ctx| nqueens_par(ctx, 9, 2)), nqueens_seq(9));
    let inst = Arc::new(TspInstance::random_euclidean(9, 7));
    let expected = tsp_seq(&inst);
    let inst2 = Arc::clone(&inst);
    assert_eq!(rt.run(move |ctx| tsp_par(ctx, &inst2, 2)), expected);
    rt.shutdown();
}

#[test]
fn pool_survives_rolling_crashes_during_long_searches() {
    let rt = Runtime::with_metrics(RuntimeConfig::single_cluster(6), Metrics::enabled());
    let result = std::thread::scope(|s| {
        s.spawn(|| {
            for i in 0..3 {
                std::thread::sleep(Duration::from_millis(15));
                rt.crash_worker(5 - i);
            }
        });
        rt.run(|ctx| nqueens_par(ctx, 10, 3))
    });
    assert_eq!(result, nqueens_seq(10));
    // The registry must have seen the whole story: three crashes, the
    // survivors stealing work (single cluster ⇒ all local), the work tree
    // spawned, and a half-empty pool at the end.
    let report = rt.metrics().report();
    assert_eq!(report.counter("rt.crashes"), 3);
    assert_eq!(report.counter("rt.workers_joined"), 6);
    assert_eq!(report.gauge("rt.workers_alive"), 3);
    assert!(
        report.counter("rt.spawns") > 100,
        "nqueens(10) spawns a large task tree, saw {}",
        report.counter("rt.spawns")
    );
    let local_attempts =
        report.counter("rt.steals.local_ok") + report.counter("rt.steals.local_failed");
    assert!(
        local_attempts > 0,
        "idle workers must have attempted local steals"
    );
    assert_eq!(
        report.counter("rt.steals.remote_ok") + report.counter("rt.steals.remote_failed"),
        0,
        "a single-cluster pool has no remote victims"
    );
    rt.shutdown();
}

#[test]
fn disabled_metrics_observe_nothing() {
    // Zero-cost path: a default runtime performs no metric work at all —
    // the report stays empty (no counters, no events) even after crashes
    // and a full computation.
    let rt = Runtime::new(RuntimeConfig::single_cluster(3));
    let result = std::thread::scope(|s| {
        s.spawn(|| {
            std::thread::sleep(Duration::from_millis(10));
            rt.crash_worker(2);
        });
        rt.run(|ctx| nqueens_par(ctx, 9, 3))
    });
    assert_eq!(result, nqueens_seq(9));
    assert!(!rt.metrics().is_enabled());
    let report = rt.metrics().report();
    assert!(report.is_empty(), "disabled registry must record nothing");
    assert_eq!(report.counter("rt.crashes"), 0);
    rt.shutdown();
}

#[test]
fn workers_added_mid_run_participate() {
    let rt = Runtime::new(RuntimeConfig::single_cluster(1));
    let result = std::thread::scope(|s| {
        s.spawn(|| {
            std::thread::sleep(Duration::from_millis(5));
            for _ in 0..3 {
                rt.add_worker(0);
            }
        });
        rt.run(|ctx| fib_par(ctx, 27, 12))
    });
    assert_eq!(result, fib_seq(27));
    // The latecomers must have executed something.
    let reports = rt.take_monitoring_reports();
    assert_eq!(reports.len(), 4);
    rt.shutdown();
}

#[test]
fn adaptive_runtime_full_loop_grows_then_prunes() {
    let policy = AdaptPolicy {
        monitoring_period: SimDuration::from_millis(100),
        ..AdaptPolicy::default()
    };
    let rt = Runtime::new(RuntimeConfig::single_cluster(2));
    let mut adaptive = AdaptiveRuntime::new(rt, policy, vec![6]);
    let handle = adaptive.runtime_handle();
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let stop_bg = Arc::clone(&stop);

    let mut decisions = Vec::new();
    std::thread::scope(|s| {
        let bg = s.spawn(move || {
            while !stop_bg.load(std::sync::atomic::Ordering::Relaxed) {
                let _ = handle.run(|ctx| fib_par(ctx, 24, 14));
            }
        });
        for _ in 0..3 {
            std::thread::sleep(Duration::from_millis(120));
            decisions.push(adaptive.tick().kind());
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        let _ = bg.join();
    });
    assert!(
        decisions.contains(&"add"),
        "a saturated 2-worker pool must trigger growth: {decisions:?}"
    );
    assert!(adaptive.runtime().alive_workers().len() > 2);

    // Let the pool idle: efficiency collapses and the coordinator prunes.
    std::thread::sleep(Duration::from_millis(150));
    let d = adaptive.tick();
    assert_eq!(d.kind(), "remove-nodes", "idle pool must shrink: {d:?}");
    adaptive.into_runtime().shutdown();
}

#[test]
fn monitoring_reports_satisfy_rough_conservation() {
    // Busy + idle + comm + benchmark over a period should not exceed the
    // wall time by more than bookkeeping noise, per worker.
    let rt = Runtime::new(RuntimeConfig::single_cluster(3));
    let start = std::time::Instant::now();
    let _ = rt.take_monitoring_reports(); // reset counters
    let _ = rt.run(|ctx| fib_par(ctx, 26, 13));
    std::thread::sleep(Duration::from_millis(20));
    let wall = start.elapsed();
    for (report, _) in rt.take_monitoring_reports() {
        let accounted = report.breakdown.total().as_secs_f64();
        assert!(
            accounted <= wall.as_secs_f64() * 1.25 + 0.01,
            "worker {} accounted {accounted:.3}s of a {:.3}s period",
            report.node,
            wall.as_secs_f64()
        );
    }
    rt.shutdown();
}

#[test]
fn slowed_workers_measure_as_slow() {
    let rt = Runtime::new(RuntimeConfig::single_cluster(2));
    rt.set_worker_speed(1, 0.2);
    let fast = rt.benchmark_worker(0).expect("benchmark worker 0");
    let slow = rt.benchmark_worker(1).expect("benchmark worker 1");
    let ratio = slow.as_secs_f64() / fast.as_secs_f64();
    assert!(
        ratio > 2.5,
        "0.2-speed worker should benchmark ≥2.5x slower, got {ratio:.2}x"
    );
    rt.shutdown();
}
