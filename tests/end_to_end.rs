//! Cross-crate integration tests on the discrete-event grid emulation:
//! full paper scenarios exercising core + simnet + registry + sched +
//! adapt + simgrid + exp together.

use sagrid::adapt::AdaptPolicy;
use sagrid::core::config::GridConfig;
use sagrid::core::ids::ClusterId;
use sagrid::core::time::{SimDuration, SimTime};
use sagrid::core::workload::barnes_hut_profile;
use sagrid::exp::runner::run_scenario;
use sagrid::exp::scenarios::{Scenario, ScenarioId, SubScenario};
use sagrid::simgrid::{AdaptMode, GridSim, SimConfig, StealPolicy, TimingConfig};
use sagrid::simnet::{Injection, InjectionSchedule, ScheduledInjection};

fn quick(id: ScenarioId) -> Scenario {
    let mut s = Scenario::new(id);
    s.iterations = 16;
    s
}

#[test]
fn expanding_scenario_beats_static_undersized_run() {
    let out = run_scenario(&quick(ScenarioId::S2Expand(SubScenario::A)), false);
    assert!(!out.no_adapt.timed_out && !out.adapt.timed_out);
    assert!(
        out.improvement() > 0.15,
        "expected a clear win from expansion, got {:.1}%",
        out.improvement() * 100.0
    );
    assert!(out.adapt.final_node_count() > 8);
    // Growth happened through Add decisions, not magic.
    assert!(out
        .adapt
        .decisions
        .iter()
        .any(|d| d.decision.kind() == "add"));
}

#[test]
fn overloaded_link_scenario_removes_the_shaped_cluster() {
    let out = run_scenario(&quick(ScenarioId::S4OverloadedLink), false);
    let removed_cluster = out.adapt.decisions.iter().find_map(|d| match &d.decision {
        sagrid::adapt::Decision::RemoveCluster { cluster, .. } => Some(*cluster),
        _ => None,
    });
    assert_eq!(
        removed_cluster,
        Some(ClusterId(2)),
        "the shaped cluster (c2) must be removed wholesale; log: {:?}",
        out.adapt.decisions
    );
}

#[test]
fn crash_scenario_replaces_lost_nodes() {
    let mut s = Scenario::new(ScenarioId::S6Crash);
    s.iterations = 32;
    let out = run_scenario(&s, false);
    assert!(!out.adapt.timed_out);
    // 36 nodes, 24 crash at t=200s; the adaptive run must end with clearly
    // more than the 12 survivors.
    assert!(
        out.adapt.final_node_count() > 12,
        "final nodes {} — adaptation never replaced the crashed clusters",
        out.adapt.final_node_count()
    );
    assert!(out.no_adapt.final_node_count() == 12);
    assert!(out.adapt.total_runtime <= out.no_adapt.total_runtime);
}

#[test]
fn monitor_only_pays_benchmark_overhead_but_keeps_node_count() {
    let out = run_scenario(&quick(ScenarioId::S1Overhead), true);
    let mon = out.monitor_only.expect("monitor-only run requested");
    assert!(mon.aggregate.benchmark.0 > 0);
    assert_eq!(mon.final_node_count(), 36);
    // runtime3 >= runtime1 (benchmarking is pure overhead).
    assert!(mon.total_runtime >= out.no_adapt.total_runtime);
}

#[test]
fn blacklisted_cluster_never_returns() {
    // Run the link-overload scenario long enough for several grow rounds
    // after the bad cluster is dropped; no node of cluster 2 may re-join.
    let mut s = Scenario::new(ScenarioId::S4OverloadedLink);
    s.iterations = 40;
    let cfg = s.config(AdaptMode::Adapt);
    let grid = cfg.grid.clone();
    let result = GridSim::run(cfg);
    assert!(!result.timed_out);
    let _ = &grid;
    let removal_time = result
        .decisions
        .iter()
        .find(|d| d.decision.kind() == "remove-cluster")
        .map(|d| d.at)
        .expect("cluster removal must happen");
    // After removal, added nodes must all come from other clusters. The
    // node-count timeline can't tell us which nodes joined, but the
    // decision log's Add entries plus the invariant that the engine's pool
    // filters blacklisted clusters are covered by unit tests; here we
    // assert the end state: final count grew back above the 24 survivors.
    assert!(result.node_count_at(removal_time + SimDuration::from_secs(1)) <= 24);
    assert!(result.final_node_count() > 24);
}

#[test]
fn all_scenarios_terminate_in_all_modes() {
    for id in ScenarioId::all() {
        let mut s = Scenario::quick(id);
        s.iterations = 6;
        for mode in [AdaptMode::NoAdapt, AdaptMode::MonitorOnly, AdaptMode::Adapt] {
            let r = GridSim::run(s.config(mode));
            assert!(
                !r.timed_out,
                "scenario {} timed out in {mode:?}",
                id.label()
            );
            assert_eq!(r.iteration_durations.len(), 6, "scenario {}", id.label());
        }
    }
}

#[test]
fn des_runs_are_reproducible_across_the_whole_stack() {
    let s = quick(ScenarioId::S3OverloadedCpus);
    let a = GridSim::run(s.config(AdaptMode::Adapt));
    let b = GridSim::run(s.config(AdaptMode::Adapt));
    assert_eq!(a.iteration_durations, b.iteration_durations);
    assert_eq!(a.events_processed, b.events_processed);
    assert_eq!(a.decisions.len(), b.decisions.len());
    assert_eq!(a.node_count_timeline, b.node_count_timeline);
}

#[test]
fn time_accounting_is_conserved_for_static_runs() {
    // In NoAdapt mode with no crashes, every node lives the whole run, so
    // the aggregate accounted time must be ≈ nodes × runtime.
    let cfg = SimConfig {
        grid: GridConfig::uniform(2, 6),
        policy: AdaptPolicy {
            monitoring_period: SimDuration::from_secs(60),
            ..AdaptPolicy::default()
        },
        initial_layout: vec![(ClusterId(0), 6), (ClusterId(1), 6)],
        workload: barnes_hut_profile(8, 12, 5.0, 3),
        injections: InjectionSchedule::empty(),
        mode: AdaptMode::NoAdapt,
        steal_policy: StealPolicy::ClusterAware,
        timing: TimingConfig::default(),
        record_trace: false,
        feedback_tuning: false,
        hierarchical_coordinator: false,
        queue_backend: Default::default(),
        seed: 123,
    };
    let r = GridSim::run(cfg);
    assert!(!r.timed_out);
    let accounted = r.aggregate.total().as_secs_f64() / 12.0;
    let runtime = r.total_runtime.as_secs_f64();
    let rel = (accounted - runtime).abs() / runtime;
    assert!(
        rel < 0.05,
        "per-node accounted {accounted:.1}s vs runtime {runtime:.1}s"
    );
}

#[test]
fn random_global_stealing_is_not_faster_than_crs_on_a_wan() {
    let s = quick(ScenarioId::S2Expand(SubScenario::C));
    let (crs, rnd) = sagrid::exp::ablation::crs_vs_random(&s);
    assert!(crs.total_runtime <= rnd.total_runtime);
}

#[test]
fn injections_change_behaviour_only_after_their_time() {
    // Identical runs except a late injection: iteration durations must
    // match exactly until the disturbance.
    let base = SimConfig {
        grid: GridConfig::uniform(2, 4),
        policy: AdaptPolicy::default(),
        initial_layout: vec![(ClusterId(0), 4), (ClusterId(1), 4)],
        workload: barnes_hut_profile(12, 8, 4.0, 17),
        injections: InjectionSchedule::empty(),
        mode: AdaptMode::NoAdapt,
        steal_policy: StealPolicy::ClusterAware,
        timing: TimingConfig::default(),
        record_trace: false,
        feedback_tuning: false,
        hierarchical_coordinator: false,
        queue_backend: Default::default(),
        seed: 5,
    };
    let mut perturbed = base.clone();
    perturbed.injections = InjectionSchedule::new(vec![ScheduledInjection {
        at: SimTime::from_secs(25),
        injection: Injection::CpuLoad {
            cluster: ClusterId(1),
            count: None,
            factor: 8.0,
        },
    }]);
    let clean = GridSim::run(base);
    let loaded = GridSim::run(perturbed);
    // Find the iteration spanning t=25s in the clean run.
    let mut t = 0.0;
    let mut boundary = 0;
    for (i, d) in clean.iteration_durations.iter().enumerate() {
        t += d.as_secs_f64();
        if t > 25.0 {
            boundary = i;
            break;
        }
    }
    assert!(boundary > 0, "disturbance must fall inside the run");
    assert_eq!(
        clean.iteration_durations[..boundary],
        loaded.iteration_durations[..boundary],
        "pre-disturbance iterations must be identical"
    );
    let clean_total = clean.total_runtime.as_secs_f64();
    let loaded_total = loaded.total_runtime.as_secs_f64();
    assert!(
        loaded_total > clean_total,
        "the load must slow the run down"
    );
}

#[test]
fn hierarchical_coordinator_matches_flat_decisions() {
    // Paper §7: the hierarchy is a scalability fix, not a behaviour change.
    // Same scenario, flat vs hierarchical coordinator: identical decision
    // sequences and (since decisions drive everything) identical runs.
    for id in [
        ScenarioId::S3OverloadedCpus,
        ScenarioId::S4OverloadedLink,
        ScenarioId::S6Crash,
    ] {
        let s = quick(id);
        let flat = GridSim::run(s.config(AdaptMode::Adapt));
        let mut cfg = s.config(AdaptMode::Adapt);
        cfg.hierarchical_coordinator = true;
        let hier = GridSim::run(cfg);
        let kinds = |r: &sagrid::simgrid::RunResult| {
            r.decisions
                .iter()
                .map(|d| d.decision.kind())
                .collect::<Vec<_>>()
        };
        assert_eq!(kinds(&flat), kinds(&hier), "scenario {}", id.label());
        assert_eq!(
            flat.iteration_durations,
            hier.iteration_durations,
            "scenario {}",
            id.label()
        );
    }
}

#[test]
fn learned_bandwidth_bound_comes_from_measured_transfers() {
    // After the shaped cluster is removed, the coordinator must have
    // learned a min-bandwidth requirement in the vicinity of the shaped
    // rate — from transfer-time measurements, not from reading the network
    // model (the engine only feeds the estimator).
    let mut s = Scenario::new(ScenarioId::S4OverloadedLink);
    s.iterations = 40; // long enough for Add decisions after the removal
    let out = run_scenario(&s, false);
    let add_with_requirement = out.adapt.decisions.iter().find_map(|d| match &d.decision {
        sagrid::adapt::Decision::Add { requirements, .. } => requirements.min_uplink_bps,
        _ => None,
    });
    let bw = add_with_requirement.expect("an Add after the cluster removal carries the bound");
    assert!(
        (10_000.0..1_000_000.0).contains(&bw),
        "learned bound {bw} should be near the shaped 100 KB/s rate"
    );
}
