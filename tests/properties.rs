//! Randomized property tests on the core data structures and the paper's
//! invariants, spanning crates. Deterministic: every case derives from a
//! fixed-seed [`Xoshiro256StarStar`], so failures reproduce exactly (the
//! container has no registry access, hence no proptest — the invariants are
//! the same ones a shrinking framework would check).

use sagrid::adapt::{
    cluster_badness, node_badness, wa_efficiency, AdaptPolicy, BadnessCoefficients,
};
use sagrid::core::ids::{ClusterId, NodeId};
use sagrid::core::rng::{Rng64, Xoshiro256StarStar};
use sagrid::core::stats::{NodeStats, OverheadBreakdown};
use sagrid::core::time::{SimDuration, SimTime};
use sagrid::core::workload::{TaskTree, TreeShape};
use sagrid::sched::{AllocPolicy, Requirements, ResourcePool};
use sagrid::simnet::EventQueue;
use std::collections::BTreeSet;

const CASES: u64 = 200;

fn rng_for(test: u64, case: u64) -> Xoshiro256StarStar {
    Xoshiro256StarStar::seeded(0x5EED_0000 + test * 1_000 + case)
}

fn f64_in(rng: &mut impl Rng64, lo: f64, hi: f64) -> f64 {
    lo + (hi - lo) * rng.gen_f64()
}

/// Weighted average efficiency always lies in [0, 1], whatever garbage the
/// measurement layer produces.
#[test]
fn wa_efficiency_is_bounded() {
    for case in 0..CASES {
        let mut rng = rng_for(1, case);
        let n = rng.gen_index(50);
        let pairs: Vec<(f64, f64)> = (0..n)
            .map(|_| (f64_in(&mut rng, 0.0, 2.0), f64_in(&mut rng, -0.5, 1.5)))
            .collect();
        let e = wa_efficiency(pairs);
        assert!((0.0..=1.0).contains(&e), "case {case}: wa_eff {e}");
    }
}

/// Badness is monotone: slower nodes and worse links are never *less* bad.
#[test]
fn badness_is_monotone() {
    let c = BadnessCoefficients::default();
    for case in 0..CASES {
        let mut rng = rng_for(2, case);
        let s1 = f64_in(&mut rng, 0.01, 1.0);
        let s2 = f64_in(&mut rng, 0.01, 1.0);
        let ic1 = f64_in(&mut rng, 0.0, 1.0);
        let ic2 = f64_in(&mut rng, 0.0, 1.0);
        let (slow, fast) = if s1 <= s2 { (s1, s2) } else { (s2, s1) };
        let (lo, hi) = if ic1 <= ic2 { (ic1, ic2) } else { (ic2, ic1) };
        assert!(node_badness(&c, slow, lo, false) >= node_badness(&c, fast, lo, false));
        assert!(node_badness(&c, slow, hi, false) >= node_badness(&c, slow, lo, false));
        assert!(cluster_badness(&c, slow, hi) >= cluster_badness(&c, fast, lo));
    }
}

/// Grow/shrink sizing respects its bounds for every efficiency value.
#[test]
fn policy_sizing_is_bounded() {
    let p = AdaptPolicy::default();
    for case in 0..CASES {
        let mut rng = rng_for(3, case);
        let wa = rng.gen_f64();
        let n = 1 + rng.gen_index(199);
        if wa > p.e_max {
            let g = p.grow_size(wa, n);
            assert!(g >= 1 && g <= p.max_growth_per_period, "case {case}");
        } else if wa < p.e_min {
            let s = p.shrink_size(wa, n);
            assert!(s <= n.saturating_sub(p.min_nodes), "case {case}");
            if n > p.min_nodes {
                assert!(s >= 1, "case {case}");
            }
        }
    }
}

/// The event queue pops in nondecreasing time order under arbitrary
/// interleavings of pushes and pops.
#[test]
fn event_queue_is_time_ordered() {
    for case in 0..CASES {
        let mut rng = rng_for(4, case);
        let ops = 1 + rng.gen_index(199);
        let mut q: EventQueue<u64> = EventQueue::new();
        let mut last_popped = SimTime::ZERO;
        for _ in 0..ops {
            let dt = rng.gen_range(1_000);
            if rng.gen_bool(0.5) {
                if let Some((t, _)) = q.pop() {
                    assert!(t >= last_popped, "case {case}");
                    last_popped = t;
                }
            } else {
                // Schedule relative to now so it is never in the past.
                let at = q.now() + SimDuration::from_micros(dt);
                q.push(at, dt);
            }
        }
        while let Some((t, _)) = q.pop() {
            assert!(t >= last_popped, "case {case}");
            last_popped = t;
        }
    }
}

/// Generated task trees are well-formed: every non-root node has exactly
/// one parent, the critical path never exceeds total work, and subtree leaf
/// counts add up.
#[test]
fn task_trees_are_well_formed() {
    for case in 0..CASES {
        let mut rng = rng_for(5, case);
        let shape = TreeShape {
            depth: 1 + rng.gen_index(4) as u32,
            work_spread: f64_in(&mut rng, 1.0, 50.0),
            ..TreeShape::small()
        };
        let tree: TaskTree = shape.generate(&mut rng);
        let mut parents = vec![0u32; tree.len()];
        for i in 0..tree.len() {
            for c in tree.children(i) {
                parents[c] += 1;
            }
        }
        assert_eq!(parents[0], 0, "case {case}");
        assert!(parents[1..].iter().all(|&p| p == 1), "case {case}");
        assert!(tree.critical_path() <= tree.total_work(), "case {case}");
        let counts = tree.subtree_leaf_counts();
        assert_eq!(counts[0] as usize, tree.leaf_count(), "case {case}");
    }
}

/// The resource pool never over-grants, never grants blacklisted
/// resources, and releasing everything restores the free count.
#[test]
fn pool_respects_capacity_and_blacklists() {
    for case in 0..CASES {
        let mut rng = rng_for(6, case);
        let n_req = rng.gen_index(60);
        let mut pool = ResourcePool::new(&sagrid::core::config::GridConfig::uniform(3, 8));
        let excluded_nodes: BTreeSet<NodeId> = (0..rng.gen_range(5))
            .map(|_| NodeId(rng.gen_range(24) as u32))
            .collect();
        let excluded_clusters: BTreeSet<ClusterId> = [ClusterId(rng.gen_range(3) as u16)].into();
        let grants = pool.request(
            n_req,
            AllocPolicy::LocalityAware,
            &Requirements::default(),
            &excluded_nodes,
            &excluded_clusters,
            &[],
        );
        assert!(grants.len() <= n_req, "case {case}");
        let mut seen = BTreeSet::new();
        for g in &grants {
            assert!(!excluded_nodes.contains(&g.node), "case {case}");
            assert!(!excluded_clusters.contains(&g.cluster), "case {case}");
            assert!(seen.insert(g.node), "case {case}: node granted twice");
        }
        for g in &grants {
            pool.release(g.node);
        }
        assert_eq!(pool.free_count(), 24, "case {case}");
    }
}

/// Statistics conservation: however activity is sliced into the buckets,
/// the total equals the sum of the parts and the overhead fraction stays
/// within [0, 1].
#[test]
fn stats_conservation() {
    for case in 0..CASES {
        let mut rng = rng_for(7, case);
        let spans = 1 + rng.gen_index(99);
        let mut stats = NodeStats::new(NodeId(0), ClusterId(0), SimTime::ZERO);
        let mut expected_total = 0u64;
        let mut now = SimTime::ZERO;
        for _ in 0..spans {
            let len = rng.gen_range(10_000);
            let d = SimDuration::from_micros(len);
            match rng.gen_range(5) {
                0 => stats.add_busy(d),
                1 => stats.add_idle(d),
                2 => stats.add_comm(d, true),
                3 => stats.add_comm(d, false),
                _ => stats.add_benchmark(d),
            }
            expected_total += len;
            now += d;
        }
        let report = stats.take_report(now, 1.0);
        assert_eq!(
            report.breakdown.total(),
            SimDuration::from_micros(expected_total),
            "case {case}"
        );
        let ovh = report.overhead_fraction();
        assert!((0.0..=1.0).contains(&ovh), "case {case}");
        assert!(report.ic_overhead_fraction() <= ovh + 1e-12, "case {case}");
    }
}

/// Overhead breakdown merge is associative with totals.
#[test]
fn breakdown_merge_adds_totals() {
    for case in 0..CASES {
        let mut rng = rng_for(8, case);
        let mk = |rng: &mut Xoshiro256StarStar| OverheadBreakdown {
            busy: SimDuration(rng.gen_range(1_000)),
            idle: SimDuration(rng.gen_range(1_000)),
            intra_comm: SimDuration(rng.gen_range(1_000)),
            inter_comm: SimDuration(rng.gen_range(1_000)),
            benchmark: SimDuration(rng.gen_range(1_000)),
        };
        let (x, y) = (mk(&mut rng), mk(&mut rng));
        let mut merged = x;
        merged.merge(&y);
        assert_eq!(merged.total(), x.total() + y.total(), "case {case}");
    }
}

/// Network deliveries never go backwards in time, and bigger messages
/// never arrive earlier than smaller ones sent at the same instant on the
/// same path.
#[test]
fn network_delivery_is_causal_and_monotone() {
    use sagrid::simnet::Network;
    for case in 0..CASES {
        let mut rng = rng_for(9, case);
        let bytes_small = 1 + rng.gen_range(9_999);
        let extra = 1 + rng.gen_range(999_999);
        let from = rng.gen_range(3) as u16;
        let to = rng.gen_range(3) as u16;
        let mut net = Network::new(&sagrid::core::config::GridConfig::uniform(3, 4));
        let now = SimTime::from_secs(1);
        // Send the *large* message through a fresh network so queueing from
        // the first send cannot help it.
        let mut net2 = net.clone();
        let small = net.deliver(now, ClusterId(from), ClusterId(to), bytes_small);
        let large = net2.deliver(now, ClusterId(from), ClusterId(to), bytes_small + extra);
        assert!(small.arrives_at > now, "case {case}");
        assert!(large.arrives_at >= small.arrives_at, "case {case}");
        assert!(
            small.src_clear_at <= small.arrives_at || from == to,
            "case {case}"
        );
    }
}
