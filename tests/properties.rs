//! Property-based tests (proptest) on the core data structures and the
//! paper's invariants, spanning crates.

use proptest::prelude::*;
use sagrid::adapt::{
    cluster_badness, node_badness, wa_efficiency, AdaptPolicy, BadnessCoefficients,
};
use sagrid::core::ids::{ClusterId, NodeId};
use sagrid::core::rng::{Rng64, Xoshiro256StarStar};
use sagrid::core::stats::{NodeStats, OverheadBreakdown};
use sagrid::core::time::{SimDuration, SimTime};
use sagrid::core::workload::{TaskTree, TreeShape};
use sagrid::sched::{AllocPolicy, Requirements, ResourcePool};
use sagrid::simnet::EventQueue;
use std::collections::BTreeSet;

proptest! {
    /// Weighted average efficiency always lies in [0, 1], whatever garbage
    /// the measurement layer produces.
    #[test]
    fn wa_efficiency_is_bounded(pairs in prop::collection::vec((0.0f64..2.0, -0.5f64..1.5), 0..50)) {
        let e = wa_efficiency(pairs);
        prop_assert!((0.0..=1.0).contains(&e), "wa_eff {e}");
    }

    /// Badness is monotone: slower nodes and worse links are never *less*
    /// bad.
    #[test]
    fn badness_is_monotone(
        s1 in 0.01f64..1.0, s2 in 0.01f64..1.0,
        ic1 in 0.0f64..1.0, ic2 in 0.0f64..1.0,
    ) {
        let c = BadnessCoefficients::default();
        let (slow, fast) = if s1 <= s2 { (s1, s2) } else { (s2, s1) };
        let (lo, hi) = if ic1 <= ic2 { (ic1, ic2) } else { (ic2, ic1) };
        prop_assert!(node_badness(&c, slow, lo, false) >= node_badness(&c, fast, lo, false));
        prop_assert!(node_badness(&c, slow, hi, false) >= node_badness(&c, slow, lo, false));
        prop_assert!(cluster_badness(&c, slow, hi) >= cluster_badness(&c, fast, lo));
    }

    /// Grow/shrink sizing respects its bounds for every efficiency value.
    #[test]
    fn policy_sizing_is_bounded(wa in 0.0f64..1.0, n in 1usize..200) {
        let p = AdaptPolicy::default();
        if wa > p.e_max {
            let g = p.grow_size(wa, n);
            prop_assert!(g >= 1 && g <= p.max_growth_per_period);
        } else if wa < p.e_min {
            let s = p.shrink_size(wa, n);
            prop_assert!(s <= n.saturating_sub(p.min_nodes));
            if n > p.min_nodes {
                prop_assert!(s >= 1);
            }
        }
    }

    /// The event queue pops in nondecreasing time order under arbitrary
    /// interleavings of pushes and pops.
    #[test]
    fn event_queue_is_time_ordered(ops in prop::collection::vec((0u64..1_000, any::<bool>()), 1..200)) {
        let mut q: EventQueue<u64> = EventQueue::new();
        let mut last_popped = SimTime::ZERO;
        for (dt, pop) in ops {
            if pop {
                if let Some((t, _)) = q.pop() {
                    prop_assert!(t >= last_popped);
                    last_popped = t;
                }
            } else {
                // Schedule relative to now so it is never in the past.
                let at = q.now() + SimDuration::from_micros(dt);
                q.push(at, dt);
            }
        }
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= last_popped);
            last_popped = t;
        }
    }

    /// Generated task trees are well-formed: every non-root node has
    /// exactly one parent, the critical path never exceeds total work, and
    /// subtree leaf counts add up.
    #[test]
    fn task_trees_are_well_formed(seed in any::<u64>(), depth in 1u32..5, spread in 1.0f64..50.0) {
        let shape = TreeShape {
            depth,
            work_spread: spread,
            ..TreeShape::small()
        };
        let mut rng = Xoshiro256StarStar::seeded(seed);
        let tree: TaskTree = shape.generate(&mut rng);
        let mut parents = vec![0u32; tree.len()];
        for i in 0..tree.len() {
            for c in tree.children(i) {
                parents[c] += 1;
            }
        }
        prop_assert_eq!(parents[0], 0);
        prop_assert!(parents[1..].iter().all(|&p| p == 1));
        prop_assert!(tree.critical_path() <= tree.total_work());
        let counts = tree.subtree_leaf_counts();
        prop_assert_eq!(counts[0] as usize, tree.leaf_count());
    }

    /// The resource pool never over-grants, never grants blacklisted
    /// resources, and releasing everything restores the free count.
    #[test]
    fn pool_respects_capacity_and_blacklists(
        n_req in 0usize..60,
        blacklist_cluster in 0u16..3,
        seed in any::<u64>(),
    ) {
        let mut pool = ResourcePool::new(&sagrid::core::config::GridConfig::uniform(3, 8));
        let mut rng = Xoshiro256StarStar::seeded(seed);
        let excluded_nodes: BTreeSet<NodeId> =
            (0..rng.gen_range(5)).map(|_| NodeId(rng.gen_range(24) as u32)).collect();
        let excluded_clusters: BTreeSet<ClusterId> = [ClusterId(blacklist_cluster)].into();
        let grants = pool.request(
            n_req,
            AllocPolicy::LocalityAware,
            &Requirements::default(),
            &excluded_nodes,
            &excluded_clusters,
            &[],
        );
        prop_assert!(grants.len() <= n_req);
        let mut seen = BTreeSet::new();
        for g in &grants {
            prop_assert!(!excluded_nodes.contains(&g.node));
            prop_assert!(!excluded_clusters.contains(&g.cluster));
            prop_assert!(seen.insert(g.node), "node granted twice");
        }
        for g in &grants {
            pool.release(g.node);
        }
        prop_assert_eq!(pool.free_count(), 24);
    }

    /// Statistics conservation: however activity is sliced into the
    /// buckets, the total equals the sum of the parts and the overhead
    /// fraction stays within [0, 1].
    #[test]
    fn stats_conservation(
        spans in prop::collection::vec((0u64..10_000, 0u8..5), 1..100),
    ) {
        let mut stats = NodeStats::new(NodeId(0), ClusterId(0), SimTime::ZERO);
        let mut expected_total = 0u64;
        let mut now = SimTime::ZERO;
        for (len, kind) in spans {
            let d = SimDuration::from_micros(len);
            match kind {
                0 => stats.add_busy(d),
                1 => stats.add_idle(d),
                2 => stats.add_comm(d, true),
                3 => stats.add_comm(d, false),
                _ => stats.add_benchmark(d),
            }
            expected_total += len;
            now += d;
        }
        let report = stats.take_report(now, 1.0);
        prop_assert_eq!(report.breakdown.total(), SimDuration::from_micros(expected_total));
        let ovh = report.overhead_fraction();
        prop_assert!((0.0..=1.0).contains(&ovh));
        prop_assert!(report.ic_overhead_fraction() <= ovh + 1e-12);
    }

    /// Overhead breakdown merge is associative with totals.
    #[test]
    fn breakdown_merge_adds_totals(
        a in (0u64..1_000, 0u64..1_000, 0u64..1_000, 0u64..1_000, 0u64..1_000),
        b in (0u64..1_000, 0u64..1_000, 0u64..1_000, 0u64..1_000, 0u64..1_000),
    ) {
        let mk = |(busy, idle, intra, inter, bench): (u64, u64, u64, u64, u64)| OverheadBreakdown {
            busy: SimDuration(busy),
            idle: SimDuration(idle),
            intra_comm: SimDuration(intra),
            inter_comm: SimDuration(inter),
            benchmark: SimDuration(bench),
        };
        let (x, y) = (mk(a), mk(b));
        let mut merged = x;
        merged.merge(&y);
        prop_assert_eq!(merged.total(), x.total() + y.total());
    }

    /// Network deliveries never go backwards in time, and bigger messages
    /// never arrive earlier than smaller ones sent at the same instant on
    /// the same path.
    #[test]
    fn network_delivery_is_causal_and_monotone(
        bytes_small in 1u64..10_000,
        extra in 1u64..1_000_000,
        from in 0u16..3,
        to in 0u16..3,
    ) {
        use sagrid::simnet::Network;
        let mut net = Network::new(&sagrid::core::config::GridConfig::uniform(3, 4));
        let now = SimTime::from_secs(1);
        // Send the *large* message through a fresh network so queueing from
        // the first send cannot help it.
        let mut net2 = net.clone();
        let small = net.deliver(now, ClusterId(from), ClusterId(to), bytes_small);
        let large = net2.deliver(now, ClusterId(from), ClusterId(to), bytes_small + extra);
        prop_assert!(small.arrives_at > now);
        prop_assert!(large.arrives_at >= small.arrives_at);
        prop_assert!(small.src_clear_at <= small.arrives_at || from == to);
    }
}
