//! Property tests for the core foundation types.

use proptest::prelude::*;
use sagrid_core::rng::{Rng64, SplitMix64, Xoshiro256StarStar};
use sagrid_core::time::{SimDuration, SimTime};
use sagrid_core::workload::{barnes_hut_profile, TreeShape, BH_TARGET_EFFICIENCY};

proptest! {
    /// Time arithmetic: `(t + a) + b == (t + b) + a` and subtraction
    /// round-trips, within the saturating domain.
    #[test]
    fn time_addition_commutes(t in 0u64..1u64 << 40, a in 0u64..1u64 << 30, b in 0u64..1u64 << 30) {
        let t = SimTime(t);
        let (a, b) = (SimDuration(a), SimDuration(b));
        prop_assert_eq!((t + a) + b, (t + b) + a);
        prop_assert_eq!((t + a) - t, a);
        prop_assert_eq!(t.saturating_since(t + a), SimDuration::ZERO);
    }

    /// Duration scaling: `mul_f64` is monotone in the factor and never
    /// panics on pathological input.
    #[test]
    fn duration_scaling_is_monotone(d in 0u64..1u64 << 40, f1 in 0.0f64..10.0, f2 in 0.0f64..10.0) {
        let d = SimDuration(d);
        let (lo, hi) = if f1 <= f2 { (f1, f2) } else { (f2, f1) };
        prop_assert!(d.mul_f64(lo) <= d.mul_f64(hi));
        let _ = d.mul_f64(f64::NAN);
        let _ = d.mul_f64(f64::INFINITY);
    }

    /// `fraction_of` stays within [0, 1] whenever numerator ≤ denominator.
    #[test]
    fn fraction_is_bounded(num in 0u64..1u64 << 40, extra in 0u64..1u64 << 40) {
        let n = SimDuration(num);
        let d = SimDuration(num.saturating_add(extra).max(1));
        let f = n.fraction_of(d);
        prop_assert!((0.0..=1.0).contains(&f));
    }

    /// Derived RNG streams with different tags produce different output;
    /// the same tag reproduces the same stream.
    #[test]
    fn derived_streams_are_stable_and_distinct(seed in any::<u64>(), t1 in any::<u64>(), t2 in any::<u64>()) {
        let root = Xoshiro256StarStar::seeded(seed);
        let mut a1 = root.derive(t1);
        let mut a2 = root.derive(t1);
        let xs1: Vec<u64> = (0..4).map(|_| a1.next_u64()).collect();
        let xs2: Vec<u64> = (0..4).map(|_| a2.next_u64()).collect();
        prop_assert_eq!(&xs1, &xs2, "same tag must reproduce");
        if t1 != t2 {
            let mut b = root.derive(t2);
            let ys: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
            prop_assert_ne!(xs1, ys, "different tags must differ");
        }
    }

    /// SplitMix64 is a bijection-ish mixer: nearby seeds produce unrelated
    /// first outputs (no fixed offsets leak through).
    #[test]
    fn splitmix_nearby_seeds_diverge(seed in any::<u64>()) {
        let a = SplitMix64::new(seed).next_u64();
        let b = SplitMix64::new(seed.wrapping_add(1)).next_u64();
        prop_assert_ne!(a, b);
    }

    /// The Barnes-Hut profile calibration invariant holds for arbitrary
    /// target sizes: per-iteration work ≈ nodes × iter_secs × efficiency,
    /// and every iteration tree is well formed.
    #[test]
    fn bh_profile_calibrates_for_any_target(nodes in 2usize..64, iter_secs in 2.0f64..30.0, seed in any::<u64>()) {
        let w = barnes_hut_profile(2, nodes, iter_secs, seed);
        let target = nodes as f64 * iter_secs * BH_TARGET_EFFICIENCY;
        for t in &w.iterations {
            let total = t.total_work().as_secs_f64();
            prop_assert!((total - target).abs() / target < 0.02, "total {total} target {target}");
            prop_assert!(t.critical_path() <= t.total_work());
            // Payloads scale with subtrees: root carries the largest.
            let root_payload = t.node(0).payload_bytes;
            for i in 1..t.len() {
                prop_assert!(t.node(i).payload_bytes <= root_payload);
            }
        }
    }

    /// Tree generation with min == max branch gives the exact arity.
    #[test]
    fn fixed_branch_trees_have_exact_arity(branch in 1u32..5, depth in 1u32..5) {
        let shape = TreeShape {
            depth,
            min_branch: branch,
            max_branch: branch,
            ..TreeShape::small()
        };
        let mut rng = Xoshiro256StarStar::seeded(1);
        let t = shape.generate(&mut rng);
        let mut expected = 0u64;
        let mut level = 1u64;
        for _ in 0..=depth {
            expected += level;
            level *= u64::from(branch);
        }
        prop_assert_eq!(t.len() as u64, expected);
    }
}
