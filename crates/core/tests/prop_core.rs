//! Randomized property tests for the core foundation types, driven by the
//! in-repo fixed-seed RNG so every case is reproducible offline.

use sagrid_core::rng::{Rng64, SplitMix64, Xoshiro256StarStar};
use sagrid_core::time::{SimDuration, SimTime};
use sagrid_core::workload::{barnes_hut_profile, TreeShape, BH_TARGET_EFFICIENCY};

const CASES: u64 = 200;

fn rng_for(test: u64, case: u64) -> Xoshiro256StarStar {
    Xoshiro256StarStar::seeded(0xC04E_0000 + test * 1_000 + case)
}

/// Time arithmetic: `(t + a) + b == (t + b) + a` and subtraction
/// round-trips, within the saturating domain.
#[test]
fn time_addition_commutes() {
    for case in 0..CASES {
        let mut rng = rng_for(1, case);
        let t = SimTime(rng.gen_range(1 << 40));
        let a = SimDuration(rng.gen_range(1 << 30));
        let b = SimDuration(rng.gen_range(1 << 30));
        assert_eq!((t + a) + b, (t + b) + a, "case {case}");
        assert_eq!((t + a) - t, a, "case {case}");
        assert_eq!(t.saturating_since(t + a), SimDuration::ZERO, "case {case}");
    }
}

/// Duration scaling: `mul_f64` is monotone in the factor and never panics
/// on pathological input.
#[test]
fn duration_scaling_is_monotone() {
    for case in 0..CASES {
        let mut rng = rng_for(2, case);
        let d = SimDuration(rng.gen_range(1 << 40));
        let f1 = 10.0 * rng.gen_f64();
        let f2 = 10.0 * rng.gen_f64();
        let (lo, hi) = if f1 <= f2 { (f1, f2) } else { (f2, f1) };
        assert!(d.mul_f64(lo) <= d.mul_f64(hi), "case {case}");
        let _ = d.mul_f64(f64::NAN);
        let _ = d.mul_f64(f64::INFINITY);
    }
}

/// `fraction_of` stays within [0, 1] whenever numerator ≤ denominator.
#[test]
fn fraction_is_bounded() {
    for case in 0..CASES {
        let mut rng = rng_for(3, case);
        let num = rng.gen_range(1 << 40);
        let extra = rng.gen_range(1 << 40);
        let n = SimDuration(num);
        let d = SimDuration(num.saturating_add(extra).max(1));
        let f = n.fraction_of(d);
        assert!((0.0..=1.0).contains(&f), "case {case}: {f}");
    }
}

/// Derived RNG streams with different tags produce different output; the
/// same tag reproduces the same stream.
#[test]
fn derived_streams_are_stable_and_distinct() {
    for case in 0..CASES {
        let mut rng = rng_for(4, case);
        let seed = rng.next_u64();
        let t1 = rng.next_u64();
        let t2 = rng.next_u64();
        let root = Xoshiro256StarStar::seeded(seed);
        let mut a1 = root.derive(t1);
        let mut a2 = root.derive(t1);
        let xs1: Vec<u64> = (0..4).map(|_| a1.next_u64()).collect();
        let xs2: Vec<u64> = (0..4).map(|_| a2.next_u64()).collect();
        assert_eq!(xs1, xs2, "case {case}: same tag must reproduce");
        if t1 != t2 {
            let mut b = root.derive(t2);
            let ys: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
            assert_ne!(xs1, ys, "case {case}: different tags must differ");
        }
    }
}

/// SplitMix64 is a bijection-ish mixer: nearby seeds produce unrelated
/// first outputs (no fixed offsets leak through).
#[test]
fn splitmix_nearby_seeds_diverge() {
    for case in 0..CASES {
        let mut rng = rng_for(5, case);
        let seed = rng.next_u64();
        let a = SplitMix64::new(seed).next_u64();
        let b = SplitMix64::new(seed.wrapping_add(1)).next_u64();
        assert_ne!(a, b, "case {case}");
    }
}

/// The Barnes-Hut profile calibration invariant holds for arbitrary target
/// sizes: per-iteration work ≈ nodes × iter_secs × efficiency, and every
/// iteration tree is well formed.
#[test]
fn bh_profile_calibrates_for_any_target() {
    // Heavier cases: fewer of them.
    for case in 0..30 {
        let mut rng = rng_for(6, case);
        let nodes = 2 + rng.gen_index(62);
        let iter_secs = 2.0 + 28.0 * rng.gen_f64();
        let seed = rng.next_u64();
        let w = barnes_hut_profile(2, nodes, iter_secs, seed);
        let target = nodes as f64 * iter_secs * BH_TARGET_EFFICIENCY;
        for t in &w.iterations {
            let total = t.total_work().as_secs_f64();
            assert!(
                (total - target).abs() / target < 0.02,
                "case {case}: total {total} target {target}"
            );
            assert!(t.critical_path() <= t.total_work(), "case {case}");
            // Payloads scale with subtrees: root carries the largest.
            let root_payload = t.node(0).payload_bytes;
            for i in 1..t.len() {
                assert!(t.node(i).payload_bytes <= root_payload, "case {case}");
            }
        }
    }
}

/// Tree generation with min == max branch gives the exact arity.
#[test]
fn fixed_branch_trees_have_exact_arity() {
    for branch in 1u32..5 {
        for depth in 1u32..5 {
            let shape = TreeShape {
                depth,
                min_branch: branch,
                max_branch: branch,
                ..TreeShape::small()
            };
            let mut rng = Xoshiro256StarStar::seeded(1);
            let t = shape.generate(&mut rng);
            let mut expected = 0u64;
            let mut level = 1u64;
            for _ in 0..=depth {
                expected += level;
                level *= u64::from(branch);
            }
            assert_eq!(t.len() as u64, expected, "branch {branch} depth {depth}");
        }
    }
}
