//! Grid topology configuration.
//!
//! Describes sites (clusters), their node counts and speeds, intra-cluster
//! links, and the shared wide-area backbone — enough to instantiate both the
//! discrete-event emulation and the threaded runtime's virtual network.
//!
//! [`GridConfig::das2`] reproduces the DAS-2 system the paper evaluated on:
//! five clusters at five Dutch universities (one of 72 nodes, four of 32),
//! dual 1 GHz Pentium-III nodes, Fast Ethernet LANs, connected by the Dutch
//! university internet backbone.

use crate::ids::ClusterId;
use crate::time::SimDuration;

/// Network link parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkSpec {
    /// One-way latency.
    pub latency: SimDuration,
    /// Bandwidth in bytes per second.
    pub bandwidth_bps: f64,
}

impl LinkSpec {
    /// A Fast-Ethernet-class LAN link: 100 µs one-way latency, 100 Mbit/s.
    pub fn lan() -> Self {
        Self {
            latency: SimDuration::from_micros(100),
            bandwidth_bps: 100e6 / 8.0,
        }
    }

    /// A university-backbone-class WAN link: 2 ms one-way latency, 1 Gbit/s
    /// shared.
    pub fn wan() -> Self {
        Self {
            latency: SimDuration::from_millis(2),
            bandwidth_bps: 1e9 / 8.0,
        }
    }

    /// Transfer time for `bytes` over this link, excluding queueing.
    pub fn transfer_time(&self, bytes: u64) -> SimDuration {
        let secs = bytes as f64 / self.bandwidth_bps;
        self.latency + SimDuration::from_secs_f64(secs)
    }
}

/// One site: a cluster or supercomputer.
#[derive(Clone, Debug, PartialEq)]
pub struct ClusterSpec {
    /// Human-readable site name (e.g. "VU", "Leiden").
    pub name: String,
    /// Number of compute nodes at the site.
    pub nodes: usize,
    /// Baseline relative speed of this site's nodes, in `(0, 1]`.
    /// The paper's DAS-2 clusters are homogeneous (all 1.0); heterogeneous
    /// scenarios lower this or inject load at runtime.
    pub node_speed: f64,
    /// Intra-cluster (LAN) link.
    pub lan: LinkSpec,
    /// The site's uplink to the WAN backbone. Scenario 4/5 traffic shaping
    /// reduces `uplink.bandwidth_bps` at runtime.
    pub uplink: LinkSpec,
}

impl ClusterSpec {
    /// A DAS-2-style cluster with `nodes` nodes.
    pub fn das2(name: &str, nodes: usize) -> Self {
        Self {
            name: name.to_string(),
            nodes,
            node_speed: 1.0,
            lan: LinkSpec::lan(),
            uplink: LinkSpec::wan(),
        }
    }
}

/// A whole grid: a set of sites joined by a WAN backbone.
#[derive(Clone, Debug, PartialEq)]
pub struct GridConfig {
    /// The sites.
    pub clusters: Vec<ClusterSpec>,
    /// Backbone latency added to every inter-site message on top of the two
    /// uplink latencies.
    pub backbone_latency: SimDuration,
}

impl GridConfig {
    /// The DAS-2 wide-area system (paper §5): five clusters, one of 72
    /// nodes, four of 32 nodes.
    pub fn das2() -> Self {
        Self {
            clusters: vec![
                ClusterSpec::das2("VU", 72),
                ClusterSpec::das2("Leiden", 32),
                ClusterSpec::das2("NIKHEF", 32),
                ClusterSpec::das2("Delft", 32),
                ClusterSpec::das2("Utrecht", 32),
            ],
            backbone_latency: SimDuration::from_millis(1),
        }
    }

    /// A small uniform grid for tests and examples: `n_clusters` sites of
    /// `nodes_each` nodes.
    pub fn uniform(n_clusters: usize, nodes_each: usize) -> Self {
        Self {
            clusters: (0..n_clusters)
                .map(|i| ClusterSpec::das2(&format!("site{i}"), nodes_each))
                .collect(),
            backbone_latency: SimDuration::from_millis(1),
        }
    }

    /// Total node count across all sites.
    pub fn total_nodes(&self) -> usize {
        self.clusters.iter().map(|c| c.nodes).sum()
    }

    /// Number of sites.
    pub fn n_clusters(&self) -> usize {
        self.clusters.len()
    }

    /// Cluster ids, in declaration order.
    pub fn cluster_ids(&self) -> impl Iterator<Item = ClusterId> + '_ {
        (0..self.clusters.len() as u16).map(ClusterId)
    }

    /// One-way latency between two sites (uplink + backbone + downlink), or
    /// the LAN latency when `a == b`.
    pub fn latency_between(&self, a: ClusterId, b: ClusterId) -> SimDuration {
        if a == b {
            self.clusters[a.index()].lan.latency
        } else {
            self.clusters[a.index()].uplink.latency
                + self.backbone_latency
                + self.clusters[b.index()].uplink.latency
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn das2_matches_paper_description() {
        let g = GridConfig::das2();
        assert_eq!(g.n_clusters(), 5);
        assert_eq!(g.total_nodes(), 72 + 4 * 32);
        assert_eq!(g.clusters[0].nodes, 72);
        for c in &g.clusters[1..] {
            assert_eq!(c.nodes, 32);
        }
    }

    #[test]
    fn lan_is_faster_than_wan() {
        let lan = LinkSpec::lan();
        let wan = LinkSpec::wan();
        assert!(lan.latency < wan.latency);
        // WAN backbone has more raw bandwidth but higher latency — the
        // paper's model is latency-dominated for small steal messages.
        assert!(lan.transfer_time(64) < wan.transfer_time(64));
    }

    #[test]
    fn transfer_time_scales_with_size() {
        let l = LinkSpec {
            latency: SimDuration::ZERO,
            bandwidth_bps: 1_000_000.0,
        };
        assert_eq!(l.transfer_time(1_000_000), SimDuration::from_secs(1));
        assert_eq!(l.transfer_time(500_000), SimDuration::from_millis(500));
    }

    #[test]
    fn latency_between_is_symmetric_for_uniform_grids() {
        let g = GridConfig::uniform(3, 4);
        let (a, b) = (ClusterId(0), ClusterId(2));
        assert_eq!(g.latency_between(a, b), g.latency_between(b, a));
        assert!(g.latency_between(a, a) < g.latency_between(a, b));
    }

    #[test]
    fn uniform_grid_shape() {
        let g = GridConfig::uniform(4, 8);
        assert_eq!(g.total_nodes(), 32);
        assert_eq!(g.cluster_ids().count(), 4);
    }
}
