//! # sagrid-core
//!
//! Shared foundation types for the `sagrid` workspace — a Rust reproduction of
//! *"Self-adaptive applications on the grid"* (Wrzesinska, Maassen, Bal,
//! PPoPP 2007).
//!
//! This crate is dependency-free and engine-agnostic. It provides:
//!
//! * [`ids`] — strongly-typed identifiers for nodes, clusters and tasks;
//! * [`time`] — a microsecond-resolution virtual time ([`time::SimTime`])
//!   shared by the discrete-event engine and by statistics records;
//! * [`rng`] — deterministic, seedable random number generators
//!   (SplitMix64 and xoshiro256\*\*) so that every simulated experiment is
//!   exactly reproducible across platforms;
//! * [`stats`] — the raw per-node statistics stream the adaptation
//!   coordinator consumes (idle / intra-cluster / inter-cluster overhead,
//!   measured relative speed);
//! * [`config`] — grid topology descriptions, including the DAS-2 system the
//!   paper evaluated on;
//! * [`json`] — hand-rolled JSON writing/parsing shared by the metrics
//!   sink, the provenance serialisation and the wire protocol;
//! * [`metrics`] — a dependency-free registry of named atomic counters,
//!   gauges and fixed-bucket histograms plus a structured JSONL event
//!   sink, zero-cost when disabled;
//! * [`workload`] — the irregular divide-and-conquer task-tree model used by
//!   the simulated runtime, with generators for Barnes-Hut-like iterative
//!   workloads.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod config;
pub mod ids;
pub mod json;
pub mod metrics;
pub mod rng;
pub mod stats;
pub mod time;
pub mod workload;

pub use config::{ClusterSpec, GridConfig, LinkSpec};
pub use ids::{ClusterId, NodeId, TaskId};
pub use metrics::{MetricEvent, Metrics, MetricsReport};
pub use rng::{Rng64, SplitMix64, Xoshiro256StarStar};
pub use stats::{MonitoringReport, NodeStats, OverheadBreakdown};
pub use time::{SimDuration, SimTime};
pub use workload::{barnes_hut_profile, IterativeWorkload, TaskNode, TaskTree, TreeShape};
