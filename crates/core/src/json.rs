//! Hand-rolled JSON reading and writing shared by every layer that
//! serialises structured records (no external crates available).
//!
//! One implementation serves the metrics sink ([`crate::metrics`]), the
//! decision-provenance serialisation in `sagrid-simgrid`, the wire-level
//! control plane in `sagrid-net` and the `validate_metrics` checker. The
//! writer emits deterministic output (Rust's shortest-roundtrip float
//! formatting), and the parser accepts exactly what the writer produces
//! plus ordinary standard JSON.

use std::fmt::Write as _;

/// Appends `v` to `out` as a JSON number; non-finite values become `null`
/// (JSON has no NaN/Inf).
pub fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // Rust's shortest-roundtrip Display is deterministic and
        // re-parses to the identical f64.
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

/// Appends `s` to `out` as a JSON string literal, escaping quotes,
/// backslashes and control characters.
pub fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Serialises an iterator of integers as a JSON array, e.g. `[1,2,3]`.
/// Used for id lists (node ids, cluster ids) in provenance records.
pub fn u64_array(items: impl Iterator<Item = u64>) -> String {
    let mut out = String::from("[");
    for (i, v) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{v}");
    }
    out.push(']');
    out
}

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, preserving key order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Looks up `key` in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The number as `u64`, if this is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(v) if *v >= 0.0 && v.fract() == 0.0 => Some(*v as u64),
            _ => None,
        }
    }

    /// The string slice, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The bool, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array slice, if this is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parses a single JSON document. Errors carry a byte offset and a short
/// description.
pub fn parse_json(input: &str) -> Result<JsonValue, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(JsonValue::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", JsonValue::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    lit: &str,
    value: JsonValue,
) -> Result<JsonValue, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| "bad utf8".to_string())?;
    text.parse::<f64>()
        .map(JsonValue::Num)
        .map_err(|_| format!("invalid number {text:?} at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Advance one whole UTF-8 scalar.
                let s = std::str::from_utf8(&bytes[*pos..]).map_err(|_| "bad utf8")?;
                let c = s.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    *pos += 1; // consume '{'
    let mut pairs = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Obj(pairs));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}"));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}"));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        pairs.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Obj(pairs));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    *pos += 1; // consume '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Arr(items));
    }
    loop {
        let value = parse_value(bytes, pos)?;
        items.push(value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "{\"a\" 1}",
            "\"unterminated",
            "tru",
            "01x",
            "{} trailing",
        ] {
            assert!(parse_json(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn parser_accepts_nested_structures() {
        let v =
            parse_json("{\"a\":[1,2.5,null,true,{\"b\":\"c\\nd\"}],\"n\":-3e2, \"u\":\"\\u0041\"}")
                .unwrap();
        let arr = v.get("a").and_then(JsonValue::as_arr).unwrap();
        assert_eq!(arr.len(), 5);
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_f64(), Some(2.5));
        assert_eq!(arr[2], JsonValue::Null);
        assert_eq!(arr[4].get("b").and_then(JsonValue::as_str), Some("c\nd"));
        assert_eq!(v.get("n").and_then(JsonValue::as_f64), Some(-300.0));
        assert_eq!(v.get("u").and_then(JsonValue::as_str), Some("A"));
    }

    #[test]
    fn string_escapes_round_trip() {
        let nasty = "quote\" back\\slash \n\r\t ctrl\u{1} unicode π";
        let mut out = String::new();
        write_json_string(&mut out, nasty);
        let back = parse_json(&out).unwrap();
        assert_eq!(back.as_str(), Some(nasty));
    }

    #[test]
    fn floats_round_trip_and_nonfinite_become_null() {
        for v in [0.0, -1.5, 0.1 + 0.2, 1e300, f64::MIN_POSITIVE] {
            let mut out = String::new();
            write_f64(&mut out, v);
            assert_eq!(parse_json(&out).unwrap().as_f64(), Some(v));
        }
        let mut out = String::new();
        write_f64(&mut out, f64::NAN);
        assert_eq!(out, "null");
    }

    #[test]
    fn u64_array_formats_id_lists() {
        assert_eq!(u64_array([].into_iter()), "[]");
        assert_eq!(u64_array([7u64, 3, 11].into_iter()), "[7,3,11]");
        let parsed = parse_json(&u64_array([1u64, 2].into_iter())).unwrap();
        assert_eq!(parsed.as_arr().unwrap().len(), 2);
    }
}
