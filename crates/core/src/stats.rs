//! Per-node statistics — the raw material of adaptation.
//!
//! Section 3.2 of the paper: each processor measures, per *monitoring
//! period*, the time it spends being idle and communicating (split into
//! intra-cluster and inter-cluster), plus its relative speed as measured by
//! an application-specific benchmark. At the end of each period the node
//! sends a [`MonitoringReport`] to the adaptation coordinator.
//!
//! The central invariant (property-tested in both engines) is
//! **conservation**: for every node and every monitoring period,
//! `busy + idle + intra_comm + inter_comm + benchmark == period length`.

use crate::ids::{ClusterId, NodeId};
use crate::time::{SimDuration, SimTime};

/// How a node spent one monitoring period, as wall-clock (virtual) durations.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OverheadBreakdown {
    /// Time spent doing useful application work.
    pub busy: SimDuration,
    /// Time spent idle (no work available, waiting on steals to complete).
    pub idle: SimDuration,
    /// Time spent communicating with nodes in the *same* cluster.
    pub intra_comm: SimDuration,
    /// Time spent communicating with nodes in *other* clusters.
    pub inter_comm: SimDuration,
    /// Time spent running the speed benchmark (pure overhead).
    pub benchmark: SimDuration,
}

impl OverheadBreakdown {
    /// Total accounted time. Should equal the monitoring period length.
    pub fn total(&self) -> SimDuration {
        self.busy + self.idle + self.intra_comm + self.inter_comm + self.benchmark
    }

    /// Overhead fraction as defined in the paper's efficiency formula:
    /// the fraction of time the processor spends being idle or communicating
    /// (benchmarking counts as overhead too — it is not useful work).
    pub fn overhead_fraction(&self) -> f64 {
        let total = self.total();
        (self.idle + self.intra_comm + self.inter_comm + self.benchmark).fraction_of(total)
    }

    /// Inter-cluster communication overhead fraction (`ic_overhead` in the
    /// badness formulas). Idle time while waiting on a *wide-area* steal is
    /// accounted by the engines into `inter_comm`, matching the paper's
    /// observation that an overloaded uplink manifests as inter-cluster
    /// overhead.
    pub fn ic_overhead_fraction(&self) -> f64 {
        self.inter_comm.fraction_of(self.total())
    }

    /// Merges another breakdown into this one (component-wise sum).
    pub fn merge(&mut self, other: &OverheadBreakdown) {
        self.busy += other.busy;
        self.idle += other.idle;
        self.intra_comm += other.intra_comm;
        self.inter_comm += other.inter_comm;
        self.benchmark += other.benchmark;
    }
}

/// One node's end-of-period report to the adaptation coordinator.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MonitoringReport {
    /// Reporting node.
    pub node: NodeId,
    /// The cluster the node belongs to.
    pub cluster: ClusterId,
    /// Virtual time at which the period ended (coordinator-side bookkeeping;
    /// clocks are *not* assumed synchronized, see paper §3.2).
    pub period_end: SimTime,
    /// Time accounting for the period.
    pub breakdown: OverheadBreakdown,
    /// Relative speed in `(0, 1]`: fastest benchmark time divided by this
    /// node's benchmark time. `1.0` for the fastest node.
    pub speed: f64,
}

impl MonitoringReport {
    /// Overhead fraction for this period (see [`OverheadBreakdown`]).
    pub fn overhead_fraction(&self) -> f64 {
        self.breakdown.overhead_fraction()
    }

    /// Inter-cluster overhead fraction for this period.
    pub fn ic_overhead_fraction(&self) -> f64 {
        self.breakdown.ic_overhead_fraction()
    }
}

/// Rolling per-node statistics as maintained *on the node* between reports.
///
/// Engines call the `add_*` methods as activity happens, then
/// [`NodeStats::take_report`] at period end, which resets the accumulator —
/// mirroring how the Satin runtime system was instrumented (paper §4).
#[derive(Clone, Debug)]
pub struct NodeStats {
    node: NodeId,
    cluster: ClusterId,
    current: OverheadBreakdown,
    period_start: SimTime,
    /// Most recent benchmark duration, if any (engine converts to speed).
    pub last_benchmark: Option<SimDuration>,
}

impl NodeStats {
    /// Creates an empty accumulator for `node` in `cluster`, with the first
    /// period starting at `now`.
    pub fn new(node: NodeId, cluster: ClusterId, now: SimTime) -> Self {
        Self {
            node,
            cluster,
            current: OverheadBreakdown::default(),
            period_start: now,
            last_benchmark: None,
        }
    }

    /// The node this accumulator belongs to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The cluster this accumulator's node belongs to.
    pub fn cluster(&self) -> ClusterId {
        self.cluster
    }

    /// Start of the current period.
    pub fn period_start(&self) -> SimTime {
        self.period_start
    }

    /// Records useful work time.
    pub fn add_busy(&mut self, d: SimDuration) {
        self.current.busy += d;
    }

    /// Records idle time.
    pub fn add_idle(&mut self, d: SimDuration) {
        self.current.idle += d;
    }

    /// Records communication time with a peer; `same_cluster` selects the
    /// intra- vs. inter-cluster bucket.
    pub fn add_comm(&mut self, d: SimDuration, same_cluster: bool) {
        if same_cluster {
            self.current.intra_comm += d;
        } else {
            self.current.inter_comm += d;
        }
    }

    /// Records benchmark (speed-probe) time.
    pub fn add_benchmark(&mut self, d: SimDuration) {
        self.current.benchmark += d;
    }

    /// Peeks at the breakdown accumulated so far in the current period.
    pub fn current(&self) -> &OverheadBreakdown {
        &self.current
    }

    /// Closes the period at `now`, producing a report with the given relative
    /// `speed`, and starts a fresh period.
    pub fn take_report(&mut self, now: SimTime, speed: f64) -> MonitoringReport {
        let breakdown = std::mem::take(&mut self.current);
        self.period_start = now;
        MonitoringReport {
            node: self.node,
            cluster: self.cluster,
            period_end: now,
            breakdown,
            speed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bd(busy: u64, idle: u64, intra: u64, inter: u64, bench: u64) -> OverheadBreakdown {
        OverheadBreakdown {
            busy: SimDuration(busy),
            idle: SimDuration(idle),
            intra_comm: SimDuration(intra),
            inter_comm: SimDuration(inter),
            benchmark: SimDuration(bench),
        }
    }

    #[test]
    fn overhead_fraction_counts_everything_but_busy() {
        let b = bd(50, 20, 10, 15, 5);
        assert_eq!(b.total(), SimDuration(100));
        assert!((b.overhead_fraction() - 0.5).abs() < 1e-12);
        assert!((b.ic_overhead_fraction() - 0.15).abs() < 1e-12);
    }

    #[test]
    fn empty_breakdown_has_zero_overhead() {
        let b = OverheadBreakdown::default();
        assert_eq!(b.overhead_fraction(), 0.0);
        assert_eq!(b.ic_overhead_fraction(), 0.0);
    }

    #[test]
    fn merge_is_componentwise() {
        let mut a = bd(1, 2, 3, 4, 5);
        a.merge(&bd(10, 20, 30, 40, 50));
        assert_eq!(a, bd(11, 22, 33, 44, 55));
    }

    #[test]
    fn node_stats_accumulates_and_resets() {
        let mut s = NodeStats::new(NodeId(3), ClusterId(1), SimTime::from_secs(0));
        s.add_busy(SimDuration(70));
        s.add_idle(SimDuration(10));
        s.add_comm(SimDuration(5), true);
        s.add_comm(SimDuration(10), false);
        s.add_benchmark(SimDuration(5));
        let r = s.take_report(SimTime(100), 0.8);
        assert_eq!(r.node, NodeId(3));
        assert_eq!(r.cluster, ClusterId(1));
        assert_eq!(r.breakdown.total(), SimDuration(100));
        assert!((r.overhead_fraction() - 0.3).abs() < 1e-12);
        assert!((r.ic_overhead_fraction() - 0.1).abs() < 1e-12);
        assert_eq!(r.speed, 0.8);
        // Accumulator reset for the next period.
        assert_eq!(s.current().total(), SimDuration::ZERO);
        assert_eq!(s.period_start(), SimTime(100));
    }
}
