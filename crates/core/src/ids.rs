//! Strongly-typed identifiers.
//!
//! The paper's system juggles three kinds of entities: *processors* (compute
//! nodes), *sites* (clusters or supercomputers) and *tasks* (divide-and-conquer
//! jobs). Newtype wrappers prevent the classic off-by-one-index-space bugs when
//! the adaptation coordinator ranks nodes by badness and the scheduler hands
//! out grants.

use std::fmt;

/// Identifier of a compute node (a processor in the paper's terminology).
///
/// Node ids are globally unique across the whole grid and are never reused,
/// even after a node crashes or leaves — this is what lets the registry and
/// the blacklist distinguish "the node came back" from "a different node in
/// the same slot joined".
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub u32);

/// Identifier of a site: a cluster or supercomputer connected to the WAN.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ClusterId(pub u16);

/// Identifier of a divide-and-conquer task instance.
///
/// Task ids are unique per run; the fault-tolerance layer uses them to match
/// re-executed tasks to their original spawn records.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TaskId(pub u64);

impl NodeId {
    /// Returns the raw index, for dense per-node arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl ClusterId {
    /// Returns the raw index, for dense per-cluster arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for ClusterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Monotonic generator for [`NodeId`]s.
///
/// Both the scheduler (when granting fresh nodes) and test fixtures need an
/// id fountain; keeping it here avoids two subtly different implementations.
#[derive(Debug, Default, Clone)]
pub struct NodeIdGen {
    next: u32,
}

impl NodeIdGen {
    /// Creates a generator starting at id 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a generator whose first id is `start`.
    pub fn starting_at(start: u32) -> Self {
        Self { next: start }
    }

    /// Returns a fresh, never-before-issued id.
    pub fn next_id(&mut self) -> NodeId {
        let id = NodeId(self.next);
        self.next = self
            .next
            .checked_add(1)
            .expect("node id space exhausted (2^32 nodes)");
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_ids_are_ordered_and_displayable() {
        assert!(NodeId(1) < NodeId(2));
        assert_eq!(NodeId(7).to_string(), "n7");
        assert_eq!(ClusterId(3).to_string(), "c3");
        assert_eq!(TaskId(42).to_string(), "t42");
    }

    #[test]
    fn id_gen_is_monotonic_and_unique() {
        let mut gen = NodeIdGen::new();
        let a = gen.next_id();
        let b = gen.next_id();
        let c = gen.next_id();
        assert_eq!(a, NodeId(0));
        assert_eq!(b, NodeId(1));
        assert_eq!(c, NodeId(2));
    }

    #[test]
    fn id_gen_starting_at_offsets() {
        let mut gen = NodeIdGen::starting_at(100);
        assert_eq!(gen.next_id(), NodeId(100));
        assert_eq!(gen.next_id(), NodeId(101));
    }

    #[test]
    fn index_round_trips() {
        assert_eq!(NodeId(9).index(), 9);
        assert_eq!(ClusterId(4).index(), 4);
    }
}
