//! Irregular divide-and-conquer workload model.
//!
//! The paper's applications are Satin divide-and-conquer programs whose task
//! sizes "can vary by many orders of magnitude" (§3.2). For the
//! discrete-event engine we represent one parallel phase as an explicit
//! **task tree**: executing a task costs `work` time (at relative speed 1.0),
//! then spawns its children into the executing node's work queue; a stolen
//! task drags `payload` bytes across the network (plus a result message on
//! completion).
//!
//! The tree is stored as a flat arena in BFS order with contiguous child
//! ranges — no per-node allocation, cache-friendly traversal (see the Rust
//! Performance Book's guidance on avoiding pointer-chasing structures).
//!
//! Two generators are provided:
//!
//! * [`TreeShape::generate`] — parameterized irregular trees (log-uniform
//!   leaf work) for synthetic experiments and property tests;
//! * [`barnes_hut_profile`] — a Barnes-Hut-shaped iterative workload: octree
//!   fan-out, leaf work matching a θ-criterion force computation, and a
//!   per-iteration barrier, calibrated so a given node count reaches a target
//!   iteration duration (used by every figure-reproducing scenario).

use crate::rng::{Rng64, Xoshiro256StarStar};
use crate::time::SimDuration;

/// One task in a [`TaskTree`] arena.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TaskNode {
    /// Compute time of this task itself at relative speed 1.0 (the "divide"
    /// work for inner nodes, the leaf computation for leaves).
    pub work: SimDuration,
    /// Bytes that must cross the network when this task is stolen.
    pub payload_bytes: u64,
    /// Index of the first child in the arena (children are contiguous).
    pub children_start: u32,
    /// Number of children.
    pub children_len: u32,
}

impl TaskNode {
    /// Whether this task spawns no children.
    pub fn is_leaf(&self) -> bool {
        self.children_len == 0
    }
}

/// A divide-and-conquer task tree stored as a flat BFS arena.
///
/// Index 0 is the root. Children of any node occupy a contiguous index range,
/// so the whole tree is three `Vec`s worth of memory and iteration order is
/// deterministic.
#[derive(Clone, Debug, Default)]
pub struct TaskTree {
    nodes: Vec<TaskNode>,
}

impl TaskTree {
    /// Wraps an arena. Panics if any child range is out of bounds or a child
    /// index does not point strictly forward (which would create a cycle).
    pub fn from_nodes(nodes: Vec<TaskNode>) -> Self {
        for (i, n) in nodes.iter().enumerate() {
            let start = n.children_start as usize;
            let end = start + n.children_len as usize;
            assert!(end <= nodes.len(), "child range of task {i} out of bounds");
            assert!(
                n.children_len == 0 || start > i,
                "task {i} has non-forward child range (cycle)"
            );
        }
        Self { nodes }
    }

    /// Number of tasks in the tree (0 for an empty tree).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree has no tasks at all.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The task at `idx`.
    #[inline]
    pub fn node(&self, idx: usize) -> &TaskNode {
        &self.nodes[idx]
    }

    /// Indices of the children of task `idx`.
    #[inline]
    pub fn children(&self, idx: usize) -> std::ops::Range<usize> {
        let n = &self.nodes[idx];
        let s = n.children_start as usize;
        s..s + n.children_len as usize
    }

    /// Sum of all task work — the sequential execution time at speed 1.0.
    pub fn total_work(&self) -> SimDuration {
        self.nodes
            .iter()
            .fold(SimDuration::ZERO, |acc, n| acc + n.work)
    }

    /// Length of the *critical path* (longest root-to-leaf chain of work):
    /// the lower bound on parallel makespan regardless of node count.
    pub fn critical_path(&self) -> SimDuration {
        if self.nodes.is_empty() {
            return SimDuration::ZERO;
        }
        // Process in reverse BFS order: children always have larger indices,
        // so a single backwards pass computes longest path to a leaf.
        let mut below = vec![SimDuration::ZERO; self.nodes.len()];
        for i in (0..self.nodes.len()).rev() {
            let longest_child = self
                .children(i)
                .map(|c| below[c])
                .max()
                .unwrap_or(SimDuration::ZERO);
            below[i] = self.nodes[i].work + longest_child;
        }
        below[0]
    }

    /// Number of leaf tasks.
    pub fn leaf_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_leaf()).count()
    }

    /// Number of leaves in the subtree rooted at each task (a leaf counts
    /// itself). Single reverse pass thanks to the forward-only child ranges.
    pub fn subtree_leaf_counts(&self) -> Vec<u32> {
        let mut counts = vec![0u32; self.nodes.len()];
        for i in (0..self.nodes.len()).rev() {
            if self.nodes[i].is_leaf() {
                counts[i] = 1;
            } else {
                counts[i] = self.children(i).map(|c| counts[c]).sum();
            }
        }
        counts
    }

    /// Sets every task's stolen-payload size to
    /// `per_leaf_bytes × subtree leaf count` — moving a task means moving
    /// the data of its entire subtree (in Barnes-Hut: the bodies of the
    /// region the task covers), and its result is equally large.
    pub fn scale_payloads_by_subtree(&mut self, per_leaf_bytes: u64) {
        let counts = self.subtree_leaf_counts();
        for (n, &c) in self.nodes.iter_mut().zip(counts.iter()) {
            n.payload_bytes = per_leaf_bytes * u64::from(c);
        }
    }
}

/// Parameters for the synthetic irregular tree generator.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TreeShape {
    /// Tree depth (root has depth 0; leaves sit at `depth`).
    pub depth: u32,
    /// Minimum children per inner node.
    pub min_branch: u32,
    /// Maximum children per inner node (inclusive).
    pub max_branch: u32,
    /// Mean leaf work.
    pub mean_leaf_work: SimDuration,
    /// Spread of leaf work: leaf work is drawn log-uniformly in
    /// `[mean / spread, mean * spread]`. `1.0` means uniform tasks;
    /// Satin-style irregularity is ~100–1000.
    pub work_spread: f64,
    /// Work of inner (divide) tasks.
    pub divide_work: SimDuration,
    /// Payload bytes when a task is stolen.
    pub payload_bytes: u64,
}

impl TreeShape {
    /// A small, fast shape for unit tests.
    pub fn small() -> Self {
        Self {
            depth: 4,
            min_branch: 2,
            max_branch: 3,
            mean_leaf_work: SimDuration::from_millis(5),
            work_spread: 10.0,
            divide_work: SimDuration::from_micros(50),
            payload_bytes: 2_000,
        }
    }

    /// Generates an irregular task tree from this shape, deterministically
    /// from `rng`.
    pub fn generate(&self, rng: &mut Xoshiro256StarStar) -> TaskTree {
        assert!(self.min_branch >= 1 && self.max_branch >= self.min_branch);
        assert!(self.work_spread >= 1.0, "work_spread must be >= 1");
        let mut nodes: Vec<TaskNode> = Vec::new();
        // BFS frontier of (node index, depth).
        nodes.push(TaskNode {
            work: self.divide_work,
            payload_bytes: self.payload_bytes,
            children_start: 0,
            children_len: 0,
        });
        let mut frontier: Vec<(usize, u32)> = vec![(0, 0)];
        let mut next_frontier: Vec<(usize, u32)> = Vec::new();
        while !frontier.is_empty() {
            for &(idx, depth) in &frontier {
                if depth == self.depth {
                    // Leaf: replace the divide work with sampled leaf work.
                    let w = self.sample_leaf_work(rng);
                    nodes[idx].work = w;
                    continue;
                }
                let span = (self.max_branch - self.min_branch + 1) as u64;
                let k = self.min_branch + rng.gen_range(span) as u32;
                let start = nodes.len() as u32;
                nodes[idx].children_start = start;
                nodes[idx].children_len = k;
                for _ in 0..k {
                    next_frontier.push((nodes.len(), depth + 1));
                    nodes.push(TaskNode {
                        work: self.divide_work,
                        payload_bytes: self.payload_bytes,
                        children_start: 0,
                        children_len: 0,
                    });
                }
            }
            frontier.clear();
            std::mem::swap(&mut frontier, &mut next_frontier);
        }
        TaskTree::from_nodes(nodes)
    }

    fn sample_leaf_work(&self, rng: &mut Xoshiro256StarStar) -> SimDuration {
        let mean = self.mean_leaf_work.as_secs_f64();
        if self.work_spread <= 1.0 + 1e-12 {
            return self.mean_leaf_work;
        }
        // Log-uniform in [mean/spread, mean*spread]; its mean is not exactly
        // `mean`, but the calibration in `barnes_hut_profile` normalizes the
        // total, which is what matters for iteration durations.
        let lo = (mean / self.work_spread).ln();
        let hi = (mean * self.work_spread).ln();
        let x = lo + (hi - lo) * rng.gen_f64();
        SimDuration::from_secs_f64(x.exp())
    }
}

/// An iterative application: a sequence of task trees separated by barriers,
/// like Barnes-Hut's discrete time steps (paper §5).
#[derive(Clone, Debug)]
pub struct IterativeWorkload {
    /// One task tree per iteration.
    pub iterations: Vec<TaskTree>,
    /// Human-readable name for reports.
    pub name: String,
}

impl IterativeWorkload {
    /// Total sequential work across all iterations.
    pub fn total_work(&self) -> SimDuration {
        self.iterations
            .iter()
            .fold(SimDuration::ZERO, |acc, t| acc + t.total_work())
    }

    /// Number of iterations.
    pub fn n_iterations(&self) -> usize {
        self.iterations.len()
    }
}

/// Efficiency the workload is calibrated to exhibit at the target
/// configuration (the paper's "reasonable" 36-node set runs at efficiency
/// ≈ 0.5; we calibrate just below `E_MAX` so the configuration is stable).
pub const BH_TARGET_EFFICIENCY: f64 = 0.47;

/// Fraction of each iteration spent in the sequential root phase.
///
/// Satin's divide-and-conquer Barnes-Hut rebuilds and redistributes the
/// octree every time step; this serial + broadcast phase is the well-known
/// reason BH ran at only ~50 % efficiency on DAS-2 (paper §5: "on this
/// number of nodes the application runs with efficiency 0.5"). We model it
/// as work attached to the root task of every iteration tree.
pub const BH_SEQUENTIAL_FRACTION: f64 = 0.25;

/// Builds a Barnes-Hut-shaped iterative workload.
///
/// * `iterations` — number of simulated time steps;
/// * `target_nodes` — the node count at which one iteration should take
///   roughly `target_iter_secs` (e.g. 36 nodes → ~10 s, matching the
///   paper's ideal scenario 1 configuration);
/// * `seed` — workload RNG seed (iteration trees differ slightly, as real
///   BH trees do as bodies move).
///
/// Each iteration is a task tree with: a **sequential root phase**
/// ([`BH_SEQUENTIAL_FRACTION`] of the iteration — the octree rebuild and
/// redistribution), a 3–5-ary fan-out of depth 4 (a few hundred force
/// tasks), and leaf work spread log-uniformly over ~2 orders of magnitude
/// (non-uniform body distributions make force costs irregular). Total
/// per-iteration work is normalized to
/// `target_nodes × target_iter_secs × BH_TARGET_EFFICIENCY`, which makes
/// the target configuration sit just below the `E_MAX = 0.5` growth
/// threshold — exactly the paper's "reasonable set of nodes".
pub fn barnes_hut_profile(
    iterations: usize,
    target_nodes: usize,
    target_iter_secs: f64,
    seed: u64,
) -> IterativeWorkload {
    let mut rng = Xoshiro256StarStar::seeded(seed);
    let shape = TreeShape {
        depth: 4,
        min_branch: 3,
        max_branch: 5,
        mean_leaf_work: SimDuration::from_millis(120),
        work_spread: 5.0,
        divide_work: SimDuration::from_millis(1),
        payload_bytes: 8 * 1024,
    };
    let target_total = target_nodes as f64 * target_iter_secs * BH_TARGET_EFFICIENCY;
    let sequential = target_iter_secs * BH_SEQUENTIAL_FRACTION;
    let parallel_total = (target_total - sequential).max(0.0);
    let mut its = Vec::with_capacity(iterations);
    for _ in 0..iterations {
        let mut tree = shape.generate(&mut rng);
        let w = tree.total_work().as_secs_f64();
        if w > 0.0 {
            let scale = parallel_total / w;
            for n in &mut tree.nodes {
                n.work = n.work.mul_f64(scale);
            }
        }
        // The sequential tree-build/redistribution phase rides on the root.
        tree.nodes[0].work += SimDuration::from_secs_f64(sequential);
        // Stealing a task ships its whole region of bodies: payloads (and
        // result sizes) scale with the subtree, which is what makes
        // Barnes-Hut communication-intensive on a thin uplink.
        tree.scale_payloads_by_subtree(shape.payload_bytes);
        its.push(tree);
    }
    IterativeWorkload {
        iterations: its,
        name: format!("barnes-hut-profile(n={target_nodes},it={iterations})"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> Xoshiro256StarStar {
        Xoshiro256StarStar::seeded(12345)
    }

    #[test]
    fn generate_produces_well_formed_tree() {
        let t = TreeShape::small().generate(&mut rng());
        assert!(t.len() > 1);
        // from_nodes already validated ranges; check BFS child contiguity
        // gives every non-root node exactly one parent.
        let mut seen = vec![0u32; t.len()];
        for i in 0..t.len() {
            for c in t.children(i) {
                seen[c] += 1;
            }
        }
        assert_eq!(seen[0], 0);
        assert!(seen[1..].iter().all(|&s| s == 1));
    }

    #[test]
    fn generation_is_deterministic() {
        let a = TreeShape::small().generate(&mut rng());
        let b = TreeShape::small().generate(&mut rng());
        assert_eq!(a.len(), b.len());
        assert_eq!(a.total_work(), b.total_work());
    }

    #[test]
    fn critical_path_bounds() {
        let t = TreeShape::small().generate(&mut rng());
        let cp = t.critical_path();
        assert!(cp > SimDuration::ZERO);
        assert!(cp <= t.total_work());
        // Critical path must be at least the largest single task.
        let max_task = (0..t.len()).map(|i| t.node(i).work).max().unwrap();
        assert!(cp >= max_task);
    }

    #[test]
    fn critical_path_of_chain_is_total_work() {
        // Root -> child -> grandchild, each 10ms.
        let mk = |start: u32, len: u32| TaskNode {
            work: SimDuration::from_millis(10),
            payload_bytes: 0,
            children_start: start,
            children_len: len,
        };
        let t = TaskTree::from_nodes(vec![mk(1, 1), mk(2, 1), mk(0, 0)]);
        assert_eq!(t.critical_path(), SimDuration::from_millis(30));
        assert_eq!(t.leaf_count(), 1);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn from_nodes_rejects_bad_ranges() {
        let bad = TaskNode {
            work: SimDuration::ZERO,
            payload_bytes: 0,
            children_start: 5,
            children_len: 2,
        };
        let _ = TaskTree::from_nodes(vec![bad]);
    }

    #[test]
    fn leaf_work_is_irregular() {
        let shape = TreeShape {
            work_spread: 100.0,
            ..TreeShape::small()
        };
        let t = shape.generate(&mut rng());
        let works: Vec<f64> = (0..t.len())
            .filter(|&i| t.node(i).is_leaf())
            .map(|i| t.node(i).work.as_secs_f64())
            .collect();
        let min = works.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = works.iter().cloned().fold(0.0, f64::max);
        assert!(
            max / min > 50.0,
            "expected orders-of-magnitude spread, got {min}..{max}"
        );
    }

    #[test]
    fn barnes_hut_profile_calibrates_total_work() {
        let w = barnes_hut_profile(3, 36, 10.0, 7);
        assert_eq!(w.n_iterations(), 3);
        for t in &w.iterations {
            let total = t.total_work().as_secs_f64();
            let target = 36.0 * 10.0 * BH_TARGET_EFFICIENCY;
            assert!(
                (total - target).abs() / target < 0.01,
                "iteration work {total} vs target {target}"
            );
            // The critical path (sequential root phase + deepest chain) must
            // leave room for ~10 s iterations on 36 nodes.
            let cp = t.critical_path().as_secs_f64();
            assert!(cp < 10.0, "critical path {cp} too long");
            assert!(
                cp >= 10.0 * BH_SEQUENTIAL_FRACTION,
                "critical path must include the sequential phase"
            );
        }
    }

    #[test]
    fn barnes_hut_iterations_differ_but_match_in_total() {
        let w = barnes_hut_profile(2, 16, 5.0, 9);
        let a = &w.iterations[0];
        let b = &w.iterations[1];
        // Same calibrated totals...
        assert!((a.total_work().as_secs_f64() - b.total_work().as_secs_f64()).abs() < 1.0);
        // ...but different trees (bodies moved).
        assert_ne!(a.len(), b.len());
    }
}
