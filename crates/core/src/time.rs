//! Virtual time.
//!
//! The discrete-event engine, the monitoring protocol and the statistics
//! records all share one clock type. We use integer microseconds rather than
//! `f64` seconds so that event ordering is total and platform-independent —
//! a hard requirement for reproducible experiments (DESIGN.md §5.2).

use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// An instant in virtual time, in microseconds since the start of the run.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct SimTime(pub u64);

/// A span of virtual time, in microseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The origin of virtual time.
    pub const ZERO: SimTime = SimTime(0);

    /// Largest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Builds an instant from whole seconds.
    #[inline]
    pub fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Builds an instant from milliseconds.
    #[inline]
    pub fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Builds an instant from microseconds.
    #[inline]
    pub fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// The instant expressed in (fractional) seconds; for reporting only.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating difference: `self - earlier`, clamped at zero.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Builds a span from whole seconds.
    #[inline]
    pub fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Builds a span from milliseconds.
    #[inline]
    pub fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Builds a span from microseconds.
    #[inline]
    pub fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Builds a span from fractional seconds, rounding to the nearest
    /// microsecond. Negative or non-finite inputs clamp to zero.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((s * 1e6).round() as u64)
    }

    /// The span expressed in (fractional) seconds; for reporting only.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Integer division of two spans, as a fraction in `[0, ∞)`.
    ///
    /// Returns 0.0 when `denom` is zero — the conventional choice for
    /// "overhead over an empty period".
    #[inline]
    pub fn fraction_of(self, denom: SimDuration) -> f64 {
        if denom.0 == 0 {
            0.0
        } else {
            self.0 as f64 / denom.0 as f64
        }
    }

    /// Scales the span by a non-negative factor, saturating.
    #[inline]
    pub fn mul_f64(self, factor: f64) -> Self {
        if !factor.is_finite() || factor <= 0.0 {
            return SimDuration::ZERO;
        }
        let v = self.0 as f64 * factor;
        if v >= u64::MAX as f64 {
            SimDuration(u64::MAX)
        } else {
            SimDuration(v.round() as u64)
        }
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, other: SimDuration) -> Self {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, d: SimDuration) {
        *self = *self + d;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Panics in debug builds when `rhs > self`; use
    /// [`SimTime::saturating_since`] when the ordering is uncertain.
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(rhs <= self, "time went backwards: {rhs:?} > {self:?}");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(rhs <= self, "negative duration: {rhs:?} > {self:?}");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(2), SimTime::from_millis(2000));
        assert_eq!(SimTime::from_millis(3), SimTime::from_micros(3000));
        assert_eq!(SimDuration::from_secs(1), SimDuration(1_000_000));
    }

    #[test]
    fn arithmetic_round_trips() {
        let t = SimTime::from_secs(10);
        let d = SimDuration::from_secs(3);
        assert_eq!((t + d) - t, d);
        assert_eq!(t + SimDuration::ZERO, t);
    }

    #[test]
    fn saturating_since_clamps() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(5);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
        assert_eq!(b.saturating_since(a), SimDuration::from_secs(4));
    }

    #[test]
    fn fraction_of_handles_zero_denominator() {
        assert_eq!(
            SimDuration::from_secs(1).fraction_of(SimDuration::ZERO),
            0.0
        );
        let half = SimDuration::from_secs(1).fraction_of(SimDuration::from_secs(2));
        assert!((half - 0.5).abs() < 1e-12);
    }

    #[test]
    fn from_secs_f64_clamps_garbage() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(0.5), SimDuration(500_000));
    }

    #[test]
    fn mul_f64_saturates() {
        let d = SimDuration(u64::MAX / 2);
        assert_eq!(d.mul_f64(4.0), SimDuration(u64::MAX));
        assert_eq!(d.mul_f64(-1.0), SimDuration::ZERO);
    }

    #[test]
    fn display_is_seconds() {
        assert_eq!(SimTime::from_millis(1500).to_string(), "1.500s");
    }
}
