//! Dependency-free observability: named atomic counters, gauges and
//! fixed-bucket histograms, plus a structured event sink that serialises
//! to JSON Lines.
//!
//! The paper's whole adaptation loop is driven by *measured* statistics,
//! so every execution layer (DES engine, coordinator, threaded runtime,
//! scheduler pool, experiment harness) records into one shared registry.
//!
//! Design constraints, in order:
//!
//! 1. **Zero-cost when disabled.** [`Metrics::disabled`] carries no
//!    allocation; [`Metrics::counter`] returns `None`, so an
//!    instrumentation site compiles down to a single branch on an
//!    `Option` it resolved once, up front. No atomics are touched and no
//!    events are buffered.
//! 2. **Lock-free on the hot path.** Counter/gauge/histogram updates are
//!    single relaxed atomic RMWs. The registry's interior mutex is only
//!    taken when a handle is first resolved or an [`MetricEvent`] is
//!    emitted (events are rare, decision-frequency occurrences).
//! 3. **No dependencies.** JSON emission and parsing are hand-rolled,
//!    mirroring the style of the benchmark reporter.
//!
//! # Example
//!
//! ```
//! use sagrid_core::metrics::{Metrics, MetricEvent, Value};
//!
//! let m = Metrics::enabled();
//! let steals = m.counter("steals_ok");
//! if let Some(c) = &steals {
//!     c.add(3);
//! }
//! m.emit(
//!     MetricEvent::new(1_500_000, "steal_burst")
//!         .with("cluster", Value::U64(2))
//!         .with("ok", Value::Bool(true)),
//! );
//! let report = m.report();
//! assert_eq!(report.counter("steals_ok"), 3);
//! assert_eq!(report.events.len(), 1);
//! ```

use crate::json::{write_f64, write_json_string};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

// The JSON value model and parser started life in this module; they now
// live in [`crate::json`] and are re-exported here so existing callers
// (`use sagrid_core::metrics::parse_json`) keep compiling.
pub use crate::json::{parse_json, JsonValue};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds `n` to the counter (relaxed; hot path).
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one to the counter.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge: a signed value that can move both ways (e.g. live node count).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Sets the gauge to `v`.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `d` (may be negative) to the gauge.
    pub fn add(&self, d: i64) {
        self.value.fetch_add(d, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket histogram over `u64` samples.
///
/// `bounds` are inclusive upper bounds of the first `bounds.len()`
/// buckets; one implicit overflow bucket catches everything above the
/// last bound. Recording is a linear scan over a handful of bounds plus
/// relaxed atomic increments — no locking, no allocation.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<u64>,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl Histogram {
    fn new(bounds: &[u64]) -> Self {
        let mut sorted: Vec<u64> = bounds.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let buckets = (0..=sorted.len()).map(|_| AtomicU64::new(0)).collect();
        Self {
            bounds: sorted,
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one sample.
    pub fn record(&self, v: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// (inclusive upper bounds, per-bucket counts); the final count is the
    /// overflow bucket.
    pub fn snapshot(&self) -> (Vec<u64>, Vec<u64>) {
        let counts = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        (self.bounds.clone(), counts)
    }
}

/// A field value attached to a [`MetricEvent`].
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Boolean.
    Bool(bool),
    /// Pre-serialised JSON, emitted verbatim — for structured payloads
    /// (arrays/objects) like a decision's badness table. The caller is
    /// responsible for it being valid JSON.
    Raw(String),
}

impl Value {
    fn write_json(&self, out: &mut String) {
        match self {
            Value::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Value::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Value::F64(v) => write_f64(out, *v),
            Value::Str(s) => write_json_string(out, s),
            Value::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Value::Raw(json) => out.push_str(json),
        }
    }
}

/// A structured, timestamped occurrence: an injection firing, a steal
/// burst, a coordinator decision. Serialises to one JSON Lines record.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricEvent {
    /// Virtual or wall time of the occurrence, in microseconds.
    pub at_micros: u64,
    /// Event kind tag, e.g. `"decision"` or `"injection"`.
    pub kind: String,
    /// Ordered key/value payload.
    pub fields: Vec<(String, Value)>,
}

impl MetricEvent {
    /// Creates an event with no fields.
    pub fn new(at_micros: u64, kind: &str) -> Self {
        Self {
            at_micros,
            kind: kind.to_string(),
            fields: Vec::new(),
        }
    }

    /// Appends a field (builder style).
    #[must_use]
    pub fn with(mut self, key: &str, value: Value) -> Self {
        self.fields.push((key.to_string(), value));
        self
    }

    /// Serialises the event to a single JSON object (one JSONL line,
    /// without the trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.fields.len() * 24);
        out.push_str("{\"type\":\"event\",\"at_us\":");
        let _ = write!(out, "{}", self.at_micros);
        out.push_str(",\"kind\":");
        write_json_string(&mut out, &self.kind);
        for (k, v) in &self.fields {
            out.push(',');
            write_json_string(&mut out, k);
            out.push(':');
            v.write_json(&mut out);
        }
        out.push('}');
        out
    }
}

#[derive(Debug, Default)]
struct Inner {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
    events: Mutex<Vec<MetricEvent>>,
}

/// Handle to a metrics registry, or the disabled no-op variant.
///
/// Cloning is cheap (an `Arc` bump); clones share the same registry, so a
/// single `Metrics` can be threaded through the engine, coordinator,
/// scheduler pool and runtime and every layer records into one place.
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    inner: Option<Arc<Inner>>,
}

impl Metrics {
    /// The no-op handle: resolves no instruments, buffers no events.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// A live, empty registry.
    pub fn enabled() -> Self {
        Self {
            inner: Some(Arc::new(Inner::default())),
        }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Resolves (registering on first use) the counter `name`.
    /// Returns `None` when disabled — resolve once, branch on the option
    /// at the instrumentation site.
    pub fn counter(&self, name: &str) -> Option<Arc<Counter>> {
        let inner = self.inner.as_ref()?;
        let mut map = inner.counters.lock().expect("metrics lock poisoned");
        Some(Arc::clone(
            map.entry(name.to_string()).or_insert_with(Arc::default),
        ))
    }

    /// Resolves (registering on first use) the gauge `name`.
    pub fn gauge(&self, name: &str) -> Option<Arc<Gauge>> {
        let inner = self.inner.as_ref()?;
        let mut map = inner.gauges.lock().expect("metrics lock poisoned");
        Some(Arc::clone(
            map.entry(name.to_string()).or_insert_with(Arc::default),
        ))
    }

    /// Resolves (registering on first use) the histogram `name` with the
    /// given inclusive upper `bounds`. Bounds are fixed at registration;
    /// later calls with different bounds get the original instrument.
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Option<Arc<Histogram>> {
        let inner = self.inner.as_ref()?;
        let mut map = inner.histograms.lock().expect("metrics lock poisoned");
        Some(Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(Histogram::new(bounds))),
        ))
    }

    /// Buffers a structured event. No-op when disabled.
    pub fn emit(&self, event: MetricEvent) {
        if let Some(inner) = &self.inner {
            inner
                .events
                .lock()
                .expect("metrics lock poisoned")
                .push(event);
        }
    }

    /// Takes a consistent snapshot of every instrument and all buffered
    /// events, sorted by name. An empty report when disabled.
    pub fn report(&self) -> MetricsReport {
        let Some(inner) = &self.inner else {
            return MetricsReport::default();
        };
        let counters = inner
            .counters
            .lock()
            .expect("metrics lock poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let gauges = inner
            .gauges
            .lock()
            .expect("metrics lock poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let histograms = inner
            .histograms
            .lock()
            .expect("metrics lock poisoned")
            .iter()
            .map(|(k, v)| {
                let (bounds, counts) = v.snapshot();
                (
                    k.clone(),
                    HistogramSnapshot {
                        bounds,
                        counts,
                        count: v.count(),
                        sum: v.sum(),
                    },
                )
            })
            .collect();
        let events = inner.events.lock().expect("metrics lock poisoned").clone();
        MetricsReport {
            counters,
            gauges,
            histograms,
            events,
        }
    }
}

/// Frozen state of one histogram inside a [`MetricsReport`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct HistogramSnapshot {
    /// Inclusive upper bounds of the explicit buckets.
    pub bounds: Vec<u64>,
    /// Per-bucket counts; the final entry is the overflow bucket.
    pub counts: Vec<u64>,
    /// Total samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
}

/// A point-in-time snapshot of a registry: instruments sorted by name
/// plus the ordered event log. Attachable to run results and
/// serialisable to JSON Lines.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsReport {
    /// `(name, value)` for every counter, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge, sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// `(name, snapshot)` for every histogram, sorted by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
    /// Buffered events in emission order.
    pub events: Vec<MetricEvent>,
}

impl MetricsReport {
    /// Value of counter `name`, or 0 when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map_or(0, |(_, v)| *v)
    }

    /// Value of gauge `name`, or 0 when absent.
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges
            .iter()
            .find(|(k, _)| k == name)
            .map_or(0, |(_, v)| *v)
    }

    /// Events of the given kind, in emission order.
    pub fn events_of_kind<'a>(&'a self, kind: &'a str) -> impl Iterator<Item = &'a MetricEvent> {
        self.events.iter().filter(move |e| e.kind == kind)
    }

    /// Whether the report holds no instruments and no events.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.events.is_empty()
    }

    /// Serialises the whole report to JSON Lines: every event in order,
    /// then one record per counter, gauge and histogram. Deterministic
    /// for a deterministic run.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&e.to_json());
            out.push('\n');
        }
        for (name, value) in &self.counters {
            out.push_str("{\"type\":\"counter\",\"name\":");
            write_json_string(&mut out, name);
            let _ = writeln!(out, ",\"value\":{value}}}");
        }
        for (name, value) in &self.gauges {
            out.push_str("{\"type\":\"gauge\",\"name\":");
            write_json_string(&mut out, name);
            let _ = writeln!(out, ",\"value\":{value}}}");
        }
        for (name, h) in &self.histograms {
            out.push_str("{\"type\":\"histogram\",\"name\":");
            write_json_string(&mut out, name);
            let _ = write!(out, ",\"count\":{},\"sum\":{},\"bounds\":[", h.count, h.sum);
            for (i, b) in h.bounds.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{b}");
            }
            out.push_str("],\"counts\":[");
            for (i, c) in h.counts.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{c}");
            }
            out.push_str("]}\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_resolves_nothing_and_buffers_nothing() {
        let m = Metrics::disabled();
        assert!(!m.is_enabled());
        assert!(m.counter("x").is_none());
        assert!(m.gauge("x").is_none());
        assert!(m.histogram("x", &[1, 2]).is_none());
        m.emit(MetricEvent::new(0, "ignored"));
        let report = m.report();
        assert!(report.is_empty());
    }

    #[test]
    fn counters_and_gauges_round_trip() {
        let m = Metrics::enabled();
        let c = m.counter("a").unwrap();
        c.inc();
        c.add(4);
        // Re-resolving returns the same instrument.
        assert_eq!(m.counter("a").unwrap().get(), 5);
        let g = m.gauge("g").unwrap();
        g.set(7);
        g.add(-3);
        let report = m.report();
        assert_eq!(report.counter("a"), 5);
        assert_eq!(report.gauge("g"), 4);
        assert_eq!(report.counter("missing"), 0);
    }

    #[test]
    fn histogram_buckets_samples_including_overflow() {
        let m = Metrics::enabled();
        let h = m.histogram("lat", &[10, 100, 1000]).unwrap();
        for v in [5, 10, 11, 500, 5000] {
            h.record(v);
        }
        let (bounds, counts) = h.snapshot();
        assert_eq!(bounds, vec![10, 100, 1000]);
        assert_eq!(counts, vec![2, 1, 1, 1]);
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 5 + 10 + 11 + 500 + 5000);
    }

    #[test]
    fn report_is_sorted_and_jsonl_parses_line_by_line() {
        let m = Metrics::enabled();
        m.counter("zz").unwrap().inc();
        m.counter("aa").unwrap().add(2);
        m.gauge("mid").unwrap().set(-4);
        m.histogram("h", &[1]).unwrap().record(3);
        m.emit(
            MetricEvent::new(42, "steal")
                .with("cluster", Value::U64(1))
                .with("note", Value::Str("quote\" and \\slash".to_string()))
                .with("eff", Value::F64(0.8125))
                .with("ok", Value::Bool(true))
                .with("delta", Value::I64(-3)),
        );
        let report = m.report();
        let names: Vec<&str> = report.counters.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(names, vec!["aa", "zz"]);
        let jsonl = report.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 1 + 2 + 1 + 1);
        for line in &lines {
            let v = parse_json(line).expect("line parses");
            assert!(v.get("type").and_then(JsonValue::as_str).is_some());
        }
        // The event line round-trips its payload.
        let ev = parse_json(lines[0]).unwrap();
        assert_eq!(ev.get("kind").and_then(JsonValue::as_str), Some("steal"));
        assert_eq!(ev.get("at_us").and_then(JsonValue::as_u64), Some(42));
        assert_eq!(ev.get("cluster").and_then(JsonValue::as_u64), Some(1));
        assert_eq!(
            ev.get("note").and_then(JsonValue::as_str),
            Some("quote\" and \\slash")
        );
        assert_eq!(ev.get("eff").and_then(JsonValue::as_f64), Some(0.8125));
        assert_eq!(ev.get("ok").and_then(JsonValue::as_bool), Some(true));
        assert_eq!(ev.get("delta").and_then(JsonValue::as_f64), Some(-3.0));
    }

    #[test]
    fn clones_share_one_registry() {
        let m = Metrics::enabled();
        let m2 = m.clone();
        m.counter("shared").unwrap().inc();
        m2.counter("shared").unwrap().inc();
        assert_eq!(m.report().counter("shared"), 2);
    }
}
