//! Deterministic random number generation.
//!
//! Every simulated experiment must replay bit-identically from its seed
//! (DESIGN.md §5.2), so the simulation stack uses these small, well-known
//! generators instead of the `rand` crate's unspecified defaults:
//!
//! * [`SplitMix64`] — Steele et al.'s stateless-ish mixer; used to expand a
//!   single user seed into independent stream seeds.
//! * [`Xoshiro256StarStar`] — Blackman & Vigna's general-purpose generator;
//!   the workhorse for victim selection, workload generation and injectors.
//!
//! Both match the published reference outputs (see tests).

/// Minimal uniform-random interface used across the simulation stack.
pub trait Rng64 {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform integer in `[0, bound)` via Lemire's unbiased-enough
    /// multiply-shift reduction. `bound` must be non-zero.
    fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range bound must be > 0");
        // 128-bit multiply keeps the modulo bias below 2^-64 * bound, which is
        // negligible for simulation purposes and, crucially, deterministic.
        let r = self.next_u64() as u128;
        ((r * bound as u128) >> 64) as u64
    }

    /// Uniform `usize` in `[0, bound)`.
    fn gen_index(&mut self, bound: usize) -> usize {
        self.gen_range(bound as u64) as usize
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Exponentially distributed float with the given mean (> 0).
    fn gen_exp(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0);
        // Inverse CDF; avoid ln(0) by nudging u away from zero.
        let u = self.gen_f64().max(1e-300);
        -mean * u.ln()
    }

    /// Fisher–Yates shuffle.
    fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.gen_index(i + 1);
            xs.swap(i, j);
        }
    }

    /// Returns `true` with probability `p` (clamped to `[0,1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }
}

/// SplitMix64: the recommended seeder for xoshiro-family generators.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. All seeds are valid.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }
}

impl Rng64 for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256\*\*: fast, high-quality, 256-bit state general-purpose PRNG.
#[derive(Clone, Debug)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// Seeds the 256-bit state by running SplitMix64 on `seed`, per the
    /// authors' recommendation. All seeds are valid (the state cannot end up
    /// all-zero because SplitMix64 outputs are equidistributed).
    pub fn seeded(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        Self { s }
    }

    /// Creates a derived, statistically independent stream for entity `tag`.
    ///
    /// Used to give every simulated node its own RNG so that adding a node
    /// never perturbs the random sequence observed by existing nodes.
    pub fn derive(&self, tag: u64) -> Self {
        // Mix the current state with the tag through SplitMix64.
        let mut sm = SplitMix64::new(
            self.s[0] ^ self.s[2].rotate_left(17) ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        Self { s }
    }
}

impl Rng64 for Xoshiro256StarStar {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix64_reference_vector() {
        // Reference values for seed 1234567 from the SplitMix64 test vectors
        // distributed with the xoshiro reference code.
        let mut g = SplitMix64::new(1234567);
        let got: Vec<u64> = (0..5).map(|_| g.next_u64()).collect();
        assert_eq!(
            got,
            vec![
                6457827717110365317,
                3203168211198807973,
                9817491932198370423,
                4593380528125082431,
                16408922859458223821,
            ]
        );
    }

    #[test]
    fn xoshiro_is_deterministic_and_seed_sensitive() {
        let mut a = Xoshiro256StarStar::seeded(42);
        let mut b = Xoshiro256StarStar::seeded(42);
        let mut c = Xoshiro256StarStar::seeded(43);
        let va: Vec<u64> = (0..10).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..10).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..10).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn derived_streams_differ_from_parent_and_each_other() {
        let root = Xoshiro256StarStar::seeded(7);
        let mut d1 = root.derive(1);
        let mut d2 = root.derive(2);
        let x1: Vec<u64> = (0..8).map(|_| d1.next_u64()).collect();
        let x2: Vec<u64> = (0..8).map(|_| d2.next_u64()).collect();
        assert_ne!(x1, x2);
    }

    #[test]
    fn gen_range_is_in_bounds() {
        let mut g = Xoshiro256StarStar::seeded(99);
        for _ in 0..10_000 {
            let v = g.gen_range(17);
            assert!(v < 17);
        }
    }

    #[test]
    fn gen_f64_is_in_unit_interval_and_roughly_uniform() {
        let mut g = Xoshiro256StarStar::seeded(5);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v = g.gen_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from 0.5");
    }

    #[test]
    fn gen_exp_has_requested_mean() {
        let mut g = Xoshiro256StarStar::seeded(6);
        let n = 200_000;
        let mean_target = 3.0;
        let mut sum = 0.0;
        for _ in 0..n {
            let v = g.gen_exp(mean_target);
            assert!(v >= 0.0);
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - mean_target).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut g = Xoshiro256StarStar::seeded(11);
        let mut v: Vec<u32> = (0..50).collect();
        g.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic]
    fn gen_range_zero_bound_panics() {
        let mut g = SplitMix64::new(1);
        let _ = g.gen_range(0);
    }
}
