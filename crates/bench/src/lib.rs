//! # sagrid-bench
//!
//! Hand-rolled, registry-free benchmarks (`std::time::Instant` harness; the
//! container has no crates.io access, so there is no criterion here). Four
//! suites, all `harness = false` binaries under `benches/`:
//!
//! * `figures` — one benchmark per paper figure/table: each measures the
//!   wall time of regenerating the figure's data on the discrete-event
//!   engine (shortened runs; the full-scale regeneration lives in
//!   `cargo run -p sagrid-exp --release -- --all`);
//! * `micro` — component benchmarks: event-kernel throughput, metric and
//!   badness computation, workload generation, network model, Barnes-Hut
//!   steps, and the threaded runtime's spawn/steal machinery;
//! * `ablations` — the DESIGN.md ablations: CRS vs plain random stealing,
//!   badness-coefficient variants, opportunistic migration on/off;
//! * `des_throughput` — discrete-event engine throughput in events/second
//!   on the scenario 1 and scenario 4 workloads, with a JSON report
//!   (`BENCH_des_throughput.json`) for regression tracking.
//!
//! Shared helpers live here: the scenario shortener, the measurement
//! harness, and a minimal JSON emitter.

#![warn(missing_docs)]
#![deny(unsafe_code)]

use sagrid_exp::scenarios::{Scenario, ScenarioId};
use std::time::{Duration, Instant};

/// A scenario shortened for benchmarking (enough iterations to span two
/// monitoring periods so adaptation actually happens, small enough to keep
/// `cargo bench` minutes-scale).
pub fn bench_scenario(id: ScenarioId) -> Scenario {
    let mut s = Scenario::new(id);
    s.iterations = 12;
    s
}

/// Whether quick mode is requested: `--quick` on the command line or
/// `SAGRID_BENCH_QUICK=1` in the environment (used by `scripts/ci.sh`).
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
        || std::env::var("SAGRID_BENCH_QUICK").is_ok_and(|v| v == "1")
}

/// One benchmark's timing summary, in nanoseconds per iteration.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Benchmark name, e.g. `fig1_runtime_bars_scenario1`.
    pub name: String,
    /// Number of timed samples.
    pub samples: u32,
    /// Mean wall time per iteration.
    pub mean_ns: u128,
    /// Fastest sample.
    pub min_ns: u128,
    /// Slowest sample.
    pub max_ns: u128,
}

impl Measurement {
    /// Mean wall time as a [`Duration`].
    pub fn mean(&self) -> Duration {
        Duration::from_nanos(self.mean_ns as u64)
    }
}

/// Times `f` — `warmup` untimed runs, then `samples` timed runs — and
/// prints a criterion-style summary line.
pub fn measure(name: &str, warmup: u32, samples: u32, mut f: impl FnMut()) -> Measurement {
    assert!(samples > 0, "need at least one timed sample");
    for _ in 0..warmup {
        f();
    }
    let mut times: Vec<u128> = Vec::with_capacity(samples as usize);
    for _ in 0..samples {
        let start = Instant::now();
        f();
        times.push(start.elapsed().as_nanos());
    }
    let min = *times.iter().min().expect("samples > 0");
    let max = *times.iter().max().expect("samples > 0");
    let mean = times.iter().sum::<u128>() / times.len() as u128;
    let m = Measurement {
        name: name.to_string(),
        samples,
        mean_ns: mean,
        min_ns: min,
        max_ns: max,
    };
    println!(
        "{:<40} mean {:>12}   min {:>12}   max {:>12}   ({} samples)",
        m.name,
        fmt_ns(mean),
        fmt_ns(min),
        fmt_ns(max),
        samples
    );
    m
}

/// Human-readable duration from nanoseconds.
pub fn fmt_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// A minimal JSON value for benchmark reports (hand-rolled: the workspace
/// deliberately has no serde).
#[derive(Clone, Debug)]
pub enum Json {
    /// A floating-point number (emitted with enough digits to round-trip).
    Num(f64),
    /// An unsigned integer.
    Int(u128),
    /// A string (escaped on emission).
    Str(String),
    /// An ordered array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Serializes with two-space indentation and a trailing newline.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent + 1);
        let close = "  ".repeat(indent);
        match self {
            Json::Num(x) => {
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    out.push_str(&format!("{x:.1}"));
                } else {
                    out.push_str(&format!("{x}"));
                }
            }
            Json::Int(n) => out.push_str(&n.to_string()),
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad);
                    item.write(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&close);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    out.push_str(&pad);
                    Json::Str(k.clone()).write(out, indent + 1);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                    if i + 1 < fields.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&close);
                out.push('}');
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_reports_sane_bounds() {
        let m = measure("noop", 1, 5, || {
            std::hint::black_box(1 + 1);
        });
        assert_eq!(m.samples, 5);
        assert!(m.min_ns <= m.mean_ns && m.mean_ns <= m.max_ns);
    }

    #[test]
    fn json_escapes_and_nests() {
        let j = Json::Obj(vec![
            ("name".into(), Json::Str("a\"b\\c\n".into())),
            ("xs".into(), Json::Arr(vec![Json::Int(1), Json::Num(2.5)])),
            ("empty".into(), Json::Obj(vec![])),
        ]);
        let s = j.pretty();
        assert!(s.contains(r#""a\"b\\c\n""#), "escaped: {s}");
        assert!(s.contains("2.5"));
        assert!(s.ends_with("}\n"));
    }

    #[test]
    fn json_integers_do_not_gain_fractions() {
        assert_eq!(Json::Int(42).pretty(), "42\n");
        assert_eq!(Json::Num(3.0).pretty(), "3.0\n");
    }
}
