//! # sagrid-bench
//!
//! Criterion benchmarks. Three suites:
//!
//! * `figures` — one benchmark per paper figure/table: each measures the
//!   wall time of regenerating the figure's data on the discrete-event
//!   engine (shortened runs; the full-scale regeneration lives in
//!   `cargo run -p sagrid-exp --release -- --all`);
//! * `micro` — component benchmarks: event-kernel throughput, metric and
//!   badness computation, workload generation, network model, Barnes-Hut
//!   steps, and the threaded runtime's spawn/steal machinery;
//! * `ablations` — the DESIGN.md ablations: CRS vs plain random stealing,
//!   badness-coefficient variants, opportunistic migration on/off.
//!
//! Shared helpers live here.

#![warn(missing_docs)]
#![deny(unsafe_code)]

use sagrid_exp::scenarios::{Scenario, ScenarioId};

/// A scenario shortened for benchmarking (enough iterations to span two
/// monitoring periods so adaptation actually happens, small enough to keep
/// `cargo bench` minutes-scale).
pub fn bench_scenario(id: ScenarioId) -> Scenario {
    let mut s = Scenario::new(id);
    s.iterations = 12;
    s
}
