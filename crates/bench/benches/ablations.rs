//! Design-choice ablations (DESIGN.md ABL-1/2/3/4).

use sagrid_adapt::BadnessCoefficients;
use sagrid_bench::{bench_scenario, measure, quick_mode};
use sagrid_exp::scenarios::{ScenarioId, SubScenario};
use sagrid_simgrid::{AdaptMode, GridSim, StealPolicy};
use std::hint::black_box;

fn main() {
    let samples = if quick_mode() { 3 } else { 10 };

    // ABL-2: cluster-aware random stealing vs plain random stealing on a
    // three-cluster WAN. The interesting output is the *virtual* runtime;
    // the measurement is how long the comparison takes to regenerate.
    for (name, policy) in [
        ("ablations/abl_crs", StealPolicy::ClusterAware),
        ("ablations/abl_random_global", StealPolicy::RandomGlobal),
    ] {
        let s = bench_scenario(ScenarioId::S2Expand(SubScenario::C));
        measure(name, 1, samples, || {
            let mut cfg = s.config(AdaptMode::NoAdapt);
            cfg.steal_policy = policy;
            black_box(GridSim::run(cfg).total_runtime);
        });
    }

    // ABL-1: badness coefficients on the overloaded-CPUs scenario (the
    // node-level removal path, which is what the coefficients rank).
    for (name, coeff) in [
        (
            "ablations/abl_badness_paper",
            BadnessCoefficients::default(),
        ),
        (
            "ablations/abl_badness_speed_only",
            BadnessCoefficients {
                alpha: 1.0,
                beta: 0.0,
                gamma: 0.0,
            },
        ),
        (
            "ablations/abl_badness_ic_only",
            BadnessCoefficients {
                alpha: 0.0,
                beta: 100.0,
                gamma: 0.0,
            },
        ),
    ] {
        let s = bench_scenario(ScenarioId::S3OverloadedCpus);
        measure(name, 1, samples, || {
            let mut cfg = s.config(AdaptMode::Adapt);
            cfg.policy.coefficients = coeff;
            black_box(GridSim::run(cfg).total_runtime);
        });
    }

    // ABL-3: opportunistic migration (paper §7 future work) on scenario 5.
    for (name, opportunistic) in [
        ("ablations/abl_opportunistic_off", false),
        ("ablations/abl_opportunistic_on", true),
    ] {
        let s = bench_scenario(ScenarioId::S5CpusAndLink);
        measure(name, 1, samples, || {
            let mut cfg = s.config(AdaptMode::Adapt);
            cfg.policy.opportunistic_migration = opportunistic;
            black_box(GridSim::run(cfg).total_runtime);
        });
    }

    // ABL-4: load-aware benchmarking (paper §3.2 optimization).
    for (name, load_aware) in [
        ("ablations/abl_periodic_benchmarks", false),
        ("ablations/abl_load_aware_benchmarks", true),
    ] {
        let s = bench_scenario(ScenarioId::S1Overhead);
        measure(name, 1, samples, || {
            let mut cfg = s.config(AdaptMode::MonitorOnly);
            cfg.policy.load_aware_benchmarking = load_aware;
            black_box(GridSim::run(cfg).benchmark_fraction());
        });
    }
}
