//! Design-choice ablations (DESIGN.md ABL-1/2/3).

use criterion::{criterion_group, criterion_main, Criterion};
use sagrid_adapt::BadnessCoefficients;
use sagrid_bench::bench_scenario;
use sagrid_exp::scenarios::{ScenarioId, SubScenario};
use sagrid_simgrid::{AdaptMode, GridSim, StealPolicy};
use std::hint::black_box;
use std::time::Duration;

fn bench_ablations(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    // ABL-2: cluster-aware random stealing vs plain random stealing on a
    // three-cluster WAN. The interesting output is the *virtual* runtime;
    // Criterion measures how long the comparison takes to regenerate.
    for (name, policy) in [
        ("abl_crs", StealPolicy::ClusterAware),
        ("abl_random_global", StealPolicy::RandomGlobal),
    ] {
        g.bench_function(name, |b| {
            let s = bench_scenario(ScenarioId::S2Expand(SubScenario::C));
            b.iter(|| {
                let mut cfg = s.config(AdaptMode::NoAdapt);
                cfg.steal_policy = policy;
                black_box(GridSim::run(cfg).total_runtime)
            })
        });
    }

    // ABL-1: badness coefficients on the overloaded-CPUs scenario (the
    // node-level removal path, which is what the coefficients rank).
    for (name, coeff) in [
        ("abl_badness_paper", BadnessCoefficients::default()),
        (
            "abl_badness_speed_only",
            BadnessCoefficients {
                alpha: 1.0,
                beta: 0.0,
                gamma: 0.0,
            },
        ),
        (
            "abl_badness_ic_only",
            BadnessCoefficients {
                alpha: 0.0,
                beta: 100.0,
                gamma: 0.0,
            },
        ),
    ] {
        g.bench_function(name, |b| {
            let s = bench_scenario(ScenarioId::S3OverloadedCpus);
            b.iter(|| {
                let mut cfg = s.config(AdaptMode::Adapt);
                cfg.policy.coefficients = coeff;
                black_box(GridSim::run(cfg).total_runtime)
            })
        });
    }

    // ABL-3: opportunistic migration (paper §7 future work) on scenario 5.
    for (name, opportunistic) in [
        ("abl_opportunistic_off", false),
        ("abl_opportunistic_on", true),
    ] {
        g.bench_function(name, |b| {
            let s = bench_scenario(ScenarioId::S5CpusAndLink);
            b.iter(|| {
                let mut cfg = s.config(AdaptMode::Adapt);
                cfg.policy.opportunistic_migration = opportunistic;
                black_box(GridSim::run(cfg).total_runtime)
            })
        });
    }

    // ABL-4: load-aware benchmarking (paper §3.2 optimization).
    for (name, load_aware) in [
        ("abl_periodic_benchmarks", false),
        ("abl_load_aware_benchmarks", true),
    ] {
        g.bench_function(name, |b| {
            let s = bench_scenario(ScenarioId::S1Overhead);
            b.iter(|| {
                let mut cfg = s.config(AdaptMode::MonitorOnly);
                cfg.policy.load_aware_benchmarking = load_aware;
                black_box(GridSim::run(cfg).benchmark_fraction())
            })
        });
    }

    g.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
