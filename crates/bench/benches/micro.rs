//! Component micro-benchmarks: the building blocks whose throughput the
//! figure regeneration rests on.

use sagrid_adapt::badness::rank_nodes_by_badness;
use sagrid_adapt::{wa_efficiency_of_reports, BadnessCoefficients};
use sagrid_apps::BarnesHut;
use sagrid_bench::{measure, quick_mode};
use sagrid_core::config::GridConfig;
use sagrid_core::ids::{ClusterId, NodeId};
use sagrid_core::rng::{Rng64, Xoshiro256StarStar};
use sagrid_core::stats::{MonitoringReport, OverheadBreakdown};
use sagrid_core::time::{SimDuration, SimTime};
use sagrid_core::workload::TreeShape;
use sagrid_runtime::{Runtime, RuntimeConfig};
use sagrid_simnet::{EventQueue, Network};
use std::hint::black_box;

fn reports(n: usize) -> Vec<MonitoringReport> {
    let mut rng = Xoshiro256StarStar::seeded(7);
    (0..n)
        .map(|i| {
            let busy = rng.gen_range(1_000_000);
            let idle = rng.gen_range(500_000);
            let inter = rng.gen_range(200_000);
            MonitoringReport {
                node: NodeId(i as u32),
                cluster: ClusterId((i % 5) as u16),
                period_end: SimTime::from_secs(180),
                breakdown: OverheadBreakdown {
                    busy: SimDuration(busy),
                    idle: SimDuration(idle),
                    inter_comm: SimDuration(inter),
                    ..Default::default()
                },
                speed: 0.2 + 0.8 * rng.gen_f64(),
            }
        })
        .collect()
}

fn main() {
    let samples = if quick_mode() { 5 } else { 20 };

    // Discrete-event kernel throughput.
    measure("micro/event_queue_100k_push_pop", 2, samples, || {
        let mut q: EventQueue<u32> = EventQueue::new();
        let mut rng = Xoshiro256StarStar::seeded(1);
        for i in 0..100_000u32 {
            let at = q.now() + SimDuration::from_micros(rng.gen_range(1_000));
            q.push(at, i);
            if i % 2 == 0 {
                black_box(q.pop());
            }
        }
        while q.pop().is_some() {}
        black_box(q.processed());
    });

    // The coordinator's per-period metric computations at DAS-2 scale.
    let rs = reports(200);
    measure("micro/wa_efficiency_200_reports", 10, 10 * samples, || {
        black_box(wa_efficiency_of_reports(rs.iter()));
    });
    let coeff = BadnessCoefficients::default();
    measure(
        "micro/badness_ranking_200_reports",
        10,
        10 * samples,
        || {
            black_box(rank_nodes_by_badness(&coeff, &rs, Some(ClusterId(2))));
        },
    );

    // Workload generation (per-iteration task tree).
    let shape = TreeShape {
        depth: 4,
        min_branch: 3,
        max_branch: 5,
        ..TreeShape::small()
    };
    let mut rng = Xoshiro256StarStar::seeded(3);
    measure("micro/task_tree_generation", 2, samples, || {
        let mut t = shape.generate(&mut rng);
        t.scale_payloads_by_subtree(8192);
        black_box(t.total_work());
    });

    // Network model: WAN deliveries with uplink queueing.
    measure("micro/network_10k_wan_deliveries", 2, samples, || {
        let mut net = Network::new(&GridConfig::das2());
        let mut t = SimTime::ZERO;
        for i in 0..10_000u64 {
            let d = net.deliver(
                t,
                ClusterId((i % 5) as u16),
                ClusterId(((i + 1) % 5) as u16),
                4096,
            );
            t += SimDuration::from_micros(50);
            black_box(d);
        }
    });

    // Barnes-Hut: one sequential step (tree build + force + integrate) on a
    // fresh system each sample, so integration drift never accumulates.
    measure("micro/barnes_hut_step_2000_bodies", 1, samples, || {
        let mut sim = BarnesHut::plummer(2_000, 11);
        black_box(sim.step_seq());
    });

    // The threaded runtime's spawn/steal machinery under a fine-grained
    // spawn tree.
    let rt = Runtime::new(RuntimeConfig::single_cluster(4));
    measure("micro/threaded_fib_24_on_4_workers", 1, samples, || {
        black_box(rt.run(|ctx| sagrid_apps::fib_par(ctx, 24, 12)));
    });
    rt.shutdown();
}
