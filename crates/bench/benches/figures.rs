//! One benchmark per paper figure/table: regenerating the figure's data on
//! the discrete-event engine (DESIGN.md per-experiment index).

use criterion::{criterion_group, criterion_main, Criterion};
use sagrid_adapt::AdaptPolicy;
use sagrid_bench::bench_scenario;
use sagrid_core::time::SimDuration;
use sagrid_exp::scenarios::{ScenarioId, SubScenario};
use sagrid_simgrid::{AdaptMode, GridSim};
use std::hint::black_box;
use std::time::Duration;

fn configure(c: &mut Criterion) -> criterion::BenchmarkGroup<'_, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    g
}

fn bench_figures(c: &mut Criterion) {
    let mut g = configure(c);

    // FIG-1: the runtime bars need all three modes of scenario 1.
    g.bench_function("fig1_runtime_bars_scenario1", |b| {
        let s = bench_scenario(ScenarioId::S1Overhead);
        b.iter(|| {
            let r1 = GridSim::run(s.config(AdaptMode::NoAdapt));
            let r2 = GridSim::run(s.config(AdaptMode::Adapt));
            let r3 = GridSim::run(s.config(AdaptMode::MonitorOnly));
            black_box((r1.total_runtime, r2.total_runtime, r3.total_runtime))
        })
    });

    // FIG-3: expanding from 8 nodes (scenario 2a), adaptive run.
    g.bench_function("fig3_expand_from_8", |b| {
        let s = bench_scenario(ScenarioId::S2Expand(SubScenario::A));
        b.iter(|| black_box(GridSim::run(s.config(AdaptMode::Adapt)).iteration_durations))
    });

    // FIG-4: overloaded CPUs (scenario 3).
    g.bench_function("fig4_overloaded_cpus", |b| {
        let s = bench_scenario(ScenarioId::S3OverloadedCpus);
        b.iter(|| black_box(GridSim::run(s.config(AdaptMode::Adapt)).iteration_durations))
    });

    // FIG-5: overloaded network link (scenario 4).
    g.bench_function("fig5_overloaded_link", |b| {
        let s = bench_scenario(ScenarioId::S4OverloadedLink);
        b.iter(|| black_box(GridSim::run(s.config(AdaptMode::Adapt)).iteration_durations))
    });

    // FIG-6: overloaded CPUs + link (scenario 5).
    g.bench_function("fig6_cpus_and_link", |b| {
        let s = bench_scenario(ScenarioId::S5CpusAndLink);
        b.iter(|| black_box(GridSim::run(s.config(AdaptMode::Adapt)).iteration_durations))
    });

    // FIG-7: crashing clusters (scenario 6).
    g.bench_function("fig7_crash", |b| {
        let s = bench_scenario(ScenarioId::S6Crash);
        b.iter(|| black_box(GridSim::run(s.config(AdaptMode::Adapt)).iteration_durations))
    });

    // TAB-S1: the monitoring-period overhead sweep.
    g.bench_function("tab_s1_overhead_sweep", |b| {
        let s = bench_scenario(ScenarioId::S1Overhead);
        b.iter(|| {
            let mut rows = Vec::new();
            for period in [60u64, 180] {
                let mut cfg = s.config(AdaptMode::Adapt);
                cfg.policy = AdaptPolicy {
                    monitoring_period: SimDuration::from_secs(period),
                    ..cfg.policy
                };
                rows.push(GridSim::run(cfg).benchmark_fraction());
            }
            black_box(rows)
        })
    });

    g.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
