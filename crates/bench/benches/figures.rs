//! One benchmark per paper figure/table: regenerating the figure's data on
//! the discrete-event engine (DESIGN.md per-experiment index).

use sagrid_adapt::AdaptPolicy;
use sagrid_bench::{bench_scenario, measure, quick_mode};
use sagrid_core::time::SimDuration;
use sagrid_exp::scenarios::{ScenarioId, SubScenario};
use sagrid_simgrid::{AdaptMode, GridSim};
use std::hint::black_box;

fn main() {
    let samples = if quick_mode() { 3 } else { 10 };

    // FIG-1: the runtime bars need all three modes of scenario 1.
    {
        let s = bench_scenario(ScenarioId::S1Overhead);
        measure("figures/fig1_runtime_bars_scenario1", 1, samples, || {
            let r1 = GridSim::run(s.config(AdaptMode::NoAdapt));
            let r2 = GridSim::run(s.config(AdaptMode::Adapt));
            let r3 = GridSim::run(s.config(AdaptMode::MonitorOnly));
            black_box((r1.total_runtime, r2.total_runtime, r3.total_runtime));
        });
    }

    // FIG-3..7: the adaptive run behind each iteration-duration figure.
    let adaptive_figures = [
        (
            "figures/fig3_expand_from_8",
            ScenarioId::S2Expand(SubScenario::A),
        ),
        ("figures/fig4_overloaded_cpus", ScenarioId::S3OverloadedCpus),
        ("figures/fig5_overloaded_link", ScenarioId::S4OverloadedLink),
        ("figures/fig6_cpus_and_link", ScenarioId::S5CpusAndLink),
        ("figures/fig7_crash", ScenarioId::S6Crash),
    ];
    for (name, id) in adaptive_figures {
        let s = bench_scenario(id);
        measure(name, 1, samples, || {
            black_box(GridSim::run(s.config(AdaptMode::Adapt)).iteration_durations);
        });
    }

    // TAB-S1: the monitoring-period overhead sweep.
    {
        let s = bench_scenario(ScenarioId::S1Overhead);
        measure("figures/tab_s1_overhead_sweep", 1, samples, || {
            let mut rows = Vec::new();
            for period in [60u64, 180] {
                let mut cfg = s.config(AdaptMode::Adapt);
                cfg.policy = AdaptPolicy {
                    monitoring_period: SimDuration::from_secs(period),
                    ..cfg.policy
                };
                rows.push(GridSim::run(cfg).benchmark_fraction());
            }
            black_box(rows);
        });
    }
}
