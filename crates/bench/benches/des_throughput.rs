//! Discrete-event engine throughput: events processed per second of wall
//! time on the scenario 1 (overhead, single cluster) and scenario 4
//! (overloaded WAN link, multi-cluster) workloads.
//!
//! Writes `BENCH_des_throughput.json` (hand-rolled emitter, no serde) so
//! regressions are diffable in review; `--quick` / `SAGRID_BENCH_QUICK=1`
//! shrinks the sample count for CI smoke runs.

use sagrid_bench::{bench_scenario, measure, quick_mode, Json};
use sagrid_exp::scenarios::ScenarioId;
use sagrid_simgrid::{AdaptMode, GridSim, RunResult};
use std::hint::black_box;

fn bench_one(id: ScenarioId, label: &str, samples: u32) -> Json {
    let scenario = bench_scenario(id);
    // The event count is deterministic for a fixed config; one untimed run
    // pins it down so events/sec comes out of pure wall-clock samples.
    let probe: RunResult = GridSim::run(scenario.config(AdaptMode::Adapt));
    let events = probe.events_processed;
    let m = measure(label, 1, samples, || {
        black_box(GridSim::run(scenario.config(AdaptMode::Adapt)));
    });
    let events_per_sec = events as f64 / (m.mean_ns as f64 / 1e9);
    println!(
        "{label:<40} {events} events, {:.0} events/sec (steals {}, peer-cache hits {})",
        events_per_sec, probe.steal_attempts, probe.peer_cache_hits
    );
    Json::Obj(vec![
        ("name".into(), Json::Str(label.into())),
        ("events".into(), Json::Int(events as u128)),
        (
            "steal_attempts".into(),
            Json::Int(probe.steal_attempts as u128),
        ),
        (
            "peer_cache_hits".into(),
            Json::Int(probe.peer_cache_hits as u128),
        ),
        ("samples".into(), Json::Int(m.samples as u128)),
        ("mean_ns".into(), Json::Int(m.mean_ns)),
        ("min_ns".into(), Json::Int(m.min_ns)),
        ("events_per_sec".into(), Json::Num(events_per_sec.round())),
    ])
}

fn main() {
    let samples = if quick_mode() { 3 } else { 10 };
    let runs = vec![
        bench_one(ScenarioId::S1Overhead, "des_scenario1_overhead", samples),
        bench_one(
            ScenarioId::S4OverloadedLink,
            "des_scenario4_wan_link",
            samples,
        ),
    ];
    let report = Json::Obj(vec![
        ("bench".into(), Json::Str("des_throughput".into())),
        ("quick".into(), Json::Str(quick_mode().to_string())),
        ("runs".into(), Json::Arr(runs)),
    ]);
    let path = std::env::var("SAGRID_BENCH_OUT")
        .unwrap_or_else(|_| "BENCH_des_throughput.json".to_string());
    std::fs::write(&path, report.pretty()).expect("write benchmark report");
    println!("wrote {path}");
}
