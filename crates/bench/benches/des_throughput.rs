//! Discrete-event engine throughput: events processed per second of wall
//! time on the scenario 1 (overhead, single cluster) and scenario 4
//! (overloaded WAN link, multi-cluster) workloads, plus the million-node
//! stress scenario (`des_million_node`) exercising the timer wheel at
//! 2^20-node scale.
//!
//! Each paper scenario is measured twice — metrics registry off (the
//! default path) and on — so the cost of full instrumentation is tracked
//! as a first-class number. The two variants run *interleaved* and the
//! overhead is the median of per-pair ratios, which cancels the
//! machine-load drift that dominates mean-based comparisons on shared
//! hardware. The budget is < 5% slowdown with metrics on. Throughput is
//! likewise reported from the *median* wall-clock sample: on shared
//! hardware the mean is dragged by scheduling spikes that say nothing
//! about the engine, while the median is stable run-to-run.
//!
//! Writes `BENCH_des_throughput.json` (hand-rolled emitter, no serde) so
//! regressions are diffable in review; `--quick` / `SAGRID_BENCH_QUICK=1`
//! shrinks the sample count for CI smoke runs.

use sagrid_bench::{bench_scenario, fmt_ns, quick_mode, Json};
use sagrid_core::metrics::Metrics;
use sagrid_exp::scenarios::{Scenario, ScenarioId};
use sagrid_simgrid::{AdaptMode, GridSim, RunResult};
use std::hint::black_box;
use std::time::Instant;

fn median(sorted: &[u128]) -> u128 {
    sorted[sorted.len() / 2]
}

fn bench_one(id: ScenarioId, label: &str, samples: u32) -> Json {
    let scenario = bench_scenario(id);
    // The event count is deterministic for a fixed config; one untimed run
    // pins it down so events/sec comes out of pure wall-clock samples.
    let probe: RunResult = GridSim::run(scenario.config(AdaptMode::Adapt));
    let events = probe.events_processed;
    let run_plain = || black_box(GridSim::run(scenario.config(AdaptMode::Adapt)));
    let run_metered = || {
        black_box(
            GridSim::try_run_with_metrics(scenario.config(AdaptMode::Adapt), Metrics::enabled())
                .expect("bench scenario is valid"),
        )
    };
    // Warm both variants, then sample them back-to-back so each pair sees
    // the same machine conditions.
    run_plain();
    run_metered();
    let mut plain_ns: Vec<u128> = Vec::with_capacity(samples as usize);
    let mut metered_ns: Vec<u128> = Vec::with_capacity(samples as usize);
    for _ in 0..samples {
        let t = Instant::now();
        run_plain();
        plain_ns.push(t.elapsed().as_nanos());
        let t = Instant::now();
        run_metered();
        metered_ns.push(t.elapsed().as_nanos());
    }
    let mean = |xs: &[u128]| xs.iter().sum::<u128>() / xs.len() as u128;
    let (mean_ns, min_ns) = (
        mean(&plain_ns),
        *plain_ns.iter().min().expect("samples > 0"),
    );
    let mean_ns_metrics = mean(&metered_ns);
    let mut ratios: Vec<f64> = plain_ns
        .iter()
        .zip(&metered_ns)
        .map(|(&p, &m)| m as f64 / p as f64)
        .collect();
    ratios.sort_by(f64::total_cmp);
    let overhead_pct = (ratios[ratios.len() / 2] - 1.0) * 100.0;
    plain_ns.sort_unstable();
    let median_ns = median(&plain_ns);
    let events_per_sec = events as f64 / (median_ns as f64 / 1e9);
    println!(
        "{label:<40} median {:>12}   mean {:>12}   min {:>12}   ({samples} samples)",
        fmt_ns(median_ns),
        fmt_ns(mean_ns),
        fmt_ns(min_ns),
    );
    println!(
        "{label:<40} {events} events, {:.0} events/sec (steals {}, peer-cache hits {})",
        events_per_sec, probe.steal_attempts, probe.peer_cache_hits
    );
    println!("{label:<40} metrics-on overhead {overhead_pct:+.2}% (median of pairs, budget < 5%)");
    if overhead_pct >= 5.0 {
        println!("WARNING: {label} metrics overhead {overhead_pct:+.2}% exceeds the 5% budget");
    }
    Json::Obj(vec![
        ("name".into(), Json::Str(label.into())),
        ("events".into(), Json::Int(events as u128)),
        (
            "steal_attempts".into(),
            Json::Int(probe.steal_attempts as u128),
        ),
        (
            "peer_cache_hits".into(),
            Json::Int(probe.peer_cache_hits as u128),
        ),
        ("samples".into(), Json::Int(samples as u128)),
        ("median_ns".into(), Json::Int(median_ns)),
        ("mean_ns".into(), Json::Int(mean_ns)),
        ("min_ns".into(), Json::Int(min_ns)),
        ("mean_ns_metrics".into(), Json::Int(mean_ns_metrics)),
        (
            "metrics_overhead_pct".into(),
            Json::Num((overhead_pct * 100.0).round() / 100.0),
        ),
        ("events_per_sec".into(), Json::Num(events_per_sec.round())),
    ])
}

/// The million-node stress row: 2^20-node grid, crash + load + adaptive
/// growth, measured over a fixed 10 s slice of virtual time (the scenario
/// caps `max_virtual_time`; see `Scenario::million`). One run processes
/// ~50 M events, so there is no untimed probe and no metered variant —
/// each timed sample doubles as the determinism check on the event count.
fn bench_million(samples: u32) -> Json {
    let scenario = Scenario::million();
    let label = "des_million_node";
    let mut ns: Vec<u128> = Vec::with_capacity(samples as usize);
    let mut probe: Option<RunResult> = None;
    for _ in 0..samples {
        let cfg = scenario.config(AdaptMode::Adapt); // built outside the timer
        let t = Instant::now();
        let r = black_box(GridSim::run(cfg));
        ns.push(t.elapsed().as_nanos());
        assert!(
            r.timed_out,
            "million-node bench is a bounded virtual-time slice by design"
        );
        if let Some(p) = &probe {
            assert_eq!(
                p.events_processed, r.events_processed,
                "million-node run must be deterministic"
            );
        }
        probe = Some(r);
    }
    let probe = probe.expect("samples > 0");
    let events = probe.events_processed;
    let mean = ns.iter().sum::<u128>() / ns.len() as u128;
    let min = *ns.iter().min().expect("samples > 0");
    ns.sort_unstable();
    let median_ns = median(&ns);
    let events_per_sec = events as f64 / (median_ns as f64 / 1e9);
    println!(
        "{label:<40} median {:>12}   mean {:>12}   min {:>12}   ({samples} samples)",
        fmt_ns(median_ns),
        fmt_ns(mean),
        fmt_ns(min),
    );
    println!(
        "{label:<40} {events} events, {:.0} events/sec (steals {}, final nodes {})",
        events_per_sec,
        probe.steal_attempts,
        probe.final_node_count()
    );
    Json::Obj(vec![
        ("name".into(), Json::Str(label.into())),
        ("events".into(), Json::Int(events as u128)),
        (
            "steal_attempts".into(),
            Json::Int(probe.steal_attempts as u128),
        ),
        (
            "final_nodes".into(),
            Json::Int(probe.final_node_count() as u128),
        ),
        ("samples".into(), Json::Int(samples as u128)),
        ("median_ns".into(), Json::Int(median_ns)),
        ("mean_ns".into(), Json::Int(mean)),
        ("min_ns".into(), Json::Int(min)),
        ("events_per_sec".into(), Json::Num(events_per_sec.round())),
    ])
}

fn main() {
    let samples = if quick_mode() { 5 } else { 16 };
    let million_samples = if quick_mode() { 1 } else { 3 };
    let runs = vec![
        bench_one(ScenarioId::S1Overhead, "des_scenario1_overhead", samples),
        bench_one(
            ScenarioId::S4OverloadedLink,
            "des_scenario4_wan_link",
            samples,
        ),
        bench_million(million_samples),
    ];
    let report = Json::Obj(vec![
        ("bench".into(), Json::Str("des_throughput".into())),
        ("quick".into(), Json::Str(quick_mode().to_string())),
        ("runs".into(), Json::Arr(runs)),
    ]);
    let path = std::env::var("SAGRID_BENCH_OUT")
        .unwrap_or_else(|_| "BENCH_des_throughput.json".to_string());
    std::fs::write(&path, report.pretty()).expect("write benchmark report");
    println!("wrote {path}");
}
