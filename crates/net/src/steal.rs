//! The worker ↔ worker steal plane: exporting, stealing and completing
//! serialized divide-and-conquer jobs over TCP.
//!
//! Control traffic (join, heartbeats, statistics) goes through the hub;
//! steal traffic is point-to-point. Each worker process runs a
//! [`spawn_steal_server`] listener backed by an [`ExportPool`] of
//! serialized jobs, announces its address to the hub, and learns every
//! peer's address from the hub's `PeerDirectory` broadcasts. When a
//! worker's in-process runtime runs dry, the [`NetStealHook`] picks a
//! victim by CRS — a random peer in the own cluster first, then a random
//! peer in another cluster, the same policy the in-process scheduler and
//! the discrete-event engine use — requests one job, executes it locally
//! and wires the value back.
//!
//! Jobs are pure, so the fault story is simple: a victim re-pends any job
//! whose thief has been silent too long ([`ExportPool::reclaim_stale`]),
//! and the first result to arrive for a job id wins — a late duplicate
//! from a slow thief is dropped, not double-counted.
//!
//! Every steal round trip is measured on the wall clock. The thief feeds
//! the measurement into its runtime's `inter_comm` overhead via
//! [`WorkerCtx::note_remote_wait`], which is how the coordinator's
//! inter-cluster-communication input becomes a real wire quantity in
//! process mode instead of an emulated delay.

use crate::wire::{recv_message, send_message, Message, PeerInfo, StealJob};
use sagrid_core::ids::{ClusterId, NodeId};
use sagrid_core::metrics::{Counter, Histogram, Metrics};
use sagrid_core::rng::{Rng64, Xoshiro256StarStar};
use sagrid_runtime::{RemoteStealHook, WorkerCtx};
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::io;
use std::net::{TcpListener, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Bucket bounds (microseconds) for the per-steal latency histogram:
/// loopback round trips sit in the first buckets, cross-site WAN steals in
/// the last ones.
const LATENCY_BOUNDS_US: &[u64] = &[50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 50_000];

/// Pre-resolved steal-plane metric handles; `None` when metrics are
/// disabled (same idiom as [`crate::conn::NetMetrics`]).
#[derive(Clone)]
pub struct StealMetrics {
    remote_ok: Arc<Counter>,
    remote_failed: Arc<Counter>,
    latency_us: Arc<Histogram>,
}

impl StealMetrics {
    /// Resolves the handles; `None` when metrics are disabled.
    pub fn resolve(metrics: &Metrics) -> Option<Self> {
        metrics.is_enabled().then(|| Self {
            remote_ok: metrics.counter("net.steals.remote_ok").expect("enabled"),
            remote_failed: metrics
                .counter("net.steals.remote_failed")
                .expect("enabled"),
            latency_us: metrics
                .histogram("net.steals.latency_us", LATENCY_BOUNDS_US)
                .expect("enabled"),
        })
    }
}

/// A job currently in a thief's hands.
struct Exported {
    payload: Vec<u8>,
    since: Instant,
}

#[derive(Default)]
struct PoolState {
    next_id: u64,
    offered: u64,
    pending: VecDeque<(u64, Vec<u8>)>,
    exported: BTreeMap<u64, Exported>,
    done: BTreeSet<u64>,
    sum: u64,
}

/// Point-in-time view of an [`ExportPool`] for progress logging.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PoolSnapshot {
    /// Jobs ever offered.
    pub offered: u64,
    /// Jobs completed (locally or by a thief).
    pub completed: u64,
    /// Jobs waiting to be taken.
    pub pending: u64,
    /// Jobs out with a thief, result not yet seen.
    pub exported: u64,
}

/// The victim side of the steal plane: serialized jobs waiting to be
/// handed to thieves (or executed locally), jobs out with thieves, and
/// the accumulated results.
///
/// The owning process offers its root job's frontier, then drains the pool
/// by executing [`ExportPool::take_local`] jobs itself while the steal
/// server exports others concurrently; [`ExportPool::is_done`] flips once
/// every offered job has exactly one counted result.
pub struct ExportPool {
    state: Mutex<PoolState>,
}

impl Default for ExportPool {
    fn default() -> Self {
        Self::new()
    }
}

impl ExportPool {
    /// An empty pool.
    pub fn new() -> Self {
        Self {
            state: Mutex::new(PoolState::default()),
        }
    }

    /// Queues a serialized job for export; returns its pool-local id.
    pub fn offer(&self, payload: Vec<u8>) -> u64 {
        let mut s = self.state.lock().expect("pool poisoned");
        let id = s.next_id;
        s.next_id += 1;
        s.offered += 1;
        s.pending.push_back((id, payload));
        id
    }

    /// Hands one pending job to a thief, marking it exported as of now.
    pub fn take_for_thief(&self) -> Option<StealJob> {
        let mut s = self.state.lock().expect("pool poisoned");
        // Thieves take from the back, the owner from the front — the same
        // ends-apart discipline as an in-process work-stealing deque.
        let (id, payload) = s.pending.pop_back()?;
        s.exported.insert(
            id,
            Exported {
                payload: payload.clone(),
                since: Instant::now(),
            },
        );
        Some(StealJob { id, payload })
    }

    /// Takes one pending job for local execution by the owner. The caller
    /// must report the value through [`ExportPool::complete`].
    pub fn take_local(&self) -> Option<(u64, Vec<u8>)> {
        let mut s = self.state.lock().expect("pool poisoned");
        s.pending.pop_front()
    }

    /// Counts a result for job `id`. First result wins: duplicates (a
    /// reclaimed job raced its original thief) return `false` and are not
    /// added to the sum. Unknown ids return `false`.
    pub fn complete(&self, id: u64, value: u64) -> bool {
        let mut s = self.state.lock().expect("pool poisoned");
        if id >= s.next_id || s.done.contains(&id) {
            return false;
        }
        s.done.insert(id);
        s.sum += value;
        s.exported.remove(&id);
        s.pending.retain(|(i, _)| *i != id);
        true
    }

    /// Re-pends every job exported longer than `max_age` ago without a
    /// result — the thief is presumed dead; if its result shows up later
    /// anyway, first-result-wins drops the duplicate. Returns how many
    /// jobs were reclaimed.
    pub fn reclaim_stale(&self, max_age: Duration) -> usize {
        let mut s = self.state.lock().expect("pool poisoned");
        let now = Instant::now();
        let stale: Vec<u64> = s
            .exported
            .iter()
            .filter(|(_, e)| now.duration_since(e.since) > max_age)
            .map(|(id, _)| *id)
            .collect();
        for id in &stale {
            let e = s.exported.remove(id).expect("listed above");
            s.pending.push_back((*id, e.payload));
        }
        stale.len()
    }

    /// Whether every offered job has a counted result.
    pub fn is_done(&self) -> bool {
        let s = self.state.lock().expect("pool poisoned");
        s.done.len() as u64 == s.offered
    }

    /// Sum of all counted results (the root value once [`is_done`]).
    ///
    /// [`is_done`]: ExportPool::is_done
    pub fn sum(&self) -> u64 {
        self.state.lock().expect("pool poisoned").sum
    }

    /// Progress snapshot.
    pub fn snapshot(&self) -> PoolSnapshot {
        let s = self.state.lock().expect("pool poisoned");
        PoolSnapshot {
            offered: s.offered,
            completed: s.done.len() as u64,
            pending: s.pending.len() as u64,
            exported: s.exported.len() as u64,
        }
    }
}

/// Serves this process's [`ExportPool`] to thieves: accepts connections on
/// `listener` and answers `StealRequest` with `StealReply`, folding
/// returned `StealResult`s into the pool. Threads are detached; they exit
/// when their peer disconnects (or the process does). `served` counts
/// exported jobs when metrics are enabled.
pub fn spawn_steal_server(
    listener: TcpListener,
    pool: Arc<ExportPool>,
    served: Option<Arc<Counter>>,
) -> io::Result<std::net::SocketAddr> {
    let addr = listener.local_addr()?;
    std::thread::Builder::new()
        .name("steal-accept".to_string())
        .spawn(move || {
            let mut n = 0u64;
            while let Ok((stream, _)) = listener.accept() {
                n += 1;
                let pool = Arc::clone(&pool);
                let served = served.clone();
                let _ = std::thread::Builder::new()
                    .name(format!("steal-srv-{n}"))
                    .spawn(move || {
                        let _ = stream.set_nodelay(true);
                        let mut r = &stream;
                        loop {
                            match recv_message(&mut r) {
                                Ok(Some(Message::StealRequest { .. })) => {
                                    let job = pool.take_for_thief();
                                    if job.is_some() {
                                        if let Some(c) = &served {
                                            c.inc();
                                        }
                                    }
                                    if send_message(&mut (&stream), &Message::StealReply { job })
                                        .is_err()
                                    {
                                        break;
                                    }
                                }
                                Ok(Some(Message::StealResult { id, value })) => {
                                    pool.complete(id, value);
                                }
                                // EOF, transport error or a non-steal
                                // message: drop the peer.
                                _ => break,
                            }
                        }
                    });
            }
        })?;
    Ok(addr)
}

/// The thief side: a CRS victim selector over the hub-fed peer directory,
/// with one cached connection per victim.
pub struct StealClient {
    me: NodeId,
    cluster: ClusterId,
    directory: Mutex<Vec<PeerInfo>>,
    conns: Mutex<HashMap<NodeId, TcpStream>>,
    rng: Mutex<Xoshiro256StarStar>,
    sm: Option<StealMetrics>,
    /// Reply wait bound per victim, so a stuck victim cannot park the
    /// worker loop indefinitely.
    read_timeout: Duration,
    /// After a fully dry round, retries are suppressed until this instant
    /// so idle workers do not hammer dry victims at park frequency.
    retry_after: Mutex<Instant>,
    backoff: Duration,
}

impl StealClient {
    /// A client stealing on behalf of node `me` in `cluster`. `sm` comes
    /// from [`StealMetrics::resolve`].
    pub fn new(me: NodeId, cluster: ClusterId, sm: Option<StealMetrics>) -> Self {
        Self {
            me,
            cluster,
            directory: Mutex::new(Vec::new()),
            conns: Mutex::new(HashMap::new()),
            rng: Mutex::new(Xoshiro256StarStar::seeded(
                0x57EA1 ^ u64::from(me.0).wrapping_mul(0x9E3779B97F4A7C15),
            )),
            sm,
            read_timeout: Duration::from_millis(500),
            retry_after: Mutex::new(Instant::now()),
            backoff: Duration::from_millis(2),
        }
    }

    /// Replaces the peer directory with a hub snapshot and lifts the dry
    /// backoff (new peers mean new chances).
    pub fn update_directory(&self, mut peers: Vec<PeerInfo>) {
        peers.retain(|p| p.node != self.me);
        *self.directory.lock().expect("directory poisoned") = peers;
        *self.retry_after.lock().expect("retry poisoned") = Instant::now();
    }

    /// Number of known peers.
    pub fn peers(&self) -> usize {
        self.directory.lock().expect("directory poisoned").len()
    }

    /// One CRS round: ask a random same-cluster victim, then a random
    /// victim in another cluster. Returns the stolen job and the victim
    /// to send the result to, or `None` when everyone is dry/unreachable
    /// (after which retries are suppressed briefly).
    pub fn try_steal(&self) -> Option<(NodeId, StealJob)> {
        if Instant::now() < *self.retry_after.lock().expect("retry poisoned") {
            return None;
        }
        let dir = self.directory.lock().expect("directory poisoned").clone();
        if dir.is_empty() {
            *self.retry_after.lock().expect("retry poisoned") = Instant::now() + self.backoff;
            return None;
        }
        for wide in [false, true] {
            let candidates: Vec<&PeerInfo> = dir
                .iter()
                .filter(|p| (p.cluster == self.cluster) != wide)
                .collect();
            if candidates.is_empty() {
                continue;
            }
            let pick = {
                let mut rng = self.rng.lock().expect("rng poisoned");
                candidates[rng.gen_index(candidates.len())]
            };
            match self.request_from(pick) {
                Ok(Some(job)) => {
                    if let Some(sm) = &self.sm {
                        sm.remote_ok.inc();
                    }
                    return Some((pick.node, job));
                }
                Ok(None) => {
                    if let Some(sm) = &self.sm {
                        sm.remote_failed.inc();
                    }
                }
                Err(_) => {
                    // Stale address or dead victim: drop the cached
                    // connection; the next directory update may revive it.
                    self.conns
                        .lock()
                        .expect("conns poisoned")
                        .remove(&pick.node);
                    if let Some(sm) = &self.sm {
                        sm.remote_failed.inc();
                    }
                }
            }
        }
        *self.retry_after.lock().expect("retry poisoned") = Instant::now() + self.backoff;
        None
    }

    /// Reports the value computed for a stolen job back to its victim.
    pub fn send_result(&self, victim: NodeId, id: u64, value: u64) -> bool {
        let mut conns = self.conns.lock().expect("conns poisoned");
        let Some(stream) = conns.get(&victim) else {
            return false;
        };
        if send_message(&mut (&*stream), &Message::StealResult { id, value }).is_err() {
            conns.remove(&victim);
            return false;
        }
        true
    }

    /// One request/reply round trip against `peer`, dialling (and caching)
    /// a connection on first use. Records per-steal latency when a job
    /// comes back.
    fn request_from(&self, peer: &PeerInfo) -> io::Result<Option<StealJob>> {
        let mut conns = self.conns.lock().expect("conns poisoned");
        if let std::collections::hash_map::Entry::Vacant(e) = conns.entry(peer.node) {
            let s = TcpStream::connect(&peer.steal_addr)?;
            s.set_nodelay(true)?;
            s.set_read_timeout(Some(self.read_timeout))?;
            e.insert(s);
        }
        let stream = conns.get(&peer.node).expect("just inserted");
        let start = Instant::now();
        send_message(&mut (&*stream), &Message::StealRequest { thief: self.me })?;
        match recv_message(&mut (&*stream))? {
            Some(Message::StealReply { job }) => {
                if job.is_some() {
                    if let Some(sm) = &self.sm {
                        sm.latency_us.record(start.elapsed().as_micros() as u64);
                    }
                }
                Ok(job)
            }
            _ => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "expected StealReply",
            )),
        }
    }
}

/// Reconstructs and executes a stolen payload; `None` means the payload
/// was undecodable (the victim reclaims the job by staleness).
pub type PayloadExecutor = dyn Fn(&WorkerCtx<'_>, &[u8]) -> Option<u64> + Send + Sync;

/// Bridges the runtime's [`RemoteStealHook`] to a [`StealClient`]: when a
/// worker thread runs dry it steals over the wire, executes the job via
/// the supplied executor (typically `sagrid_apps::remote::RemoteJob`
/// decode + run) and wires the value back. All wire wait lands in the
/// worker's measured `inter_comm` overhead.
pub struct NetStealHook {
    client: Arc<StealClient>,
    exec: Box<PayloadExecutor>,
}

impl NetStealHook {
    /// Couples `client` with a payload executor.
    pub fn new(
        client: Arc<StealClient>,
        exec: impl Fn(&WorkerCtx<'_>, &[u8]) -> Option<u64> + Send + Sync + 'static,
    ) -> Self {
        Self {
            client,
            exec: Box::new(exec),
        }
    }
}

impl RemoteStealHook for NetStealHook {
    fn try_remote_steal(&self, ctx: &WorkerCtx<'_>) -> bool {
        let start = Instant::now();
        let stolen = self.client.try_steal();
        ctx.note_remote_wait(start.elapsed());
        let Some((victim, job)) = stolen else {
            return false;
        };
        let Some(value) = (self.exec)(ctx, &job.payload) else {
            return false;
        };
        let start = Instant::now();
        self.client.send_result(victim, job.id, value);
        ctx.note_remote_wait(start.elapsed());
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_counts_each_job_exactly_once() {
        let pool = ExportPool::new();
        let a = pool.offer(vec![1]);
        let b = pool.offer(vec![2]);
        assert!(!pool.is_done());

        // Owner takes one end, a thief the other.
        let (local_id, _) = pool.take_local().unwrap();
        let stolen = pool.take_for_thief().unwrap();
        assert_ne!(local_id, stolen.id);
        assert_eq!(
            BTreeSet::from([local_id, stolen.id]),
            BTreeSet::from([a, b])
        );

        assert!(pool.complete(local_id, 10));
        assert!(pool.complete(stolen.id, 32));
        // Duplicates and unknown ids are rejected.
        assert!(!pool.complete(stolen.id, 99));
        assert!(!pool.complete(1234, 1));
        assert!(pool.is_done());
        assert_eq!(pool.sum(), 42);
    }

    #[test]
    fn stale_exports_are_reclaimed_and_late_results_do_not_double_count() {
        let pool = ExportPool::new();
        pool.offer(vec![7]);
        let stolen = pool.take_for_thief().unwrap();
        // Fresh export: nothing to reclaim.
        assert_eq!(pool.reclaim_stale(Duration::from_secs(60)), 0);
        std::thread::sleep(Duration::from_millis(5));
        assert_eq!(pool.reclaim_stale(Duration::from_millis(1)), 1);
        // Reclaimed job is pending again, payload intact.
        let (id, payload) = pool.take_local().unwrap();
        assert_eq!(id, stolen.id);
        assert_eq!(payload, vec![7]);
        assert!(pool.complete(id, 5));
        // The presumed-dead thief's result arrives after all: dropped.
        assert!(!pool.complete(stolen.id, 5));
        assert_eq!(pool.sum(), 5);
        assert!(pool.is_done());
    }

    #[test]
    fn steal_round_trip_over_loopback() {
        let pool = Arc::new(ExportPool::new());
        pool.offer(vec![0xAA, 0xBB]);
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = spawn_steal_server(listener, Arc::clone(&pool), None).unwrap();

        let metrics = Metrics::enabled();
        let client = StealClient::new(NodeId(9), ClusterId(1), StealMetrics::resolve(&metrics));
        client.update_directory(vec![PeerInfo {
            node: NodeId(1),
            cluster: ClusterId(0), // other cluster: exercises the wide tier
            steal_addr: addr.to_string(),
        }]);
        assert_eq!(client.peers(), 1);

        let (victim, job) = client.try_steal().expect("server has a job");
        assert_eq!(victim, NodeId(1));
        assert_eq!(job.payload, vec![0xAA, 0xBB]);
        assert_eq!(pool.snapshot().exported, 1);

        assert!(client.send_result(victim, job.id, 77));
        let deadline = Instant::now() + Duration::from_secs(5);
        while !pool.is_done() && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(pool.is_done(), "result never reached the pool");
        assert_eq!(pool.sum(), 77);

        let report = metrics.report();
        assert_eq!(report.counter("net.steals.remote_ok"), 1);
        // A dry follow-up counts as failed (after the backoff window).
        std::thread::sleep(Duration::from_millis(5));
        assert!(client.try_steal().is_none());
        assert_eq!(metrics.report().counter("net.steals.remote_failed"), 1);
    }

    #[test]
    fn own_entry_is_filtered_and_empty_directory_is_dry() {
        let client = StealClient::new(NodeId(4), ClusterId(0), None);
        assert!(client.try_steal().is_none());
        client.update_directory(vec![PeerInfo {
            node: NodeId(4), // self must never be a victim
            cluster: ClusterId(0),
            steal_addr: "127.0.0.1:1".to_string(),
        }]);
        assert_eq!(client.peers(), 0);
        assert!(client.try_steal().is_none());
    }

    #[test]
    fn unreachable_victim_counts_as_failed_not_a_hang() {
        let metrics = Metrics::enabled();
        let client = StealClient::new(NodeId(2), ClusterId(0), StealMetrics::resolve(&metrics));
        client.update_directory(vec![PeerInfo {
            node: NodeId(3),
            cluster: ClusterId(0),
            // A port nothing listens on: connect must fail fast.
            steal_addr: "127.0.0.1:9".to_string(),
        }]);
        let start = Instant::now();
        assert!(client.try_steal().is_none());
        assert!(start.elapsed() < Duration::from_secs(2));
        assert_eq!(metrics.report().counter("net.steals.remote_failed"), 1);
    }
}
