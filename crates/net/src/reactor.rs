//! `net::reactor` — a std-only readiness reactor so one thread serves
//! thousands of connections.
//!
//! The per-connection reader/writer thread pairs of the original transport
//! cap a hub at a few hundred workers (two OS threads each); the paper's
//! control plane must absorb grid-scale churn. This module multiplexes
//! every socket through one `epoll(7)` instance (falling back to `poll(2)`
//! when `epoll_create1` is unavailable) driven by a single loop:
//!
//! * **Readiness registration** — level-triggered read interest on every
//!   connection, write interest only while its queue is non-empty.
//! * **Incremental frame decoding** — [`FrameDecoder`] resumes across
//!   partial reads and is byte-identical to the one-shot
//!   [`crate::wire::read_frame`] path (the codec fuzz suite proves it).
//! * **Bounded non-blocking write queues** — a hard per-connection byte
//!   bound; a stalled peer drops frames (counted in
//!   `net.reactor.backpressure_drops`) instead of wedging the loop or
//!   growing memory without bound.
//! * **Timers** — one-shot deadlines with same-deadline FIFO ordering,
//!   driving heartbeat failure detection and coalesced broadcasts.
//!
//! Everything is `std` + the C library the process is already linked
//! against: the `epoll`/`poll` syscalls are declared `extern "C"` below,
//! and non-blocking mode comes from `TcpStream::set_nonblocking`.

use crate::wire::{Message, WireError, MAX_FRAME};
use sagrid_core::metrics::{Counter, Gauge, Histogram, Metrics};
use std::collections::{BTreeMap, BinaryHeap, VecDeque};
use std::hash::{Hash, Hasher};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};

/// Reactor-local identifier of a registered connection (monotonic, never
/// reused; the same width as the old transport's `ConnId`).
pub type Token = u64;

/// Default hard bound on one connection's queued-but-unwritten bytes.
pub const WRITE_QUEUE_BOUND: usize = 4 << 20;

const LISTENER_TOKEN: u64 = 0;
const WAKER_TOKEN: u64 = 1;
const FIRST_CONN_TOKEN: Token = 2;

/// Upper bounds (µs) for the loop-iteration latency histogram.
const LOOP_LATENCY_BOUNDS_US: &[u64] = &[50, 100, 250, 500, 1_000, 5_000, 25_000, 100_000];

// ---------------------------------------------------------------------------
// Syscall layer: epoll(7) with a poll(2) fallback, declared against the
// already-linked C library (the workspace admits no external crates).
// ---------------------------------------------------------------------------

mod sys {
    use std::os::raw::{c_int, c_short, c_ulong};

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLL_CTL_MOD: c_int = 3;
    pub const EPOLL_CLOEXEC: c_int = 0o2000000;

    pub const POLLIN: c_short = 0x001;
    pub const POLLOUT: c_short = 0x004;
    pub const POLLERR: c_short = 0x008;
    pub const POLLHUP: c_short = 0x010;

    /// The kernel ABI packs this struct on x86-64; other architectures use
    /// natural alignment.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct PollFd {
        pub fd: c_int,
        pub events: c_short,
        pub revents: c_short,
    }

    extern "C" {
        pub fn epoll_create1(flags: c_int) -> c_int;
        pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        pub fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout_ms: c_int,
        ) -> c_int;
        pub fn close(fd: c_int) -> c_int;
        pub fn poll(fds: *mut PollFd, nfds: c_ulong, timeout_ms: c_int) -> c_int;
    }
}

/// Which multiplexing syscall this reactor runs on.
enum Backend {
    /// An `epoll` instance fd (closed on drop).
    Epoll(i32),
    /// `poll(2)`: the fd array is rebuilt per wait — O(n) per iteration,
    /// but always available.
    Poll,
}

impl Backend {
    fn new() -> Backend {
        // Safety: epoll_create1 takes a flags int and returns an fd or -1.
        let fd = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
        if fd >= 0 {
            Backend::Epoll(fd)
        } else {
            Backend::Poll
        }
    }

    fn ctl(&self, op: i32, fd: i32, events: u32, token: u64) {
        if let Backend::Epoll(ep) = self {
            let mut ev = sys::EpollEvent {
                events,
                data: token,
            };
            // Safety: ev lives across the call; the kernel copies it.
            unsafe { sys::epoll_ctl(*ep, op, fd, &mut ev) };
        }
    }

    fn register(&self, fd: i32, want_write: bool, token: u64) {
        let events = sys::EPOLLIN | if want_write { sys::EPOLLOUT } else { 0 };
        self.ctl(sys::EPOLL_CTL_ADD, fd, events, token);
    }

    fn rearm(&self, fd: i32, want_write: bool, token: u64) {
        let events = sys::EPOLLIN | if want_write { sys::EPOLLOUT } else { 0 };
        self.ctl(sys::EPOLL_CTL_MOD, fd, events, token);
    }

    fn deregister(&self, fd: i32) {
        self.ctl(sys::EPOLL_CTL_DEL, fd, 0, 0);
    }
}

impl Drop for Backend {
    fn drop(&mut self) {
        if let Backend::Epoll(fd) = self {
            // Safety: fd is an epoll instance we own.
            unsafe { sys::close(*fd) };
        }
    }
}

/// Readiness of one fd, normalised across the two backends.
#[derive(Clone, Copy)]
struct Ready {
    token: u64,
    readable: bool,
    writable: bool,
}

// ---------------------------------------------------------------------------
// Incremental frame decoding
// ---------------------------------------------------------------------------

/// A resumable decoder for the 4-byte-LE length-prefixed framing of
/// [`crate::wire`]. Feed it whatever byte slices the socket yields —
/// single bytes, frame fragments, many frames at once — and it produces
/// exactly the messages the one-shot [`crate::wire::read_frame`] +
/// [`Message::decode`] path would (the codec fuzz suite asserts byte
/// identity across every split point).
#[derive(Debug, Default)]
pub struct FrameDecoder {
    header: [u8; 4],
    header_have: usize,
    /// Payload length once the header is complete.
    need: usize,
    payload: Vec<u8>,
    in_payload: bool,
}

impl FrameDecoder {
    /// A decoder at a frame boundary.
    pub fn new() -> FrameDecoder {
        FrameDecoder::default()
    }

    /// True when no partial frame is buffered — EOF here is a clean close;
    /// EOF mid-frame is a protocol violation (mirrors `read_frame`).
    pub fn at_boundary(&self) -> bool {
        !self.in_payload && self.header_have == 0
    }

    /// Consumes `bytes`, appending every completed message to `out`.
    /// An error poisons the connection (oversized or undecodable frame);
    /// the caller must drop the peer, exactly as the blocking path does.
    pub fn feed(&mut self, mut bytes: &[u8], out: &mut Vec<Message>) -> Result<(), WireError> {
        loop {
            if !self.in_payload {
                if bytes.is_empty() {
                    return Ok(());
                }
                let take = (4 - self.header_have).min(bytes.len());
                self.header[self.header_have..self.header_have + take]
                    .copy_from_slice(&bytes[..take]);
                self.header_have += take;
                bytes = &bytes[take..];
                if self.header_have < 4 {
                    return Ok(());
                }
                let len = u32::from_le_bytes(self.header) as usize;
                if len > MAX_FRAME {
                    return Err(WireError::FrameTooLarge(len));
                }
                self.need = len;
                self.payload.clear();
                self.in_payload = true;
            }
            if self.payload.len() < self.need {
                let take = (self.need - self.payload.len()).min(bytes.len());
                self.payload.extend_from_slice(&bytes[..take]);
                bytes = &bytes[take..];
            }
            if self.payload.len() == self.need {
                out.push(Message::decode(&self.payload)?);
                self.in_payload = false;
                self.header_have = 0;
            } else {
                return Ok(()); // mid-payload, out of bytes
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

/// Pre-resolved `net.reactor.*` instruments plus the `net.*` transport
/// counters the old per-connection threads maintained (dashboards keep
/// working across the transport swap).
#[derive(Clone)]
pub struct ReactorMetrics {
    open_connections: Arc<Gauge>,
    accepts: Arc<Counter>,
    loop_latency_us: Arc<Histogram>,
    pending_write_bytes: Arc<Gauge>,
    backpressure_drops: Arc<Counter>,
    stalls: Arc<Counter>,
    frames_sent: Arc<Counter>,
    frames_received: Arc<Counter>,
    bytes_sent: Arc<Counter>,
    bytes_received: Arc<Counter>,
    decode_errors: Arc<Counter>,
}

impl ReactorMetrics {
    /// Resolves the instrument handles; `None` when metrics are disabled.
    pub fn resolve(m: &Metrics) -> Option<ReactorMetrics> {
        m.is_enabled().then(|| ReactorMetrics {
            open_connections: m.gauge("net.reactor.open_connections").expect("enabled"),
            accepts: m.counter("net.reactor.accepts").expect("enabled"),
            loop_latency_us: m
                .histogram("net.reactor.loop_latency_us", LOOP_LATENCY_BOUNDS_US)
                .expect("enabled"),
            pending_write_bytes: m.gauge("net.reactor.pending_write_bytes").expect("enabled"),
            backpressure_drops: m
                .counter("net.reactor.backpressure_drops")
                .expect("enabled"),
            stalls: m.counter("net.reactor.stalls").expect("enabled"),
            frames_sent: m.counter("net.frames_sent").expect("enabled"),
            frames_received: m.counter("net.frames_received").expect("enabled"),
            bytes_sent: m.counter("net.bytes_sent").expect("enabled"),
            bytes_received: m.counter("net.bytes_received").expect("enabled"),
            decode_errors: m.counter("net.decode_errors").expect("enabled"),
        })
    }
}

// ---------------------------------------------------------------------------
// The reactor
// ---------------------------------------------------------------------------

/// What one [`Reactor::poll`] round surfaces to the owning loop.
#[derive(Debug)]
pub enum ReactorEvent {
    /// The listener accepted a connection; registered under this token.
    /// Always precedes any `Frame` from the same token.
    Accepted(Token, SocketAddr),
    /// A complete message decoded off the connection.
    Frame(Token, Message),
    /// The connection is gone (EOF, transport error, protocol violation or
    /// a local [`Reactor::close`]). Exactly one per token.
    Closed(Token),
    /// A timer armed with [`Reactor::arm_timer`] reached its deadline.
    Timer(u64),
}

struct Conn {
    stream: TcpStream,
    peer: SocketAddr,
    decoder: FrameDecoder,
    /// Queued encoded frames; the front may be partially written.
    wq: VecDeque<Arc<[u8]>>,
    /// Bytes of `wq.front()` already on the socket.
    wq_head: usize,
    /// Total unwritten bytes across the queue.
    wq_bytes: usize,
    /// Whether EPOLLOUT interest is currently registered.
    want_write: bool,
    /// Peer closed its write side at a frame boundary; we only live on to
    /// drain our own queue (the half-open contract).
    read_closed: bool,
    /// A local graceful close: drain the queue, then report `Closed`.
    closing: bool,
}

impl Conn {
    fn done_writing(&self) -> bool {
        self.wq.is_empty()
    }
}

/// Wakes a [`Reactor::poll`] blocked in the waiting syscall from another
/// thread (cheap, clonable, never blocks).
#[derive(Clone)]
pub struct Waker {
    tx: Arc<UnixStream>,
}

impl Waker {
    /// Nudges the reactor; a full pipe means a wake is already pending.
    pub fn wake(&self) {
        let _ = (&*self.tx).write(&[1u8]);
    }
}

/// A single-threaded readiness reactor over one optional listener, any
/// number of stream connections, and a set of one-shot timers.
pub struct Reactor {
    backend: Backend,
    listener: Option<TcpListener>,
    conns: BTreeMap<Token, Conn>,
    next_token: Token,
    /// Min-heap of (deadline, arm-sequence, key): the sequence number makes
    /// same-deadline timers fire in arm order (FIFO).
    timers: BinaryHeap<std::cmp::Reverse<(Instant, u64, u64)>>,
    timer_seq: u64,
    /// Tokens with queued writes to attempt on the next flush pass.
    dirty: Vec<Token>,
    waker_rx: Option<UnixStream>,
    waker_tx: Option<Arc<UnixStream>>,
    wq_bound: usize,
    rm: Option<ReactorMetrics>,
    /// Scratch read buffer, reused across connections and polls.
    scratch: Vec<u8>,
    ep_events: Vec<sys::EpollEvent>,
}

impl Reactor {
    /// A client-side reactor: no listener, dial with [`Reactor::connect`].
    pub fn new(metrics: &Metrics) -> io::Result<Reactor> {
        Self::build(None, metrics)
    }

    /// A server-side reactor accepting on `listener`.
    pub fn with_listener(listener: TcpListener, metrics: &Metrics) -> io::Result<Reactor> {
        listener.set_nonblocking(true)?;
        Self::build(Some(listener), metrics)
    }

    fn build(listener: Option<TcpListener>, metrics: &Metrics) -> io::Result<Reactor> {
        let backend = Backend::new();
        if let Some(l) = &listener {
            backend.register(l.as_raw_fd(), false, LISTENER_TOKEN);
        }
        Ok(Reactor {
            backend,
            listener,
            conns: BTreeMap::new(),
            next_token: FIRST_CONN_TOKEN,
            timers: BinaryHeap::new(),
            timer_seq: 0,
            dirty: Vec::new(),
            waker_rx: None,
            waker_tx: None,
            wq_bound: WRITE_QUEUE_BOUND,
            rm: ReactorMetrics::resolve(metrics),
            scratch: vec![0u8; 64 << 10],
            ep_events: Vec::with_capacity(1024),
        })
    }

    /// Overrides the per-connection write-queue byte bound.
    pub fn set_write_queue_bound(&mut self, bytes: usize) {
        self.wq_bound = bytes.max(MAX_FRAME + 4);
    }

    /// The listener's bound port (0 when listener-less).
    pub fn local_port(&self) -> u16 {
        self.listener
            .as_ref()
            .and_then(|l| l.local_addr().ok())
            .map(|a| a.port())
            .unwrap_or(0)
    }

    /// Detaches and returns the (still bound, non-blocking) listener —
    /// how a standby hands its front door to the takeover hub.
    pub fn take_listener(&mut self) -> Option<TcpListener> {
        let l = self.listener.take()?;
        self.backend.deregister(l.as_raw_fd());
        Some(l)
    }

    /// A handle other threads can use to interrupt a blocked `poll`.
    pub fn waker(&mut self) -> io::Result<Waker> {
        if self.waker_tx.is_none() {
            let (tx, rx) = UnixStream::pair()?;
            tx.set_nonblocking(true)?;
            rx.set_nonblocking(true)?;
            self.backend.register(rx.as_raw_fd(), false, WAKER_TOKEN);
            self.waker_rx = Some(rx);
            self.waker_tx = Some(Arc::new(tx));
        }
        Ok(Waker {
            tx: Arc::clone(self.waker_tx.as_ref().expect("just set")),
        })
    }

    /// Registers an established stream. The reactor owns it from here on.
    pub fn register(&mut self, stream: TcpStream) -> io::Result<Token> {
        stream.set_nonblocking(true)?;
        stream.set_nodelay(true)?;
        let peer = stream.peer_addr()?;
        let token = self.next_token;
        self.next_token += 1;
        self.backend.register(stream.as_raw_fd(), false, token);
        self.conns.insert(
            token,
            Conn {
                stream,
                peer,
                decoder: FrameDecoder::new(),
                wq: VecDeque::new(),
                wq_head: 0,
                wq_bytes: 0,
                want_write: false,
                read_closed: false,
                closing: false,
            },
        );
        if let Some(rm) = &self.rm {
            rm.open_connections.add(1);
        }
        Ok(token)
    }

    /// Dials `addr` (blocking connect, as every dial path already does)
    /// and registers the stream.
    pub fn connect(&mut self, addr: &str) -> io::Result<Token> {
        self.register(TcpStream::connect(addr)?)
    }

    /// Whether `token` is still registered.
    pub fn has_conn(&self, token: Token) -> bool {
        self.conns.contains_key(&token)
    }

    /// The remote address of a registered connection.
    pub fn peer_addr(&self, token: Token) -> Option<SocketAddr> {
        self.conns.get(&token).map(|c| c.peer)
    }

    /// Registered connections (the open-connections gauge's source).
    pub fn open_connections(&self) -> usize {
        self.conns.len()
    }

    /// Unwritten bytes across every write queue.
    pub fn pending_write_bytes(&self) -> usize {
        self.conns.values().map(|c| c.wq_bytes).sum()
    }

    /// Encodes `msg` as a wire frame (length prefix + payload), shareable
    /// across many queues — broadcasts encode once, clone the `Arc`.
    pub fn encode_frame(msg: &Message) -> Arc<[u8]> {
        let payload = msg.encode();
        let mut frame = Vec::with_capacity(payload.len() + 4);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&payload);
        frame.into()
    }

    /// Queues an encoded frame. `false` when the connection is gone, is
    /// closing, or its queue is at the byte bound (the frame is dropped and
    /// counted — backpressure must never wedge the loop).
    pub fn send_frame(&mut self, token: Token, frame: Arc<[u8]>) -> bool {
        let Some(conn) = self.conns.get_mut(&token) else {
            return false;
        };
        if conn.closing {
            return false;
        }
        if conn.wq_bytes + frame.len() > self.wq_bound {
            if let Some(rm) = &self.rm {
                rm.backpressure_drops.inc();
            }
            return false;
        }
        conn.wq_bytes += frame.len();
        if let Some(rm) = &self.rm {
            rm.pending_write_bytes.add(frame.len() as i64);
            rm.frames_sent.inc();
            rm.bytes_sent.add(frame.len() as u64);
        }
        conn.wq.push_back(frame);
        self.dirty.push(token);
        true
    }

    /// Encodes and queues one message.
    pub fn send(&mut self, token: Token, msg: &Message) -> bool {
        self.send_frame(token, Self::encode_frame(msg))
    }

    /// Requests a graceful close: pending writes drain, then the token
    /// reports `Closed`. Inbound frames from the peer are discarded.
    pub fn close(&mut self, token: Token) {
        if let Some(conn) = self.conns.get_mut(&token) {
            conn.closing = true;
            self.dirty.push(token);
        }
    }

    /// Arms a one-shot timer: the next `poll` at or after `deadline` emits
    /// [`ReactorEvent::Timer`] with `key`. Same-deadline timers fire in arm
    /// order. Re-arm from the handler for a periodic tick.
    pub fn arm_timer(&mut self, key: u64, deadline: Instant) {
        self.timer_seq += 1;
        self.timers
            .push(std::cmp::Reverse((deadline, self.timer_seq, key)));
    }

    /// Non-blockingly drains as much of `token`'s queue as the socket
    /// accepts. Returns `Err(())` when the connection must die.
    fn try_write(&mut self, token: Token) -> Result<(), ()> {
        let Some(conn) = self.conns.get_mut(&token) else {
            return Ok(());
        };
        let mut wrote = 0usize;
        let dead = loop {
            let Some(front) = conn.wq.front() else {
                break false;
            };
            match conn.stream.write(&front[conn.wq_head..]) {
                Ok(0) => break true,
                Ok(n) => {
                    conn.wq_head += n;
                    wrote += n;
                    if conn.wq_head == front.len() {
                        conn.wq.pop_front();
                        conn.wq_head = 0;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    // The socket buffer is full: register write interest and
                    // count the stall.
                    if !conn.want_write {
                        conn.want_write = true;
                        self.backend.rearm(conn.stream.as_raw_fd(), true, token);
                        if let Some(rm) = &self.rm {
                            rm.stalls.inc();
                        }
                    }
                    break false;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => break true,
            }
        };
        conn.wq_bytes -= wrote.min(conn.wq_bytes);
        if let Some(rm) = &self.rm {
            rm.pending_write_bytes.add(-(wrote as i64));
        }
        if dead {
            return Err(());
        }
        if conn.done_writing() {
            if conn.want_write {
                conn.want_write = false;
                self.backend.rearm(conn.stream.as_raw_fd(), false, token);
            }
            // A locally-closed or read-closed connection only lived to
            // drain; its queue is empty now.
            if conn.closing || conn.read_closed {
                return Err(());
            }
        }
        Ok(())
    }

    /// Removes `token`, deregisters its fd and reports exactly one
    /// `Closed`.
    fn reap(&mut self, token: Token, out: &mut Vec<ReactorEvent>) {
        if let Some(conn) = self.conns.remove(&token) {
            self.backend.deregister(conn.stream.as_raw_fd());
            if let Some(rm) = &self.rm {
                rm.open_connections.add(-1);
                rm.pending_write_bytes.add(-(conn.wq_bytes as i64));
            }
            // Shutdown both sides so a blocking peer unblocks promptly.
            let _ = conn.stream.shutdown(std::net::Shutdown::Both);
            out.push(ReactorEvent::Closed(token));
        }
    }

    /// Reads `token` to `WouldBlock`, decoding frames into `out`.
    fn handle_readable(&mut self, token: Token, out: &mut Vec<ReactorEvent>) {
        let mut msgs: Vec<Message> = Vec::new();
        let verdict = loop {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            match conn.stream.read(&mut self.scratch) {
                Ok(0) => {
                    // EOF. At a frame boundary with writes still queued the
                    // socket is half-open: keep draining. Mid-frame it is a
                    // protocol violation; either way reads are over.
                    if conn.decoder.at_boundary() && !conn.done_writing() && !conn.closing {
                        conn.read_closed = true;
                        break Ok(());
                    }
                    break Err(());
                }
                Ok(n) => {
                    if let Some(rm) = &self.rm {
                        rm.bytes_received.add(n as u64);
                    }
                    if conn.decoder.feed(&self.scratch[..n], &mut msgs).is_err() {
                        if let Some(rm) = &self.rm {
                            rm.decode_errors.inc();
                        }
                        break Err(());
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break Ok(()),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => break Err(()),
            }
        };
        if let Some(rm) = &self.rm {
            rm.frames_received.add(msgs.len() as u64);
        }
        // A closing connection's inbound traffic is discarded.
        let discard = self.conns.get(&token).map(|c| c.closing).unwrap_or(true);
        if !discard {
            out.extend(msgs.into_iter().map(|m| ReactorEvent::Frame(token, m)));
        }
        if verdict.is_err() {
            self.reap(token, out);
        }
    }

    /// Accepts until the listener would block.
    fn handle_accept(&mut self, out: &mut Vec<ReactorEvent>) {
        loop {
            let Some(listener) = &self.listener else {
                return;
            };
            match listener.accept() {
                Ok((stream, peer)) => {
                    if let Ok(token) = self.register(stream) {
                        if let Some(rm) = &self.rm {
                            rm.accepts.inc();
                        }
                        out.push(ReactorEvent::Accepted(token, peer));
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                // Transient accept errors (EMFILE, aborted handshakes):
                // drop the attempt, keep serving.
                Err(_) => return,
            }
        }
    }

    /// Waits on the backend for up to `timeout`, returning normalised
    /// readiness records.
    fn wait(&mut self, timeout: Duration) -> Vec<Ready> {
        let timeout_ms = timeout.as_millis().min(i32::MAX as u128) as i32;
        let mut ready = Vec::new();
        match &self.backend {
            Backend::Epoll(ep) => {
                self.ep_events
                    .resize(1024, sys::EpollEvent { events: 0, data: 0 });
                // Safety: the events buffer outlives the call; the kernel
                // writes at most `maxevents` entries.
                let n =
                    unsafe { sys::epoll_wait(*ep, self.ep_events.as_mut_ptr(), 1024, timeout_ms) };
                for ev in self.ep_events.iter().take(n.max(0) as usize) {
                    let events = ev.events; // copy out of the packed struct
                    ready.push(Ready {
                        token: ev.data,
                        readable: events & (sys::EPOLLIN | sys::EPOLLERR | sys::EPOLLHUP) != 0,
                        writable: events & (sys::EPOLLOUT | sys::EPOLLERR | sys::EPOLLHUP) != 0,
                    });
                }
            }
            Backend::Poll => {
                let mut fds: Vec<sys::PollFd> = Vec::with_capacity(self.conns.len() + 2);
                let mut tokens: Vec<u64> = Vec::with_capacity(self.conns.len() + 2);
                if let Some(l) = &self.listener {
                    fds.push(sys::PollFd {
                        fd: l.as_raw_fd(),
                        events: sys::POLLIN,
                        revents: 0,
                    });
                    tokens.push(LISTENER_TOKEN);
                }
                if let Some(rx) = &self.waker_rx {
                    fds.push(sys::PollFd {
                        fd: rx.as_raw_fd(),
                        events: sys::POLLIN,
                        revents: 0,
                    });
                    tokens.push(WAKER_TOKEN);
                }
                for (tok, conn) in &self.conns {
                    fds.push(sys::PollFd {
                        fd: conn.stream.as_raw_fd(),
                        events: sys::POLLIN | if conn.want_write { sys::POLLOUT } else { 0 },
                        revents: 0,
                    });
                    tokens.push(*tok);
                }
                // Safety: fds is a live slice for the duration of the call.
                let n = unsafe { sys::poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms) };
                if n > 0 {
                    for (pfd, tok) in fds.iter().zip(&tokens) {
                        if pfd.revents != 0 {
                            ready.push(Ready {
                                token: *tok,
                                readable: pfd.revents & (sys::POLLIN | sys::POLLERR | sys::POLLHUP)
                                    != 0,
                                writable: pfd.revents
                                    & (sys::POLLOUT | sys::POLLERR | sys::POLLHUP)
                                    != 0,
                            });
                        }
                    }
                }
            }
        }
        ready
    }

    /// One reactor turn: flush dirty write queues, wait for readiness (up
    /// to `max_wait`, shortened by the nearest timer deadline), service
    /// ready sockets, fire due timers. Events land in `out` (which is NOT
    /// cleared — callers drain it). Spurious wakeups are harmless: timers
    /// fire only at their deadline, and an eventless round yields an empty
    /// `out`.
    pub fn poll(&mut self, out: &mut Vec<ReactorEvent>, max_wait: Duration) -> io::Result<()> {
        let t0 = Instant::now();

        // 1. Flush pass over queues touched since the last turn.
        let dirty = std::mem::take(&mut self.dirty);
        let mut seen = Vec::with_capacity(dirty.len());
        for token in dirty {
            if seen.contains(&token) {
                continue;
            }
            seen.push(token);
            if self.try_write(token).is_err() {
                self.reap(token, out);
            }
        }

        // 2. Compute the wait: never past the nearest timer deadline, and
        // zero when events are already pending delivery.
        let now = Instant::now();
        let mut wait = if out.is_empty() {
            max_wait
        } else {
            Duration::ZERO
        };
        if let Some(std::cmp::Reverse((deadline, ..))) = self.timers.peek() {
            wait = wait.min(deadline.saturating_duration_since(now));
        }

        // 3. Wait and service readiness.
        let waited_from = Instant::now();
        let ready = self.wait(wait);
        let waited = waited_from.elapsed();
        for r in ready {
            match r.token {
                LISTENER_TOKEN => self.handle_accept(out),
                WAKER_TOKEN => {
                    if let Some(rx) = &mut self.waker_rx {
                        let mut buf = [0u8; 64];
                        while matches!((&*rx).read(&mut buf), Ok(n) if n > 0) {}
                    }
                }
                token => {
                    if r.writable && self.try_write(token).is_err() {
                        self.reap(token, out);
                    }
                    if r.readable {
                        self.handle_readable(token, out);
                    }
                }
            }
        }

        // 4. Fire due timers in (deadline, arm-order) sequence.
        let now = Instant::now();
        while let Some(std::cmp::Reverse((deadline, _, key))) = self.timers.peek().copied() {
            if deadline > now {
                break;
            }
            self.timers.pop();
            out.push(ReactorEvent::Timer(key));
        }

        if let Some(rm) = &self.rm {
            let busy = t0.elapsed().saturating_sub(waited);
            rm.loop_latency_us.record(busy.as_micros() as u64);
        }
        Ok(())
    }

    /// Blocks until `token`'s write queue is fully on the wire or `timeout`
    /// elapses — the farewell-frame guarantee (`Leaving` must beat the
    /// process exit). Returns `false` on timeout or a dead connection.
    pub fn flush(&mut self, token: Token, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            if self.try_write(token).is_err() {
                return false;
            }
            match self.conns.get(&token) {
                None => return false,
                Some(c) if c.done_writing() => return true,
                Some(c) => {
                    let left = deadline.saturating_duration_since(Instant::now());
                    if left.is_zero() {
                        return false;
                    }
                    // Wait for writability on just this fd; poll(2) works
                    // regardless of backend.
                    let mut pfd = [sys::PollFd {
                        fd: c.stream.as_raw_fd(),
                        events: sys::POLLOUT,
                        revents: 0,
                    }];
                    let ms = left.as_millis().min(50) as i32;
                    // Safety: pfd is a live array for the call.
                    unsafe { sys::poll(pfd.as_mut_ptr(), 1, ms.max(1)) };
                }
            }
        }
    }

    /// Best-effort drain of every queue (the shutdown broadcast path: give
    /// all peers their final frame before the process exits). Events
    /// surfaced while draining are discarded.
    pub fn drain(&mut self, timeout: Duration) {
        let deadline = Instant::now() + timeout;
        let mut sink = Vec::new();
        loop {
            let tokens: Vec<Token> = self
                .conns
                .iter()
                .filter(|(_, c)| !c.done_writing())
                .map(|(t, _)| *t)
                .collect();
            if tokens.is_empty() {
                return;
            }
            for token in tokens {
                if self.try_write(token).is_err() {
                    self.reap(token, &mut sink);
                }
            }
            if Instant::now() >= deadline || self.conns.values().all(|c| c.done_writing()) {
                return;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }
}

// ---------------------------------------------------------------------------
// Sharded map
// ---------------------------------------------------------------------------

const SHARDS: usize = 16;

/// A lock-striped map: keys hash onto [`SHARDS`] independent
/// `RwLock<BTreeMap>` shards, so readers and writers of different shards
/// never serialize on one lock. The hub keys its membership (node →
/// connection token) through this, keeping dispatch contention-free as
/// observer threads appear.
pub struct ShardedMap<K, V> {
    shards: Vec<RwLock<BTreeMap<K, V>>>,
}

impl<K: Ord + Hash + Clone, V: Clone> Default for ShardedMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Ord + Hash + Clone, V: Clone> ShardedMap<K, V> {
    /// An empty map with [`SHARDS`] shards.
    pub fn new() -> ShardedMap<K, V> {
        ShardedMap {
            shards: (0..SHARDS).map(|_| RwLock::new(BTreeMap::new())).collect(),
        }
    }

    fn shard(&self, k: &K) -> &RwLock<BTreeMap<K, V>> {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        k.hash(&mut h);
        &self.shards[(h.finish() as usize) % SHARDS]
    }

    /// Inserts, returning the previous value.
    pub fn insert(&self, k: K, v: V) -> Option<V> {
        self.shard(&k).write().expect("shard poisoned").insert(k, v)
    }

    /// A clone of the value under `k`.
    pub fn get(&self, k: &K) -> Option<V> {
        self.shard(k)
            .read()
            .expect("shard poisoned")
            .get(k)
            .cloned()
    }

    /// Removes and returns the value under `k`.
    pub fn remove(&self, k: &K) -> Option<V> {
        self.shard(k).write().expect("shard poisoned").remove(k)
    }

    /// Removes `k` only if its current value satisfies `pred` (the hub's
    /// "forget this node's connection only if it is still THIS connection").
    pub fn remove_if(&self, k: &K, pred: impl FnOnce(&V) -> bool) -> Option<V> {
        let mut shard = self.shard(k).write().expect("shard poisoned");
        if shard.get(k).is_some_and(pred) {
            shard.remove(k)
        } else {
            None
        }
    }

    /// Total entries across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().expect("shard poisoned").len())
            .sum()
    }

    /// Whether the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A key-ordered merged copy — deterministic iteration for broadcasts
    /// and fan-outs regardless of shard layout.
    pub fn snapshot(&self) -> BTreeMap<K, V> {
        let mut all = BTreeMap::new();
        for s in &self.shards {
            for (k, v) in s.read().expect("shard poisoned").iter() {
                all.insert(k.clone(), v.clone());
            }
        }
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sagrid_core::ids::NodeId;
    use std::net::TcpListener;

    fn pair(reactor: &mut Reactor) -> (Token, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let peer = TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        let token = reactor.register(server_side).unwrap();
        (token, peer)
    }

    fn poll_until(
        reactor: &mut Reactor,
        out: &mut Vec<ReactorEvent>,
        pred: impl Fn(&[ReactorEvent]) -> bool,
    ) {
        let deadline = Instant::now() + Duration::from_secs(5);
        while !pred(out) {
            assert!(Instant::now() < deadline, "timed out; events: {out:?}");
            reactor
                .poll(out, Duration::from_millis(20))
                .expect("poll failed");
        }
    }

    #[test]
    fn frames_round_trip_through_the_reactor() {
        let m = Metrics::enabled();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut reactor = Reactor::with_listener(listener, &m).unwrap();

        let mut peer = TcpStream::connect(addr).unwrap();
        let mut out = Vec::new();
        poll_until(&mut reactor, &mut out, |evs| {
            evs.iter().any(|e| matches!(e, ReactorEvent::Accepted(..)))
        });
        let token = match &out[0] {
            ReactorEvent::Accepted(t, _) => *t,
            other => panic!("expected Accepted, got {other:?}"),
        };

        crate::wire::send_message(&mut peer, &Message::Heartbeat { node: NodeId(3) }).unwrap();
        poll_until(&mut reactor, &mut out, |evs| {
            evs.iter().any(|e| matches!(e, ReactorEvent::Frame(..)))
        });
        assert!(out.iter().any(|e| matches!(
            e,
            ReactorEvent::Frame(t, Message::Heartbeat { node: NodeId(3) }) if *t == token
        )));

        assert!(reactor.send(token, &Message::Shutdown));
        reactor.poll(&mut out, Duration::from_millis(5)).unwrap();
        let got = crate::wire::recv_message(&mut peer).unwrap().unwrap();
        assert_eq!(got, Message::Shutdown);

        drop(peer);
        poll_until(&mut reactor, &mut out, |evs| {
            evs.iter()
                .any(|e| matches!(e, ReactorEvent::Closed(t) if *t == token))
        });
        assert_eq!(reactor.open_connections(), 0);
        let report = m.report();
        assert_eq!(report.counter("net.reactor.accepts"), 1);
        assert!(report.counter("net.frames_received") >= 1);
    }

    #[test]
    fn timers_fire_in_same_deadline_fifo_order() {
        let m = Metrics::disabled();
        let mut reactor = Reactor::new(&m).unwrap();
        let deadline = Instant::now() + Duration::from_millis(30);
        // Three timers at the SAME deadline plus one earlier and one later:
        // firing order must be (earlier), then arm order, then (later).
        reactor.arm_timer(10, deadline);
        reactor.arm_timer(11, deadline);
        reactor.arm_timer(12, deadline);
        reactor.arm_timer(1, deadline - Duration::from_millis(15));
        reactor.arm_timer(99, deadline + Duration::from_millis(15));

        let mut out = Vec::new();
        poll_until(&mut reactor, &mut out, |evs| {
            evs.iter()
                .filter(|e| matches!(e, ReactorEvent::Timer(_)))
                .count()
                == 5
        });
        let fired: Vec<u64> = out
            .iter()
            .filter_map(|e| match e {
                ReactorEvent::Timer(k) => Some(*k),
                _ => None,
            })
            .collect();
        assert_eq!(fired, vec![1, 10, 11, 12, 99]);
    }

    #[test]
    fn timers_tolerate_spurious_wakeups() {
        let m = Metrics::disabled();
        let mut reactor = Reactor::new(&m).unwrap();
        let waker = reactor.waker().unwrap();
        let deadline = Instant::now() + Duration::from_millis(120);
        reactor.arm_timer(7, deadline);

        // Hammer the waker from another thread: every poll wakes early and
        // returns with no events, but the timer must not fire before its
        // deadline.
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let noisy = std::thread::spawn(move || {
            while !stop2.load(std::sync::atomic::Ordering::Relaxed) {
                waker.wake();
                std::thread::sleep(Duration::from_millis(3));
            }
        });

        let mut out = Vec::new();
        loop {
            reactor.poll(&mut out, Duration::from_millis(500)).unwrap();
            if let Some(ReactorEvent::Timer(k)) = out.first() {
                assert_eq!(*k, 7);
                assert!(
                    Instant::now() >= deadline,
                    "timer fired before its deadline under spurious wakeups"
                );
                break;
            }
            assert!(out.is_empty(), "unexpected events: {out:?}");
            assert!(
                Instant::now() < deadline + Duration::from_secs(5),
                "timer never fired"
            );
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        noisy.join().unwrap();
    }

    #[test]
    fn half_open_peer_still_receives_the_queued_drain() {
        let m = Metrics::disabled();
        let mut reactor = Reactor::new(&m).unwrap();
        let (token, mut peer) = pair(&mut reactor);

        // Queue a burst of frames, then have the peer close its WRITE side
        // (we read EOF — a half-open socket) while it keeps reading. Every
        // queued frame must still arrive, then the token closes.
        let frames = 2000u32;
        for i in 0..frames {
            assert!(reactor.send(token, &Message::Heartbeat { node: NodeId(i) }));
        }
        peer.shutdown(std::net::Shutdown::Write).unwrap();

        let reader = std::thread::spawn(move || {
            let mut got = 0u32;
            while let Ok(Some(_)) = crate::wire::recv_message(&mut peer) {
                got += 1;
            }
            got
        });
        let mut out = Vec::new();
        poll_until(&mut reactor, &mut out, |evs| {
            evs.iter()
                .any(|e| matches!(e, ReactorEvent::Closed(t) if *t == token))
        });
        assert_eq!(reader.join().unwrap(), frames, "drain lost frames");
    }

    #[test]
    fn write_queue_bound_drops_and_counts_instead_of_growing() {
        let m = Metrics::enabled();
        let mut reactor = Reactor::new(&m).unwrap();
        reactor.set_write_queue_bound(MAX_FRAME + 4); // one frame's worth
        let (token, peer) = pair(&mut reactor);

        // The peer never reads. Pump frames until the socket buffer and
        // then the queue fill: sends must start returning false (dropped)
        // rather than queueing without bound.
        let big = Message::JoinAck {
            node: NodeId(1),
            accepted: false,
            reason: "x".repeat(64 << 10),
        };
        let mut dropped = 0u32;
        let mut out = Vec::new();
        for _ in 0..200 {
            if !reactor.send(token, &big) {
                dropped += 1;
            }
            reactor.poll(&mut out, Duration::ZERO).unwrap();
        }
        assert!(dropped > 0, "bound never engaged");
        assert!(reactor.pending_write_bytes() <= MAX_FRAME + 4);
        let report = m.report();
        assert_eq!(
            report.counter("net.reactor.backpressure_drops"),
            u64::from(dropped)
        );
        assert!(report.counter("net.reactor.stalls") >= 1);
        drop(peer);
    }

    #[test]
    fn incremental_decoder_matches_one_shot_byte_for_byte() {
        let msgs = vec![
            Message::Heartbeat { node: NodeId(7) },
            Message::JoinAck {
                node: NodeId(3),
                accepted: true,
                reason: String::new(),
            },
            Message::Shutdown,
        ];
        let mut stream = Vec::new();
        for m in &msgs {
            stream.extend_from_slice(&Reactor::encode_frame(m));
        }
        // Byte-at-a-time: the decoder must produce the same messages.
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        for b in &stream {
            dec.feed(std::slice::from_ref(b), &mut got).unwrap();
        }
        assert_eq!(got, msgs);
        assert!(dec.at_boundary());
        // Oversized frames are rejected before allocation.
        let mut bad = FrameDecoder::new();
        let huge = ((MAX_FRAME + 1) as u32).to_le_bytes();
        assert_eq!(
            bad.feed(&huge, &mut got),
            Err(WireError::FrameTooLarge(MAX_FRAME + 1))
        );
    }

    #[test]
    fn sharded_map_basics_and_ordered_snapshot() {
        let map: ShardedMap<NodeId, u64> = ShardedMap::new();
        for i in (0..100u32).rev() {
            map.insert(NodeId(i), u64::from(i) * 2);
        }
        assert_eq!(map.len(), 100);
        assert_eq!(map.get(&NodeId(40)), Some(80));
        let snap = map.snapshot();
        let keys: Vec<u32> = snap.keys().map(|n| n.0).collect();
        assert_eq!(keys, (0..100).collect::<Vec<_>>(), "snapshot is ordered");
        assert_eq!(map.remove(&NodeId(40)), Some(80));
        assert_eq!(map.remove_if(&NodeId(41), |v| *v == 999), None);
        assert_eq!(map.remove_if(&NodeId(41), |v| *v == 82), Some(82));
        assert_eq!(map.len(), 98);
    }
}
