//! The hub: registry + resource pool served over TCP.
//!
//! One process plays the paper's centralized registry and grid scheduler:
//! it accepts worker/coordinator/launcher connections, maps wall-clock
//! heartbeats onto the `SimTime`-driven [`Membership`] state machine,
//! allocates node ids from a [`ResourcePool`], forwards statistics to the
//! out-of-process coordinator, relays its grow/shrink decisions, and runs
//! the heartbeat failure detector.
//!
//! Since PR 9 the hub is a single [`Reactor`] loop: one thread owns the
//! listener, every connection, the frame decoding, the write queues and
//! the failure-detection timers. Thread count is independent of worker
//! count (the old transport spent two OS threads per connection), peer-
//! directory broadcasts are coalesced onto a timer instead of firing per
//! announce, and membership is keyed through a [`ShardedMap`] so observers
//! never serialize dispatch on one lock.
//!
//! A deliberately subtle point: an *unexpected connection close is not a
//! death*. SIGKILL closes the victim's socket immediately, long before any
//! heartbeat is missed; treating EOF as a crash would short-circuit the
//! failure detector the paper describes (and penalise workers that merely
//! lost a TCP connection and will reconnect with backoff). Only the
//! heartbeat timeout declares a node dead.

use crate::reactor::{Reactor, ReactorEvent, ShardedMap, Token};
use crate::replica::Takeover;
use crate::replog::{ControlState, MemberPhase, RepLog, ReplicaOp};
use crate::wire::{Message, PeerInfo};
use sagrid_core::config::GridConfig;
use sagrid_core::ids::{ClusterId, NodeId};
use sagrid_core::metrics::{MetricEvent, Metrics, Value};
use sagrid_core::time::{SimDuration, SimTime};
use sagrid_registry::{Membership, RegistryConfig, RegistryEvent};
use sagrid_sched::{AllocPolicy, Requirements, ResourcePool};
use std::collections::{BTreeMap, BTreeSet};
use std::io;
use std::net::TcpListener;
use std::time::{Duration, Instant};

/// Hub tuning knobs (wall-clock durations; the hub converts them to
/// `SimTime` microseconds against its own epoch).
#[derive(Clone, Copy, Debug)]
pub struct HubConfig {
    /// Number of clusters in the emulated grid pool.
    pub clusters: usize,
    /// Nodes per cluster in the pool.
    pub nodes_per_cluster: usize,
    /// A worker silent for longer than this is declared dead.
    pub heartbeat_timeout: Duration,
    /// How often the failure detector runs (also the event-loop tick).
    pub detect_interval: Duration,
}

impl Default for HubConfig {
    fn default() -> Self {
        Self {
            clusters: 2,
            nodes_per_cluster: 32,
            heartbeat_timeout: Duration::from_secs(2),
            detect_interval: Duration::from_millis(200),
        }
    }
}

/// Timer key: the failure-detection sweep (re-armed every tick).
const TIMER_DETECT: u64 = 1;
/// Timer key: the coalesced peer-directory broadcast.
const TIMER_DIR: u64 = 2;

/// What a connection has identified itself as.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Role {
    Unknown,
    Worker(NodeId),
    Coordinator,
    Launcher,
    /// A standby hub tailing the replication log.
    Replica(u32),
}

/// Hub-side pre-resolved counters (`net.*` namespace, shared with the
/// reactor's transport counters).
struct HubCounters {
    joins: std::sync::Arc<sagrid_core::metrics::Counter>,
    join_refusals: std::sync::Arc<sagrid_core::metrics::Counter>,
    heartbeats: std::sync::Arc<sagrid_core::metrics::Counter>,
    stats_forwarded: std::sync::Arc<sagrid_core::metrics::Counter>,
    deaths: std::sync::Arc<sagrid_core::metrics::Counter>,
    suspects: std::sync::Arc<sagrid_core::metrics::Counter>,
    resumes: std::sync::Arc<sagrid_core::metrics::Counter>,
    leaves: std::sync::Arc<sagrid_core::metrics::Counter>,
    grow_requests: std::sync::Arc<sagrid_core::metrics::Counter>,
    spawns_requested: std::sync::Arc<sagrid_core::metrics::Counter>,
    shrink_requests: std::sync::Arc<sagrid_core::metrics::Counter>,
    replica_deltas_sent: std::sync::Arc<sagrid_core::metrics::Counter>,
    replica_snapshots_sent: std::sync::Arc<sagrid_core::metrics::Counter>,
    replica_fenced: std::sync::Arc<sagrid_core::metrics::Counter>,
}

impl HubCounters {
    fn resolve(m: &Metrics) -> Option<Self> {
        m.is_enabled().then(|| Self {
            joins: m.counter("net.joins").expect("enabled"),
            join_refusals: m.counter("net.join_refusals").expect("enabled"),
            heartbeats: m.counter("net.heartbeats").expect("enabled"),
            stats_forwarded: m.counter("net.stats_forwarded").expect("enabled"),
            deaths: m.counter("net.deaths").expect("enabled"),
            suspects: m.counter("net.suspects").expect("enabled"),
            resumes: m.counter("net.suspect_resumes").expect("enabled"),
            leaves: m.counter("net.leaves").expect("enabled"),
            grow_requests: m.counter("net.grow_requests").expect("enabled"),
            spawns_requested: m.counter("net.spawns_requested").expect("enabled"),
            shrink_requests: m.counter("net.shrink_requests").expect("enabled"),
            replica_deltas_sent: m.counter("net.replica.deltas_sent").expect("enabled"),
            replica_snapshots_sent: m.counter("net.replica.snapshots_sent").expect("enabled"),
            replica_fenced: m.counter("net.replica.fenced").expect("enabled"),
        })
    }
}

/// Applies one control-plane transition to the primary's materialised
/// state, appends it to the replication log, and fans it out to every
/// attached standby. The primary goes through the *same*
/// [`ControlState::apply`] as the standbys, so convergence is by
/// construction, not by parallel bookkeeping.
fn replicate(
    op: ReplicaOp,
    epoch: u64,
    control: &mut ControlState,
    replog: &mut RepLog,
    replicas: &BTreeMap<Token, u32>,
    reactor: &mut Reactor,
    hc: &Option<HubCounters>,
) {
    control.apply(&op);
    let log_offset = replog.append();
    if replicas.is_empty() {
        return;
    }
    // Broadcast economics: encode the delta once, share the frame.
    let frame = Reactor::encode_frame(&Message::StateDelta {
        epoch,
        log_offset,
        op,
    });
    let mut sent = 0u64;
    for t in replicas.keys() {
        if reactor.send_frame(*t, frame.clone()) {
            sent += 1;
        }
    }
    if let Some(hc) = hc {
        hc.replica_deltas_sent.add(sent);
    }
}

/// Sends the full steal-plane peer directory to every connected worker.
///
/// Full snapshots rather than deltas: a snapshot is idempotent, so a lost
/// or reordered broadcast heals on the next directory change instead of
/// leaving a worker with a permanently stale view.
fn broadcast_directory(
    peer_dir: &BTreeMap<NodeId, PeerInfo>,
    node_conn: &ShardedMap<NodeId, Token>,
    reactor: &mut Reactor,
) {
    let frame = Reactor::encode_frame(&Message::PeerDirectory {
        peers: peer_dir.values().cloned().collect(),
    });
    for t in node_conn.snapshot().values() {
        reactor.send_frame(*t, frame.clone());
    }
}

/// Pushes the pending coalesced directory broadcast out now (and clears
/// the dirty flag). Called from the coalescing timer, and *before pruning
/// an entry*: an announce and a leave landing in the same coalescing
/// window must not cancel out invisibly — every addition is witnessable
/// in at least one snapshot before its removal is broadcast.
#[allow(clippy::too_many_arguments)] // the hub loop's shared state, threaded explicitly
fn flush_directory(
    dir_dirty: &mut bool,
    peer_dir: &BTreeMap<NodeId, PeerInfo>,
    node_conn: &ShardedMap<NodeId, Token>,
    reactor: &mut Reactor,
    hub_epoch: u64,
    control: &mut ControlState,
    replog: &mut RepLog,
    replicas: &BTreeMap<Token, u32>,
    hc: &Option<HubCounters>,
) {
    if !*dir_dirty {
        return;
    }
    *dir_dirty = false;
    broadcast_directory(peer_dir, node_conn, reactor);
    replicate(
        ReplicaOp::PeerDir {
            peers: peer_dir.values().cloned().collect(),
        },
        hub_epoch,
        control,
        replog,
        replicas,
        reactor,
        hc,
    );
}

/// A bound, not-yet-running hub. [`Hub::bind`] then [`Hub::run`].
pub struct Hub {
    listener: TcpListener,
    cfg: HubConfig,
    metrics: Metrics,
    /// The hub epoch this instance serves under (1 for an original
    /// primary; a takeover bumps it).
    epoch: u64,
    /// Replica id of this hub (0 = original primary).
    leader: u32,
    /// Replicated control-plane state to seed from after a takeover.
    seed: Option<ControlState>,
    /// Log offset the seed state is current as of.
    seed_offset: u64,
}

impl Hub {
    /// Binds the listening socket (use port 0 for an ephemeral port).
    pub fn bind(addr: &str, cfg: HubConfig, metrics: Metrics) -> io::Result<Hub> {
        let listener = TcpListener::bind(addr)?;
        Ok(Hub::from_listener(listener, cfg, metrics))
    }

    /// Wraps an already-bound listener (a standby binds its port long
    /// before it wins an election, so workers can be pointed at it from
    /// the start).
    pub fn from_listener(listener: TcpListener, cfg: HubConfig, metrics: Metrics) -> Hub {
        assert!(cfg.clusters > 0 && cfg.nodes_per_cluster > 0);
        Hub {
            listener,
            cfg,
            metrics,
            epoch: 1,
            leader: 0,
            seed: None,
            seed_offset: 0,
        }
    }

    /// Seeds this hub from a won election: the replicated control-plane
    /// state, the bumped epoch, and this hub's replica id as the leader.
    pub fn with_takeover(mut self, takeover: Takeover, replica_id: u32) -> Hub {
        self.epoch = takeover.epoch;
        self.leader = replica_id;
        self.seed_offset = takeover.log_offset;
        self.seed = Some(takeover.state);
        self
    }

    /// The bound port.
    pub fn port(&self) -> u16 {
        self.listener.local_addr().map(|a| a.port()).unwrap_or(0)
    }

    /// Serves until a launcher sends [`Message::Shutdown`]. Returns the
    /// metrics handle so the caller can write the final report.
    pub fn run(mut self) -> Metrics {
        let mut reactor =
            Reactor::with_listener(self.listener, &self.metrics).expect("hub reactor");

        let hc = HubCounters::resolve(&self.metrics);
        let epoch = Instant::now();
        let now = |epoch: Instant| SimTime::from_micros(epoch.elapsed().as_micros() as u64);

        // Three-state liveness: silence past half the timeout marks a
        // member Suspect (coordinator holds fire on shrink), silence past
        // the full timeout kills it. Workers heartbeat several times per
        // half-timeout, so a healthy member never trips the window.
        let mut membership = Membership::new(RegistryConfig::with_timeout(
            SimDuration::from_micros(self.cfg.heartbeat_timeout.as_micros() as u64),
        ));
        let mut pool = ResourcePool::new(&GridConfig::uniform(
            self.cfg.clusters,
            self.cfg.nodes_per_cluster,
        ));
        pool.set_metrics(&self.metrics);

        let mut roles: BTreeMap<Token, Role> = BTreeMap::new();
        let node_conn: ShardedMap<NodeId, Token> = ShardedMap::new();
        let mut coordinator: Option<Token> = None;
        let mut launcher: Option<Token> = None;
        let mut pending_spawns: BTreeSet<NodeId> = BTreeSet::new();
        // Grow grants made while no launcher is connected wait here instead
        // of being dropped (the launcher's hello may race the coordinator's
        // first decision).
        let mut pending_grants: Vec<(NodeId, ClusterId)> = Vec::new();
        let mut blacklisted_nodes: BTreeSet<NodeId> = BTreeSet::new();
        let mut blacklisted_clusters: BTreeSet<ClusterId> = BTreeSet::new();
        // Steal-plane peer directory: node → where its steal listener is.
        // Populated by PeerAnnounce, pruned on leave/death. Broadcasts are
        // coalesced: changes mark the directory dirty and TIMER_DIR pushes
        // one snapshot for however many changes accumulated (a 5,000-worker
        // join wave must not trigger 5,000 full-directory broadcasts).
        let mut peer_dir: BTreeMap<NodeId, PeerInfo> = BTreeMap::new();
        let mut dir_dirty = false;
        let dir_interval = self.cfg.detect_interval.min(Duration::from_millis(50));

        // Replication plane: the primary's own materialised copy of the
        // replicated state, the log, and the attached standbys.
        let hub_epoch = self.epoch;
        let leader = self.leader;
        let mut control = ControlState::default();
        let mut replog = RepLog::new();
        for _ in 0..self.seed_offset {
            replog.append(); // resume the offset sequence after a takeover
        }
        let mut replicas: BTreeMap<Token, u32> = BTreeMap::new();
        let mut fenced_out = false;

        // A takeover seeds everything a new primary cannot re-learn from
        // reconnecting workers: membership phases, both blacklists, the
        // peer directory and learned bandwidth. Pool occupancy is derived
        // (live members reserve their ids; dead/blacklisted are lost), and
        // the replay's registry events are drained — they describe the old
        // primary's history, not fresh transitions.
        if let Some(seed) = self.seed.take() {
            let t = now(epoch);
            for (&node, &(cluster, phase)) in &seed.members {
                match phase {
                    MemberPhase::Alive | MemberPhase::Leaving => {
                        membership.join(t, node, cluster);
                        if phase == MemberPhase::Leaving {
                            membership.signal_leave(node);
                        }
                        pool.reserve(node);
                    }
                    MemberPhase::Left => {}
                    MemberPhase::Dead => {
                        membership.join(t, node, cluster);
                        membership.report_crash(node);
                        pool.mark_lost(node);
                    }
                }
            }
            let _ = membership.take_events();
            let _ = membership.take_signals();
            blacklisted_nodes = seed.blacklisted_nodes.clone();
            blacklisted_clusters = seed.blacklisted_clusters.clone();
            for n in &blacklisted_nodes {
                pool.mark_lost(*n);
            }
            peer_dir = seed.peers.clone();
            control = seed;
            self.metrics.emit(
                MetricEvent::new(t.0, "hub_failover")
                    .with("epoch", Value::U64(hub_epoch))
                    .with("leader", Value::U64(u64::from(leader)))
                    .with("members_alive", Value::U64(membership.alive_count() as u64))
                    // The ids themselves (not a count): the invariant
                    // checker proves blacklist permanence across the epoch
                    // boundary from this list alone.
                    .with(
                        "blacklisted_nodes",
                        Value::Raw(format!(
                            "[{}]",
                            blacklisted_nodes
                                .iter()
                                .map(|n| n.0.to_string())
                                .collect::<Vec<_>>()
                                .join(",")
                        )),
                    )
                    .with(
                        "bandwidth_nodes",
                        Value::U64(control.bandwidth.len() as u64),
                    )
                    .with("peers", Value::U64(peer_dir.len() as u64))
                    .with("log_offset", Value::U64(replog.offset()))
                    .with("digest", Value::Str(format!("{:016x}", control.digest()))),
            );
        }
        println!("EVENT serving epoch={hub_epoch} leader={leader}");

        let mut out: Vec<ReactorEvent> = Vec::new();
        reactor.arm_timer(TIMER_DETECT, Instant::now() + self.cfg.detect_interval);
        reactor.arm_timer(TIMER_DIR, Instant::now() + dir_interval);

        'serve: loop {
            if reactor.poll(&mut out, self.cfg.detect_interval).is_err() {
                break 'serve;
            }
            for event in out.drain(..) {
                match event {
                    ReactorEvent::Accepted(id, _) => {
                        roles.insert(id, Role::Unknown);
                    }
                    ReactorEvent::Closed(id) => {
                        let role = roles.remove(&id).unwrap_or(Role::Unknown);
                        match role {
                            // NOT a death: the worker may reconnect (and a
                            // SIGKILL'd one must be caught by the heartbeat
                            // timeout, not by EOF — see module docs).
                            Role::Worker(node) => {
                                node_conn.remove_if(&node, |t| *t == id);
                            }
                            Role::Coordinator => {
                                if coordinator == Some(id) {
                                    coordinator = None;
                                }
                            }
                            Role::Launcher => {
                                if launcher == Some(id) {
                                    launcher = None;
                                }
                            }
                            // The standby set in `control.replicas` is kept:
                            // a standby losing its socket is a transport
                            // blip and it will re-attach; only the live
                            // delta fan-out forgets the connection.
                            Role::Replica(_) => {
                                replicas.remove(&id);
                            }
                            Role::Unknown => {}
                        }
                    }
                    ReactorEvent::Timer(TIMER_DIR) => {
                        flush_directory(
                            &mut dir_dirty,
                            &peer_dir,
                            &node_conn,
                            &mut reactor,
                            hub_epoch,
                            &mut control,
                            &mut replog,
                            &replicas,
                            &hc,
                        );
                        reactor.arm_timer(TIMER_DIR, Instant::now() + dir_interval);
                    }
                    // Failure detection on the reactor clock, independent of
                    // traffic (an idle control plane still sweeps).
                    ReactorEvent::Timer(_) => {
                        let t = now(epoch);
                        for dead in membership.detect_failures(t) {
                            let cluster = membership.cluster_of(dead).unwrap_or(ClusterId(0));
                            pool.mark_lost(dead);
                            blacklisted_nodes.insert(dead);
                            node_conn.remove(&dead);
                            if peer_dir.contains_key(&dead) {
                                flush_directory(
                                    &mut dir_dirty,
                                    &peer_dir,
                                    &node_conn,
                                    &mut reactor,
                                    hub_epoch,
                                    &mut control,
                                    &mut replog,
                                    &replicas,
                                    &hc,
                                );
                                peer_dir.remove(&dead);
                                dir_dirty = true;
                            }
                            replicate(
                                ReplicaOp::Death { node: dead },
                                hub_epoch,
                                &mut control,
                                &mut replog,
                                &replicas,
                                &mut reactor,
                                &hc,
                            );
                            replicate(
                                ReplicaOp::BlacklistNode { node: dead },
                                hub_epoch,
                                &mut control,
                                &mut replog,
                                &replicas,
                                &mut reactor,
                                &hc,
                            );
                            if let Some(hc) = &hc {
                                hc.deaths.inc();
                            }
                            println!("EVENT died {dead}");
                            if let Some(cid) = coordinator {
                                reactor.send(
                                    cid,
                                    &Message::CrashNotice {
                                        node: dead,
                                        cluster,
                                    },
                                );
                            }
                        }
                        // Replication keepalive: standbys declare the primary
                        // dead on *silence*, so an idle control plane must
                        // still tick.
                        if !replicas.is_empty() {
                            let keepalive = Reactor::encode_frame(&Message::HubEpoch {
                                epoch: hub_epoch,
                                leader,
                            });
                            let targets: Vec<Token> = replicas.keys().copied().collect();
                            for t in targets {
                                reactor.send_frame(t, keepalive.clone());
                            }
                        }
                        reactor.arm_timer(TIMER_DETECT, Instant::now() + self.cfg.detect_interval);
                    }
                    ReactorEvent::Frame(id, msg) => match msg {
                        Message::Join { cluster, claim } => {
                            let t = now(epoch);
                            let verdict = match claim {
                                Some(node) => {
                                    if blacklisted_nodes.contains(&node) {
                                        Err(format!("node {node} is blacklisted"))
                                    } else if pending_spawns.remove(&node) {
                                        let c = pool.cluster_of(node);
                                        membership.join(t, node, c);
                                        Ok((node, true))
                                    } else if matches!(
                                        membership.state(node),
                                        Some(
                                            sagrid_registry::MemberState::Alive
                                                | sagrid_registry::MemberState::Leaving
                                                | sagrid_registry::MemberState::Suspect
                                        )
                                    ) {
                                        // Transport-level reconnect of a
                                        // member that never missed enough
                                        // heartbeats to be declared dead.
                                        // A Suspect resumes here without a
                                        // blacklist mark: the heartbeat is
                                        // proof of life.
                                        membership.heartbeat(t, node);
                                        Ok((node, false))
                                    } else {
                                        Err(format!("node {node} is blacklisted, dead or unknown"))
                                    }
                                }
                                None => {
                                    if cluster.index() >= self.cfg.clusters {
                                        Err(format!("no such cluster {cluster}"))
                                    } else if blacklisted_clusters.contains(&cluster) {
                                        Err(format!("cluster {cluster} is blacklisted"))
                                    } else {
                                        // Force the grant into the declared
                                        // cluster by excluding all others.
                                        let excl: BTreeSet<ClusterId> = (0..self.cfg.clusters)
                                            .map(|i| ClusterId(i as u16))
                                            .filter(|c| *c != cluster)
                                            .chain(blacklisted_clusters.iter().copied())
                                            .collect();
                                        match pool
                                            .request(
                                                1,
                                                AllocPolicy::LocalityAware,
                                                &Requirements::default(),
                                                &blacklisted_nodes,
                                                &excl,
                                                &[cluster],
                                            )
                                            .first()
                                        {
                                            Some(grant) => {
                                                membership.join(t, grant.node, grant.cluster);
                                                Ok((grant.node, true))
                                            }
                                            None => {
                                                Err(format!("cluster {cluster} has no free nodes"))
                                            }
                                        }
                                    }
                                }
                            };
                            match verdict {
                                Ok((node, fresh)) => {
                                    roles.insert(id, Role::Worker(node));
                                    node_conn.insert(node, id);
                                    if fresh {
                                        replicate(
                                            ReplicaOp::Join {
                                                node,
                                                cluster: pool.cluster_of(node),
                                            },
                                            hub_epoch,
                                            &mut control,
                                            &mut replog,
                                            &replicas,
                                            &mut reactor,
                                            &hc,
                                        );
                                    }
                                    reactor.send(
                                        id,
                                        &Message::JoinAck {
                                            node,
                                            accepted: true,
                                            reason: String::new(),
                                        },
                                    );
                                    // Epoch stamp: lets the worker spot a
                                    // stale primary after a failover.
                                    reactor.send(
                                        id,
                                        &Message::HubEpoch {
                                            epoch: hub_epoch,
                                            leader,
                                        },
                                    );
                                    // Bring the newcomer up to date on the
                                    // steal plane right away; later changes
                                    // rebroadcast (coalesced) to everyone.
                                    // An empty directory conveys nothing, so
                                    // skip the frame (and keep non-stealing
                                    // deployments free of directory traffic).
                                    if !peer_dir.is_empty() {
                                        reactor.send(
                                            id,
                                            &Message::PeerDirectory {
                                                peers: peer_dir.values().cloned().collect(),
                                            },
                                        );
                                    }
                                    if let Some(hc) = &hc {
                                        hc.joins.inc();
                                    }
                                    println!("EVENT joined {node}");
                                }
                                Err(reason) => {
                                    reactor.send(
                                        id,
                                        &Message::JoinAck {
                                            node: NodeId(u32::MAX),
                                            accepted: false,
                                            reason,
                                        },
                                    );
                                    if let Some(hc) = &hc {
                                        hc.join_refusals.inc();
                                    }
                                }
                            }
                        }
                        Message::Heartbeat { node } => {
                            membership.heartbeat(now(epoch), node);
                            if let Some(hc) = &hc {
                                hc.heartbeats.inc();
                            }
                        }
                        Message::StatsReport {
                            report,
                            bench_micros,
                        } => {
                            // Reports from blacklisted nodes are dropped so a
                            // removed worker can never re-enter the
                            // coordinator's report set through a stale socket.
                            if !blacklisted_nodes.contains(&report.node) {
                                // Learned bandwidth is control-plane state a
                                // new primary must not have to re-measure:
                                // replicate the latest benchmark per node.
                                if bench_micros > 0
                                    && control.bandwidth.get(&report.node) != Some(&bench_micros)
                                {
                                    replicate(
                                        ReplicaOp::Bandwidth {
                                            node: report.node,
                                            bench_micros,
                                        },
                                        hub_epoch,
                                        &mut control,
                                        &mut replog,
                                        &replicas,
                                        &mut reactor,
                                        &hc,
                                    );
                                }
                                if let Some(cid) = coordinator {
                                    if reactor.send(
                                        cid,
                                        &Message::StatsReport {
                                            report,
                                            bench_micros,
                                        },
                                    ) {
                                        if let Some(hc) = &hc {
                                            hc.stats_forwarded.inc();
                                        }
                                    }
                                }
                            }
                        }
                        Message::Leaving { node } => {
                            membership.leave(node);
                            replicate(
                                ReplicaOp::Leave { node },
                                hub_epoch,
                                &mut control,
                                &mut replog,
                                &replicas,
                                &mut reactor,
                                &hc,
                            );
                            // Blacklisted (shrink-removed) nodes never return
                            // to the pool; voluntary leavers do.
                            if !blacklisted_nodes.contains(&node) {
                                pool.release(node);
                            }
                            node_conn.remove(&node);
                            if peer_dir.contains_key(&node) {
                                flush_directory(
                                    &mut dir_dirty,
                                    &peer_dir,
                                    &node_conn,
                                    &mut reactor,
                                    hub_epoch,
                                    &mut control,
                                    &mut replog,
                                    &replicas,
                                    &hc,
                                );
                                peer_dir.remove(&node);
                                dir_dirty = true;
                            }
                            if let Some(hc) = &hc {
                                hc.leaves.inc();
                            }
                            println!("EVENT left {node}");
                        }
                        Message::CoordinatorHello => {
                            roles.insert(id, Role::Coordinator);
                            coordinator = Some(id);
                            // The coordinator carries the epoch in its
                            // decision provenance events.
                            reactor.send(
                                id,
                                &Message::HubEpoch {
                                    epoch: hub_epoch,
                                    leader,
                                },
                            );
                        }
                        Message::LauncherHello => {
                            roles.insert(id, Role::Launcher);
                            launcher = Some(id);
                            for (node, cluster) in pending_grants.drain(..) {
                                pending_spawns.insert(node);
                                reactor.send(id, &Message::SpawnWorker { node, cluster });
                                if let Some(hc) = &hc {
                                    hc.spawns_requested.inc();
                                }
                            }
                        }
                        Message::Grow {
                            count,
                            prefer,
                            min_uplink_bps,
                            min_speed,
                        } => {
                            // The coordinator grows on an Add decision; the
                            // launcher grows when a scenario file injects an
                            // external capacity grant.
                            if matches!(
                                roles.get(&id),
                                Some(&Role::Coordinator) | Some(&Role::Launcher)
                            ) {
                                if let Some(hc) = &hc {
                                    hc.grow_requests.inc();
                                }
                                let grants = pool.request(
                                    count as usize,
                                    AllocPolicy::LocalityAware,
                                    &Requirements {
                                        min_uplink_bps,
                                        min_speed,
                                    },
                                    &blacklisted_nodes,
                                    &blacklisted_clusters,
                                    &prefer,
                                );
                                match launcher {
                                    Some(l) => {
                                        for g in grants {
                                            pending_spawns.insert(g.node);
                                            reactor.send(
                                                l,
                                                &Message::SpawnWorker {
                                                    node: g.node,
                                                    cluster: g.cluster,
                                                },
                                            );
                                            if let Some(hc) = &hc {
                                                hc.spawns_requested.inc();
                                            }
                                        }
                                    }
                                    None => {
                                        // Nobody can spawn processes yet:
                                        // hold the grants for the launcher.
                                        pending_grants
                                            .extend(grants.iter().map(|g| (g.node, g.cluster)));
                                    }
                                }
                            }
                        }
                        Message::Shrink { nodes, cluster } => {
                            if roles.get(&id) == Some(&Role::Coordinator) {
                                if let Some(hc) = &hc {
                                    hc.shrink_requests.inc();
                                }
                                blacklisted_nodes.extend(nodes.iter().copied());
                                for &node in &nodes {
                                    replicate(
                                        ReplicaOp::BlacklistNode { node },
                                        hub_epoch,
                                        &mut control,
                                        &mut replog,
                                        &replicas,
                                        &mut reactor,
                                        &hc,
                                    );
                                }
                                if let Some(c) = cluster {
                                    blacklisted_clusters.insert(c);
                                    replicate(
                                        ReplicaOp::BlacklistCluster { cluster: c },
                                        hub_epoch,
                                        &mut control,
                                        &mut replog,
                                        &replicas,
                                        &mut reactor,
                                        &hc,
                                    );
                                }
                                for node in nodes {
                                    membership.signal_leave(node);
                                }
                                for node in membership.take_signals() {
                                    if let Some(t) = node_conn.get(&node) {
                                        reactor.send(t, &Message::SignalLeave { node });
                                    }
                                }
                            }
                        }
                        Message::Shutdown => {
                            if roles.get(&id) == Some(&Role::Launcher) {
                                let frame = Reactor::encode_frame(&Message::Shutdown);
                                let targets: Vec<Token> = roles.keys().copied().collect();
                                for t in targets {
                                    reactor.send_frame(t, frame.clone());
                                }
                                // Drain the write queues so every peer gets
                                // its final frame before the process tears
                                // the sockets down (the old transport slept
                                // and hoped; the reactor flushes for real).
                                reactor.drain(Duration::from_millis(500));
                                break 'serve;
                            }
                        }
                        Message::PeerAnnounce { node, steal_addr } => {
                            // Only the worker that owns the node id may
                            // announce a listener for it.
                            if roles.get(&id) == Some(&Role::Worker(node)) {
                                let cluster = pool.cluster_of(node);
                                peer_dir.insert(
                                    node,
                                    PeerInfo {
                                        node,
                                        cluster,
                                        steal_addr,
                                    },
                                );
                                dir_dirty = true;
                                println!("EVENT peers {}", peer_dir.len());
                            }
                        }
                        // A scenario file's graceful `shrink` event: signal
                        // the nodes out through the registry exactly like a
                        // coordinator Shrink, but WITHOUT blacklisting —
                        // scenario-withdrawn nodes return to the pool when
                        // their farewell arrives, so a later grow may hand
                        // the same machines back.
                        Message::SignalLeave { node } => {
                            if roles.get(&id) == Some(&Role::Launcher) {
                                membership.signal_leave(node);
                                for node in membership.take_signals() {
                                    if let Some(t) = node_conn.get(&node) {
                                        reactor.send(t, &Message::SignalLeave { node });
                                    }
                                }
                            }
                        }
                        // A scenario perturbation: fan it out to (the first
                        // `count` of) the cluster's connected workers.
                        Message::Perturb {
                            cluster,
                            count,
                            speed,
                            inter_frac,
                        } => {
                            if roles.get(&id) == Some(&Role::Launcher) {
                                let mut sent = 0u32;
                                for (node, t) in node_conn.snapshot() {
                                    if pool.cluster_of(node) != cluster {
                                        continue;
                                    }
                                    if count > 0 && sent >= count {
                                        break;
                                    }
                                    if reactor.send(
                                        t,
                                        &Message::Perturb {
                                            cluster,
                                            count,
                                            speed,
                                            inter_frac,
                                        },
                                    ) {
                                        sent += 1;
                                    }
                                }
                                println!("EVENT perturbed {cluster} workers {sent}");
                            }
                        }
                        // A standby hub attaches: log it to the standby set
                        // (so every replica learns where the others serve),
                        // register the connection, and bring it current with
                        // a full snapshot. Snapshots are idempotent, so a
                        // reattach at any offset is just another snapshot.
                        Message::ReplicaHello { replica, addr, .. } => {
                            replicate(
                                ReplicaOp::ReplicaJoined { replica, addr },
                                hub_epoch,
                                &mut control,
                                &mut replog,
                                &replicas,
                                &mut reactor,
                                &hc,
                            );
                            roles.insert(id, Role::Replica(replica));
                            replicas.insert(id, replica);
                            if reactor.send(
                                id,
                                &Message::StateSnapshot {
                                    epoch: hub_epoch,
                                    log_offset: replog.offset(),
                                    state: control.snapshot(),
                                },
                            ) {
                                if let Some(hc) = &hc {
                                    hc.replica_snapshots_sent.inc();
                                }
                            }
                            println!("EVENT replica {replica} attached");
                        }
                        Message::ReplicaAck {
                            replica,
                            log_offset,
                        } => {
                            replog.ack(replica, log_offset);
                        }
                        // Epoch fencing. A write-bearing frame from an older
                        // epoch is a stale primary that limped back after a
                        // failover: refuse the write and answer with the
                        // current epoch so it can stand down. A *newer*
                        // epoch means WE are the stale primary — stop
                        // serving immediately rather than split the brain.
                        Message::StateDelta { epoch: e, .. }
                        | Message::StateSnapshot { epoch: e, .. }
                        | Message::HubEpoch { epoch: e, .. } => {
                            if e < hub_epoch {
                                reactor.send(
                                    id,
                                    &Message::HubEpoch {
                                        epoch: hub_epoch,
                                        leader,
                                    },
                                );
                                if let Some(hc) = &hc {
                                    hc.replica_fenced.inc();
                                }
                                println!("EVENT fenced stale epoch={e}");
                            } else if e > hub_epoch {
                                println!("EVENT fenced by newer epoch={e}");
                                fenced_out = true;
                                break 'serve;
                            }
                        }
                        // Hub-outbound messages arriving inbound, and
                        // steal-plane traffic (worker ↔ worker, never through
                        // the hub): ignore.
                        Message::JoinAck { .. }
                        | Message::CrashNotice { .. }
                        | Message::SuspectNotice { .. }
                        | Message::SpawnWorker { .. }
                        | Message::PeerDirectory { .. }
                        | Message::StealRequest { .. }
                        | Message::StealReply { .. }
                        | Message::StealResult { .. } => {}
                    },
                }
            }

            // Surface registry transitions as metric events, and keep the
            // coordinator's suspicion view current: Suspected/Resumed
            // transitions go out as SuspectNotice frames (deaths already
            // went out as CrashNotice from the detection sweep). The
            // notices flow whether or not metrics are on — the hold-fire
            // rule is policy, not observability.
            let t = now(epoch);
            for evt in membership.take_events() {
                match evt {
                    RegistryEvent::Suspected(n) => {
                        if let Some(hc) = &hc {
                            hc.suspects.inc();
                        }
                        println!("EVENT suspect {n}");
                        if let Some(cid) = coordinator {
                            reactor.send(
                                cid,
                                &Message::SuspectNotice {
                                    node: n,
                                    suspected: true,
                                },
                            );
                        }
                    }
                    RegistryEvent::Resumed(n) => {
                        if let Some(hc) = &hc {
                            hc.resumes.inc();
                        }
                        println!("EVENT resumed {n}");
                        if let Some(cid) = coordinator {
                            reactor.send(
                                cid,
                                &Message::SuspectNotice {
                                    node: n,
                                    suspected: false,
                                },
                            );
                        }
                    }
                    _ => {}
                }
                if self.metrics.is_enabled() {
                    let (node, state) = match evt {
                        RegistryEvent::Joined(n, _) => (n, "joined"),
                        RegistryEvent::Left(n) => (n, "left"),
                        RegistryEvent::Died(n) => (n, "died"),
                        RegistryEvent::Suspected(n) => (n, "suspect"),
                        RegistryEvent::Resumed(n) => (n, "alive"),
                    };
                    self.metrics.emit(
                        MetricEvent::new(t.0, "member")
                            .with("node", Value::U64(u64::from(node.0)))
                            .with("state", Value::Str(state.to_string())),
                    );
                }
            }
        }

        if fenced_out {
            self.metrics.emit(
                MetricEvent::new(now(epoch).0, "hub_fenced")
                    .with("epoch", Value::U64(hub_epoch))
                    .with("leader", Value::U64(u64::from(leader))),
            );
        }
        self.metrics.clone()
    }
}
