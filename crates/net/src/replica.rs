//! Standby hubs: replication tailing, primary-death detection, election
//! and takeover.
//!
//! A standby hub dials the primary, introduces itself with
//! [`Message::ReplicaHello`], and materialises the replication stream
//! (snapshot on attach, [`Message::StateDelta`]s after) into a
//! [`ControlState`]. The same heartbeat discipline the hub applies to
//! workers applies here in reverse: a dropped socket is a reconnectable
//! transport blip, and only *silence* — no frame from any primary for the
//! heartbeat timeout — declares the primary dead. The primary keeps the
//! link warm with periodic [`Message::HubEpoch`] frames, so silence is
//! unambiguous.
//!
//! The standby's whole life runs on one [`Reactor`]: the same loop tails
//! the replication link, ticks the silence detector, and serves the
//! standby's pre-takeover front door — the listener is bound from day one
//! (so launchers can hand its address to workers immediately) and clients
//! that wander in are politely refused: a [`Message::Join`] gets an
//! explicit refusal whose reason starts with `"standby"` (workers treat
//! that prefix as *transient* and rotate to the next hub address instead
//! of exiting), anything else gets a close. On takeover the listener is
//! detached from the reactor and handed to the hub, which serves on the
//! very address workers were already dialling.
//!
//! On primary death every standby runs the same deterministic election —
//! lowest replica id over the replicated standby set, delegated to the
//! already-tested [`sagrid_registry::Membership::elect_coordinator`] — so
//! all survivors agree on the winner without exchanging a single message.
//! The winner bumps the hub epoch (fencing any stale primary that limps
//! back) and serves; losers re-attach to the winner's advertised address.

use crate::backoff::Backoff;
use crate::reactor::{Reactor, ReactorEvent, Token};
use crate::replog::ControlState;
use crate::wire::Message;
use sagrid_core::ids::{ClusterId, NodeId};
use sagrid_core::metrics::{Counter, MetricEvent, Metrics, Value};
use sagrid_core::time::SimTime;
use sagrid_registry::{Membership, RegistryConfig};
use std::collections::{BTreeMap, BTreeSet};
use std::io;
use std::net::TcpListener;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A parsed, ordered hub address list (`primary,standby1,standby2,…`).
/// Workers and the coordinator dial through it round-robin when failing
/// over; their per-address reconnect backoff rides on top.
#[derive(Clone, Debug)]
pub struct HubSet {
    addrs: Vec<String>,
    next: usize,
}

impl HubSet {
    /// Parses a comma-separated address list. At least one address.
    pub fn parse(s: &str) -> Result<HubSet, String> {
        let addrs: Vec<String> = s
            .split(',')
            .map(str::trim)
            .filter(|a| !a.is_empty())
            .map(str::to_string)
            .collect();
        if addrs.is_empty() {
            return Err(format!("empty hub list {s:?}"));
        }
        Ok(HubSet { addrs, next: 0 })
    }

    /// Every address, in the order given.
    pub fn addrs(&self) -> &[String] {
        &self.addrs
    }

    /// The address the next dial should try.
    pub fn current(&self) -> &str {
        &self.addrs[self.next]
    }

    /// Rotates to the following address (wraps).
    pub fn advance(&mut self) {
        self.next = (self.next + 1) % self.addrs.len();
    }

    /// Number of addresses.
    pub fn len(&self) -> usize {
        self.addrs.len()
    }

    /// Always false (parse rejects empty lists); mirrors `len`.
    pub fn is_empty(&self) -> bool {
        self.addrs.is_empty()
    }
}

/// Deterministic primary election over a standby set: lowest replica id,
/// via the registry's tested coordinator election (each standby id joins a
/// throwaway [`Membership`] and [`Membership::elect_coordinator`] picks).
/// Every survivor computes the same winner from the same replicated set —
/// no messages are exchanged.
pub fn elect_primary(standbys: &BTreeSet<u32>) -> Option<u32> {
    let mut m = Membership::new(RegistryConfig::default());
    for &r in standbys {
        m.join(SimTime(0), NodeId(r), ClusterId(0));
    }
    let _ = m.take_events();
    m.elect_coordinator().map(|n| n.0)
}

/// Standby-side configuration.
#[derive(Clone, Debug)]
pub struct StandbyConfig {
    /// This standby's replica id (must be unique and nonzero; the original
    /// primary is implicitly 0, so lower standby ids win elections sooner).
    pub replica_id: u32,
    /// Address of the primary to replicate from.
    pub primary: String,
    /// `host:port` this standby serves on after a takeover (advertised to
    /// the whole standby set through the replication log).
    pub advertise: String,
    /// No frame from the primary for this long ⇒ the primary is dead.
    pub heartbeat_timeout: Duration,
    /// Liveness check / guest reap interval.
    pub detect_interval: Duration,
}

/// What [`run_standby`] resolved to.
#[derive(Debug)]
pub enum StandbyOutcome {
    /// The primary died and this standby won the election: serve, fencing
    /// older epochs.
    Takeover(Takeover),
    /// The deployment shut down gracefully while we were still standby.
    Shutdown,
}

/// Everything the winner needs to become the primary.
#[derive(Debug)]
pub struct Takeover {
    /// The new, bumped hub epoch.
    pub epoch: u64,
    /// The replicated control-plane state to seed the hub with.
    pub state: ControlState,
    /// Replication log offset the state is current as of.
    pub log_offset: u64,
}

struct ReplicaCounters {
    snapshots: Arc<Counter>,
    deltas: Arc<Counter>,
    acks: Arc<Counter>,
    elections: Arc<Counter>,
    takeovers: Arc<Counter>,
}

impl ReplicaCounters {
    fn resolve(m: &Metrics) -> Option<Self> {
        m.is_enabled().then(|| Self {
            snapshots: m
                .counter("net.replica.snapshots_received")
                .expect("enabled"),
            deltas: m.counter("net.replica.deltas_applied").expect("enabled"),
            acks: m.counter("net.replica.acks_sent").expect("enabled"),
            elections: m.counter("net.replica.elections").expect("enabled"),
            takeovers: m.counter("net.replica.takeovers").expect("enabled"),
        })
    }
}

/// The standby's liveness/reap tick.
const TIMER_LIVE: u64 = 1;

/// How long an accepted client may sit frameless before being reaped.
const GUEST_PATIENCE: Duration = Duration::from_millis(500);

/// Tails the primary until it dies or the deployment shuts down, serving
/// the standby front door on `listener` the whole time.
///
/// Blocks for the standby's whole tailing life. On primary death it runs
/// the election: if this standby wins, it returns
/// [`StandbyOutcome::Takeover`] together with the still-bound listener
/// (the caller seeds a hub from the state and serves on it); if it loses,
/// it re-attaches to the winner and keeps tailing.
pub fn run_standby(
    listener: TcpListener,
    cfg: &StandbyConfig,
    metrics: &Metrics,
) -> io::Result<(StandbyOutcome, TcpListener)> {
    let rc = ReplicaCounters::resolve(metrics);
    let started = Instant::now();
    let mut reactor = Reactor::with_listener(listener, metrics)?;
    let mut state = ControlState::default();
    let mut epoch: u64 = 0;
    let mut log_offset: u64 = 0;
    let mut primary_addr = cfg.primary.clone();
    // Deterministic-jitter backoff for redials, seeded from the replica id
    // like workers seed theirs from the node id.
    let mut backoff = Backoff::new(
        Duration::from_millis(50),
        Duration::from_millis(250),
        0x5eed_0000 ^ u64::from(cfg.replica_id),
    );
    let mut last_frame = Instant::now();
    // The replication link's token, when attached.
    let mut primary: Option<Token> = None;
    let mut next_dial = Instant::now();
    // Clients accepted on the front door, by accept time (reaped if they
    // never send the Join we are waiting to refuse).
    let mut guests: BTreeMap<Token, Instant> = BTreeMap::new();

    let take_listener = |reactor: &mut Reactor| {
        reactor
            .take_listener()
            .expect("standby reactor owns the listener")
    };

    reactor.arm_timer(TIMER_LIVE, Instant::now() + cfg.detect_interval);
    let mut out: Vec<ReactorEvent> = Vec::new();
    loop {
        // (Re)dial the primary when due. EOF and connect failures are
        // transport blips; only heartbeat-timeout silence is death.
        if primary.is_none() && Instant::now() >= next_dial {
            match reactor.connect(&primary_addr) {
                Ok(t) => {
                    backoff.reset();
                    primary = Some(t);
                    reactor.send(
                        t,
                        &Message::ReplicaHello {
                            replica: cfg.replica_id,
                            addr: cfg.advertise.clone(),
                            log_offset,
                        },
                    );
                }
                Err(_) => next_dial = Instant::now() + backoff.next_delay(),
            }
        }

        reactor.poll(&mut out, cfg.detect_interval)?;
        for ev in out.drain(..) {
            match ev {
                ReactorEvent::Accepted(t, _) => {
                    guests.insert(t, Instant::now());
                }
                ReactorEvent::Closed(t) => {
                    guests.remove(&t);
                    if primary == Some(t) {
                        primary = None;
                        next_dial = Instant::now() + backoff.next_delay();
                    }
                }
                ReactorEvent::Frame(t, msg) if primary == Some(t) => match msg {
                    Message::StateSnapshot {
                        epoch: e,
                        log_offset: off,
                        state: snap,
                    } => {
                        if e < epoch {
                            // A stale primary answered: fence it off and
                            // treat the link as dead traffic.
                            reactor.close(t);
                            continue;
                        }
                        last_frame = Instant::now();
                        epoch = e;
                        log_offset = off;
                        state = ControlState::from_snapshot(&snap);
                        if let Some(rc) = &rc {
                            rc.snapshots.inc();
                        }
                        println!(
                            "EVENT standby attached epoch={e} offset={off} digest={:016x}",
                            state.digest()
                        );
                        if reactor.send(
                            t,
                            &Message::ReplicaAck {
                                replica: cfg.replica_id,
                                log_offset,
                            },
                        ) {
                            if let Some(rc) = &rc {
                                rc.acks.inc();
                            }
                        }
                    }
                    Message::StateDelta {
                        epoch: e,
                        log_offset: off,
                        op,
                    } => {
                        if e < epoch {
                            reactor.close(t); // stale primary
                            continue;
                        }
                        last_frame = Instant::now();
                        epoch = e;
                        state.apply(&op);
                        log_offset = off + 1;
                        if let Some(rc) = &rc {
                            rc.deltas.inc();
                        }
                        if reactor.send(
                            t,
                            &Message::ReplicaAck {
                                replica: cfg.replica_id,
                                log_offset,
                            },
                        ) {
                            if let Some(rc) = &rc {
                                rc.acks.inc();
                            }
                        }
                    }
                    Message::HubEpoch { epoch: e, .. } => {
                        // The replication keepalive.
                        if e >= epoch {
                            last_frame = Instant::now();
                            epoch = e;
                        }
                    }
                    Message::Shutdown => {
                        return Ok((StandbyOutcome::Shutdown, take_listener(&mut reactor)));
                    }
                    _ => {
                        // Frames a standby has no business with; ignore.
                        last_frame = Instant::now();
                    }
                },
                // A front-door client: refuse a Join explicitly (the
                // refusal drains before the close), drop everything else.
                ReactorEvent::Frame(t, msg) => {
                    if matches!(msg, Message::Join { .. }) {
                        reactor.send(
                            t,
                            &Message::JoinAck {
                                node: NodeId(0),
                                accepted: false,
                                reason: "standby: not primary".to_string(),
                            },
                        );
                    }
                    reactor.close(t);
                }
                ReactorEvent::Timer(_) => {
                    // Reap guests that connected but never spoke.
                    let now = Instant::now();
                    let stale: Vec<Token> = guests
                        .iter()
                        .filter(|(_, at)| now.duration_since(**at) >= GUEST_PATIENCE)
                        .map(|(t, _)| *t)
                        .collect();
                    for t in stale {
                        guests.remove(&t);
                        reactor.close(t);
                    }

                    if last_frame.elapsed() >= cfg.heartbeat_timeout {
                        // Heartbeat silence: the primary is dead. Elect over
                        // the replicated standby set (which includes us —
                        // the primary logged our ReplicaJoined).
                        let mut standbys: BTreeSet<u32> = state.replicas.keys().copied().collect();
                        standbys.insert(cfg.replica_id);
                        let winner = elect_primary(&standbys).expect("standby set contains self");
                        if let Some(rc) = &rc {
                            rc.elections.inc();
                        }
                        metrics.emit(
                            MetricEvent::new(started.elapsed().as_micros() as u64, "hub_election")
                                .with("winner", Value::U64(u64::from(winner)))
                                .with("standbys", Value::U64(standbys.len() as u64))
                                .with("old_epoch", Value::U64(epoch)),
                        );

                        if winner == cfg.replica_id {
                            let new_epoch = epoch + 1;
                            if let Some(rc) = &rc {
                                rc.takeovers.inc();
                            }
                            println!(
                                "EVENT takeover epoch={new_epoch} replica={}",
                                cfg.replica_id
                            );
                            return Ok((
                                StandbyOutcome::Takeover(Takeover {
                                    epoch: new_epoch,
                                    state,
                                    log_offset,
                                }),
                                take_listener(&mut reactor),
                            ));
                        }

                        // Lost the election: the winner is about to serve on
                        // its advertised address. Re-attach there and keep
                        // tailing; reset the silence clock so the winner
                        // gets a full timeout to come up.
                        primary_addr = state
                            .replicas
                            .get(&winner)
                            .cloned()
                            .unwrap_or_else(|| cfg.primary.clone());
                        last_frame = Instant::now();
                        backoff.reset();
                        if let Some(t) = primary.take() {
                            reactor.close(t);
                        }
                        next_dial = Instant::now();
                    }
                    reactor.arm_timer(TIMER_LIVE, Instant::now() + cfg.detect_interval);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn election_is_deterministic_lowest_id() {
        let set: BTreeSet<u32> = [9, 3, 5].into_iter().collect();
        // Same winner regardless of how many times (or who) computes it.
        for _ in 0..3 {
            assert_eq!(elect_primary(&set), Some(3));
        }
        let single: BTreeSet<u32> = [7].into_iter().collect();
        assert_eq!(elect_primary(&single), Some(7));
        assert_eq!(elect_primary(&BTreeSet::new()), None);
    }

    #[test]
    fn hub_set_parses_and_rotates() {
        let mut hs = HubSet::parse("127.0.0.1:1, 127.0.0.1:2 ,127.0.0.1:3").unwrap();
        assert_eq!(hs.len(), 3);
        assert_eq!(hs.current(), "127.0.0.1:1");
        hs.advance();
        assert_eq!(hs.current(), "127.0.0.1:2");
        hs.advance();
        hs.advance();
        assert_eq!(hs.current(), "127.0.0.1:1", "wraps");
        assert!(HubSet::parse("  , ,").is_err());
        assert_eq!(HubSet::parse("a:1").unwrap().addrs(), &["a:1".to_string()]);
    }

    #[test]
    fn standby_front_door_refuses_joins_while_tailing() {
        use crate::wire::{recv_message, send_message};
        use std::net::TcpStream;

        // No primary exists at this address; the standby keeps redialling
        // while its front door refuses walk-in joins.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let port = listener.local_addr().unwrap().port();
        let cfg = StandbyConfig {
            replica_id: 1,
            primary: "127.0.0.1:1".to_string(),
            advertise: format!("127.0.0.1:{port}"),
            heartbeat_timeout: Duration::from_secs(30),
            detect_interval: Duration::from_millis(20),
        };
        let metrics = Metrics::disabled();
        let standby = std::thread::spawn(move || run_standby(listener, &cfg, &metrics));

        let mut client = TcpStream::connect(("127.0.0.1", port)).unwrap();
        client
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        send_message(
            &mut client,
            &Message::Join {
                cluster: ClusterId(0),
                claim: None,
            },
        )
        .unwrap();
        match recv_message(&mut client).unwrap().unwrap() {
            Message::JoinAck {
                accepted: false,
                reason,
                ..
            } => assert!(reason.starts_with("standby"), "reason: {reason}"),
            other => panic!("expected a standby refusal, got {other:?}"),
        }
        // The refusal is followed by a close, not a hang.
        assert_eq!(recv_message(&mut client).unwrap(), None);
        // The standby is still tailing (blocked on its dead primary):
        // killing the thread isn't worth plumbing a stop signal for a unit
        // test, so just verify it hasn't crashed and leave it detached.
        assert!(!standby.is_finished() || standby.join().is_ok());
    }
}
