//! Standby hubs: replication tailing, primary-death detection, election
//! and takeover.
//!
//! A standby hub dials the primary, introduces itself with
//! [`Message::ReplicaHello`], and materialises the replication stream
//! (snapshot on attach, [`Message::StateDelta`]s after) into a
//! [`ControlState`]. The same heartbeat discipline the hub applies to
//! workers applies here in reverse: a dropped socket is a reconnectable
//! transport blip, and only *silence* — no frame from any primary for the
//! heartbeat timeout — declares the primary dead. The primary keeps the
//! link warm with periodic [`Message::HubEpoch`] frames, so silence is
//! unambiguous.
//!
//! On primary death every standby runs the same deterministic election —
//! lowest replica id over the replicated standby set, delegated to the
//! already-tested [`sagrid_registry::Membership::elect_coordinator`] — so
//! all survivors agree on the winner without exchanging a single message.
//! The winner bumps the hub epoch (fencing any stale primary that limps
//! back) and serves; losers re-attach to the winner's advertised address.

use crate::backoff::Backoff;
use crate::replog::ControlState;
use crate::wire::{recv_message, send_message, Message};
use sagrid_core::ids::{ClusterId, NodeId};
use sagrid_core::metrics::{Counter, MetricEvent, Metrics, Value};
use sagrid_core::time::SimTime;
use sagrid_registry::{Membership, RegistryConfig};
use std::collections::BTreeSet;
use std::io;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A parsed, ordered hub address list (`primary,standby1,standby2,…`).
/// Workers and the coordinator dial through it round-robin when failing
/// over; their per-address reconnect backoff rides on top.
#[derive(Clone, Debug)]
pub struct HubSet {
    addrs: Vec<String>,
    next: usize,
}

impl HubSet {
    /// Parses a comma-separated address list. At least one address.
    pub fn parse(s: &str) -> Result<HubSet, String> {
        let addrs: Vec<String> = s
            .split(',')
            .map(str::trim)
            .filter(|a| !a.is_empty())
            .map(str::to_string)
            .collect();
        if addrs.is_empty() {
            return Err(format!("empty hub list {s:?}"));
        }
        Ok(HubSet { addrs, next: 0 })
    }

    /// Every address, in the order given.
    pub fn addrs(&self) -> &[String] {
        &self.addrs
    }

    /// The address the next dial should try.
    pub fn current(&self) -> &str {
        &self.addrs[self.next]
    }

    /// Rotates to the following address (wraps).
    pub fn advance(&mut self) {
        self.next = (self.next + 1) % self.addrs.len();
    }

    /// Number of addresses.
    pub fn len(&self) -> usize {
        self.addrs.len()
    }

    /// Always false (parse rejects empty lists); mirrors `len`.
    pub fn is_empty(&self) -> bool {
        self.addrs.is_empty()
    }
}

/// Deterministic primary election over a standby set: lowest replica id,
/// via the registry's tested coordinator election (each standby id joins a
/// throwaway [`Membership`] and [`Membership::elect_coordinator`] picks).
/// Every survivor computes the same winner from the same replicated set —
/// no messages are exchanged.
pub fn elect_primary(standbys: &BTreeSet<u32>) -> Option<u32> {
    let mut m = Membership::new(RegistryConfig::default());
    for &r in standbys {
        m.join(SimTime(0), NodeId(r), ClusterId(0));
    }
    let _ = m.take_events();
    m.elect_coordinator().map(|n| n.0)
}

/// A standby's pre-takeover front door.
///
/// The standby binds its listener the moment it starts — long before any
/// election — so launchers can hand its address to workers from day one.
/// Until a takeover, this thread owns the listener and politely turns
/// clients away: a [`Message::Join`] gets an explicit refusal whose reason
/// starts with `"standby"` (workers treat that prefix as *transient* and
/// rotate to the next hub address instead of exiting), and anything else
/// gets an immediate close, which clients already handle as a redial.
/// [`StandbyRefuser::stop`] hands the still-bound listener back so the
/// takeover hub serves on the very address workers were already dialling.
pub struct StandbyRefuser {
    stop: Arc<AtomicBool>,
    handle: std::thread::JoinHandle<TcpListener>,
    port: u16,
}

impl StandbyRefuser {
    /// Takes ownership of the bound listener and starts refusing.
    pub fn spawn(listener: TcpListener) -> io::Result<StandbyRefuser> {
        let port = listener.local_addr()?.port();
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("standby-refuse".to_string())
            .spawn(move || loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        if stop2.load(Ordering::SeqCst) {
                            drop(stream); // the stop() wake-up connect
                            return listener;
                        }
                        std::thread::spawn(move || refuse_one(stream));
                    }
                    Err(_) => {
                        if stop2.load(Ordering::SeqCst) {
                            return listener;
                        }
                    }
                }
            })?;
        Ok(StandbyRefuser { stop, handle, port })
    }

    /// Stops refusing and recovers the (still-bound) listener.
    pub fn stop(self) -> TcpListener {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept() with a throwaway self-connect.
        let _ = TcpStream::connect(("127.0.0.1", self.port));
        self.handle.join().expect("standby refuser thread panicked")
    }
}

/// One-shot connection handler while standby: read the first frame, refuse
/// a `Join` explicitly, drop everything else.
fn refuse_one(mut stream: TcpStream) {
    stream
        .set_read_timeout(Some(Duration::from_millis(500)))
        .ok();
    if let Ok(Some(Message::Join { .. })) = recv_message(&mut stream) {
        let _ = send_message(
            &mut stream,
            &Message::JoinAck {
                node: NodeId(0),
                accepted: false,
                reason: "standby: not primary".to_string(),
            },
        );
    }
}

/// Standby-side configuration.
#[derive(Clone, Debug)]
pub struct StandbyConfig {
    /// This standby's replica id (must be unique and nonzero; the original
    /// primary is implicitly 0, so lower standby ids win elections sooner).
    pub replica_id: u32,
    /// Address of the primary to replicate from.
    pub primary: String,
    /// `host:port` this standby serves on after a takeover (advertised to
    /// the whole standby set through the replication log).
    pub advertise: String,
    /// No frame from the primary for this long ⇒ the primary is dead.
    pub heartbeat_timeout: Duration,
    /// Socket read timeout / liveness check interval.
    pub detect_interval: Duration,
}

/// What [`run_standby`] resolved to.
#[derive(Debug)]
pub enum StandbyOutcome {
    /// The primary died and this standby won the election: serve, fencing
    /// older epochs.
    Takeover(Takeover),
    /// The deployment shut down gracefully while we were still standby.
    Shutdown,
}

/// Everything the winner needs to become the primary.
#[derive(Debug)]
pub struct Takeover {
    /// The new, bumped hub epoch.
    pub epoch: u64,
    /// The replicated control-plane state to seed the hub with.
    pub state: ControlState,
    /// Replication log offset the state is current as of.
    pub log_offset: u64,
}

struct ReplicaCounters {
    snapshots: Arc<Counter>,
    deltas: Arc<Counter>,
    acks: Arc<Counter>,
    elections: Arc<Counter>,
    takeovers: Arc<Counter>,
}

impl ReplicaCounters {
    fn resolve(m: &Metrics) -> Option<Self> {
        m.is_enabled().then(|| Self {
            snapshots: m
                .counter("net.replica.snapshots_received")
                .expect("enabled"),
            deltas: m.counter("net.replica.deltas_applied").expect("enabled"),
            acks: m.counter("net.replica.acks_sent").expect("enabled"),
            elections: m.counter("net.replica.elections").expect("enabled"),
            takeovers: m.counter("net.replica.takeovers").expect("enabled"),
        })
    }
}

/// Tails the primary until it dies or the deployment shuts down.
///
/// Blocks for the standby's whole tailing life. On primary death it runs
/// the election: if this standby wins, returns
/// [`StandbyOutcome::Takeover`] (the caller seeds a hub from the state and
/// serves); if it loses, it re-attaches to the winner and keeps tailing.
pub fn run_standby(cfg: &StandbyConfig, metrics: &Metrics) -> io::Result<StandbyOutcome> {
    let rc = ReplicaCounters::resolve(metrics);
    let started = Instant::now();
    let mut state = ControlState::default();
    let mut epoch: u64 = 0;
    let mut log_offset: u64 = 0;
    let mut primary_addr = cfg.primary.clone();
    // Deterministic-jitter backoff for redials, seeded from the replica id
    // like workers seed theirs from the node id.
    let mut backoff = Backoff::new(
        Duration::from_millis(50),
        Duration::from_millis(250),
        0x5eed_0000 ^ u64::from(cfg.replica_id),
    );
    let mut last_frame = Instant::now();

    'attach: loop {
        // Dial (and redial) the current primary. EOF and connect failures
        // are transport blips; only heartbeat-timeout silence is death.
        let stream = loop {
            match TcpStream::connect(&primary_addr) {
                Ok(s) => break Some(s),
                Err(_) if last_frame.elapsed() < cfg.heartbeat_timeout => {
                    std::thread::sleep(backoff.next_delay());
                }
                Err(_) => break None,
            }
        };

        if let Some(mut stream) = stream {
            backoff.reset();
            stream.set_nodelay(true).ok();
            stream.set_read_timeout(Some(cfg.detect_interval)).ok();
            let hello = Message::ReplicaHello {
                replica: cfg.replica_id,
                addr: cfg.advertise.clone(),
                log_offset,
            };
            if send_message(&mut stream, &hello).is_ok() {
                loop {
                    match recv_message(&mut stream) {
                        Ok(Some(Message::StateSnapshot {
                            epoch: e,
                            log_offset: off,
                            state: snap,
                        })) => {
                            if e < epoch {
                                // A stale primary answered: fence it off and
                                // treat the link as dead traffic.
                                break;
                            }
                            last_frame = Instant::now();
                            epoch = e;
                            log_offset = off;
                            state = ControlState::from_snapshot(&snap);
                            if let Some(rc) = &rc {
                                rc.snapshots.inc();
                            }
                            println!(
                                "EVENT standby attached epoch={e} offset={off} digest={:016x}",
                                state.digest()
                            );
                            let ack = Message::ReplicaAck {
                                replica: cfg.replica_id,
                                log_offset,
                            };
                            if send_message(&mut stream, &ack).is_ok() {
                                if let Some(rc) = &rc {
                                    rc.acks.inc();
                                }
                            }
                        }
                        Ok(Some(Message::StateDelta {
                            epoch: e,
                            log_offset: off,
                            op,
                        })) => {
                            if e < epoch {
                                break; // stale primary
                            }
                            last_frame = Instant::now();
                            epoch = e;
                            state.apply(&op);
                            log_offset = off + 1;
                            if let Some(rc) = &rc {
                                rc.deltas.inc();
                            }
                            let ack = Message::ReplicaAck {
                                replica: cfg.replica_id,
                                log_offset,
                            };
                            if send_message(&mut stream, &ack).is_ok() {
                                if let Some(rc) = &rc {
                                    rc.acks.inc();
                                }
                            }
                        }
                        Ok(Some(Message::HubEpoch { epoch: e, .. })) => {
                            // The replication keepalive.
                            if e >= epoch {
                                last_frame = Instant::now();
                                epoch = e;
                            }
                        }
                        Ok(Some(Message::Shutdown)) => {
                            return Ok(StandbyOutcome::Shutdown);
                        }
                        Ok(Some(_)) => {
                            // Frames a standby has no business with; ignore.
                            last_frame = Instant::now();
                        }
                        Ok(None) => break, // EOF: redial
                        Err(e)
                            if e.kind() == io::ErrorKind::WouldBlock
                                || e.kind() == io::ErrorKind::TimedOut =>
                        {
                            if last_frame.elapsed() >= cfg.heartbeat_timeout {
                                break;
                            }
                        }
                        Err(_) => break,
                    }
                }
            }
        }

        // Out of the read loop: either the socket dropped or we timed out.
        if last_frame.elapsed() < cfg.heartbeat_timeout {
            std::thread::sleep(backoff.next_delay());
            continue 'attach;
        }

        // Heartbeat silence: the primary is dead. Elect over the
        // replicated standby set (which includes us — the primary logged
        // our ReplicaJoined).
        let mut standbys: BTreeSet<u32> = state.replicas.keys().copied().collect();
        standbys.insert(cfg.replica_id);
        let winner = elect_primary(&standbys).expect("standby set contains self");
        if let Some(rc) = &rc {
            rc.elections.inc();
        }
        metrics.emit(
            MetricEvent::new(started.elapsed().as_micros() as u64, "hub_election")
                .with("winner", Value::U64(u64::from(winner)))
                .with("standbys", Value::U64(standbys.len() as u64))
                .with("old_epoch", Value::U64(epoch)),
        );

        if winner == cfg.replica_id {
            let new_epoch = epoch + 1;
            if let Some(rc) = &rc {
                rc.takeovers.inc();
            }
            println!(
                "EVENT takeover epoch={new_epoch} replica={}",
                cfg.replica_id
            );
            return Ok(StandbyOutcome::Takeover(Takeover {
                epoch: new_epoch,
                state,
                log_offset,
            }));
        }

        // Lost the election: the winner is about to serve on its
        // advertised address. Re-attach there and keep tailing; reset the
        // silence clock so the winner gets a full timeout to come up.
        primary_addr = state
            .replicas
            .get(&winner)
            .cloned()
            .unwrap_or_else(|| cfg.primary.clone());
        last_frame = Instant::now();
        backoff.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn election_is_deterministic_lowest_id() {
        let set: BTreeSet<u32> = [9, 3, 5].into_iter().collect();
        // Same winner regardless of how many times (or who) computes it.
        for _ in 0..3 {
            assert_eq!(elect_primary(&set), Some(3));
        }
        let single: BTreeSet<u32> = [7].into_iter().collect();
        assert_eq!(elect_primary(&single), Some(7));
        assert_eq!(elect_primary(&BTreeSet::new()), None);
    }

    #[test]
    fn hub_set_parses_and_rotates() {
        let mut hs = HubSet::parse("127.0.0.1:1, 127.0.0.1:2 ,127.0.0.1:3").unwrap();
        assert_eq!(hs.len(), 3);
        assert_eq!(hs.current(), "127.0.0.1:1");
        hs.advance();
        assert_eq!(hs.current(), "127.0.0.1:2");
        hs.advance();
        hs.advance();
        assert_eq!(hs.current(), "127.0.0.1:1", "wraps");
        assert!(HubSet::parse("  , ,").is_err());
        assert_eq!(HubSet::parse("a:1").unwrap().addrs(), &["a:1".to_string()]);
    }
}
