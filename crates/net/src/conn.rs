//! Per-connection reader/writer threads over a `TcpStream`.
//!
//! Each [`Connection`] owns two detached threads: the writer drains an
//! outbox channel and frames messages onto the socket; the reader decodes
//! frames and forwards them as [`NetEvent`]s into a shared sink channel
//! (the hub's or client's single event loop). Dropping the `Connection`
//! closes the outbox, which makes the writer shut the socket down, which
//! unblocks the reader — no join handles, no leaked sockets.

use crate::wire::{read_frame, Message};
use sagrid_core::metrics::{Counter, Metrics};
use std::io::{self, BufReader, BufWriter};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::mpsc::{channel, Sender};
use std::sync::Arc;

/// Identifier of a connection within one process (monotonic, never reused).
pub type ConnId = u64;

/// What a connection's reader thread reports into the owning event loop.
#[derive(Debug)]
pub enum NetEvent {
    /// A new connection was established (sent by accept loops / dialers,
    /// carrying the connection handle itself).
    Opened(Connection),
    /// A decoded message arrived on the connection.
    Message(ConnId, Message),
    /// The connection is gone: clean EOF, transport error or a protocol
    /// violation (undecodable frame). Exactly one per connection.
    Closed(ConnId),
}

/// Pre-resolved `net.*` counters, so the per-frame hot path never does a
/// name lookup (same idiom as the scheduler's and runtime's metrics).
#[derive(Clone, Debug)]
pub struct NetMetrics {
    frames_sent: Arc<Counter>,
    frames_received: Arc<Counter>,
    bytes_sent: Arc<Counter>,
    bytes_received: Arc<Counter>,
    decode_errors: Arc<Counter>,
}

impl NetMetrics {
    /// Resolves the counter handles; `None` when metrics are disabled.
    pub fn resolve(metrics: &Metrics) -> Option<Self> {
        metrics.is_enabled().then(|| Self {
            frames_sent: metrics.counter("net.frames_sent").expect("enabled"),
            frames_received: metrics.counter("net.frames_received").expect("enabled"),
            bytes_sent: metrics.counter("net.bytes_sent").expect("enabled"),
            bytes_received: metrics.counter("net.bytes_received").expect("enabled"),
            decode_errors: metrics.counter("net.decode_errors").expect("enabled"),
        })
    }
}

/// A live connection: a handle to send messages, plus two background
/// threads pumping the socket.
#[derive(Clone, Debug)]
pub struct Connection {
    id: ConnId,
    peer: SocketAddr,
    outbox: Sender<Message>,
}

impl Connection {
    /// Takes ownership of `stream` and starts the reader/writer threads.
    /// Every inbound message and the final close surface on `events`.
    ///
    /// An [`NetEvent::Opened`] carrying a clone of the handle is enqueued
    /// *before* the reader thread starts, so an event loop always sees
    /// `Opened` before any `Message` from the same connection — without
    /// this guarantee a fast peer's first message could race the accept
    /// loop's registration and be processed against an unknown connection.
    pub fn spawn(
        id: ConnId,
        stream: TcpStream,
        events: Sender<NetEvent>,
        nm: Option<NetMetrics>,
    ) -> io::Result<Connection> {
        stream.set_nodelay(true)?;
        let peer = stream.peer_addr()?;
        let reader_stream = stream.try_clone()?;
        let (outbox, inbox) = channel::<Message>();
        let conn = Connection { id, peer, outbox };
        let _ = events.send(NetEvent::Opened(conn.clone()));

        let writer_nm = nm.clone();
        std::thread::Builder::new()
            .name(format!("net-writer-{id}"))
            .spawn(move || {
                let mut w = BufWriter::new(&stream);
                while let Ok(msg) = inbox.recv() {
                    let payload = msg.encode();
                    if crate::wire::write_frame(&mut w, &payload).is_err() {
                        break;
                    }
                    if let Some(nm) = &writer_nm {
                        nm.frames_sent.inc();
                        nm.bytes_sent.add(payload.len() as u64 + 4);
                    }
                }
                // Outbox closed or write failed: tear the socket down so the
                // reader thread (ours and the peer's) unblocks.
                let _ = stream.shutdown(Shutdown::Both);
            })
            .expect("spawn net writer thread");

        std::thread::Builder::new()
            .name(format!("net-reader-{id}"))
            .spawn(move || {
                let mut r = BufReader::new(reader_stream);
                while let Ok(Some(payload)) = read_frame(&mut r) {
                    if let Some(nm) = &nm {
                        nm.frames_received.inc();
                        nm.bytes_received.add(payload.len() as u64 + 4);
                    }
                    match Message::decode(&payload) {
                        Ok(msg) => {
                            if events.send(NetEvent::Message(id, msg)).is_err() {
                                break;
                            }
                        }
                        Err(_) => {
                            // Protocol violation: drop the peer.
                            if let Some(nm) = &nm {
                                nm.decode_errors.inc();
                            }
                            break;
                        }
                    }
                }
                if let Ok(s) = r.into_inner().try_clone() {
                    let _ = s.shutdown(Shutdown::Both);
                }
                let _ = events.send(NetEvent::Closed(id));
            })
            .expect("spawn net reader thread");

        Ok(conn)
    }

    /// The connection's process-local id.
    pub fn id(&self) -> ConnId {
        self.id
    }

    /// The remote address.
    pub fn peer(&self) -> SocketAddr {
        self.peer
    }

    /// Queues a message for the writer thread. Returns `false` when the
    /// connection is already gone (the caller will observe a
    /// [`NetEvent::Closed`] too).
    pub fn send(&self, msg: Message) -> bool {
        self.outbox.send(msg).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::send_message;
    use sagrid_core::ids::NodeId;
    use std::net::TcpListener;
    use std::time::Duration;

    #[test]
    fn messages_flow_both_ways_and_close_is_reported() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let (events_tx, events_rx) = channel();

        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut r = BufReader::new(stream.try_clone().unwrap());
            let msg = crate::wire::recv_message(&mut r).unwrap().unwrap();
            assert_eq!(msg, Message::Heartbeat { node: NodeId(3) });
            let mut w = BufWriter::new(&stream);
            send_message(&mut w, &Message::Shutdown).unwrap();
            // Drop the socket: the client must observe Closed.
        });

        let stream = TcpStream::connect(addr).unwrap();
        let conn = Connection::spawn(1, stream, events_tx, None).unwrap();
        assert!(conn.send(Message::Heartbeat { node: NodeId(3) }));

        let evt = events_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert!(matches!(evt, NetEvent::Opened(_)), "got {evt:?}");
        let evt = events_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        match evt {
            NetEvent::Message(1, Message::Shutdown) => {}
            other => panic!("expected Shutdown, got {other:?}"),
        }
        let evt = events_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert!(matches!(evt, NetEvent::Closed(1)), "got {evt:?}");
        server.join().unwrap();
    }

    #[test]
    fn metrics_count_frames_and_bytes() {
        let metrics = Metrics::enabled();
        let nm = NetMetrics::resolve(&metrics);
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let (events_tx, events_rx) = channel();

        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut r = BufReader::new(stream.try_clone().unwrap());
            while let Ok(Some(_)) = crate::wire::recv_message(&mut r) {}
        });

        let stream = TcpStream::connect(addr).unwrap();
        let conn = Connection::spawn(9, stream, events_tx, nm).unwrap();
        for i in 0..5 {
            assert!(conn.send(Message::Heartbeat { node: NodeId(i) }));
        }
        let evt = events_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        let NetEvent::Opened(registered) = evt else {
            panic!("expected Opened first, got {evt:?}")
        };
        drop(registered);
        drop(conn); // both handles gone → writer flushes and shuts down
        let evt = events_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert!(matches!(evt, NetEvent::Closed(9)));
        server.join().unwrap();
        let report = metrics.report();
        assert_eq!(report.counter("net.frames_sent"), 5);
        assert!(report.counter("net.bytes_sent") >= 5 * 9);
    }
}
