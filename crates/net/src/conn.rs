//! Per-connection reader/writer threads over a `TcpStream`.
//!
//! Each [`Connection`] owns two detached threads: the writer drains an
//! outbox channel and frames messages onto the socket; the reader decodes
//! frames and forwards them as [`NetEvent`]s into a shared sink channel
//! (the hub's or client's single event loop). Dropping the `Connection`
//! closes the outbox, which makes the writer shut the socket down, which
//! unblocks the reader — no join handles, no leaked sockets.
//!
//! The reader symmetrically signals the writer: when it exits (EOF, decode
//! error, transport failure) it enqueues [`Outgoing::ReaderGone`] through a
//! `Weak` handle, so a writer parked on an idle outbox terminates promptly
//! instead of leaking until the next outgoing send. The handle is `Weak`
//! deliberately — a strong `Sender` clone in the reader would keep the
//! outbox open after every public handle is dropped, deadlocking both
//! threads against each other.

use crate::wire::{read_frame, Message};
use sagrid_core::metrics::{Counter, Metrics};
use std::io::{self, BufReader, BufWriter};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Weak};
use std::time::Duration;

/// Identifier of a connection within one process (monotonic, never reused).
pub type ConnId = u64;

/// What a connection's reader thread reports into the owning event loop.
#[derive(Debug)]
pub enum NetEvent {
    /// A new connection was established (sent by accept loops / dialers,
    /// carrying the connection handle itself).
    Opened(Connection),
    /// A decoded message arrived on the connection.
    Message(ConnId, Message),
    /// The connection is gone: clean EOF, transport error or a protocol
    /// violation (undecodable frame). Exactly one per connection.
    Closed(ConnId),
}

/// What travels through the outbox to the writer thread. FIFO ordering is
/// load-bearing: a [`Outgoing::Flush`] ack means every frame queued before
/// it has been written and flushed to the socket.
enum Outgoing {
    /// A message to frame onto the socket.
    Msg(Message),
    /// Ack on the carried channel once all previously queued frames have
    /// hit the socket ([`crate::wire::write_frame`] flushes per frame).
    Flush(Sender<()>),
    /// The reader thread exited: drain what is queued, then terminate.
    ReaderGone,
}

impl std::fmt::Debug for Outgoing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Outgoing::Msg(m) => f.debug_tuple("Msg").field(m).finish(),
            Outgoing::Flush(_) => f.write_str("Flush"),
            Outgoing::ReaderGone => f.write_str("ReaderGone"),
        }
    }
}

/// Pre-resolved `net.*` counters, so the per-frame hot path never does a
/// name lookup (same idiom as the scheduler's and runtime's metrics).
#[derive(Clone, Debug)]
pub struct NetMetrics {
    frames_sent: Arc<Counter>,
    frames_received: Arc<Counter>,
    bytes_sent: Arc<Counter>,
    bytes_received: Arc<Counter>,
    decode_errors: Arc<Counter>,
}

impl NetMetrics {
    /// Resolves the counter handles; `None` when metrics are disabled.
    pub fn resolve(metrics: &Metrics) -> Option<Self> {
        metrics.is_enabled().then(|| Self {
            frames_sent: metrics.counter("net.frames_sent").expect("enabled"),
            frames_received: metrics.counter("net.frames_received").expect("enabled"),
            bytes_sent: metrics.counter("net.bytes_sent").expect("enabled"),
            bytes_received: metrics.counter("net.bytes_received").expect("enabled"),
            decode_errors: metrics.counter("net.decode_errors").expect("enabled"),
        })
    }
}

/// The shared core of a connection handle. Held strongly by every public
/// [`Connection`] clone and weakly by the reader thread; when the last
/// strong reference drops, the outbox closes and the writer winds down.
#[derive(Debug)]
struct ConnInner {
    outbox: Sender<Outgoing>,
}

/// A live connection: a handle to send messages, plus two background
/// threads pumping the socket.
#[derive(Clone, Debug)]
pub struct Connection {
    id: ConnId,
    peer: SocketAddr,
    inner: Arc<ConnInner>,
}

impl Connection {
    /// Takes ownership of `stream` and starts the reader/writer threads.
    /// Every inbound message and the final close surface on `events`.
    ///
    /// An [`NetEvent::Opened`] carrying a clone of the handle is enqueued
    /// *before* the reader thread starts, so an event loop always sees
    /// `Opened` before any `Message` from the same connection — without
    /// this guarantee a fast peer's first message could race the accept
    /// loop's registration and be processed against an unknown connection.
    pub fn spawn(
        id: ConnId,
        stream: TcpStream,
        events: Sender<NetEvent>,
        nm: Option<NetMetrics>,
    ) -> io::Result<Connection> {
        stream.set_nodelay(true)?;
        let peer = stream.peer_addr()?;
        let reader_stream = stream.try_clone()?;
        let (outbox, inbox) = channel::<Outgoing>();
        let conn = Connection {
            id,
            peer,
            inner: Arc::new(ConnInner { outbox }),
        };
        // Weak: must not keep the outbox alive once every public handle is
        // dropped (see module docs).
        let reader_signal: Weak<ConnInner> = Arc::downgrade(&conn.inner);
        let _ = events.send(NetEvent::Opened(conn.clone()));

        let writer_nm = nm.clone();
        std::thread::Builder::new()
            .name(format!("net-writer-{id}"))
            .spawn(move || {
                let mut w = BufWriter::new(&stream);
                while let Ok(out) = inbox.recv() {
                    match out {
                        Outgoing::Msg(msg) => {
                            let payload = msg.encode();
                            if crate::wire::write_frame(&mut w, &payload).is_err() {
                                break;
                            }
                            if let Some(nm) = &writer_nm {
                                nm.frames_sent.inc();
                                nm.bytes_sent.add(payload.len() as u64 + 4);
                            }
                        }
                        Outgoing::Flush(ack) => {
                            // write_frame flushes per frame, so reaching this
                            // queue position means everything before it is
                            // already on the socket.
                            let _ = ack.send(());
                        }
                        Outgoing::ReaderGone => break,
                    }
                }
                // Outbox closed, write failed or reader gone: tear the socket
                // down so the reader thread (ours and the peer's) unblocks.
                // Dropping `inbox` here also makes every later `send`/`flush`
                // on surviving handles return `false` instead of queueing
                // into the void.
                let _ = stream.shutdown(Shutdown::Both);
            })
            .expect("spawn net writer thread");

        std::thread::Builder::new()
            .name(format!("net-reader-{id}"))
            .spawn(move || {
                let mut r = BufReader::new(reader_stream);
                while let Ok(Some(payload)) = read_frame(&mut r) {
                    if let Some(nm) = &nm {
                        nm.frames_received.inc();
                        nm.bytes_received.add(payload.len() as u64 + 4);
                    }
                    match Message::decode(&payload) {
                        Ok(msg) => {
                            if events.send(NetEvent::Message(id, msg)).is_err() {
                                break;
                            }
                        }
                        Err(_) => {
                            // Protocol violation: drop the peer.
                            if let Some(nm) = &nm {
                                nm.decode_errors.inc();
                            }
                            break;
                        }
                    }
                }
                if let Ok(s) = r.into_inner().try_clone() {
                    let _ = s.shutdown(Shutdown::Both);
                }
                // Wake a writer parked on an idle outbox so it terminates
                // now rather than at the next outgoing send. If the upgrade
                // fails every public handle is already gone and the closed
                // channel has woken the writer by itself.
                if let Some(inner) = reader_signal.upgrade() {
                    let _ = inner.outbox.send(Outgoing::ReaderGone);
                }
                let _ = events.send(NetEvent::Closed(id));
            })
            .expect("spawn net reader thread");

        Ok(conn)
    }

    /// The connection's process-local id.
    pub fn id(&self) -> ConnId {
        self.id
    }

    /// The remote address.
    pub fn peer(&self) -> SocketAddr {
        self.peer
    }

    /// Queues a message for the writer thread. Returns `false` when the
    /// connection is already gone (the caller will observe a
    /// [`NetEvent::Closed`] too).
    pub fn send(&self, msg: Message) -> bool {
        self.inner.outbox.send(Outgoing::Msg(msg)).is_ok()
    }

    /// Blocks until every message queued before this call has been written
    /// and flushed to the socket, or `timeout` elapses. Returns `true` on a
    /// confirmed drain; `false` on timeout or when the connection is
    /// already gone. This is how a departing process guarantees its
    /// farewell frame is on the wire before exiting — a sleep only hopes.
    pub fn flush(&self, timeout: Duration) -> bool {
        let (ack_tx, ack_rx) = channel();
        if self.inner.outbox.send(Outgoing::Flush(ack_tx)).is_err() {
            return false;
        }
        ack_rx.recv_timeout(timeout).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::send_message;
    use sagrid_core::ids::NodeId;
    use std::net::TcpListener;
    use std::time::Instant;

    #[test]
    fn messages_flow_both_ways_and_close_is_reported() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let (events_tx, events_rx) = channel();

        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut r = BufReader::new(stream.try_clone().unwrap());
            let msg = crate::wire::recv_message(&mut r).unwrap().unwrap();
            assert_eq!(msg, Message::Heartbeat { node: NodeId(3) });
            let mut w = BufWriter::new(&stream);
            send_message(&mut w, &Message::Shutdown).unwrap();
            // Drop the socket: the client must observe Closed.
        });

        let stream = TcpStream::connect(addr).unwrap();
        let conn = Connection::spawn(1, stream, events_tx, None).unwrap();
        assert!(conn.send(Message::Heartbeat { node: NodeId(3) }));

        let evt = events_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert!(matches!(evt, NetEvent::Opened(_)), "got {evt:?}");
        let evt = events_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        match evt {
            NetEvent::Message(1, Message::Shutdown) => {}
            other => panic!("expected Shutdown, got {other:?}"),
        }
        let evt = events_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert!(matches!(evt, NetEvent::Closed(1)), "got {evt:?}");
        server.join().unwrap();
    }

    #[test]
    fn metrics_count_frames_and_bytes() {
        let metrics = Metrics::enabled();
        let nm = NetMetrics::resolve(&metrics);
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let (events_tx, events_rx) = channel();

        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut r = BufReader::new(stream.try_clone().unwrap());
            while let Ok(Some(_)) = crate::wire::recv_message(&mut r) {}
        });

        let stream = TcpStream::connect(addr).unwrap();
        let conn = Connection::spawn(9, stream, events_tx, nm).unwrap();
        for i in 0..5 {
            assert!(conn.send(Message::Heartbeat { node: NodeId(i) }));
        }
        let evt = events_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        let NetEvent::Opened(registered) = evt else {
            panic!("expected Opened first, got {evt:?}")
        };
        drop(registered);
        drop(conn); // both handles gone → writer flushes and shuts down
        let evt = events_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert!(matches!(evt, NetEvent::Closed(9)));
        server.join().unwrap();
        let report = metrics.report();
        assert_eq!(report.counter("net.frames_sent"), 5);
        assert!(report.counter("net.bytes_sent") >= 5 * 9);
    }

    #[test]
    fn flush_confirms_queued_frames_are_on_the_wire() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let (events_tx, events_rx) = channel();
        let (got_tx, got_rx) = channel::<Message>();

        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut r = BufReader::new(stream.try_clone().unwrap());
            while let Ok(Some(msg)) = crate::wire::recv_message(&mut r) {
                if got_tx.send(msg).is_err() {
                    break;
                }
            }
        });

        let stream = TcpStream::connect(addr).unwrap();
        let conn = Connection::spawn(2, stream, events_tx, None).unwrap();
        // Drain the Opened event and drop the handle clone it carries —
        // otherwise it keeps the outbox open past the final drop below.
        let evt = events_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        let NetEvent::Opened(registered) = evt else {
            panic!("expected Opened first, got {evt:?}")
        };
        drop(registered);
        for i in 0..20 {
            assert!(conn.send(Message::Heartbeat { node: NodeId(i) }));
        }
        assert!(conn.send(Message::Leaving { node: NodeId(7) }));
        assert!(
            conn.flush(Duration::from_secs(5)),
            "flush must ack within the timeout"
        );
        // The ack guarantees the frames were written and flushed; a live
        // loopback socket delivers them promptly after that.
        let mut got = Vec::new();
        while got.len() < 21 {
            got.push(got_rx.recv_timeout(Duration::from_secs(5)).unwrap());
        }
        assert_eq!(got.last(), Some(&Message::Leaving { node: NodeId(7) }));
        drop(conn);
        let _ = events_rx; // keep the sink alive until here
        server.join().unwrap();
    }

    /// Live thread names of this process (Linux: `/proc/self/task/*/comm`).
    #[cfg(target_os = "linux")]
    fn live_thread_names() -> Vec<String> {
        let mut names = Vec::new();
        if let Ok(tasks) = std::fs::read_dir("/proc/self/task") {
            for t in tasks.flatten() {
                if let Ok(name) = std::fs::read_to_string(t.path().join("comm")) {
                    names.push(name.trim().to_string());
                }
            }
        }
        names
    }

    /// Regression: the reader exiting (peer EOF) must terminate the writer
    /// too, even while a public handle keeps the outbox open and idle —
    /// previously the writer stayed parked on `recv()` forever.
    #[test]
    #[cfg(target_os = "linux")]
    fn reader_exit_terminates_both_threads() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let (events_tx, events_rx) = channel();

        let stream = TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        // Thread names are capped at 15 chars; id 4242 keeps both unique.
        let conn = Connection::spawn(4242, stream, events_tx, None).unwrap();
        let evt = events_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert!(matches!(evt, NetEvent::Opened(_)));
        // The writer is spawned before `Opened` is enqueued, but its name
        // may not yet be visible in /proc — poll rather than assert once.
        let deadline = Instant::now() + Duration::from_secs(5);
        while !live_thread_names().iter().any(|n| n == "net-writer-4242") {
            assert!(Instant::now() < deadline, "writer thread never appeared");
            std::thread::sleep(Duration::from_millis(10));
        }

        // Peer closes: reader sees EOF and must take the writer down with
        // it, while `conn` still holds the outbox open.
        drop(server_side);
        let evt = events_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert!(matches!(evt, NetEvent::Closed(4242)), "got {evt:?}");

        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let names = live_thread_names();
            let alive = |n: &str| names.iter().any(|x| x == n);
            if !alive("net-reader-4242") && !alive("net-writer-4242") {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "connection threads still alive: {names:?}"
            );
            std::thread::sleep(Duration::from_millis(10));
        }

        // The dead connection rejects further traffic instead of queueing
        // into the void.
        assert!(!conn.send(Message::Shutdown));
        assert!(!conn.flush(Duration::from_millis(100)));
    }
}
