//! A client-side connection handle over one [`Reactor`]-driven thread.
//!
//! Each [`Connection`] owns a single detached `net-io-{id}` thread running
//! a listener-less [`Reactor`] with exactly one registered stream: the
//! thread drains a command channel (sends and flush requests, woken
//! through the reactor's [`Waker`]), pumps the socket, and forwards every
//! decoded frame as a [`NetEvent`] into a shared sink channel (the
//! client's single event loop). The old transport spent two OS threads per
//! connection (a blocking reader and a blocking writer); the reactor
//! multiplexes both directions on one.
//!
//! Dropping the last `Connection` handle closes the command channel, which
//! makes the thread drain whatever is queued onto the wire, close the
//! socket, report [`NetEvent::Closed`] and exit — no join handles, no
//! leaked sockets, and a farewell frame queued before the drop still gets
//! delivered.

use crate::reactor::{Reactor, ReactorEvent, Waker};
use crate::wire::Message;
use sagrid_core::metrics::{Counter, Metrics};
use std::io;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Sender, TryRecvError};
use std::sync::Arc;
use std::time::Duration;

/// Identifier of a connection within one process (monotonic, never reused).
pub type ConnId = u64;

/// What a connection's I/O thread reports into the owning event loop.
#[derive(Debug)]
pub enum NetEvent {
    /// A new connection was established (sent by accept loops / dialers,
    /// carrying the connection handle itself).
    Opened(Connection),
    /// A decoded message arrived on the connection.
    Message(ConnId, Message),
    /// The connection is gone: clean EOF, transport error or a protocol
    /// violation (undecodable frame). Exactly one per connection.
    Closed(ConnId),
}

/// What travels through the command channel to the I/O thread. FIFO
/// ordering is load-bearing: a flush ack means every frame queued before
/// it has been written to the socket.
enum Cmd {
    /// A message to frame onto the socket.
    Msg(Message),
    /// Drain the write queue (bounded by the duration), then ack.
    Flush(Duration, Sender<()>),
}

/// Pre-resolved `net.*` counters, so the per-frame hot path never does a
/// name lookup (same idiom as the scheduler's and runtime's metrics).
/// `decode_errors` is counted by server-side reactors; a client connection
/// surfaces an undecodable peer as a plain close.
#[derive(Clone, Debug)]
pub struct NetMetrics {
    frames_sent: Arc<Counter>,
    frames_received: Arc<Counter>,
    bytes_sent: Arc<Counter>,
    bytes_received: Arc<Counter>,
    #[allow(dead_code)]
    decode_errors: Arc<Counter>,
}

impl NetMetrics {
    /// Resolves the counter handles; `None` when metrics are disabled.
    pub fn resolve(metrics: &Metrics) -> Option<Self> {
        metrics.is_enabled().then(|| Self {
            frames_sent: metrics.counter("net.frames_sent").expect("enabled"),
            frames_received: metrics.counter("net.frames_received").expect("enabled"),
            bytes_sent: metrics.counter("net.bytes_sent").expect("enabled"),
            bytes_received: metrics.counter("net.bytes_received").expect("enabled"),
            decode_errors: metrics.counter("net.decode_errors").expect("enabled"),
        })
    }
}

/// The shared core of a connection handle. Held strongly by every public
/// [`Connection`] clone; when the last strong reference drops, the command
/// channel closes and the I/O thread winds down.
struct ConnInner {
    cmds: Sender<Cmd>,
    waker: Waker,
    /// Cleared by the I/O thread *before* it reports `Closed`, so a caller
    /// that observed the close never gets a `true` from `send`.
    alive: Arc<AtomicBool>,
}

impl std::fmt::Debug for ConnInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConnInner")
            .field("alive", &self.alive.load(Ordering::Relaxed))
            .finish()
    }
}

/// A live connection: a handle to send messages, plus one background
/// thread pumping the socket through a reactor.
#[derive(Clone, Debug)]
pub struct Connection {
    id: ConnId,
    peer: SocketAddr,
    inner: Arc<ConnInner>,
}

impl Connection {
    /// Takes ownership of `stream` and starts the I/O thread. Every
    /// inbound message and the final close surface on `events`.
    ///
    /// An [`NetEvent::Opened`] carrying a clone of the handle is enqueued
    /// *before* the I/O thread starts, so an event loop always sees
    /// `Opened` before any `Message` from the same connection — without
    /// this guarantee a fast peer's first message could race the accept
    /// loop's registration and be processed against an unknown connection.
    pub fn spawn(
        id: ConnId,
        stream: TcpStream,
        events: Sender<NetEvent>,
        nm: Option<NetMetrics>,
    ) -> io::Result<Connection> {
        let peer = stream.peer_addr()?;
        // The reactor is private to this connection's thread; transport
        // counters are maintained here against the caller's registry, so
        // the reactor itself runs unmetered.
        let mut reactor = Reactor::new(&Metrics::disabled())?;
        let token = reactor.register(stream)?;
        let waker = reactor.waker()?;
        let (cmds, inbox) = channel::<Cmd>();
        let alive = Arc::new(AtomicBool::new(true));
        let conn = Connection {
            id,
            peer,
            inner: Arc::new(ConnInner {
                cmds,
                waker,
                alive: Arc::clone(&alive),
            }),
        };
        let _ = events.send(NetEvent::Opened(conn.clone()));

        std::thread::Builder::new()
            .name(format!("net-io-{id}"))
            .spawn(move || {
                let mut out: Vec<ReactorEvent> = Vec::new();
                'life: loop {
                    // Drain commands queued since the last turn.
                    loop {
                        match inbox.try_recv() {
                            Ok(Cmd::Msg(msg)) => {
                                let frame = Reactor::encode_frame(&msg);
                                let len = frame.len() as u64;
                                if reactor.send_frame(token, frame) {
                                    if let Some(nm) = &nm {
                                        nm.frames_sent.inc();
                                        nm.bytes_sent.add(len);
                                    }
                                }
                            }
                            Ok(Cmd::Flush(timeout, ack)) => {
                                if reactor.flush(token, timeout) {
                                    let _ = ack.send(());
                                }
                            }
                            Err(TryRecvError::Empty) => break,
                            Err(TryRecvError::Disconnected) => {
                                // Every handle is gone: put what is queued
                                // on the wire, then close. A farewell frame
                                // queued right before the drop still lands.
                                reactor.flush(token, Duration::from_secs(5));
                                break 'life;
                            }
                        }
                    }
                    if reactor.poll(&mut out, Duration::from_millis(50)).is_err() {
                        break 'life;
                    }
                    for ev in out.drain(..) {
                        match ev {
                            ReactorEvent::Frame(_, msg) => {
                                if let Some(nm) = &nm {
                                    nm.frames_received.inc();
                                    // encode() is deterministic, so this is
                                    // exactly the frame size read off the
                                    // wire (payload + 4-byte prefix).
                                    nm.bytes_received.add(msg.encode().len() as u64 + 4);
                                }
                                if events.send(NetEvent::Message(id, msg)).is_err() {
                                    break 'life; // sink gone: nobody listening
                                }
                            }
                            ReactorEvent::Closed(_) => break 'life,
                            // No listener, no timers on this reactor.
                            ReactorEvent::Accepted(..) | ReactorEvent::Timer(_) => {}
                        }
                    }
                }
                // Ordering matters: a caller that saw Closed must never
                // observe a subsequent send() succeeding.
                alive.store(false, Ordering::SeqCst);
                let _ = events.send(NetEvent::Closed(id));
            })
            .expect("spawn net io thread");

        Ok(conn)
    }

    /// The connection's process-local id.
    pub fn id(&self) -> ConnId {
        self.id
    }

    /// The remote address.
    pub fn peer(&self) -> SocketAddr {
        self.peer
    }

    /// Queues a message for the I/O thread. Returns `false` when the
    /// connection is already gone (the caller will observe a
    /// [`NetEvent::Closed`] too).
    pub fn send(&self, msg: Message) -> bool {
        if !self.inner.alive.load(Ordering::SeqCst) {
            return false;
        }
        if self.inner.cmds.send(Cmd::Msg(msg)).is_err() {
            return false;
        }
        self.inner.waker.wake();
        true
    }

    /// Blocks until every message queued before this call has been written
    /// to the socket, or `timeout` elapses. Returns `true` on a confirmed
    /// drain; `false` on timeout or when the connection is already gone.
    /// This is how a departing process guarantees its farewell frame is on
    /// the wire before exiting — a sleep only hopes.
    pub fn flush(&self, timeout: Duration) -> bool {
        if !self.inner.alive.load(Ordering::SeqCst) {
            return false;
        }
        let (ack_tx, ack_rx) = channel();
        if self.inner.cmds.send(Cmd::Flush(timeout, ack_tx)).is_err() {
            return false;
        }
        self.inner.waker.wake();
        ack_rx.recv_timeout(timeout).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::send_message;
    use sagrid_core::ids::NodeId;
    use std::io::{BufReader, BufWriter};
    use std::net::TcpListener;
    use std::time::Instant;

    #[test]
    fn messages_flow_both_ways_and_close_is_reported() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let (events_tx, events_rx) = channel();

        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut r = BufReader::new(stream.try_clone().unwrap());
            let msg = crate::wire::recv_message(&mut r).unwrap().unwrap();
            assert_eq!(msg, Message::Heartbeat { node: NodeId(3) });
            let mut w = BufWriter::new(&stream);
            send_message(&mut w, &Message::Shutdown).unwrap();
            // Drop the socket: the client must observe Closed.
        });

        let stream = TcpStream::connect(addr).unwrap();
        let conn = Connection::spawn(1, stream, events_tx, None).unwrap();
        assert!(conn.send(Message::Heartbeat { node: NodeId(3) }));

        let evt = events_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert!(matches!(evt, NetEvent::Opened(_)), "got {evt:?}");
        let evt = events_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        match evt {
            NetEvent::Message(1, Message::Shutdown) => {}
            other => panic!("expected Shutdown, got {other:?}"),
        }
        let evt = events_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert!(matches!(evt, NetEvent::Closed(1)), "got {evt:?}");
        server.join().unwrap();
    }

    #[test]
    fn metrics_count_frames_and_bytes() {
        let metrics = Metrics::enabled();
        let nm = NetMetrics::resolve(&metrics);
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let (events_tx, events_rx) = channel();

        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut r = BufReader::new(stream.try_clone().unwrap());
            while let Ok(Some(_)) = crate::wire::recv_message(&mut r) {}
        });

        let stream = TcpStream::connect(addr).unwrap();
        let conn = Connection::spawn(9, stream, events_tx, nm).unwrap();
        for i in 0..5 {
            assert!(conn.send(Message::Heartbeat { node: NodeId(i) }));
        }
        let evt = events_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        let NetEvent::Opened(registered) = evt else {
            panic!("expected Opened first, got {evt:?}")
        };
        drop(registered);
        drop(conn); // both handles gone → the I/O thread drains and exits
        let evt = events_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert!(matches!(evt, NetEvent::Closed(9)));
        server.join().unwrap();
        let report = metrics.report();
        assert_eq!(report.counter("net.frames_sent"), 5);
        assert!(report.counter("net.bytes_sent") >= 5 * 9);
    }

    #[test]
    fn flush_confirms_queued_frames_are_on_the_wire() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let (events_tx, events_rx) = channel();
        let (got_tx, got_rx) = channel::<Message>();

        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut r = BufReader::new(stream.try_clone().unwrap());
            while let Ok(Some(msg)) = crate::wire::recv_message(&mut r) {
                if got_tx.send(msg).is_err() {
                    break;
                }
            }
        });

        let stream = TcpStream::connect(addr).unwrap();
        let conn = Connection::spawn(2, stream, events_tx, None).unwrap();
        // Drain the Opened event and drop the handle clone it carries —
        // otherwise it keeps the command channel open past the final drop
        // below.
        let evt = events_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        let NetEvent::Opened(registered) = evt else {
            panic!("expected Opened first, got {evt:?}")
        };
        drop(registered);
        for i in 0..20 {
            assert!(conn.send(Message::Heartbeat { node: NodeId(i) }));
        }
        assert!(conn.send(Message::Leaving { node: NodeId(7) }));
        assert!(
            conn.flush(Duration::from_secs(5)),
            "flush must ack within the timeout"
        );
        // The ack guarantees the frames were written; a live loopback
        // socket delivers them promptly after that.
        let mut got = Vec::new();
        while got.len() < 21 {
            got.push(got_rx.recv_timeout(Duration::from_secs(5)).unwrap());
        }
        assert_eq!(got.last(), Some(&Message::Leaving { node: NodeId(7) }));
        drop(conn);
        let _ = events_rx; // keep the sink alive until here
        server.join().unwrap();
    }

    /// Live thread names of this process (Linux: `/proc/self/task/*/comm`).
    #[cfg(target_os = "linux")]
    fn live_thread_names() -> Vec<String> {
        let mut names = Vec::new();
        if let Ok(tasks) = std::fs::read_dir("/proc/self/task") {
            for t in tasks.flatten() {
                if let Ok(name) = std::fs::read_to_string(t.path().join("comm")) {
                    names.push(name.trim().to_string());
                }
            }
        }
        names
    }

    /// A connection costs exactly ONE thread, and peer EOF terminates it
    /// even while a public handle keeps the command channel open and idle
    /// (the thread-pair transport this replaced needed a reader→writer
    /// shutdown signal to achieve the same).
    #[test]
    #[cfg(target_os = "linux")]
    fn peer_eof_terminates_the_io_thread() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let (events_tx, events_rx) = channel();

        let stream = TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        // Thread names are capped at 15 chars; id 4242 keeps it unique.
        let conn = Connection::spawn(4242, stream, events_tx, None).unwrap();
        let evt = events_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert!(matches!(evt, NetEvent::Opened(_)));
        // The thread is spawned after `Opened` is enqueued; poll for its
        // name rather than asserting once.
        let deadline = Instant::now() + Duration::from_secs(5);
        while !live_thread_names().iter().any(|n| n == "net-io-4242") {
            assert!(Instant::now() < deadline, "io thread never appeared");
            std::thread::sleep(Duration::from_millis(10));
        }
        // One thread per connection — the old net-reader/net-writer pair
        // must not exist.
        let names = live_thread_names();
        assert!(
            !names
                .iter()
                .any(|n| n.starts_with("net-reader") || n.starts_with("net-writer")),
            "thread-pair transport resurrected: {names:?}"
        );

        // Peer closes: the io thread must observe EOF and exit, while
        // `conn` still holds the command channel open.
        drop(server_side);
        let evt = events_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert!(matches!(evt, NetEvent::Closed(4242)), "got {evt:?}");

        let deadline = Instant::now() + Duration::from_secs(5);
        while live_thread_names().iter().any(|n| n == "net-io-4242") {
            assert!(Instant::now() < deadline, "io thread still alive");
            std::thread::sleep(Duration::from_millis(10));
        }

        // The dead connection rejects further traffic instead of queueing
        // into the void.
        assert!(!conn.send(Message::Shutdown));
        assert!(!conn.flush(Duration::from_millis(100)));
    }
}
