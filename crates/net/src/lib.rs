//! # sagrid-net — process-mode control plane over real sockets
//!
//! Everything else in this workspace exercises the paper's adaptation loop
//! inside one process (threads or discrete-event simulation). This crate is
//! the deployment story: the same registry, scheduler pool and coordinator
//! logic, but spread across OS processes talking TCP on a real network.
//!
//! Per the workspace policy it uses **only** `std::net` and `std::thread` —
//! no async runtime, no serde. Messages travel as length-prefixed binary
//! frames with a hand-rolled codec ([`wire`]); sockets are multiplexed on a
//! std-only epoll reactor ([`reactor`]) — server loops drive thousands of
//! connections from one thread, and each client-side [`conn::Connection`]
//! costs a single I/O thread; reconnects use exponential backoff with
//! deterministic jitter from the workspace RNG ([`backoff`]); and the hub
//! ([`hub`]) maps wall-clock heartbeats onto the `SimTime`-driven
//! [`sagrid_registry::Membership`] state machine.
//!
//! Four binaries compose into a local grid:
//!
//! * `sagrid-hub` — registry + resource pool server,
//! * `sagrid-worker` — a threaded [`sagrid_runtime`] runtime that joins,
//!   heartbeats and reports statistics,
//! * `sagrid-coordinatord` — the *unchanged* [`sagrid_adapt::Coordinator`]
//!   running out-of-process, turning stats into grow/shrink decisions,
//! * `grid-local` — a launcher that spawns the above on localhost, applies
//!   grow/shrink by spawning/signalling worker processes, injects crashes
//!   with SIGKILL and verifies blacklisted workers never rejoin.

pub mod backoff;
pub mod conn;
pub mod hub;
pub mod reactor;
pub mod replica;
pub mod replog;
pub mod steal;
pub mod wire;

pub use backoff::Backoff;
pub use conn::{ConnId, Connection, NetEvent, NetMetrics};
pub use hub::{Hub, HubConfig};
pub use reactor::{FrameDecoder, Reactor, ReactorEvent, ReactorMetrics, ShardedMap, Token, Waker};
pub use replica::{elect_primary, run_standby, HubSet, StandbyConfig, StandbyOutcome, Takeover};
pub use replog::{ControlSnapshot, ControlState, MemberPhase, RepLog, ReplicaOp};
pub use steal::{ExportPool, NetStealHook, StealClient, StealMetrics};
pub use wire::Message;

use std::collections::BTreeMap;

/// Minimal `--flag value` argument parser shared by the four binaries.
///
/// Every flag takes exactly one value; unknown flags are an error so typos
/// fail loudly instead of silently running with defaults.
pub struct Args {
    values: BTreeMap<String, String>,
}

impl Args {
    /// Parses `std::env::args().skip(1)`-style pairs against the allowed
    /// flag names. Returns an error message suitable for printing.
    pub fn parse<I: IntoIterator<Item = String>>(
        argv: I,
        allowed: &[&str],
    ) -> Result<Args, String> {
        let mut values = BTreeMap::new();
        let mut it = argv.into_iter();
        while let Some(flag) = it.next() {
            let name = flag
                .strip_prefix("--")
                .ok_or_else(|| format!("expected a --flag, got {flag:?}"))?;
            if !allowed.contains(&name) {
                return Err(format!(
                    "unknown flag --{name} (allowed: {})",
                    allowed
                        .iter()
                        .map(|a| format!("--{a}"))
                        .collect::<Vec<_>>()
                        .join(" ")
                ));
            }
            let value = it
                .next()
                .ok_or_else(|| format!("--{name} requires a value"))?;
            values.insert(name.to_string(), value);
        }
        Ok(Args { values })
    }

    /// The raw string value of a flag, if given.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(|s| s.as_str())
    }

    /// A flag parsed into any `FromStr` type, with a default.
    pub fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.values.get(name) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| format!("--{name}: cannot parse {raw:?}")),
        }
    }

    /// A required flag parsed into any `FromStr` type.
    pub fn require<T: std::str::FromStr>(&self, name: &str) -> Result<T, String> {
        match self.values.get(name) {
            None => Err(format!("missing required flag --{name}")),
            Some(raw) => raw
                .parse()
                .map_err(|_| format!("--{name}: cannot parse {raw:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_flag_value_pairs() {
        let a = Args::parse(
            argv(&["--port", "7070", "--workers", "4"]),
            &["port", "workers"],
        )
        .unwrap();
        assert_eq!(a.get_or("port", 0u16).unwrap(), 7070);
        assert_eq!(a.require::<u32>("workers").unwrap(), 4);
        assert_eq!(a.get("missing"), None);
        assert_eq!(a.get_or("missing", 9u8).unwrap(), 9);
    }

    #[test]
    fn rejects_unknown_flags_and_missing_values() {
        assert!(Args::parse(argv(&["--nope", "1"]), &["port"]).is_err());
        assert!(Args::parse(argv(&["--port"]), &["port"]).is_err());
        assert!(Args::parse(argv(&["port", "1"]), &["port"]).is_err());
        assert!(Args::parse(argv(&["--port", "x"]), &["port"])
            .unwrap()
            .require::<u16>("port")
            .is_err());
    }
}
