//! Exponential reconnect backoff with deterministic jitter.
//!
//! Reconnect storms are the classic failure mode of a centralized registry:
//! when the hub restarts, every worker dials back at once. The usual cure is
//! randomised exponential backoff; here the jitter comes from
//! [`Xoshiro256StarStar`] seeded per peer, so a given worker's retry
//! schedule is exactly reproducible — the same property the simulation
//! stack guarantees for every other random choice.

use sagrid_core::rng::{Rng64, Xoshiro256StarStar};
use std::time::Duration;

/// Deterministic exponential backoff: attempt `k` waits a uniformly
/// jittered duration in `[cap/2, cap]` of `base * 2^k`, clamped to `cap`.
#[derive(Clone, Debug)]
pub struct Backoff {
    base: Duration,
    cap: Duration,
    attempt: u32,
    rng: Xoshiro256StarStar,
}

impl Backoff {
    /// Creates a backoff schedule. `seed` should be distinct per peer (e.g.
    /// derived from the node id) so peers do not retry in lockstep.
    pub fn new(base: Duration, cap: Duration, seed: u64) -> Self {
        assert!(base > Duration::ZERO, "backoff base must be positive");
        assert!(cap >= base, "backoff cap must be at least the base");
        Self {
            base,
            cap,
            attempt: 0,
            rng: Xoshiro256StarStar::seeded(seed),
        }
    }

    /// Number of delays handed out since the last reset.
    pub fn attempts(&self) -> u32 {
        self.attempt
    }

    /// Returns the next delay and advances the schedule.
    pub fn next_delay(&mut self) -> Duration {
        let exp = self
            .base
            .saturating_mul(1u32.checked_shl(self.attempt.min(20)).unwrap_or(u32::MAX))
            .min(self.cap);
        self.attempt = self.attempt.saturating_add(1);
        // Jitter into [exp/2, exp]: full-jitter loses too much progress on
        // the first retries; half-jitter keeps determinism tests meaningful.
        let jitter = 0.5 + 0.5 * self.rng.gen_f64();
        exp.mul_f64(jitter)
    }

    /// Resets the schedule after a successful connection.
    pub fn reset(&mut self) {
        self.attempt = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_schedule() {
        let mut a = Backoff::new(Duration::from_millis(50), Duration::from_secs(2), 42);
        let mut b = Backoff::new(Duration::from_millis(50), Duration::from_secs(2), 42);
        for _ in 0..10 {
            assert_eq!(a.next_delay(), b.next_delay());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Backoff::new(Duration::from_millis(50), Duration::from_secs(2), 1);
        let mut b = Backoff::new(Duration::from_millis(50), Duration::from_secs(2), 2);
        let sa: Vec<Duration> = (0..5).map(|_| a.next_delay()).collect();
        let sb: Vec<Duration> = (0..5).map(|_| b.next_delay()).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn delays_grow_and_saturate_at_the_cap() {
        let base = Duration::from_millis(10);
        let cap = Duration::from_millis(640);
        let mut b = Backoff::new(base, cap, 7);
        let mut prev_ceiling = Duration::ZERO;
        for k in 0..12u32 {
            let d = b.next_delay();
            let ceiling = base.saturating_mul(1 << k.min(10)).min(cap);
            assert!(d <= ceiling, "attempt {k}: {d:?} above ceiling {ceiling:?}");
            assert!(d >= ceiling / 2, "attempt {k}: {d:?} below half-ceiling");
            assert!(ceiling >= prev_ceiling, "ceilings are monotone");
            prev_ceiling = ceiling;
        }
        assert!(b.next_delay() <= cap);
    }

    /// Regression: the cap must hold for arbitrarily long outages. A hub
    /// that stays down for hundreds of attempts once overflowed the shift
    /// into a zero multiplier; the schedule must stay pinned in
    /// `[cap/2, cap]` forever, never wrap, and never stall at zero.
    #[test]
    fn cap_holds_across_hundreds_of_attempts() {
        let cap = Duration::from_millis(250);
        let mut b = Backoff::new(Duration::from_millis(50), cap, 0x5eed_0000 + 17);
        for k in 0..300u32 {
            let d = b.next_delay();
            assert!(d <= cap, "attempt {k}: {d:?} exceeded cap {cap:?}");
            assert!(d > Duration::ZERO, "attempt {k}: delay collapsed to zero");
            if k >= 3 {
                // 50ms * 2^3 already clears the cap: from here on the
                // jittered delay is bounded below by cap/2.
                assert!(d >= cap / 2, "attempt {k}: {d:?} below half-cap");
            }
        }
        assert_eq!(b.attempts(), 300);
    }

    /// Regression: a worker's failover jitter is seeded from its *node id*,
    /// so a respawned process claiming the same node replays the identical
    /// reconnect schedule across the `--hub` failover rotation — pid or
    /// spawn order must not perturb it.
    #[test]
    fn failover_schedule_is_a_pure_function_of_the_node_id() {
        let node_seed = |node: u64| 0x5eed_0000 + node;
        // Two "incarnations" of node 12 (e.g. before and after a SIGKILL
        // respawn) walk the same hub rotation with the same delays.
        let mut first = Backoff::new(
            Duration::from_millis(50),
            Duration::from_millis(250),
            node_seed(12) ^ 0xdead,
        );
        let mut respawned = Backoff::new(
            Duration::from_millis(50),
            Duration::from_millis(250),
            node_seed(12) ^ 0xdead,
        );
        let a: Vec<Duration> = (0..32).map(|_| first.next_delay()).collect();
        let b: Vec<Duration> = (0..32).map(|_| respawned.next_delay()).collect();
        assert_eq!(a, b, "same node id must mean the same failover schedule");
        // Distinct nodes must not dial in lockstep.
        let mut other = Backoff::new(
            Duration::from_millis(50),
            Duration::from_millis(250),
            node_seed(13) ^ 0xdead,
        );
        let c: Vec<Duration> = (0..32).map(|_| other.next_delay()).collect();
        assert_ne!(a, c, "distinct node ids must jitter apart");
    }

    #[test]
    fn reset_restarts_the_schedule() {
        let mut b = Backoff::new(Duration::from_millis(10), Duration::from_secs(1), 3);
        let first = b.next_delay();
        let _ = b.next_delay();
        b.reset();
        assert_eq!(b.attempts(), 0);
        // After reset the ceiling is back at the base, so the delay cannot
        // exceed it.
        let again = b.next_delay();
        assert!(again <= Duration::from_millis(10));
        // Deterministic rng advanced, so the exact value differs from the
        // first call in general — only the ceiling matters.
        let _ = first;
    }
}
