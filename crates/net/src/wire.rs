//! Length-prefixed binary framing and the hand-rolled control-plane codec.
//!
//! Every frame on the wire is a 4-byte little-endian payload length followed
//! by the payload; the payload is one [`Message`], encoded as a tag byte
//! plus fixed-width little-endian fields (f64s travel as their IEEE-754 bit
//! patterns, so values round-trip exactly). The format is documented in
//! DESIGN.md §"Wire protocol"; no external serialisation crate is used.

use crate::replog::{ControlSnapshot, MemberPhase, ReplicaOp};
use sagrid_core::ids::{ClusterId, NodeId};
use sagrid_core::stats::{MonitoringReport, OverheadBreakdown};
use sagrid_core::time::{SimDuration, SimTime};
use std::io::{self, Read, Write};

/// Upper bound on a frame payload. Control-plane messages are tiny; a larger
/// length prefix means a corrupt or hostile peer and the connection drops.
pub const MAX_FRAME: usize = 1 << 20;

/// A decoding failure. The transport treats any of these as a protocol
/// violation and closes the connection.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The payload ended before the message did.
    Truncated,
    /// Bytes remained after the message was fully decoded.
    Trailing(usize),
    /// Unknown message tag.
    BadTag(u8),
    /// A boolean field held something other than 0 or 1.
    BadBool(u8),
    /// A string field was not valid UTF-8.
    BadUtf8,
    /// A length prefix exceeded [`MAX_FRAME`].
    FrameTooLarge(usize),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated message"),
            WireError::Trailing(n) => write!(f, "{n} trailing bytes after message"),
            WireError::BadTag(t) => write!(f, "unknown message tag {t:#04x}"),
            WireError::BadBool(b) => write!(f, "invalid boolean byte {b:#04x}"),
            WireError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
            WireError::FrameTooLarge(n) => write!(f, "frame of {n} bytes exceeds {MAX_FRAME}"),
        }
    }
}

impl std::error::Error for WireError {}

/// One worker's entry in the steal-plane peer directory: where its steal
/// listener can be dialled, and which cluster it sits in (CRS victim
/// selection is cluster-aware).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PeerInfo {
    /// The peer's node id.
    pub node: NodeId,
    /// The peer's cluster (drives local-first victim selection).
    pub cluster: ClusterId,
    /// `host:port` of the peer's steal listener.
    pub steal_addr: String,
}

/// A serialized divide-and-conquer job travelling in a [`Message::StealReply`].
///
/// `id` is victim-local: the thief echoes it back in the
/// [`Message::StealResult`] so the victim can complete the right join slot.
/// `payload` is an application-level encoding (`sagrid_apps::remote`) that
/// the thief reconstructs and executes in its own process.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StealJob {
    /// Victim-local job id, echoed in the result.
    pub id: u64,
    /// Application-encoded job (opaque to the control plane).
    pub payload: Vec<u8>,
}

/// Every control-plane message of the process-mode deployment.
///
/// Direction conventions: workers send `Join`/`Heartbeat`/`StatsReport`/
/// `Leaving`/`PeerAnnounce`; the hub sends `JoinAck`/`SignalLeave`/
/// `SpawnWorker`/`CrashNotice`/`PeerDirectory`/`Shutdown`; the
/// out-of-process coordinator sends `CoordinatorHello`/`Grow`/`Shrink`;
/// the launcher sends `LauncherHello`, `Shutdown` and — when driving a
/// scenario file — `Perturb`, `Grow` (an external capacity grant) and
/// `SignalLeave` (a graceful scenario shrink). The steal plane
/// (`StealRequest`/`StealReply`/`StealResult`) travels worker ↔ worker on
/// dedicated connections, not through the hub.
#[derive(Clone, Debug, PartialEq)]
pub enum Message {
    /// A worker asks to join. `claim` is `None` for a fresh worker (the hub
    /// allocates a node id from the pool) and `Some` when re-claiming an id:
    /// either a reconnect after a transport drop, or a spawn the hub itself
    /// requested via [`Message::SpawnWorker`].
    Join {
        /// Cluster the worker wants to (or was told to) join.
        cluster: ClusterId,
        /// Previously assigned node id, if any.
        claim: Option<NodeId>,
    },
    /// The hub's verdict on a `Join`.
    JoinAck {
        /// The assigned (or confirmed) node id. Meaningless when refused.
        node: NodeId,
        /// Whether the worker is in.
        accepted: bool,
        /// Human-readable refusal reason (empty when accepted).
        reason: String,
    },
    /// Periodic liveness signal; maps onto `Membership::heartbeat`.
    Heartbeat {
        /// The heartbeating node.
        node: NodeId,
    },
    /// End-of-period statistics, forwarded by the hub to the coordinator.
    StatsReport {
        /// The per-node statistics record from `sagrid_core`.
        report: MonitoringReport,
        /// Raw speed-benchmark duration in microseconds (0 = no benchmark
        /// this period); the coordinator normalises these into relative
        /// speeds.
        bench_micros: u64,
    },
    /// A worker confirms a graceful departure.
    Leaving {
        /// The departing node.
        node: NodeId,
    },
    /// The hub tells a worker to leave (a shrink decision reached it).
    SignalLeave {
        /// The node being signalled out.
        node: NodeId,
    },
    /// The hub tells the coordinator a node died (missed heartbeats).
    CrashNotice {
        /// The dead node.
        node: NodeId,
        /// Its cluster.
        cluster: ClusterId,
    },
    /// The hub tells the coordinator a member's liveness changed at the
    /// suspicion level: `suspected = true` means the member fell
    /// suspiciously silent (Alive → Suspect, shrink decisions hold
    /// fire); `false` means it resumed heartbeating (Suspect → Alive,
    /// no blacklist entry). A Suspect that dies resolves via
    /// [`Message::CrashNotice`] instead.
    SuspectNotice {
        /// The member whose liveness is (un)resolved.
        node: NodeId,
        /// Entering (`true`) or leaving (`false`) suspicion.
        suspected: bool,
    },
    /// First message on a coordinator connection.
    CoordinatorHello,
    /// First message on a launcher connection.
    LauncherHello,
    /// Coordinator → hub: request more nodes (an `Add` decision).
    Grow {
        /// How many nodes to request from the pool.
        count: u32,
        /// Clusters the application already occupies (locality preference).
        prefer: Vec<ClusterId>,
        /// Learned lower bound on site uplink bandwidth.
        min_uplink_bps: Option<f64>,
        /// Learned lower bound on node speed.
        min_speed: Option<f64>,
    },
    /// Coordinator → hub: remove these nodes (a `RemoveNodes` or
    /// `RemoveCluster` decision).
    Shrink {
        /// Victims, worst-first.
        nodes: Vec<NodeId>,
        /// Set when an entire badly-connected cluster is being dropped.
        cluster: Option<ClusterId>,
    },
    /// Hub → launcher: start a worker process for this granted node.
    SpawnWorker {
        /// The node id the new worker must claim.
        node: NodeId,
        /// The cluster it belongs to.
        cluster: ClusterId,
    },
    /// Orderly teardown of the whole deployment.
    Shutdown,
    /// Worker → hub: "my steal listener is reachable here". Sent right
    /// after a successful join; the hub folds it into the peer directory
    /// and rebroadcasts.
    PeerAnnounce {
        /// The announcing node (must match the connection's worker role).
        node: NodeId,
        /// `host:port` of the worker's steal listener.
        steal_addr: String,
    },
    /// Hub → workers: full snapshot of the steal-plane peer directory.
    /// Sent to a worker right after its `JoinAck` and rebroadcast to every
    /// worker whenever the directory changes (announce, leave, death) —
    /// snapshots are idempotent, so a lost or reordered update heals on the
    /// next change.
    PeerDirectory {
        /// Every known peer with a live steal listener.
        peers: Vec<PeerInfo>,
    },
    /// Thief → victim (steal plane): request one exportable job.
    StealRequest {
        /// The requesting node (victim-side accounting/debugging).
        thief: NodeId,
    },
    /// Victim → thief: the job, or `None` when the victim's export pool is
    /// dry (the CRS client then tries the next tier).
    StealReply {
        /// The exported job, if any.
        job: Option<StealJob>,
    },
    /// Thief → victim: the value computed for a stolen job. Completes the
    /// victim's join slot for `id` (first result wins — a reclaimed job
    /// re-executed locally may race this, harmlessly, because jobs are
    /// pure).
    StealResult {
        /// The victim-local job id from the [`StealJob`].
        id: u64,
        /// The computed value.
        value: u64,
    },
    /// Standby hub → primary: first message on a replication connection.
    /// `log_offset` is the standby's resume point (0 on a fresh attach);
    /// the primary always answers with a full [`Message::StateSnapshot`] —
    /// snapshots are idempotent, so a reattach never needs a history replay.
    ReplicaHello {
        /// The standby's replica id (the original primary is implicitly 0).
        replica: u32,
        /// `host:port` the standby will serve on after a takeover
        /// (replicated to the whole standby set so losers of an election
        /// can find the winner).
        addr: String,
        /// Highest log offset the standby has applied.
        log_offset: u64,
    },
    /// Primary → standby: full control-plane state at `log_offset`, sent
    /// once on attach. Deltas follow from that offset.
    StateSnapshot {
        /// The primary's hub epoch (fences stale primaries).
        epoch: u64,
        /// Log offset the snapshot is current as of.
        log_offset: u64,
        /// The flattened control-plane state.
        state: ControlSnapshot,
    },
    /// Primary → standby: one replicated control-plane transition.
    StateDelta {
        /// The primary's hub epoch. A standby (or, after a failover, the
        /// new primary) rejects deltas from an older epoch.
        epoch: u64,
        /// This op's log offset.
        log_offset: u64,
        /// The transition itself.
        op: ReplicaOp,
    },
    /// Standby → primary: acknowledgement high-water mark.
    ReplicaAck {
        /// The acknowledging replica.
        replica: u32,
        /// Highest applied log offset.
        log_offset: u64,
    },
    /// Hub epoch announcement: the primary stamps every worker/coordinator
    /// connection after accepting it, keeps replica links alive with it,
    /// and answers stale-epoch writes with it (the fencing response). A
    /// peer that knows a newer epoch treats the sender as a stale primary.
    HubEpoch {
        /// The monotonic hub epoch (bumped by every takeover).
        epoch: u64,
        /// Replica id of the hub serving this epoch (0 = original primary).
        leader: u32,
    },
    /// Launcher → hub → workers: a scenario perturbation. The hub fans the
    /// message out to (the first `count` of) the cluster's connected
    /// workers; each applies whichever knobs are set. This is how a
    /// declarative scenario file's `cpu_load` / `uplink_bandwidth` events
    /// reach real worker processes mid-run.
    Perturb {
        /// The cluster whose workers are perturbed.
        cluster: ClusterId,
        /// How many of the cluster's workers to hit (0 = every one).
        count: u32,
        /// New emulated CPU speed in `(0, 1]` (a `cpu_load` factor `f`
        /// maps to speed `1/f`; `1.0` restores full speed).
        speed: Option<f64>,
        /// Fraction of each monitoring period to report as synthetic
        /// inter-cluster communication wait (emulates a saturated uplink;
        /// `0.0` restores).
        inter_frac: Option<f64>,
    },
}

const TAG_JOIN: u8 = 0x01;
const TAG_JOIN_ACK: u8 = 0x02;
const TAG_HEARTBEAT: u8 = 0x03;
const TAG_STATS: u8 = 0x04;
const TAG_LEAVING: u8 = 0x05;
const TAG_SIGNAL_LEAVE: u8 = 0x06;
const TAG_CRASH_NOTICE: u8 = 0x07;
const TAG_COORD_HELLO: u8 = 0x08;
const TAG_LAUNCHER_HELLO: u8 = 0x09;
const TAG_GROW: u8 = 0x0a;
const TAG_SHRINK: u8 = 0x0b;
const TAG_SPAWN_WORKER: u8 = 0x0c;
const TAG_SHUTDOWN: u8 = 0x0d;
const TAG_PEER_ANNOUNCE: u8 = 0x0e;
const TAG_PEER_DIRECTORY: u8 = 0x0f;
const TAG_STEAL_REQUEST: u8 = 0x10;
const TAG_STEAL_REPLY: u8 = 0x11;
const TAG_STEAL_RESULT: u8 = 0x12;
const TAG_PERTURB: u8 = 0x13;
const TAG_REPLICA_HELLO: u8 = 0x14;
const TAG_STATE_SNAPSHOT: u8 = 0x15;
const TAG_STATE_DELTA: u8 = 0x16;
const TAG_REPLICA_ACK: u8 = 0x17;
const TAG_HUB_EPOCH: u8 = 0x18;
const TAG_SUSPECT_NOTICE: u8 = 0x19;

/// Smallest possible encoding of one [`PeerInfo`] (node + cluster + empty
/// string), used to bound hostile directory length prefixes.
const PEER_INFO_MIN_BYTES: usize = 4 + 2 + 4;
/// Smallest snapshot member record (node + cluster + phase byte).
const MEMBER_MIN_BYTES: usize = 4 + 2 + 1;
/// Smallest bandwidth record (node + u64 micros).
const BANDWIDTH_MIN_BYTES: usize = 4 + 8;
/// Smallest replica record (id + empty address string).
const REPLICA_MIN_BYTES: usize = 4 + 4;

/// Nested op tags inside a [`Message::StateDelta`] payload.
const OP_JOIN: u8 = 0;
const OP_LEAVE: u8 = 1;
const OP_DEATH: u8 = 2;
const OP_BLACKLIST_NODE: u8 = 3;
const OP_BLACKLIST_CLUSTER: u8 = 4;
const OP_PEER_DIR: u8 = 5;
const OP_BANDWIDTH: u8 = 6;
const OP_REPLICA_JOINED: u8 = 7;

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_bool(out: &mut Vec<u8>, v: bool) {
    out.push(u8::from(v));
}

fn put_opt_u32(out: &mut Vec<u8>, v: Option<u32>) {
    match v {
        None => out.push(0),
        Some(x) => {
            out.push(1);
            put_u32(out, x);
        }
    }
}

fn put_opt_f64(out: &mut Vec<u8>, v: Option<f64>) {
    match v {
        None => out.push(0),
        Some(x) => {
            out.push(1);
            put_f64(out, x);
        }
    }
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_report(out: &mut Vec<u8>, r: &MonitoringReport) {
    put_u32(out, r.node.0);
    put_u16(out, r.cluster.0);
    put_u64(out, r.period_end.0);
    put_u64(out, r.breakdown.busy.0);
    put_u64(out, r.breakdown.idle.0);
    put_u64(out, r.breakdown.intra_comm.0);
    put_u64(out, r.breakdown.inter_comm.0);
    put_u64(out, r.breakdown.benchmark.0);
    put_f64(out, r.speed);
}

fn put_peer(out: &mut Vec<u8>, p: &PeerInfo) {
    put_u32(out, p.node.0);
    put_u16(out, p.cluster.0);
    put_str(out, &p.steal_addr);
}

fn put_op(out: &mut Vec<u8>, op: &ReplicaOp) {
    match op {
        ReplicaOp::Join { node, cluster } => {
            out.push(OP_JOIN);
            put_u32(out, node.0);
            put_u16(out, cluster.0);
        }
        ReplicaOp::Leave { node } => {
            out.push(OP_LEAVE);
            put_u32(out, node.0);
        }
        ReplicaOp::Death { node } => {
            out.push(OP_DEATH);
            put_u32(out, node.0);
        }
        ReplicaOp::BlacklistNode { node } => {
            out.push(OP_BLACKLIST_NODE);
            put_u32(out, node.0);
        }
        ReplicaOp::BlacklistCluster { cluster } => {
            out.push(OP_BLACKLIST_CLUSTER);
            put_u16(out, cluster.0);
        }
        ReplicaOp::PeerDir { peers } => {
            out.push(OP_PEER_DIR);
            put_u32(out, peers.len() as u32);
            for p in peers {
                put_peer(out, p);
            }
        }
        ReplicaOp::Bandwidth { node, bench_micros } => {
            out.push(OP_BANDWIDTH);
            put_u32(out, node.0);
            put_u64(out, *bench_micros);
        }
        ReplicaOp::ReplicaJoined { replica, addr } => {
            out.push(OP_REPLICA_JOINED);
            put_u32(out, *replica);
            put_str(out, addr);
        }
    }
}

fn put_snapshot(out: &mut Vec<u8>, s: &ControlSnapshot) {
    put_u32(out, s.members.len() as u32);
    for (n, c, p) in &s.members {
        put_u32(out, n.0);
        put_u16(out, c.0);
        out.push(p.to_byte());
    }
    put_u32(out, s.blacklisted_nodes.len() as u32);
    for n in &s.blacklisted_nodes {
        put_u32(out, n.0);
    }
    put_u32(out, s.blacklisted_clusters.len() as u32);
    for c in &s.blacklisted_clusters {
        put_u16(out, c.0);
    }
    put_u32(out, s.peers.len() as u32);
    for p in &s.peers {
        put_peer(out, p);
    }
    put_u32(out, s.bandwidth.len() as u32);
    for (n, b) in &s.bandwidth {
        put_u32(out, n.0);
        put_u64(out, *b);
    }
    put_u32(out, s.replicas.len() as u32);
    for (r, a) in &s.replicas {
        put_u32(out, *r);
        put_str(out, a);
    }
}

/// Byte cursor over a frame payload.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// Bytes left to decode. List length prefixes are bounded by
    /// `remaining() / min_element_size` *before* any reservation, so a
    /// hostile prefix can never drive a large allocation (a flat
    /// `MAX_FRAME`-derived bound would ignore element width and admit
    /// multi-hundred-kilobyte over-reservations before `Truncated` fires).
    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Decodes and bounds a list length prefix: the claimed count must fit
    /// in the remaining bytes at `min_element_size` bytes per element.
    fn list_len(&mut self, min_element_size: usize) -> Result<usize, WireError> {
        let n = self.u32()? as usize;
        if n > self.remaining() / min_element_size {
            return Err(WireError::Truncated);
        }
        Ok(n)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated)?;
        if end > self.buf.len() {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(
            self.take(2)?.try_into().expect("2 bytes"),
        ))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn boolean(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(WireError::BadBool(b)),
        }
    }

    fn opt_u32(&mut self) -> Result<Option<u32>, WireError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u32()?)),
            b => Err(WireError::BadBool(b)),
        }
    }

    fn opt_f64(&mut self) -> Result<Option<f64>, WireError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.f64()?)),
            b => Err(WireError::BadBool(b)),
        }
    }

    fn string(&mut self) -> Result<String, WireError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::BadUtf8)
    }

    fn bytes(&mut self) -> Result<Vec<u8>, WireError> {
        let len = self.u32()? as usize;
        Ok(self.take(len)?.to_vec())
    }

    fn peer_info(&mut self) -> Result<PeerInfo, WireError> {
        Ok(PeerInfo {
            node: NodeId(self.u32()?),
            cluster: ClusterId(self.u16()?),
            steal_addr: self.string()?,
        })
    }

    fn member_phase(&mut self) -> Result<MemberPhase, WireError> {
        let b = self.u8()?;
        MemberPhase::from_byte(b).ok_or(WireError::BadBool(b))
    }

    fn replica_op(&mut self) -> Result<ReplicaOp, WireError> {
        Ok(match self.u8()? {
            OP_JOIN => ReplicaOp::Join {
                node: NodeId(self.u32()?),
                cluster: ClusterId(self.u16()?),
            },
            OP_LEAVE => ReplicaOp::Leave {
                node: NodeId(self.u32()?),
            },
            OP_DEATH => ReplicaOp::Death {
                node: NodeId(self.u32()?),
            },
            OP_BLACKLIST_NODE => ReplicaOp::BlacklistNode {
                node: NodeId(self.u32()?),
            },
            OP_BLACKLIST_CLUSTER => ReplicaOp::BlacklistCluster {
                cluster: ClusterId(self.u16()?),
            },
            OP_PEER_DIR => {
                let n = self.list_len(PEER_INFO_MIN_BYTES)?;
                let mut peers = Vec::with_capacity(n);
                for _ in 0..n {
                    peers.push(self.peer_info()?);
                }
                ReplicaOp::PeerDir { peers }
            }
            OP_BANDWIDTH => ReplicaOp::Bandwidth {
                node: NodeId(self.u32()?),
                bench_micros: self.u64()?,
            },
            OP_REPLICA_JOINED => ReplicaOp::ReplicaJoined {
                replica: self.u32()?,
                addr: self.string()?,
            },
            t => return Err(WireError::BadTag(t)),
        })
    }

    fn snapshot(&mut self) -> Result<ControlSnapshot, WireError> {
        let n = self.list_len(MEMBER_MIN_BYTES)?;
        let mut members = Vec::with_capacity(n);
        for _ in 0..n {
            members.push((
                NodeId(self.u32()?),
                ClusterId(self.u16()?),
                self.member_phase()?,
            ));
        }
        let n = self.list_len(4)?; // NodeId = 4 bytes
        let mut blacklisted_nodes = Vec::with_capacity(n);
        for _ in 0..n {
            blacklisted_nodes.push(NodeId(self.u32()?));
        }
        let n = self.list_len(2)?; // ClusterId = 2 bytes
        let mut blacklisted_clusters = Vec::with_capacity(n);
        for _ in 0..n {
            blacklisted_clusters.push(ClusterId(self.u16()?));
        }
        let n = self.list_len(PEER_INFO_MIN_BYTES)?;
        let mut peers = Vec::with_capacity(n);
        for _ in 0..n {
            peers.push(self.peer_info()?);
        }
        let n = self.list_len(BANDWIDTH_MIN_BYTES)?;
        let mut bandwidth = Vec::with_capacity(n);
        for _ in 0..n {
            bandwidth.push((NodeId(self.u32()?), self.u64()?));
        }
        let n = self.list_len(REPLICA_MIN_BYTES)?;
        let mut replicas = Vec::with_capacity(n);
        for _ in 0..n {
            replicas.push((self.u32()?, self.string()?));
        }
        Ok(ControlSnapshot {
            members,
            blacklisted_nodes,
            blacklisted_clusters,
            peers,
            bandwidth,
            replicas,
        })
    }

    fn report(&mut self) -> Result<MonitoringReport, WireError> {
        Ok(MonitoringReport {
            node: NodeId(self.u32()?),
            cluster: ClusterId(self.u16()?),
            period_end: SimTime(self.u64()?),
            breakdown: OverheadBreakdown {
                busy: SimDuration(self.u64()?),
                idle: SimDuration(self.u64()?),
                intra_comm: SimDuration(self.u64()?),
                inter_comm: SimDuration(self.u64()?),
                benchmark: SimDuration(self.u64()?),
            },
            speed: self.f64()?,
        })
    }
}

impl Message {
    /// Encodes the message as a frame payload (without the length prefix).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        match self {
            Message::Join { cluster, claim } => {
                out.push(TAG_JOIN);
                put_u16(&mut out, cluster.0);
                put_opt_u32(&mut out, claim.map(|n| n.0));
            }
            Message::JoinAck {
                node,
                accepted,
                reason,
            } => {
                out.push(TAG_JOIN_ACK);
                put_u32(&mut out, node.0);
                put_bool(&mut out, *accepted);
                put_str(&mut out, reason);
            }
            Message::Heartbeat { node } => {
                out.push(TAG_HEARTBEAT);
                put_u32(&mut out, node.0);
            }
            Message::StatsReport {
                report,
                bench_micros,
            } => {
                out.push(TAG_STATS);
                put_report(&mut out, report);
                put_u64(&mut out, *bench_micros);
            }
            Message::Leaving { node } => {
                out.push(TAG_LEAVING);
                put_u32(&mut out, node.0);
            }
            Message::SignalLeave { node } => {
                out.push(TAG_SIGNAL_LEAVE);
                put_u32(&mut out, node.0);
            }
            Message::CrashNotice { node, cluster } => {
                out.push(TAG_CRASH_NOTICE);
                put_u32(&mut out, node.0);
                put_u16(&mut out, cluster.0);
            }
            Message::SuspectNotice { node, suspected } => {
                out.push(TAG_SUSPECT_NOTICE);
                put_u32(&mut out, node.0);
                put_bool(&mut out, *suspected);
            }
            Message::CoordinatorHello => out.push(TAG_COORD_HELLO),
            Message::LauncherHello => out.push(TAG_LAUNCHER_HELLO),
            Message::Grow {
                count,
                prefer,
                min_uplink_bps,
                min_speed,
            } => {
                out.push(TAG_GROW);
                put_u32(&mut out, *count);
                put_u32(&mut out, prefer.len() as u32);
                for c in prefer {
                    put_u16(&mut out, c.0);
                }
                put_opt_f64(&mut out, *min_uplink_bps);
                put_opt_f64(&mut out, *min_speed);
            }
            Message::Shrink { nodes, cluster } => {
                out.push(TAG_SHRINK);
                put_u32(&mut out, nodes.len() as u32);
                for n in nodes {
                    put_u32(&mut out, n.0);
                }
                match cluster {
                    None => out.push(0),
                    Some(c) => {
                        out.push(1);
                        put_u16(&mut out, c.0);
                    }
                }
            }
            Message::SpawnWorker { node, cluster } => {
                out.push(TAG_SPAWN_WORKER);
                put_u32(&mut out, node.0);
                put_u16(&mut out, cluster.0);
            }
            Message::Shutdown => out.push(TAG_SHUTDOWN),
            Message::PeerAnnounce { node, steal_addr } => {
                out.push(TAG_PEER_ANNOUNCE);
                put_u32(&mut out, node.0);
                put_str(&mut out, steal_addr);
            }
            Message::PeerDirectory { peers } => {
                out.push(TAG_PEER_DIRECTORY);
                put_u32(&mut out, peers.len() as u32);
                for p in peers {
                    put_u32(&mut out, p.node.0);
                    put_u16(&mut out, p.cluster.0);
                    put_str(&mut out, &p.steal_addr);
                }
            }
            Message::StealRequest { thief } => {
                out.push(TAG_STEAL_REQUEST);
                put_u32(&mut out, thief.0);
            }
            Message::StealReply { job } => {
                out.push(TAG_STEAL_REPLY);
                match job {
                    None => out.push(0),
                    Some(j) => {
                        out.push(1);
                        put_u64(&mut out, j.id);
                        put_u32(&mut out, j.payload.len() as u32);
                        out.extend_from_slice(&j.payload);
                    }
                }
            }
            Message::StealResult { id, value } => {
                out.push(TAG_STEAL_RESULT);
                put_u64(&mut out, *id);
                put_u64(&mut out, *value);
            }
            Message::ReplicaHello {
                replica,
                addr,
                log_offset,
            } => {
                out.push(TAG_REPLICA_HELLO);
                put_u32(&mut out, *replica);
                put_str(&mut out, addr);
                put_u64(&mut out, *log_offset);
            }
            Message::StateSnapshot {
                epoch,
                log_offset,
                state,
            } => {
                out.push(TAG_STATE_SNAPSHOT);
                put_u64(&mut out, *epoch);
                put_u64(&mut out, *log_offset);
                put_snapshot(&mut out, state);
            }
            Message::StateDelta {
                epoch,
                log_offset,
                op,
            } => {
                out.push(TAG_STATE_DELTA);
                put_u64(&mut out, *epoch);
                put_u64(&mut out, *log_offset);
                put_op(&mut out, op);
            }
            Message::ReplicaAck {
                replica,
                log_offset,
            } => {
                out.push(TAG_REPLICA_ACK);
                put_u32(&mut out, *replica);
                put_u64(&mut out, *log_offset);
            }
            Message::HubEpoch { epoch, leader } => {
                out.push(TAG_HUB_EPOCH);
                put_u64(&mut out, *epoch);
                put_u32(&mut out, *leader);
            }
            Message::Perturb {
                cluster,
                count,
                speed,
                inter_frac,
            } => {
                out.push(TAG_PERTURB);
                put_u16(&mut out, cluster.0);
                put_u32(&mut out, *count);
                put_opt_f64(&mut out, *speed);
                put_opt_f64(&mut out, *inter_frac);
            }
        }
        out
    }

    /// Decodes one frame payload. The whole payload must be consumed.
    pub fn decode(buf: &[u8]) -> Result<Message, WireError> {
        let mut c = Cursor { buf, pos: 0 };
        let msg = match c.u8()? {
            TAG_JOIN => Message::Join {
                cluster: ClusterId(c.u16()?),
                claim: c.opt_u32()?.map(NodeId),
            },
            TAG_JOIN_ACK => Message::JoinAck {
                node: NodeId(c.u32()?),
                accepted: c.boolean()?,
                reason: c.string()?,
            },
            TAG_HEARTBEAT => Message::Heartbeat {
                node: NodeId(c.u32()?),
            },
            TAG_STATS => Message::StatsReport {
                report: c.report()?,
                bench_micros: c.u64()?,
            },
            TAG_LEAVING => Message::Leaving {
                node: NodeId(c.u32()?),
            },
            TAG_SIGNAL_LEAVE => Message::SignalLeave {
                node: NodeId(c.u32()?),
            },
            TAG_CRASH_NOTICE => Message::CrashNotice {
                node: NodeId(c.u32()?),
                cluster: ClusterId(c.u16()?),
            },
            TAG_SUSPECT_NOTICE => Message::SuspectNotice {
                node: NodeId(c.u32()?),
                suspected: c.boolean()?,
            },
            TAG_COORD_HELLO => Message::CoordinatorHello,
            TAG_LAUNCHER_HELLO => Message::LauncherHello,
            TAG_GROW => {
                let count = c.u32()?;
                let n = c.list_len(2)?; // ClusterId = 2 bytes
                let mut prefer = Vec::with_capacity(n);
                for _ in 0..n {
                    prefer.push(ClusterId(c.u16()?));
                }
                Message::Grow {
                    count,
                    prefer,
                    min_uplink_bps: c.opt_f64()?,
                    min_speed: c.opt_f64()?,
                }
            }
            TAG_SHRINK => {
                let n = c.list_len(4)?; // NodeId = 4 bytes
                let mut nodes = Vec::with_capacity(n);
                for _ in 0..n {
                    nodes.push(NodeId(c.u32()?));
                }
                let cluster = match c.u8()? {
                    0 => None,
                    1 => Some(ClusterId(c.u16()?)),
                    b => return Err(WireError::BadBool(b)),
                };
                Message::Shrink { nodes, cluster }
            }
            TAG_SPAWN_WORKER => Message::SpawnWorker {
                node: NodeId(c.u32()?),
                cluster: ClusterId(c.u16()?),
            },
            TAG_SHUTDOWN => Message::Shutdown,
            TAG_PEER_ANNOUNCE => Message::PeerAnnounce {
                node: NodeId(c.u32()?),
                steal_addr: c.string()?,
            },
            TAG_PEER_DIRECTORY => {
                let n = c.list_len(PEER_INFO_MIN_BYTES)?;
                let mut peers = Vec::with_capacity(n);
                for _ in 0..n {
                    peers.push(c.peer_info()?);
                }
                Message::PeerDirectory { peers }
            }
            TAG_STEAL_REQUEST => Message::StealRequest {
                thief: NodeId(c.u32()?),
            },
            TAG_STEAL_REPLY => {
                let job = match c.u8()? {
                    0 => None,
                    1 => Some(StealJob {
                        id: c.u64()?,
                        payload: c.bytes()?,
                    }),
                    b => return Err(WireError::BadBool(b)),
                };
                Message::StealReply { job }
            }
            TAG_STEAL_RESULT => Message::StealResult {
                id: c.u64()?,
                value: c.u64()?,
            },
            TAG_REPLICA_HELLO => Message::ReplicaHello {
                replica: c.u32()?,
                addr: c.string()?,
                log_offset: c.u64()?,
            },
            TAG_STATE_SNAPSHOT => Message::StateSnapshot {
                epoch: c.u64()?,
                log_offset: c.u64()?,
                state: c.snapshot()?,
            },
            TAG_STATE_DELTA => Message::StateDelta {
                epoch: c.u64()?,
                log_offset: c.u64()?,
                op: c.replica_op()?,
            },
            TAG_REPLICA_ACK => Message::ReplicaAck {
                replica: c.u32()?,
                log_offset: c.u64()?,
            },
            TAG_HUB_EPOCH => Message::HubEpoch {
                epoch: c.u64()?,
                leader: c.u32()?,
            },
            TAG_PERTURB => Message::Perturb {
                cluster: ClusterId(c.u16()?),
                count: c.u32()?,
                speed: c.opt_f64()?,
                inter_frac: c.opt_f64()?,
            },
            t => return Err(WireError::BadTag(t)),
        };
        if c.pos != buf.len() {
            return Err(WireError::Trailing(buf.len() - c.pos));
        }
        Ok(msg)
    }
}

/// Writes one length-prefixed frame.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    assert!(payload.len() <= MAX_FRAME, "oversized outgoing frame");
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one length-prefixed frame. `Ok(None)` means the peer closed the
/// connection cleanly at a frame boundary; EOF mid-frame is an error.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<Vec<u8>>> {
    let mut header = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut header[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid frame header",
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes(header) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            WireError::FrameTooLarge(len).to_string(),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Encodes and writes one message as a frame.
pub fn send_message<W: Write>(w: &mut W, msg: &Message) -> io::Result<()> {
    write_frame(w, &msg.encode())
}

/// Reads and decodes one message. `Ok(None)` on clean EOF; decode failures
/// surface as [`io::ErrorKind::InvalidData`].
pub fn recv_message<R: Read>(r: &mut R) -> io::Result<Option<Message>> {
    let Some(payload) = read_frame(r)? else {
        return Ok(None);
    };
    Message::decode(&payload)
        .map(Some)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> MonitoringReport {
        MonitoringReport {
            node: NodeId(7),
            cluster: ClusterId(2),
            period_end: SimTime::from_millis(1234),
            breakdown: OverheadBreakdown {
                busy: SimDuration(100),
                idle: SimDuration(20),
                intra_comm: SimDuration(3),
                inter_comm: SimDuration(4),
                benchmark: SimDuration(5),
            },
            speed: 0.4375,
        }
    }

    /// One instance of every message variant — the loopback acceptance
    /// criterion demands a round-trip test for each message type.
    fn every_message() -> Vec<Message> {
        vec![
            Message::Join {
                cluster: ClusterId(3),
                claim: None,
            },
            Message::Join {
                cluster: ClusterId(0),
                claim: Some(NodeId(42)),
            },
            Message::JoinAck {
                node: NodeId(9),
                accepted: true,
                reason: String::new(),
            },
            Message::JoinAck {
                node: NodeId(9),
                accepted: false,
                reason: "node n9 is blacklisted — π≠\"3\"".to_string(),
            },
            Message::Heartbeat { node: NodeId(1) },
            Message::StatsReport {
                report: sample_report(),
                bench_micros: 1500,
            },
            Message::Leaving { node: NodeId(5) },
            Message::SignalLeave { node: NodeId(6) },
            Message::CrashNotice {
                node: NodeId(8),
                cluster: ClusterId(1),
            },
            Message::SuspectNotice {
                node: NodeId(8),
                suspected: true,
            },
            Message::SuspectNotice {
                node: NodeId(8),
                suspected: false,
            },
            Message::CoordinatorHello,
            Message::LauncherHello,
            Message::Grow {
                count: 4,
                prefer: vec![ClusterId(0), ClusterId(2)],
                min_uplink_bps: Some(1e6),
                min_speed: None,
            },
            Message::Grow {
                count: 1,
                prefer: vec![],
                min_uplink_bps: None,
                min_speed: Some(0.75),
            },
            Message::Shrink {
                nodes: vec![NodeId(3), NodeId(1)],
                cluster: None,
            },
            Message::Shrink {
                nodes: vec![NodeId(10), NodeId(11)],
                cluster: Some(ClusterId(4)),
            },
            Message::SpawnWorker {
                node: NodeId(12),
                cluster: ClusterId(1),
            },
            Message::Shutdown,
            Message::PeerAnnounce {
                node: NodeId(3),
                steal_addr: "127.0.0.1:45231".to_string(),
            },
            Message::PeerDirectory { peers: vec![] },
            Message::PeerDirectory {
                peers: vec![
                    PeerInfo {
                        node: NodeId(0),
                        cluster: ClusterId(0),
                        steal_addr: "127.0.0.1:9001".to_string(),
                    },
                    PeerInfo {
                        node: NodeId(5),
                        cluster: ClusterId(1),
                        steal_addr: "10.0.0.7:9002".to_string(),
                    },
                ],
            },
            Message::StealRequest { thief: NodeId(2) },
            Message::StealReply { job: None },
            Message::StealReply {
                job: Some(StealJob {
                    id: 99,
                    payload: vec![0x01, 0xff, 0x00, 0x7f],
                }),
            },
            Message::StealResult {
                id: 99,
                value: u64::MAX,
            },
            Message::Perturb {
                cluster: ClusterId(2),
                count: 0,
                speed: Some(0.1),
                inter_frac: None,
            },
            Message::Perturb {
                cluster: ClusterId(0),
                count: 6,
                speed: None,
                inter_frac: Some(0.45),
            },
            Message::ReplicaHello {
                replica: 2,
                addr: "127.0.0.1:7002".to_string(),
                log_offset: 0,
            },
            Message::StateSnapshot {
                epoch: 1,
                log_offset: 0,
                state: ControlSnapshot::default(),
            },
            Message::StateSnapshot {
                epoch: 3,
                log_offset: 42,
                state: ControlSnapshot {
                    members: vec![
                        (NodeId(0), ClusterId(0), MemberPhase::Alive),
                        (NodeId(1), ClusterId(1), MemberPhase::Leaving),
                        (NodeId(2), ClusterId(0), MemberPhase::Left),
                        (NodeId(3), ClusterId(1), MemberPhase::Dead),
                    ],
                    blacklisted_nodes: vec![NodeId(3)],
                    blacklisted_clusters: vec![ClusterId(4)],
                    peers: vec![PeerInfo {
                        node: NodeId(0),
                        cluster: ClusterId(0),
                        steal_addr: "127.0.0.1:9001".to_string(),
                    }],
                    bandwidth: vec![(NodeId(0), 1500), (NodeId(1), u64::MAX)],
                    replicas: vec![(2, "127.0.0.1:7002".to_string())],
                },
            },
            Message::StateDelta {
                epoch: 3,
                log_offset: 43,
                op: ReplicaOp::Join {
                    node: NodeId(9),
                    cluster: ClusterId(1),
                },
            },
            Message::StateDelta {
                epoch: 3,
                log_offset: 44,
                op: ReplicaOp::Leave { node: NodeId(9) },
            },
            Message::StateDelta {
                epoch: 3,
                log_offset: 45,
                op: ReplicaOp::Death { node: NodeId(2) },
            },
            Message::StateDelta {
                epoch: 3,
                log_offset: 46,
                op: ReplicaOp::BlacklistNode { node: NodeId(2) },
            },
            Message::StateDelta {
                epoch: 3,
                log_offset: 47,
                op: ReplicaOp::BlacklistCluster {
                    cluster: ClusterId(1),
                },
            },
            Message::StateDelta {
                epoch: 3,
                log_offset: 48,
                op: ReplicaOp::PeerDir {
                    peers: vec![PeerInfo {
                        node: NodeId(5),
                        cluster: ClusterId(1),
                        steal_addr: "10.0.0.7:9002".to_string(),
                    }],
                },
            },
            Message::StateDelta {
                epoch: 3,
                log_offset: 49,
                op: ReplicaOp::Bandwidth {
                    node: NodeId(5),
                    bench_micros: 2750,
                },
            },
            Message::StateDelta {
                epoch: 3,
                log_offset: 50,
                op: ReplicaOp::ReplicaJoined {
                    replica: 4,
                    addr: "127.0.0.1:7004".to_string(),
                },
            },
            Message::ReplicaAck {
                replica: 2,
                log_offset: 50,
            },
            Message::HubEpoch {
                epoch: 2,
                leader: 2,
            },
        ]
    }

    #[test]
    fn every_message_type_round_trips() {
        for msg in every_message() {
            let bytes = msg.encode();
            let back = Message::decode(&bytes).unwrap_or_else(|e| panic!("{msg:?}: {e}"));
            assert_eq!(back, msg);
        }
    }

    #[test]
    fn stats_report_floats_are_bit_exact() {
        let msg = Message::StatsReport {
            report: MonitoringReport {
                speed: 0.1 + 0.2, // not representable "nicely"
                ..sample_report()
            },
            bench_micros: u64::MAX,
        };
        let back = Message::decode(&msg.encode()).unwrap();
        match back {
            Message::StatsReport { report, .. } => {
                assert_eq!(report.speed.to_bits(), (0.1f64 + 0.2).to_bits());
            }
            other => panic!("wrong variant {other:?}"),
        }
    }

    #[test]
    fn truncated_payloads_are_rejected() {
        for msg in every_message() {
            let bytes = msg.encode();
            for cut in 0..bytes.len() {
                // Every strict prefix must fail — never panic, never succeed
                // (tags with no fields have no strict prefix but the empty
                // buffer, which must also fail).
                let r = Message::decode(&bytes[..cut]);
                assert!(r.is_err(), "{msg:?} decoded from {cut}-byte prefix");
            }
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        for msg in every_message() {
            let mut bytes = msg.encode();
            bytes.push(0xff);
            assert_eq!(Message::decode(&bytes), Err(WireError::Trailing(1)));
        }
    }

    #[test]
    fn unknown_tag_is_rejected() {
        assert_eq!(Message::decode(&[0x7f]), Err(WireError::BadTag(0x7f)));
        assert_eq!(Message::decode(&[]), Err(WireError::Truncated));
    }

    #[test]
    fn bad_bool_is_rejected() {
        // JoinAck with accepted byte = 7.
        let mut bytes = vec![TAG_JOIN_ACK];
        put_u32(&mut bytes, 1);
        bytes.push(7);
        put_str(&mut bytes, "");
        assert_eq!(Message::decode(&bytes), Err(WireError::BadBool(7)));
    }

    #[test]
    fn hostile_length_prefixes_are_bounded_by_remaining_bytes() {
        // A claimed count far beyond what the remaining bytes could hold
        // must fail *before* any reservation — n is bounded by
        // remaining / min_element_size, not by a flat MAX_FRAME fraction.
        // Grow: count then a huge prefer-list length with a 2-byte body.
        let mut grow = vec![TAG_GROW];
        put_u32(&mut grow, 1);
        put_u32(&mut grow, 250_000); // claims 250k ClusterIds (500 KB)
        put_u16(&mut grow, 0); // ...but only one is present
        assert_eq!(Message::decode(&grow), Err(WireError::Truncated));

        // Shrink: huge node-list length, 4-byte body.
        let mut shrink = vec![TAG_SHRINK];
        put_u32(&mut shrink, 100_000);
        put_u32(&mut shrink, 1);
        assert_eq!(Message::decode(&shrink), Err(WireError::Truncated));

        // PeerDirectory: huge peer count, tiny body.
        let mut dir = vec![TAG_PEER_DIRECTORY];
        put_u32(&mut dir, u32::MAX);
        put_u32(&mut dir, 1); // a few stray bytes
        assert_eq!(Message::decode(&dir), Err(WireError::Truncated));

        // StateSnapshot: a hostile member-list count (7-byte elements) with
        // a near-empty body must be bounded before any reservation...
        let mut snap = vec![TAG_STATE_SNAPSHOT];
        put_u64(&mut snap, 1); // epoch
        put_u64(&mut snap, 0); // log_offset
        put_u32(&mut snap, 1_000_000); // claims 1M members (7 MB)
        put_u32(&mut snap, 0); // ...but only stray bytes follow
        assert_eq!(Message::decode(&snap), Err(WireError::Truncated));

        // ...and so must every later snapshot list (bandwidth: 12-byte
        // elements after valid empty leading lists).
        let mut snap = vec![TAG_STATE_SNAPSHOT];
        put_u64(&mut snap, 1);
        put_u64(&mut snap, 0);
        put_u32(&mut snap, 0); // members
        put_u32(&mut snap, 0); // blacklisted nodes
        put_u32(&mut snap, 0); // blacklisted clusters
        put_u32(&mut snap, 0); // peers
        put_u32(&mut snap, u32::MAX); // bandwidth: hostile count
        put_u32(&mut snap, 0);
        assert_eq!(Message::decode(&snap), Err(WireError::Truncated));

        // A StateDelta PeerDir op is bounded like the directory itself.
        let mut delta = vec![TAG_STATE_DELTA];
        put_u64(&mut delta, 1);
        put_u64(&mut delta, 0);
        delta.push(5); // OP_PEER_DIR
        put_u32(&mut delta, 500_000); // hostile peer count
        put_u32(&mut delta, 0);
        assert_eq!(Message::decode(&delta), Err(WireError::Truncated));

        // The bound must still admit legitimate maximal lists: n elements
        // in exactly n * min_element_size remaining bytes.
        let mut ok = vec![TAG_SHRINK];
        put_u32(&mut ok, 3);
        for i in 0..3u32 {
            put_u32(&mut ok, i);
        }
        ok.push(0); // cluster: None
        assert!(Message::decode(&ok).is_ok());
    }

    #[test]
    fn bad_member_phase_and_op_tag_are_rejected() {
        // StateDelta with an unknown nested op tag.
        let mut delta = vec![TAG_STATE_DELTA];
        put_u64(&mut delta, 1);
        put_u64(&mut delta, 0);
        delta.push(0x7f); // no such op
        assert_eq!(Message::decode(&delta), Err(WireError::BadTag(0x7f)));

        // StateSnapshot with a member phase byte outside 0..=3.
        let mut snap = vec![TAG_STATE_SNAPSHOT];
        put_u64(&mut snap, 1);
        put_u64(&mut snap, 0);
        put_u32(&mut snap, 1); // one member
        put_u32(&mut snap, 9); // node
        put_u16(&mut snap, 0); // cluster
        snap.push(9); // invalid phase
        for _ in 0..5 {
            put_u32(&mut snap, 0); // remaining empty lists
        }
        assert_eq!(Message::decode(&snap), Err(WireError::BadBool(9)));
    }

    #[test]
    fn frames_round_trip_over_a_buffer() {
        let mut buf = Vec::new();
        for msg in every_message() {
            send_message(&mut buf, &msg).unwrap();
        }
        let mut r = io::Cursor::new(buf);
        for msg in every_message() {
            assert_eq!(recv_message(&mut r).unwrap(), Some(msg));
        }
        assert_eq!(recv_message(&mut r).unwrap(), None, "clean EOF");
    }

    #[test]
    fn oversized_frame_header_is_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&((MAX_FRAME as u32) + 1).to_le_bytes());
        let err = read_frame(&mut io::Cursor::new(buf)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn eof_mid_header_is_an_error_not_a_clean_close() {
        let err = read_frame(&mut io::Cursor::new(vec![1u8, 0])).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }
}
