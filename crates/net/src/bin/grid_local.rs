//! Local process-mode launcher: spawns a hub, a coordinator daemon and N
//! worker processes on loopback, then reproduces the paper's adaptation
//! scenarios over real sockets:
//!
//! * `--scenario crash` — SIGKILLs a worker and verifies the hub's
//!   heartbeat detector declares it dead, the coordinator blacklists it,
//!   and a rejoin attempt under the same node id is refused.
//! * `--scenario full` — additionally starts one deliberately slow worker
//!   (`--speed 0.2`) and verifies the out-of-process coordinator's badness
//!   ranking removes exactly that node, on top of the crash checks.
//! * `--scenario steal` — a slow root worker exports a frontier of
//!   serialized fib subjobs through the wire-level steal plane; thief
//!   workers in two clusters drain it by CRS and return the values. The
//!   launcher verifies jobs migrated between processes (steal counters),
//!   the distributed sum matches the sequential reference, and the
//!   thieves' `inter_comm` overhead is real measured wire time.
//!
//! Grow decisions are applied by spawning new worker processes when the hub
//! relays `SpawnWorker`; shrink decisions arrive at workers as leave
//! signals. On exit the launcher asserts every child has terminated (no
//! orphans) and that the coordinator's emitted JSONL decision stream
//! reconstructs through `simgrid::provenance` like an in-process run's.

use sagrid_core::ids::NodeId;
use sagrid_core::json::parse_json;
use sagrid_net::conn::{Connection, NetEvent};
use sagrid_net::wire::Message;
use sagrid_net::Args;
use sagrid_simgrid::provenance::{reconstruct_decision, DecisionProvenance};
use std::collections::BTreeSet;
use std::io::{BufRead, BufReader};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdout, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Tails a child's stdout, tagging every line, and feeds each line to a
/// hook (for machine-parsed markers like `HUB_PORT=` or `JOINED node=`).
fn pump(tag: String, out: ChildStdout, mut hook: impl FnMut(&str) + Send + 'static) {
    std::thread::Builder::new()
        .name(format!("pump-{tag}"))
        .spawn(move || {
            for line in BufReader::new(out).lines() {
                let Ok(line) = line else { break };
                println!("[{tag}] {line}");
                hook(&line);
            }
        })
        .expect("spawn pump thread");
}

struct WorkerArgs {
    duty: f64,
    period_ms: u64,
    heartbeat_ms: u64,
}

/// Spawns a worker process and returns it together with a channel that
/// yields the node id once the worker prints `JOINED node=K`. Every
/// stdout line is also fed to `extra_hook` so scenarios can watch for
/// their own markers (`ROOT_DONE`, `STEALS …`).
#[allow(clippy::too_many_arguments)]
fn spawn_worker(
    bin_dir: &Path,
    hub_addr: &str,
    wa: &WorkerArgs,
    cluster: u16,
    speed: Option<f64>,
    claim: Option<u32>,
    extra: &[String],
    tag: String,
    mut extra_hook: impl FnMut(&str) + Send + 'static,
) -> Result<(Child, Receiver<u32>), String> {
    let mut cmd = Command::new(bin_dir.join("sagrid-worker"));
    cmd.arg("--hub")
        .arg(hub_addr)
        .arg("--cluster")
        .arg(cluster.to_string())
        .arg("--duty")
        .arg(wa.duty.to_string())
        .arg("--period-ms")
        .arg(wa.period_ms.to_string())
        .arg("--heartbeat-ms")
        .arg(wa.heartbeat_ms.to_string())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit());
    if let Some(s) = speed {
        cmd.arg("--speed").arg(s.to_string());
    }
    if let Some(n) = claim {
        cmd.arg("--claim-node").arg(n.to_string());
    }
    cmd.args(extra);
    let mut child = cmd
        .spawn()
        .map_err(|e| format!("spawn sagrid-worker: {e}"))?;
    let stdout = child.stdout.take().expect("piped stdout");
    let (tx, rx) = channel();
    pump(tag, stdout, move |line| {
        if let Some(rest) = line.strip_prefix("JOINED node=") {
            if let Ok(n) = rest.trim().parse::<u32>() {
                let _ = tx.send(n);
            }
        }
        extra_hook(line);
    });
    Ok((child, rx))
}

/// A spawned child plus what we know about it, for the final orphan sweep.
struct Tracked {
    name: String,
    child: Child,
}

struct Checks {
    failures: Vec<String>,
}

impl Checks {
    fn assert(&mut self, ok: bool, what: &str) {
        if ok {
            println!("CHECK ok: {what}");
        } else {
            println!("CHECK FAILED: {what}");
            self.failures.push(what.to_string());
        }
    }
}

/// Parses a worker's exit summary `STEALS ok=N failed=M served=K
/// inter_us=T` into `(ok, served, inter_us)`.
fn parse_steals(line: &str) -> Option<(u64, u64, u64)> {
    let rest = line.strip_prefix("STEALS ")?;
    let (mut ok, mut served, mut inter) = (None, None, None);
    for part in rest.split_whitespace() {
        let (k, v) = part.split_once('=')?;
        match k {
            "ok" => ok = v.parse().ok(),
            "served" => served = v.parse().ok(),
            "inter_us" => inter = v.parse().ok(),
            _ => {}
        }
    }
    Some((ok?, served?, inter?))
}

/// Fibonacci argument for the steal scenario's distributed root job.
const STEAL_FIB_N: u64 = 34;
/// Frontier depth: 2^7 = 128 independent subjobs to spread around.
const STEAL_DEPTH: u32 = 7;

/// The `steal` scenario: a deliberately slow root worker in cluster 0
/// expands `fib(STEAL_FIB_N)` into a frontier of subjobs and exports them
/// through its steal server; full-speed thief workers in both clusters
/// drain the pool over the wire by CRS and send the values back. Verifies
/// that work spawned in one process really executes in others
/// (`remote_ok`/`served` counters), that the distributed sum matches the
/// sequential reference, and that the thieves' `inter_comm` overhead is
/// reconstructed from measured steal wire time.
fn run_steal(
    workers: usize,
    duration: Duration,
    out: &str,
    bin_dir: &Path,
) -> Result<Vec<String>, String> {
    // --- Hub with two clusters (CRS needs a remote tier) -----------------
    let mut hub_child = Command::new(bin_dir.join("sagrid-hub"))
        .args([
            "--port",
            "0",
            "--clusters",
            "2",
            "--nodes-per-cluster",
            &(workers + 4).to_string(),
            "--heartbeat-timeout-ms",
            "1500",
            "--detect-interval-ms",
            "200",
            "--out",
            out,
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .map_err(|e| format!("spawn sagrid-hub: {e}"))?;
    let (port_tx, port_rx) = channel::<u16>();
    {
        let stdout = hub_child.stdout.take().expect("piped stdout");
        pump("hub".to_string(), stdout, move |line| {
            if let Some(rest) = line.strip_prefix("HUB_PORT=") {
                if let Ok(p) = rest.trim().parse() {
                    let _ = port_tx.send(p);
                }
            }
        });
    }
    let port = port_rx
        .recv_timeout(Duration::from_secs(10))
        .map_err(|_| "hub never printed HUB_PORT=".to_string())?;
    let hub_addr = format!("127.0.0.1:{port}");
    println!("grid-local: hub on {hub_addr} (steal scenario)");

    // --- Launcher control connection (delivers the final Shutdown) -------
    let (events_tx, _events_rx) = channel::<NetEvent>();
    let stream = TcpStream::connect(&hub_addr).map_err(|e| format!("connect to hub: {e}"))?;
    let control =
        Connection::spawn(1, stream, events_tx, None).map_err(|e| format!("control conn: {e}"))?;
    control.send(Message::LauncherHello);

    let wa = WorkerArgs {
        duty: 0.3,
        period_ms: 300,
        heartbeat_ms: 200,
    };

    // Shared marker state fed by the stdout pumps.
    let root_result: Arc<Mutex<Option<u64>>> = Arc::new(Mutex::new(None));
    let root_done = Arc::new(AtomicBool::new(false));
    // (tag, remote_ok, served, inter_us) per worker, from exit summaries.
    type StealLines = Arc<Mutex<Vec<(String, u64, u64, u64)>>>;
    let steals: StealLines = Arc::new(Mutex::new(Vec::new()));
    let steal_hook = |tag: String, steals: &StealLines| {
        let steals = Arc::clone(steals);
        move |line: &str| {
            if let Some(parsed) = parse_steals(line) {
                steals.lock().expect("steals list").push((
                    tag.clone(),
                    parsed.0,
                    parsed.1,
                    parsed.2,
                ));
            }
        }
    };

    // --- Root: slow, cluster 0, owns the distributed computation ---------
    let root_metrics = format!("{out}/steal_root_metrics.jsonl");
    let mut tracked: Vec<Tracked> = Vec::new();
    let (root_child, root_joined) = {
        let extra: Vec<String> = [
            "--steal",
            "on",
            "--workload",
            "fib",
            "--root-arg",
            &STEAL_FIB_N.to_string(),
            "--root-depth",
            &STEAL_DEPTH.to_string(),
            "--out",
            &root_metrics,
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let rr = Arc::clone(&root_result);
        let rd = Arc::clone(&root_done);
        let sh = steal_hook("root".to_string(), &steals);
        spawn_worker(
            bin_dir,
            &hub_addr,
            &wa,
            0,
            Some(0.1),
            None,
            &extra,
            "root".to_string(),
            move |line| {
                if let Some(rest) = line.strip_prefix("ROOT_RESULT=") {
                    if let Ok(v) = rest.trim().parse() {
                        *rr.lock().expect("root result") = Some(v);
                    }
                } else if line.starts_with("ROOT_DONE") {
                    rd.store(true, Ordering::Release);
                }
                sh(line);
            },
        )?
    };
    let root_node = root_joined
        .recv_timeout(Duration::from_secs(10))
        .map_err(|_| "root worker never joined".to_string())?;
    tracked.push(Tracked {
        name: format!("root-{root_node}"),
        child: root_child,
    });

    // --- Thieves: full speed, spread over both clusters -------------------
    let mut thief_tags = Vec::new();
    for i in 0..workers - 1 {
        let cluster = (i % 2) as u16; // at least one same- and one cross-cluster thief
        let tag = format!("t{i}c{cluster}");
        let thief_metrics = format!("{out}/steal_thief{i}_metrics.jsonl");
        let extra: Vec<String> = ["--steal", "on", "--out", &thief_metrics]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let (child, joined) = spawn_worker(
            bin_dir,
            &hub_addr,
            &wa,
            cluster,
            None,
            None,
            &extra,
            tag.clone(),
            steal_hook(tag.clone(), &steals),
        )?;
        let node = joined
            .recv_timeout(Duration::from_secs(10))
            .map_err(|_| format!("thief {i} never joined"))?;
        tracked.push(Tracked {
            name: format!("thief-{node}"),
            child,
        });
        thief_tags.push(tag);
    }
    println!("grid-local: root n{root_node} + {} thieves up", workers - 1);

    // --- Wait for the distributed computation, then shut down -------------
    let deadline = Instant::now() + duration;
    while !root_done.load(Ordering::Acquire) && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(50));
    }
    // Let final stats reports drain before tearing the grid down.
    std::thread::sleep(Duration::from_millis(500));
    control.send(Message::Shutdown);

    let mut checks = Checks {
        failures: Vec::new(),
    };

    let reap_deadline = Instant::now() + Duration::from_secs(10);
    let mut orphans = Vec::new();
    tracked.push(Tracked {
        name: "hub".to_string(),
        child: hub_child,
    });
    for t in &mut tracked {
        loop {
            match t.child.try_wait() {
                Ok(Some(_)) => break,
                Ok(None) if Instant::now() > reap_deadline => {
                    let _ = t.child.kill();
                    let _ = t.child.wait();
                    orphans.push(t.name.clone());
                    break;
                }
                Ok(None) => std::thread::sleep(Duration::from_millis(50)),
                Err(e) => return Err(format!("wait for {}: {e}", t.name)),
            }
        }
    }

    checks.assert(
        root_done.load(Ordering::Acquire),
        "root finished the distributed computation before the deadline",
    );
    let expected = sagrid_apps::fib_seq(STEAL_FIB_N);
    let got = *root_result.lock().expect("root result");
    checks.assert(
        got == Some(expected),
        &format!("distributed fib({STEAL_FIB_N}) = {got:?} matches sequential {expected}"),
    );

    let lines = steals.lock().expect("steals list").clone();
    let root_served: u64 = lines
        .iter()
        .filter(|(tag, ..)| tag == "root")
        .map(|&(_, _, served, _)| served)
        .sum();
    let thief_ok: u64 = lines
        .iter()
        .filter(|(tag, ..)| tag != "root")
        .map(|&(_, ok, ..)| ok)
        .sum();
    let thief_inter: u64 = lines
        .iter()
        .filter(|(tag, ..)| tag != "root")
        .map(|&(.., inter)| inter)
        .sum();
    checks.assert(
        root_served > 0,
        &format!("root exported jobs to thieves over the wire (served={root_served})"),
    );
    checks.assert(
        thief_ok > 0,
        &format!("thieves executed jobs stolen from the root process (remote_ok={thief_ok})"),
    );
    checks.assert(
        thief_inter > 0,
        &format!("thief inter_comm was reconstructed from measured wire time ({thief_inter}us)"),
    );
    checks.assert(
        orphans.is_empty(),
        &format!("all children exited after shutdown (orphans: {orphans:?})"),
    );
    checks.assert(
        std::fs::metadata(&root_metrics)
            .map(|m| m.len() > 0)
            .unwrap_or(false),
        "root dumped a non-empty metrics JSONL",
    );

    Ok(checks.failures)
}

fn run() -> Result<Vec<String>, String> {
    let args = Args::parse(
        std::env::args().skip(1),
        &["workers", "scenario", "duration-ms", "out", "kill-index"],
    )?;
    let workers: usize = args.get_or("workers", 4)?;
    let scenario: String = args.get_or("scenario", "crash".to_string())?;
    let (full, steal) = match scenario.as_str() {
        "crash" => (false, false),
        "full" => (true, false),
        "steal" => (false, true),
        other => return Err(format!("unknown scenario {other:?} (crash|full|steal)")),
    };
    if workers < 3 {
        return Err("need at least 3 workers".to_string());
    }
    let default_duration = if steal {
        30_000u64
    } else if full {
        12_000
    } else {
        7_000
    };
    let duration = Duration::from_millis(args.get_or("duration-ms", default_duration)?);
    let out: String = args.get_or("out", "target/grid_local_out".to_string())?;
    let kill_index: u32 = args.get_or("kill-index", 1)?;
    std::fs::create_dir_all(&out).map_err(|e| format!("create {out}: {e}"))?;

    let bin_dir: PathBuf = std::env::current_exe()
        .map_err(|e| format!("current_exe: {e}"))?
        .parent()
        .ok_or("current_exe has no parent")?
        .to_path_buf();

    if steal {
        return run_steal(workers, duration, &out, &bin_dir);
    }

    // Full scenario math (defaults: E_MIN 0.30, E_MAX 0.50): healthy duty
    // 0.35 and one slow worker at speed 0.1 give a weighted average of
    // (4·0.35 + 0.1·0.35)/5 ≈ 0.287 < E_MIN, so the coordinator shrinks by
    // exactly one node — the slow one, whose badness (∝ 1/speed) dominates.
    // After its removal the healthy average 0.35 sits inside the band.
    let wa = WorkerArgs {
        duty: if full { 0.35 } else { 0.4 },
        period_ms: if full { 500 } else { 300 },
        heartbeat_ms: 100,
    };

    // --- Hub ------------------------------------------------------------
    let mut hub_child = Command::new(bin_dir.join("sagrid-hub"))
        .args([
            "--port",
            "0",
            "--clusters",
            "1",
            "--nodes-per-cluster",
            &(workers * 2 + 4).to_string(),
            "--heartbeat-timeout-ms",
            "700",
            "--detect-interval-ms",
            "100",
            "--out",
            &out,
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .map_err(|e| format!("spawn sagrid-hub: {e}"))?;
    let (port_tx, port_rx) = channel::<u16>();
    let died: Arc<Mutex<BTreeSet<u32>>> = Arc::new(Mutex::new(BTreeSet::new()));
    {
        let died = Arc::clone(&died);
        let stdout = hub_child.stdout.take().expect("piped stdout");
        pump("hub".to_string(), stdout, move |line| {
            if let Some(rest) = line.strip_prefix("HUB_PORT=") {
                if let Ok(p) = rest.trim().parse() {
                    let _ = port_tx.send(p);
                }
            } else if let Some(rest) = line.strip_prefix("EVENT died n") {
                if let Ok(n) = rest.trim().parse() {
                    died.lock().expect("died set").insert(n);
                }
            }
        });
    }
    let port = port_rx
        .recv_timeout(Duration::from_secs(10))
        .map_err(|_| "hub never printed HUB_PORT=".to_string())?;
    let hub_addr = format!("127.0.0.1:{port}");
    println!("grid-local: hub on {hub_addr}");

    // --- Coordinator daemon ---------------------------------------------
    let coord_out = format!("{out}/run_coordinatord.jsonl");
    let mut coord_child = Command::new(bin_dir.join("sagrid-coordinatord"))
        .args([
            "--hub",
            &hub_addr,
            "--period-ms",
            "600",
            "--warmup-ms",
            if full { "3000" } else { "1500" },
            "--out",
            &coord_out,
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .map_err(|e| format!("spawn sagrid-coordinatord: {e}"))?;
    let provenance_ok = Arc::new(AtomicBool::new(false));
    let coord_up = {
        let (tx, rx) = channel::<()>();
        let flag = Arc::clone(&provenance_ok);
        let stdout = coord_child.stdout.take().expect("piped stdout");
        pump("coord".to_string(), stdout, move |line| {
            if line.starts_with("COORDINATOR_UP") {
                let _ = tx.send(());
            } else if line.starts_with("PROVENANCE_OK") {
                flag.store(true, Ordering::Release);
            }
        });
        rx
    };
    coord_up
        .recv_timeout(Duration::from_secs(10))
        .map_err(|_| "coordinator daemon never came up".to_string())?;

    // --- Launcher control connection (applies grow decisions) -----------
    let (events_tx, events_rx) = channel::<NetEvent>();
    let stream = TcpStream::connect(&hub_addr).map_err(|e| format!("connect to hub: {e}"))?;
    let control =
        Connection::spawn(1, stream, events_tx, None).map_err(|e| format!("control conn: {e}"))?;
    control.send(Message::LauncherHello);

    // Grow decisions come back as SpawnWorker; apply them by spawning real
    // processes that claim the granted node id.
    let grown: Arc<Mutex<Vec<Tracked>>> = Arc::new(Mutex::new(Vec::new()));
    let grow_handler: Sender<NetEvent>;
    {
        let (tx, rx) = channel::<NetEvent>();
        grow_handler = tx;
        let grown = Arc::clone(&grown);
        let bin_dir = bin_dir.clone();
        let hub_addr = hub_addr.clone();
        let wa2 = WorkerArgs { ..wa };
        std::thread::Builder::new()
            .name("grow-handler".to_string())
            .spawn(move || {
                while let Ok(evt) = rx.recv() {
                    if let NetEvent::Message(_, Message::SpawnWorker { node, .. }) = evt {
                        println!("grid-local: grow -> spawning worker for {node}");
                        if let Ok((child, _)) = spawn_worker(
                            &bin_dir,
                            &hub_addr,
                            &wa2,
                            0,
                            None,
                            Some(node.0),
                            &[],
                            format!("w{}+", node.0),
                            |_| {},
                        ) {
                            grown.lock().expect("grown list").push(Tracked {
                                name: format!("grown-worker-{}", node.0),
                                child,
                            });
                        }
                    }
                }
            })
            .expect("spawn grow handler");
    }
    std::thread::Builder::new()
        .name("control-events".to_string())
        .spawn(move || {
            while let Ok(evt) = events_rx.recv() {
                let _ = grow_handler.send(evt);
            }
        })
        .expect("spawn control event forwarder");

    // --- Workers ---------------------------------------------------------
    // In the full scenario the *last* worker is deliberately slow: the
    // paper's overloaded-processor case, which the badness ranking must
    // single out.
    let mut worker_children: Vec<(u32, Child)> = Vec::new();
    for i in 0..workers {
        let slow = full && i == workers - 1;
        let (child, joined) = spawn_worker(
            &bin_dir,
            &hub_addr,
            &wa,
            0,
            slow.then_some(0.1),
            None,
            &[],
            format!("w{i}"),
            |_| {},
        )?;
        let node = joined
            .recv_timeout(Duration::from_secs(10))
            .map_err(|_| format!("worker {i} never joined"))?;
        worker_children.push((node, child));
    }
    let slow_node = full.then(|| worker_children[workers - 1].0);
    let start = Instant::now();
    println!(
        "grid-local: {workers} workers up{}",
        slow_node
            .map(|n| format!(" (slow: n{n})"))
            .unwrap_or_default()
    );

    // --- Crash injection -------------------------------------------------
    std::thread::sleep(Duration::from_millis(1000));
    let victim = kill_index;
    let victim_child = worker_children
        .iter_mut()
        .find(|(n, _)| *n == victim)
        .ok_or(format!("no worker holds node id {victim} to kill"))?;
    victim_child.1.kill().map_err(|e| format!("kill: {e}"))?;
    victim_child.1.wait().map_err(|e| format!("reap: {e}"))?;
    println!("grid-local: SIGKILLed worker n{victim}");

    let mut checks = Checks {
        failures: Vec::new(),
    };

    // The hub must declare the victim dead via missed heartbeats (the
    // closed socket alone is NOT treated as a death).
    let detect_deadline = Instant::now() + Duration::from_secs(6);
    let detected = loop {
        if died.lock().expect("died set").contains(&victim) {
            break true;
        }
        if Instant::now() > detect_deadline {
            break false;
        }
        std::thread::sleep(Duration::from_millis(50));
    };
    checks.assert(
        detected,
        "hub detected the SIGKILLed worker via heartbeat timeout",
    );

    // A blacklisted node id must never rejoin.
    let (mut rejoin_child, _) = spawn_worker(
        &bin_dir,
        &hub_addr,
        &wa,
        0,
        None,
        Some(victim),
        &[],
        format!("w{victim}-rejoin"),
        |_| {},
    )?;
    let rejoin_status = {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            match rejoin_child.try_wait() {
                Ok(Some(status)) => break Some(status),
                Ok(None) if Instant::now() > deadline => {
                    let _ = rejoin_child.kill();
                    let _ = rejoin_child.wait();
                    break None;
                }
                Ok(None) => std::thread::sleep(Duration::from_millis(50)),
                Err(_) => break None,
            }
        }
    };
    checks.assert(
        rejoin_status.and_then(|s| s.code()) == Some(3),
        "rejoin attempt under the blacklisted node id was refused",
    );

    // --- Let the adaptation loop run, then shut everything down ----------
    let remaining = duration.saturating_sub(start.elapsed());
    std::thread::sleep(remaining);
    control.send(Message::Shutdown);

    let mut all: Vec<Tracked> = Vec::new();
    all.push(Tracked {
        name: "hub".to_string(),
        child: hub_child,
    });
    all.push(Tracked {
        name: "coordinatord".to_string(),
        child: coord_child,
    });
    for (n, child) in worker_children {
        all.push(Tracked {
            name: format!("worker-{n}"),
            child,
        });
    }
    all.append(&mut grown.lock().expect("grown list"));

    let reap_deadline = Instant::now() + Duration::from_secs(10);
    let mut orphans = Vec::new();
    for t in &mut all {
        loop {
            match t.child.try_wait() {
                Ok(Some(_)) => break,
                Ok(None) if Instant::now() > reap_deadline => {
                    let _ = t.child.kill();
                    let _ = t.child.wait();
                    orphans.push(t.name.clone());
                    break;
                }
                Ok(None) => std::thread::sleep(Duration::from_millis(50)),
                Err(e) => return Err(format!("wait for {}: {e}", t.name)),
            }
        }
    }
    checks.assert(
        orphans.is_empty(),
        &format!("all children exited after shutdown (orphans: {orphans:?})"),
    );
    checks.assert(
        provenance_ok.load(Ordering::Acquire),
        "coordinator self-verified its provenance stream (PROVENANCE_OK)",
    );

    // --- Offline verification of the emitted decision stream -------------
    let text = std::fs::read_to_string(&coord_out).map_err(|e| format!("read {coord_out}: {e}"))?;
    let mut decisions: Vec<DecisionProvenance> = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let value =
            parse_json(line).map_err(|e| format!("{coord_out}:{}: bad JSON: {e}", i + 1))?;
        if value.get("kind").and_then(|k| k.as_str()) == Some("decision") {
            decisions.push(
                reconstruct_decision(&value).map_err(|e| format!("{coord_out}:{}: {e}", i + 1))?,
            );
        }
    }
    checks.assert(
        !decisions.is_empty(),
        "coordinator emitted reconstructible decision events",
    );
    checks.assert(
        decisions
            .last()
            .is_some_and(|d| d.blacklisted_nodes.contains(&NodeId(victim))),
        "crashed node is blacklisted in the final decision entry",
    );
    if let Some(slow) = slow_node {
        let removed = decisions
            .iter()
            .find(|d| d.kind == "remove-nodes" && d.removed.contains(&NodeId(slow)));
        checks.assert(
            removed.is_some(),
            "badness ranking removed the slow worker (remove-nodes decision)",
        );
        checks.assert(
            removed.is_some_and(|d| d.badness.first().is_some_and(|b| b.node == NodeId(slow))),
            "slow worker ranked worst in the removal's badness provenance",
        );
    }

    Ok(checks.failures)
}

fn main() {
    match run() {
        Ok(failures) if failures.is_empty() => {
            println!("grid-local: PASS");
        }
        Ok(failures) => {
            println!("grid-local: FAIL ({} checks)", failures.len());
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("grid-local: {e}");
            std::process::exit(2);
        }
    }
}
