//! Local process-mode launcher: spawns a hub, a coordinator daemon and N
//! worker processes on loopback, then reproduces the paper's adaptation
//! scenarios over real sockets:
//!
//! * `--scenario crash` — SIGKILLs a worker and verifies the hub's
//!   heartbeat detector declares it dead, the coordinator blacklists it,
//!   and a rejoin attempt under the same node id is refused.
//! * `--scenario full` — additionally starts one deliberately slow worker
//!   (`--speed 0.2`) and verifies the out-of-process coordinator's badness
//!   ranking removes exactly that node, on top of the crash checks.
//! * `--scenario steal` — a slow root worker exports a frontier of
//!   serialized fib subjobs through the wire-level steal plane; thief
//!   workers in two clusters drain it by CRS and return the values. The
//!   launcher verifies jobs migrated between processes (steal counters),
//!   the distributed sum matches the sequential reference, and the
//!   thieves' `inter_comm` overhead is real measured wire time.
//! * `--scenario hub-crash` — starts a standby hub replicating from the
//!   primary, crashes a worker (so there is a blacklist worth inheriting),
//!   then SIGKILLs the *primary hub* and verifies the standby wins the
//!   deterministic election, promotes under a bumped epoch, keeps the
//!   blacklist/peer-directory/bandwidth state, re-admits the survivors and
//!   still refuses the victim — all re-certified offline from the composed
//!   JSONL by the crates/scenario `hub-failover` invariant.
//! * `--scenario churn-soak` — the reactor's scale proof: one hub process
//!   serves `--workers` (default 5000) protocol-complete loopback workers
//!   driven by a single in-process reactor swarm (real worker *processes*
//!   at that count would exhaust the box, and the hub cannot tell the
//!   difference — same sockets, same frames, same heartbeat cadence).
//!   Waves of churn (disconnect + claim-rejoin inside the heartbeat
//!   window), silent crashes (must be declared dead and blacklisted) and
//!   a launcher-driven grow roll through while the launcher asserts the
//!   hub's OS thread count stays flat — independent of connection count —
//!   and the teardown leaves no orphans.
//!
//! With `--scenario-file <path>` the launcher instead drives a declarative
//! scenario (crates/scenario format — the same file the DES twin runs):
//! it builds the grid's clusters on the hub, spawns `--workers-per-cluster`
//! real workers per layout entry, compiles the file's timed events to
//! primitive injections and applies each at its (time-scaled) wall-clock
//! due time — CPU loads and uplink brownouts as `Perturb` messages fanned
//! out by the hub, crashes as SIGKILL, grows as capacity grants, shrinks
//! as leave signals. Afterwards it composes its own injection records with
//! the coordinator daemon's decision stream and runs the crates/scenario
//! adaptation-invariant checker over the merged JSONL, so a process-mode
//! run is certified by the *same* invariants as a DES run.
//!
//! Grow decisions are applied by spawning new worker processes when the hub
//! relays `SpawnWorker`; shrink decisions arrive at workers as leave
//! signals. On exit the launcher asserts every child has terminated (no
//! orphans) and that the coordinator's emitted JSONL decision stream
//! reconstructs through `simgrid::provenance` like an in-process run's.
//!
//! Exit codes distinguish verdicts from infrastructure trouble: 0 all
//! checks passed, 1 an adaptation invariant or launcher check failed,
//! 2 infrastructure/usage error, 4 infrastructure *timeout* (a child never
//! came up — the grid never reached the state the checks judge).

use sagrid_core::ids::{ClusterId, NodeId};
use sagrid_core::json::parse_json;
use sagrid_core::metrics::{MetricEvent, Metrics, Value};
use sagrid_net::conn::{Connection, NetEvent};
use sagrid_net::wire::Message;
use sagrid_net::{Args, Reactor, ReactorEvent, Token};
use sagrid_scenario::{check_jsonl, InvariantConfig, ScenarioSpec};
use sagrid_simgrid::provenance::{reconstruct_decision, DecisionProvenance};
use sagrid_simnet::Injection;
use std::collections::{BTreeMap, BTreeSet};
use std::io::{BufRead, BufReader};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdout, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Tails a child's stdout, tagging every line, and feeds each line to a
/// hook (for machine-parsed markers like `HUB_PORT=` or `JOINED node=`).
fn pump(tag: String, out: ChildStdout, mut hook: impl FnMut(&str) + Send + 'static) {
    std::thread::Builder::new()
        .name(format!("pump-{tag}"))
        .spawn(move || {
            for line in BufReader::new(out).lines() {
                let Ok(line) = line else { break };
                println!("[{tag}] {line}");
                hook(&line);
            }
        })
        .expect("spawn pump thread");
}

struct WorkerArgs {
    duty: f64,
    period_ms: u64,
    heartbeat_ms: u64,
}

/// Spawns a worker process and returns it together with a channel that
/// yields the node id once the worker prints `JOINED node=K`. Every
/// stdout line is also fed to `extra_hook` so scenarios can watch for
/// their own markers (`ROOT_DONE`, `STEALS …`).
#[allow(clippy::too_many_arguments)]
fn spawn_worker(
    bin_dir: &Path,
    hub_addr: &str,
    wa: &WorkerArgs,
    cluster: u16,
    speed: Option<f64>,
    claim: Option<u32>,
    extra: &[String],
    tag: String,
    mut extra_hook: impl FnMut(&str) + Send + 'static,
) -> Result<(Child, Receiver<u32>), String> {
    let mut cmd = Command::new(bin_dir.join("sagrid-worker"));
    cmd.arg("--hub")
        .arg(hub_addr)
        .arg("--cluster")
        .arg(cluster.to_string())
        .arg("--duty")
        .arg(wa.duty.to_string())
        .arg("--period-ms")
        .arg(wa.period_ms.to_string())
        .arg("--heartbeat-ms")
        .arg(wa.heartbeat_ms.to_string())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit());
    if let Some(s) = speed {
        cmd.arg("--speed").arg(s.to_string());
    }
    if let Some(n) = claim {
        cmd.arg("--claim-node").arg(n.to_string());
    }
    cmd.args(extra);
    let mut child = cmd
        .spawn()
        .map_err(|e| format!("spawn sagrid-worker: {e}"))?;
    track_child("worker", &child);
    let stdout = child.stdout.take().expect("piped stdout");
    let (tx, rx) = channel();
    pump(tag, stdout, move |line| {
        if let Some(rest) = line.strip_prefix("JOINED node=") {
            if let Ok(n) = rest.trim().parse::<u32>() {
                let _ = tx.send(n);
            }
        }
        extra_hook(line);
    });
    Ok((child, rx))
}

/// A spawned child plus what we know about it, for the final orphan sweep.
struct Tracked {
    name: String,
    child: Child,
}

/// Every child PID ever spawned, for the exit-path reaper. The happy path
/// reaps children in each scenario's teardown sweep; *failure* paths
/// (`Err` returns, infra timeouts) unwind straight past that sweep, and
/// `std::process::exit` runs no destructors — so `main` holds a
/// [`ReapGuard`] across `run()` and drops it before choosing an exit
/// code. Without it, an exit-4 run (say, a worker that never joins)
/// leaked the hub process.
static SPAWNED_PIDS: Mutex<Vec<(&'static str, u32)>> = Mutex::new(Vec::new());

/// Records a freshly spawned child in the reaper's PID registry and
/// prints the pid so tests can verify post-exit that it is gone.
fn track_child(name: &'static str, child: &Child) {
    println!("grid-local: spawned {name} pid={}", child.id());
    SPAWNED_PIDS
        .lock()
        .expect("pid registry")
        .push((name, child.id()));
}

/// True when `/proc/<pid>` names a live (non-zombie) process. A child the
/// teardown already `wait()`ed has no `/proc` entry at all; one that
/// exited but was never reaped shows state `Z` and dies with the launcher.
fn is_running(pid: u32) -> bool {
    let Ok(stat) = std::fs::read_to_string(format!("/proc/{pid}/stat")) else {
        return false;
    };
    // State is the first field after the parenthesised comm (which may
    // itself contain spaces or parens — hence rfind).
    let Some(idx) = stat.rfind(')') else {
        return false;
    };
    !matches!(
        stat[idx + 1..].trim_start().chars().next(),
        Some('Z') | None
    )
}

/// Kills every tracked child still running when dropped.
struct ReapGuard;

impl Drop for ReapGuard {
    fn drop(&mut self) {
        for (name, pid) in SPAWNED_PIDS.lock().expect("pid registry").drain(..) {
            if !is_running(pid) {
                continue;
            }
            let _ = Command::new("kill").args(["-9", &pid.to_string()]).status();
            println!("grid-local: reaper killed leaked {name} pid={pid}");
        }
    }
}

/// Why a run could not even produce a verdict. `Infra` is a broken
/// precondition (usage error, spawn failure, I/O); `Timeout` means a child
/// never reached the state the checks judge (hub port, worker join,
/// coordinator up) — CI treats the two differently, so they get distinct
/// exit codes (2 vs 4; 3 is taken by the worker's join-refused exit).
enum Failure {
    Infra(String),
    Timeout(String),
}

/// Lets every pre-existing `map_err(|e| format!(...))?` keep compiling:
/// a bare string error is infrastructure trouble unless said otherwise.
impl From<String> for Failure {
    fn from(s: String) -> Self {
        Failure::Infra(s)
    }
}

struct Checks {
    failures: Vec<String>,
}

impl Checks {
    fn assert(&mut self, ok: bool, what: &str) {
        if ok {
            println!("CHECK ok: {what}");
        } else {
            println!("CHECK FAILED: {what}");
            self.failures.push(what.to_string());
        }
    }
}

/// Parses a worker's exit summary `STEALS ok=N failed=M served=K
/// inter_us=T` into `(ok, served, inter_us)`.
fn parse_steals(line: &str) -> Option<(u64, u64, u64)> {
    let rest = line.strip_prefix("STEALS ")?;
    let (mut ok, mut served, mut inter) = (None, None, None);
    for part in rest.split_whitespace() {
        let (k, v) = part.split_once('=')?;
        match k {
            "ok" => ok = v.parse().ok(),
            "served" => served = v.parse().ok(),
            "inter_us" => inter = v.parse().ok(),
            _ => {}
        }
    }
    Some((ok?, served?, inter?))
}

/// Fibonacci argument for the steal scenario's distributed root job.
const STEAL_FIB_N: u64 = 34;
/// Frontier depth: 2^7 = 128 independent subjobs to spread around.
const STEAL_DEPTH: u32 = 7;

/// The `steal` scenario: a deliberately slow root worker in cluster 0
/// expands `fib(STEAL_FIB_N)` into a frontier of subjobs and exports them
/// through its steal server; full-speed thief workers in both clusters
/// drain the pool over the wire by CRS and send the values back. Verifies
/// that work spawned in one process really executes in others
/// (`remote_ok`/`served` counters), that the distributed sum matches the
/// sequential reference, and that the thieves' `inter_comm` overhead is
/// reconstructed from measured steal wire time.
fn run_steal(
    workers: usize,
    duration: Duration,
    out: &str,
    bin_dir: &Path,
) -> Result<Vec<String>, String> {
    // --- Hub with two clusters (CRS needs a remote tier) -----------------
    let mut hub_child = Command::new(bin_dir.join("sagrid-hub"))
        .args([
            "--port",
            "0",
            "--clusters",
            "2",
            "--nodes-per-cluster",
            &(workers + 4).to_string(),
            "--heartbeat-timeout-ms",
            "1500",
            "--detect-interval-ms",
            "200",
            "--out",
            out,
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .map_err(|e| format!("spawn sagrid-hub: {e}"))?;
    track_child("hub", &hub_child);
    let (port_tx, port_rx) = channel::<u16>();
    {
        let stdout = hub_child.stdout.take().expect("piped stdout");
        pump("hub".to_string(), stdout, move |line| {
            if let Some(rest) = line.strip_prefix("HUB_PORT=") {
                if let Ok(p) = rest.trim().parse() {
                    let _ = port_tx.send(p);
                }
            }
        });
    }
    let port = port_rx
        .recv_timeout(Duration::from_secs(10))
        .map_err(|_| "hub never printed HUB_PORT=".to_string())?;
    let hub_addr = format!("127.0.0.1:{port}");
    println!("grid-local: hub on {hub_addr} (steal scenario)");

    // --- Launcher control connection (delivers the final Shutdown) -------
    let (events_tx, _events_rx) = channel::<NetEvent>();
    let stream = TcpStream::connect(&hub_addr).map_err(|e| format!("connect to hub: {e}"))?;
    let control =
        Connection::spawn(1, stream, events_tx, None).map_err(|e| format!("control conn: {e}"))?;
    control.send(Message::LauncherHello);

    let wa = WorkerArgs {
        duty: 0.3,
        period_ms: 300,
        heartbeat_ms: 200,
    };

    // Shared marker state fed by the stdout pumps.
    let root_result: Arc<Mutex<Option<u64>>> = Arc::new(Mutex::new(None));
    let root_done = Arc::new(AtomicBool::new(false));
    // (tag, remote_ok, served, inter_us) per worker, from exit summaries.
    type StealLines = Arc<Mutex<Vec<(String, u64, u64, u64)>>>;
    let steals: StealLines = Arc::new(Mutex::new(Vec::new()));
    let steal_hook = |tag: String, steals: &StealLines| {
        let steals = Arc::clone(steals);
        move |line: &str| {
            if let Some(parsed) = parse_steals(line) {
                steals.lock().expect("steals list").push((
                    tag.clone(),
                    parsed.0,
                    parsed.1,
                    parsed.2,
                ));
            }
        }
    };

    // --- Root: slow, cluster 0, owns the distributed computation ---------
    let root_metrics = format!("{out}/steal_root_metrics.jsonl");
    let mut tracked: Vec<Tracked> = Vec::new();
    let (root_child, root_joined) = {
        let extra: Vec<String> = [
            "--steal",
            "on",
            "--workload",
            "fib",
            "--root-arg",
            &STEAL_FIB_N.to_string(),
            "--root-depth",
            &STEAL_DEPTH.to_string(),
            "--out",
            &root_metrics,
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let rr = Arc::clone(&root_result);
        let rd = Arc::clone(&root_done);
        let sh = steal_hook("root".to_string(), &steals);
        spawn_worker(
            bin_dir,
            &hub_addr,
            &wa,
            0,
            Some(0.1),
            None,
            &extra,
            "root".to_string(),
            move |line| {
                if let Some(rest) = line.strip_prefix("ROOT_RESULT=") {
                    if let Ok(v) = rest.trim().parse() {
                        *rr.lock().expect("root result") = Some(v);
                    }
                } else if line.starts_with("ROOT_DONE") {
                    rd.store(true, Ordering::Release);
                }
                sh(line);
            },
        )?
    };
    let root_node = root_joined
        .recv_timeout(Duration::from_secs(10))
        .map_err(|_| "root worker never joined".to_string())?;
    tracked.push(Tracked {
        name: format!("root-{root_node}"),
        child: root_child,
    });

    // --- Thieves: full speed, spread over both clusters -------------------
    let mut thief_tags = Vec::new();
    for i in 0..workers - 1 {
        let cluster = (i % 2) as u16; // at least one same- and one cross-cluster thief
        let tag = format!("t{i}c{cluster}");
        let thief_metrics = format!("{out}/steal_thief{i}_metrics.jsonl");
        let extra: Vec<String> = ["--steal", "on", "--out", &thief_metrics]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let (child, joined) = spawn_worker(
            bin_dir,
            &hub_addr,
            &wa,
            cluster,
            None,
            None,
            &extra,
            tag.clone(),
            steal_hook(tag.clone(), &steals),
        )?;
        let node = joined
            .recv_timeout(Duration::from_secs(10))
            .map_err(|_| format!("thief {i} never joined"))?;
        tracked.push(Tracked {
            name: format!("thief-{node}"),
            child,
        });
        thief_tags.push(tag);
    }
    println!("grid-local: root n{root_node} + {} thieves up", workers - 1);

    // --- Wait for the distributed computation, then shut down -------------
    let deadline = Instant::now() + duration;
    while !root_done.load(Ordering::Acquire) && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(50));
    }
    // Let final stats reports drain before tearing the grid down.
    std::thread::sleep(Duration::from_millis(500));
    control.send(Message::Shutdown);

    let mut checks = Checks {
        failures: Vec::new(),
    };

    let reap_deadline = Instant::now() + Duration::from_secs(10);
    let mut orphans = Vec::new();
    tracked.push(Tracked {
        name: "hub".to_string(),
        child: hub_child,
    });
    for t in &mut tracked {
        loop {
            match t.child.try_wait() {
                Ok(Some(_)) => break,
                Ok(None) if Instant::now() > reap_deadline => {
                    let _ = t.child.kill();
                    let _ = t.child.wait();
                    orphans.push(t.name.clone());
                    break;
                }
                Ok(None) => std::thread::sleep(Duration::from_millis(50)),
                Err(e) => return Err(format!("wait for {}: {e}", t.name)),
            }
        }
    }

    checks.assert(
        root_done.load(Ordering::Acquire),
        "root finished the distributed computation before the deadline",
    );
    let expected = sagrid_apps::fib_seq(STEAL_FIB_N);
    let got = *root_result.lock().expect("root result");
    checks.assert(
        got == Some(expected),
        &format!("distributed fib({STEAL_FIB_N}) = {got:?} matches sequential {expected}"),
    );

    let lines = steals.lock().expect("steals list").clone();
    let root_served: u64 = lines
        .iter()
        .filter(|(tag, ..)| tag == "root")
        .map(|&(_, _, served, _)| served)
        .sum();
    let thief_ok: u64 = lines
        .iter()
        .filter(|(tag, ..)| tag != "root")
        .map(|&(_, ok, ..)| ok)
        .sum();
    let thief_inter: u64 = lines
        .iter()
        .filter(|(tag, ..)| tag != "root")
        .map(|&(.., inter)| inter)
        .sum();
    checks.assert(
        root_served > 0,
        &format!("root exported jobs to thieves over the wire (served={root_served})"),
    );
    checks.assert(
        thief_ok > 0,
        &format!("thieves executed jobs stolen from the root process (remote_ok={thief_ok})"),
    );
    checks.assert(
        thief_inter > 0,
        &format!("thief inter_comm was reconstructed from measured wire time ({thief_inter}us)"),
    );
    checks.assert(
        orphans.is_empty(),
        &format!("all children exited after shutdown (orphans: {orphans:?})"),
    );
    checks.assert(
        std::fs::metadata(&root_metrics)
            .map(|m| m.len() > 0)
            .unwrap_or(false),
        "root dumped a non-empty metrics JSONL",
    );

    Ok(checks.failures)
}

/// One synthetic worker inside the churn-soak swarm. `node` is the id the
/// hub granted; `None` until the `JoinAck` lands.
struct SoakClient {
    node: Option<u32>,
}

/// A swarm of protocol-complete synthetic workers multiplexed on ONE
/// client-side [`Reactor`] — the only way to put thousands of concurrent
/// workers in front of the hub on a single box. Each client joins, holds
/// an ~800ms heartbeat cadence (sharded so every turn sends 1/8th of the
/// beats), and is individually disconnectable/reclaimable, which is what
/// the churn and crash waves need.
struct Swarm {
    reactor: Reactor,
    clients: BTreeMap<Token, SoakClient>,
    /// Joins sent whose `JoinAck` has not come back yet.
    pending_join: usize,
    accepted: u64,
    /// Refusal reasons, in arrival order (the blacklist proof reads them).
    refusals: Vec<String>,
    /// Tokens we closed on purpose; their `Closed` events are expected.
    expect_close: BTreeSet<Token>,
    /// Connections the *hub* dropped without us asking — must stay zero:
    /// a healthy hub never hangs up on a live, heartbeating worker.
    unexpected_closes: u64,
    ev: Vec<ReactorEvent>,
    hb_pass: u64,
    last_hb: Instant,
}

impl Swarm {
    fn new() -> Result<Self, Failure> {
        Ok(Self {
            reactor: Reactor::new(&Metrics::disabled())
                .map_err(|e| Failure::Infra(format!("swarm reactor: {e}")))?,
            clients: BTreeMap::new(),
            pending_join: 0,
            accepted: 0,
            refusals: Vec::new(),
            expect_close: BTreeSet::new(),
            unexpected_closes: 0,
            ev: Vec::new(),
            hb_pass: 0,
            last_hb: Instant::now(),
        })
    }

    /// Dials the hub and sends a `Join` (fresh or claiming `claim`). The
    /// ack is collected later by [`Swarm::turn`].
    fn join_one(
        &mut self,
        hub_addr: &str,
        cluster: u16,
        claim: Option<u32>,
    ) -> Result<Token, Failure> {
        let t = self
            .reactor
            .connect(hub_addr)
            .map_err(|e| Failure::Infra(format!("swarm connect: {e}")))?;
        self.reactor.send(
            t,
            &Message::Join {
                cluster: ClusterId(cluster),
                claim: claim.map(NodeId),
            },
        );
        self.clients.insert(t, SoakClient { node: None });
        self.pending_join += 1;
        Ok(t)
    }

    /// Disconnects a client on purpose (its `Closed` becomes expected).
    /// From the hub's view this is exactly what a SIGKILLed worker process
    /// looks like: a clean TCP close followed by heartbeat silence.
    fn drop_client(&mut self, t: Token) {
        self.clients.remove(&t);
        self.expect_close.insert(t);
        self.reactor.close(t);
    }

    /// One event-loop turn: poll, absorb acks/closes, and keep the
    /// heartbeat cadence going. Every wait in the scenario funnels through
    /// here so the swarm never starves while the launcher watches for
    /// something else.
    fn turn(&mut self, wait: Duration) -> Result<(), Failure> {
        self.reactor
            .poll(&mut self.ev, wait)
            .map_err(|e| Failure::Infra(format!("swarm poll: {e}")))?;
        let events: Vec<ReactorEvent> = self.ev.drain(..).collect();
        for ev in events {
            match ev {
                ReactorEvent::Frame(
                    t,
                    Message::JoinAck {
                        node,
                        accepted,
                        reason,
                    },
                ) => {
                    self.pending_join = self.pending_join.saturating_sub(1);
                    if accepted {
                        if let Some(c) = self.clients.get_mut(&t) {
                            c.node = Some(node.0);
                        }
                        self.accepted += 1;
                    } else {
                        self.refusals.push(reason);
                        self.drop_client(t);
                    }
                }
                // Epoch stamps and peer directories are protocol-legal
                // noise for a swarm that runs no steal plane.
                ReactorEvent::Frame(..) => {}
                ReactorEvent::Closed(t) => {
                    if !self.expect_close.remove(&t) && self.clients.remove(&t).is_some() {
                        self.unexpected_closes += 1;
                    }
                }
                ReactorEvent::Accepted(..) | ReactorEvent::Timer(_) => {}
            }
        }
        // Sharded heartbeats: one pass per ~100ms beats token-shard
        // `pass % 8`, so each live client beats about every 800ms against
        // the hub's 3000ms timeout — slow enough to matter at 5000 clients,
        // fast enough that only true silence kills a node.
        if self.last_hb.elapsed() >= Duration::from_millis(100) {
            self.last_hb = Instant::now();
            self.hb_pass = self.hb_pass.wrapping_add(1);
            let shard = self.hb_pass % 8;
            let beats: Vec<(Token, u32)> = self
                .clients
                .iter()
                .filter(|(t, c)| *t % 8 == shard && c.node.is_some())
                .map(|(t, c)| (*t, c.node.expect("filtered")))
                .collect();
            for (t, n) in beats {
                self.reactor
                    .send(t, &Message::Heartbeat { node: NodeId(n) });
            }
        }
        Ok(())
    }

    /// Turns until every outstanding join is answered or the deadline hits.
    fn settle_joins(&mut self, what: &str, deadline: Instant) -> Result<(), Failure> {
        while self.pending_join > 0 {
            if Instant::now() > deadline {
                return Err(Failure::Timeout(format!(
                    "{what}: {} joins still unanswered",
                    self.pending_join
                )));
            }
            self.turn(Duration::from_millis(10))?;
        }
        Ok(())
    }
}

/// The hub process's live OS thread count (`/proc/<pid>/status`). This is
/// the number the whole reactor exists for: it must not scale with the
/// connection count.
fn os_threads_of(pid: u32) -> Option<u64> {
    std::fs::read_to_string(format!("/proc/{pid}/status"))
        .ok()?
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
}

/// The `churn-soak` scenario: the reactor's scale and lifecycle proof.
/// See the module docs for the wave structure.
fn run_churn_soak(
    workers: usize,
    duration: Duration,
    out: &str,
    bin_dir: &Path,
) -> Result<Vec<String>, Failure> {
    const CLUSTERS: usize = 8;
    /// Ceiling on the hub's OS threads at full load. The hub needs one
    /// serve thread; the slack covers runtime helpers, never connections.
    const HUB_THREAD_BOUND: u64 = 16;
    if workers < 64 {
        return Err(Failure::Infra(
            "churn-soak needs at least 64 workers".into(),
        ));
    }
    let overall_deadline = Instant::now() + duration;
    let crash_count = 32.min(workers / 8);
    let churn_count = (workers / 25).clamp(8, 256);
    let grow_count: u32 = 64;
    // Capacity: the initial population, plus ids consumed by blacklisted
    // crash victims, plus room for the grow wave (spread over clusters —
    // budgeted as if one cluster absorbed them all).
    let per_cluster = workers.div_ceil(CLUSTERS) + crash_count + grow_count as usize;

    // --- Hub -------------------------------------------------------------
    let mut hub_child = Command::new(bin_dir.join("sagrid-hub"))
        .args([
            "--port",
            "0",
            "--clusters",
            &CLUSTERS.to_string(),
            "--nodes-per-cluster",
            &per_cluster.to_string(),
            "--heartbeat-timeout-ms",
            "3000",
            "--detect-interval-ms",
            "200",
            "--out",
            out,
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .map_err(|e| Failure::Infra(format!("spawn sagrid-hub: {e}")))?;
    track_child("hub", &hub_child);
    let hub_pid = hub_child.id();
    let (port_tx, port_rx) = channel::<u16>();
    let died: Arc<Mutex<BTreeSet<u32>>> = Arc::new(Mutex::new(BTreeSet::new()));
    {
        let stdout = hub_child.stdout.take().expect("piped stdout");
        let died = Arc::clone(&died);
        pump("hub".to_string(), stdout, move |line| {
            if let Some(rest) = line.strip_prefix("HUB_PORT=") {
                if let Ok(p) = rest.trim().parse() {
                    let _ = port_tx.send(p);
                }
            } else if let Some(rest) = line.strip_prefix("EVENT died ") {
                if let Ok(n) = rest.trim().trim_start_matches('n').parse::<u32>() {
                    died.lock().expect("died set").insert(n);
                }
            }
        });
    }
    let port = port_rx
        .recv_timeout(Duration::from_secs(10))
        .map_err(|_| Failure::Timeout("hub never printed HUB_PORT=".into()))?;
    let hub_addr = format!("127.0.0.1:{port}");
    println!("grid-local: hub on {hub_addr} (churn-soak, {workers} synthetic workers)");

    // --- Launcher control connection (Grow grants, final Shutdown) -------
    let (events_tx, events_rx) = channel::<NetEvent>();
    let stream = TcpStream::connect(&hub_addr)
        .map_err(|e| Failure::Infra(format!("connect to hub: {e}")))?;
    let control = Connection::spawn(1, stream, events_tx, None)
        .map_err(|e| Failure::Infra(format!("control conn: {e}")))?;
    control.send(Message::LauncherHello);

    let mut checks = Checks {
        failures: Vec::new(),
    };

    // --- Wave 0: the join storm ------------------------------------------
    // The listen backlog is 128, so connects go out in paced batches with
    // poll turns between them — the hub accepts and acks while the swarm
    // keeps dialing, exactly how a real fleet arrives.
    let mut swarm = Swarm::new()?;
    let storm_start = Instant::now();
    for i in 0..workers {
        swarm.join_one(&hub_addr, (i % CLUSTERS) as u16, None)?;
        if swarm.pending_join >= 100 {
            while swarm.pending_join >= 100 {
                if Instant::now() > overall_deadline {
                    return Err(Failure::Timeout("join storm stalled".into()));
                }
                swarm.turn(Duration::from_millis(2))?;
            }
        }
    }
    swarm.settle_joins("join storm", overall_deadline)?;
    println!(
        "grid-local: {} workers joined in {:?}",
        swarm.accepted,
        storm_start.elapsed()
    );
    checks.assert(
        swarm.accepted == workers as u64 && swarm.refusals.is_empty(),
        &format!(
            "all {workers} workers joined ({} accepted, {} refused)",
            swarm.accepted,
            swarm.refusals.len()
        ),
    );

    // The tentpole number: thousands of live connections, a flat hub
    // thread count.
    let threads_full = os_threads_of(hub_pid).unwrap_or(u64::MAX);
    checks.assert(
        threads_full <= HUB_THREAD_BOUND,
        &format!(
            "hub serves {} connections on {threads_full} OS threads (bound {HUB_THREAD_BOUND}, \
             independent of worker count)",
            swarm.clients.len()
        ),
    );

    // --- Wave 1: churn — disconnect and reclaim inside the window --------
    // An unexpected close is NOT a death: the node keeps its id as long as
    // it claim-rejoins before heartbeat silence condemns it.
    let churn_victims: Vec<(Token, u32)> = swarm
        .clients
        .iter()
        .filter_map(|(t, c)| c.node.map(|n| (*t, n)))
        .take(churn_count)
        .collect();
    for (t, _) in &churn_victims {
        swarm.drop_client(*t);
    }
    let accepted_before = swarm.accepted;
    for (_, node) in &churn_victims {
        swarm.join_one(&hub_addr, 0, Some(*node))?;
    }
    swarm.settle_joins("churn reclaim", Instant::now() + Duration::from_secs(30))?;
    checks.assert(
        swarm.accepted - accepted_before == churn_victims.len() as u64,
        &format!(
            "all {} churned workers reclaimed their node ids after reconnect",
            churn_victims.len()
        ),
    );

    // --- Wave 2: silent crashes — death by heartbeat timeout -------------
    let crash_victims: Vec<(Token, u32)> = swarm
        .clients
        .iter()
        .filter_map(|(t, c)| c.node.map(|n| (*t, n)))
        .take(crash_count)
        .collect();
    let dead_ids: BTreeSet<u32> = crash_victims.iter().map(|&(_, n)| n).collect();
    for (t, _) in &crash_victims {
        swarm.drop_client(*t);
    }
    // 3000ms of silence + a detect sweep; the rest of the swarm keeps
    // heartbeating through the same turns, proving detection is selective.
    let death_deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let all_dead = dead_ids.is_subset(&died.lock().expect("died set"));
        if all_dead {
            break;
        }
        if Instant::now() > death_deadline {
            return Err(Failure::Timeout(format!(
                "hub never declared all {} silent workers dead (got {:?})",
                dead_ids.len(),
                died.lock().expect("died set")
            )));
        }
        swarm.turn(Duration::from_millis(20))?;
    }
    let died_now = died.lock().expect("died set").clone();
    checks.assert(
        died_now == dead_ids,
        &format!(
            "exactly the {} silent workers were declared dead (no collateral deaths among \
             {} heartbeating survivors)",
            dead_ids.len(),
            swarm.clients.len()
        ),
    );
    // Blacklist proof: a dead node's id must be refused on claim-rejoin.
    let refusals_before = swarm.refusals.len();
    let victim = *dead_ids.iter().next().expect("at least one crash victim");
    swarm.join_one(&hub_addr, 0, Some(victim))?;
    swarm.settle_joins("blacklist probe", Instant::now() + Duration::from_secs(10))?;
    let refusal = swarm
        .refusals
        .get(refusals_before)
        .cloned()
        .unwrap_or_default();
    checks.assert(
        refusal.contains("blacklist"),
        &format!("dead node n{victim} is refused on rejoin (reason: {refusal:?})"),
    );

    // --- Wave 3: grow — launcher-driven capacity grants ------------------
    control.send(Message::Grow {
        count: grow_count,
        prefer: vec![],
        min_uplink_bps: None,
        min_speed: None,
    });
    let mut grants: Vec<(u32, u16)> = Vec::new();
    let grant_deadline = Instant::now() + Duration::from_secs(10);
    while grants.len() < grow_count as usize && Instant::now() < grant_deadline {
        swarm.turn(Duration::from_millis(10))?;
        while let Ok(ev) = events_rx.try_recv() {
            if let NetEvent::Message(_, Message::SpawnWorker { node, cluster }) = ev {
                grants.push((node.0, cluster.0));
            }
        }
    }
    checks.assert(
        grants.len() == grow_count as usize,
        &format!(
            "grow produced {} spawn grants of {grow_count} requested",
            grants.len()
        ),
    );
    let accepted_before = swarm.accepted;
    for &(node, cluster) in &grants {
        swarm.join_one(&hub_addr, cluster, Some(node))?;
    }
    swarm.settle_joins("grow claims", Instant::now() + Duration::from_secs(30))?;
    checks.assert(
        swarm.accepted - accepted_before == grants.len() as u64,
        &format!(
            "every grow grant claim-joined ({} new workers)",
            grants.len()
        ),
    );

    // --- Steady-state dwell, then the flat-thread re-check ---------------
    let dwell_end = Instant::now() + Duration::from_secs(2);
    while Instant::now() < dwell_end {
        swarm.turn(Duration::from_millis(50))?;
    }
    let threads_dwell = os_threads_of(hub_pid).unwrap_or(u64::MAX);
    checks.assert(
        threads_dwell <= HUB_THREAD_BOUND,
        &format!(
            "hub thread count still {threads_dwell} after churn/crash/grow waves \
             ({} live connections)",
            swarm.clients.len()
        ),
    );
    checks.assert(
        swarm.unexpected_closes == 0,
        &format!(
            "the hub never hung up on a live worker (unexpected closes: {})",
            swarm.unexpected_closes
        ),
    );

    // --- Teardown: farewells, shutdown, orphan sweep ----------------------
    let leavers: Vec<(Token, u32)> = swarm
        .clients
        .iter()
        .filter_map(|(t, c)| c.node.map(|n| (*t, n)))
        .collect();
    for &(t, n) in &leavers {
        swarm.reactor.send(t, &Message::Leaving { node: NodeId(n) });
    }
    // Push every farewell onto the wire before the shutdown races them.
    swarm.reactor.drain(Duration::from_secs(5));
    control.send(Message::Shutdown);

    let mut orphans = Vec::new();
    let mut hub_status = None;
    let reap_deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match hub_child.try_wait() {
            Ok(Some(status)) => {
                hub_status = Some(status);
                break;
            }
            Ok(None) if Instant::now() > reap_deadline => {
                let _ = hub_child.kill();
                let _ = hub_child.wait();
                orphans.push("hub".to_string());
                break;
            }
            Ok(None) => std::thread::sleep(Duration::from_millis(50)),
            Err(e) => return Err(Failure::Infra(format!("wait for hub: {e}"))),
        }
    }
    checks.assert(
        orphans.is_empty(),
        &format!("all children exited after shutdown (orphans: {orphans:?})"),
    );
    checks.assert(
        hub_status.map(|s| s.success()).unwrap_or(false),
        &format!("hub exited cleanly ({hub_status:?})"),
    );
    let hub_jsonl = format!("{out}/run_hub.jsonl");
    let body = std::fs::read_to_string(&hub_jsonl).unwrap_or_default();
    checks.assert(
        body.contains("net.reactor.accepts") && body.contains("net.reactor.loop_latency_us"),
        "hub metrics JSONL carries the net.reactor.* instruments",
    );

    Ok(checks.failures)
}

/// Inputs of a `--scenario-file` run.
struct ScenarioArgs {
    path: String,
    /// Real worker processes per layout cluster (the DES node counts
    /// scale down onto this).
    wpc: usize,
    /// Virtual seconds → wall seconds factor (0.01 ⇒ a scenario minute
    /// takes 600 ms of wall time).
    time_scale: f64,
    join_timeout: Duration,
    /// Minimum coordinator decision events the run must emit.
    min_decisions: usize,
    out: String,
    bin_dir: PathBuf,
}

/// One spawned scenario worker and whether it is still a valid
/// perturbation/crash/shrink target.
struct LiveWorker {
    cluster: u16,
    node: u32,
    child: Child,
    /// Crashed or asked to leave — no longer targetable.
    gone: bool,
}

/// Wall-clock tail after the last injection, sized so the coordinator
/// (600 ms period) demonstrably recovers inside the invariant checker's
/// 2 s settle window with room to spare.
const SCENARIO_SETTLE: Duration = Duration::from_millis(6000);

/// Drives a declarative scenario file against real processes: the same
/// events the DES executes are mapped onto `Perturb` fan-outs, SIGKILLs,
/// capacity grants and leave signals, and the run is judged by the same
/// crates/scenario adaptation invariants, from JSONL alone.
fn run_scenario_file(sa: ScenarioArgs) -> Result<Vec<String>, Failure> {
    let text = std::fs::read_to_string(&sa.path).map_err(|e| format!("read {}: {e}", sa.path))?;
    let spec = ScenarioSpec::parse(&text)?;
    let grid = spec.grid.build();
    let mut injections = spec.compile(&grid)?;
    // Stable sort: same-time primitives keep file order (the property
    // scenario 5 — link first, CPUs second — depends on).
    injections.sort_by_key(|s| s.at.0);
    println!(
        "grid-local: scenario \"{}\" — {} events -> {} primitive injections, \
         time scale {}",
        spec.name,
        spec.events.len(),
        injections.len(),
        sa.time_scale,
    );

    // DES node counts scale down to `wpc` processes per cluster: an event
    // hitting n of a cluster's N simulated nodes hits ceil(n·wpc/N) of its
    // wpc real workers.
    let layout_nodes = |cluster: u16| -> usize {
        spec.layout
            .iter()
            .find(|&&(c, _)| c == cluster)
            .map_or(sa.wpc.max(1), |&(_, n)| n.max(1))
    };
    let scale_count = |cluster: u16, n: usize| -> usize {
        let base = layout_nodes(cluster);
        (n * sa.wpc).div_ceil(base).clamp(1, sa.wpc)
    };

    // --- Hub with the scenario grid's clusters ---------------------------
    let mut hub_child = Command::new(sa.bin_dir.join("sagrid-hub"))
        .args([
            "--port",
            "0",
            "--clusters",
            &grid.clusters.len().to_string(),
            "--nodes-per-cluster",
            &(sa.wpc * 2 + 4).to_string(),
            "--heartbeat-timeout-ms",
            "700",
            "--detect-interval-ms",
            "100",
            "--out",
            &sa.out,
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .map_err(|e| format!("spawn sagrid-hub: {e}"))?;
    track_child("hub", &hub_child);
    let (port_tx, port_rx) = channel::<u16>();
    {
        let stdout = hub_child.stdout.take().expect("piped stdout");
        pump("hub".to_string(), stdout, move |line| {
            if let Some(rest) = line.strip_prefix("HUB_PORT=") {
                if let Ok(p) = rest.trim().parse() {
                    let _ = port_tx.send(p);
                }
            }
        });
    }
    let port = port_rx
        .recv_timeout(sa.join_timeout)
        .map_err(|_| Failure::Timeout("hub never printed HUB_PORT=".to_string()))?;
    let hub_addr = format!("127.0.0.1:{port}");
    println!(
        "grid-local: hub on {hub_addr} ({} clusters)",
        grid.clusters.len()
    );

    // --- Coordinator daemon ----------------------------------------------
    let coord_out = format!("{}/scenario_coordinatord.jsonl", sa.out);
    let mut coord_child = Command::new(sa.bin_dir.join("sagrid-coordinatord"))
        .args([
            "--hub",
            &hub_addr,
            "--period-ms",
            "600",
            "--warmup-ms",
            "2500",
            "--out",
            &coord_out,
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .map_err(|e| format!("spawn sagrid-coordinatord: {e}"))?;
    track_child("coordinatord", &coord_child);
    let provenance_ok = Arc::new(AtomicBool::new(false));
    let coord_up = {
        let (tx, rx) = channel::<()>();
        let flag = Arc::clone(&provenance_ok);
        let stdout = coord_child.stdout.take().expect("piped stdout");
        pump("coord".to_string(), stdout, move |line| {
            if line.starts_with("COORDINATOR_UP") {
                let _ = tx.send(());
            } else if line.starts_with("PROVENANCE_OK") {
                flag.store(true, Ordering::Release);
            }
        });
        rx
    };
    coord_up
        .recv_timeout(sa.join_timeout)
        .map_err(|_| Failure::Timeout("coordinator daemon never came up".to_string()))?;
    // The rebasing epoch for injection records: the daemon stamps its
    // decision events relative to its own dial instant, moments before it
    // printed COORDINATOR_UP — the skew is well under the invariant
    // checker's multi-second settle window.
    let coord_epoch = Instant::now();

    // --- Launcher control connection -------------------------------------
    let (events_tx, events_rx) = channel::<NetEvent>();
    let stream = TcpStream::connect(&hub_addr).map_err(|e| format!("connect to hub: {e}"))?;
    let control =
        Connection::spawn(1, stream, events_tx, None).map_err(|e| format!("control conn: {e}"))?;
    control.send(Message::LauncherHello);

    let wa = WorkerArgs {
        duty: 0.4,
        period_ms: 500,
        heartbeat_ms: 100,
    };

    // Grow decisions (the coordinator's or the scenario's) come back as
    // SpawnWorker; apply them by spawning processes claiming the granted
    // node id in the granted cluster.
    let grown: Arc<Mutex<Vec<Tracked>>> = Arc::new(Mutex::new(Vec::new()));
    {
        let (tx, rx) = channel::<NetEvent>();
        let grown = Arc::clone(&grown);
        let bin_dir = sa.bin_dir.clone();
        let hub_addr = hub_addr.clone();
        let wa2 = WorkerArgs { ..wa };
        std::thread::Builder::new()
            .name("grow-handler".to_string())
            .spawn(move || {
                while let Ok(evt) = rx.recv() {
                    if let NetEvent::Message(_, Message::SpawnWorker { node, cluster }) = evt {
                        println!("grid-local: grow -> spawning worker for {node} in {cluster}");
                        if let Ok((child, _)) = spawn_worker(
                            &bin_dir,
                            &hub_addr,
                            &wa2,
                            cluster.0,
                            None,
                            Some(node.0),
                            &[],
                            format!("w{}+", node.0),
                            |_| {},
                        ) {
                            grown.lock().expect("grown list").push(Tracked {
                                name: format!("grown-worker-{}", node.0),
                                child,
                            });
                        }
                    }
                }
            })
            .expect("spawn grow handler");
        std::thread::Builder::new()
            .name("control-events".to_string())
            .spawn(move || {
                while let Ok(evt) = events_rx.recv() {
                    let _ = tx.send(evt);
                }
            })
            .expect("spawn control event forwarder");
    }

    // --- Workers: wpc per layout cluster ---------------------------------
    let mut live: Vec<LiveWorker> = Vec::new();
    for &(cluster, _) in &spec.layout {
        for i in 0..sa.wpc {
            let (child, joined) = spawn_worker(
                &sa.bin_dir,
                &hub_addr,
                &wa,
                cluster,
                None,
                None,
                &[],
                format!("c{cluster}w{i}"),
                |_| {},
            )?;
            let node = joined.recv_timeout(sa.join_timeout).map_err(|_| {
                Failure::Timeout(format!("worker {i} of cluster {cluster} never joined"))
            })?;
            live.push(LiveWorker {
                cluster,
                node,
                child,
                gone: false,
            });
        }
    }
    println!(
        "grid-local: {} workers up across {} clusters",
        live.len(),
        spec.layout.len()
    );

    // --- Timed injection loop --------------------------------------------
    // Each primitive fires at its virtual time scaled to wall clock; the
    // record written for the invariant checker carries the *actual* apply
    // time rebased onto the coordinator's epoch, so injection and decision
    // timestamps share one axis.
    let t0 = Instant::now();
    let mut records: Vec<String> = Vec::new();
    for s in &injections {
        let due = t0 + Duration::from_micros((s.at.0 as f64 * sa.time_scale) as u64);
        if let Some(wait) = due.checked_duration_since(Instant::now()) {
            std::thread::sleep(wait);
        }
        let at_us = Instant::now().duration_since(coord_epoch).as_micros() as u64;
        let mut cluster_field: Option<u16> = None;
        let kind = match s.injection {
            Injection::CpuLoad {
                cluster,
                count,
                factor,
            } => {
                cluster_field = Some(cluster.0);
                control.send(Message::Perturb {
                    cluster,
                    count: count.map_or(0, |n| scale_count(cluster.0, n) as u32),
                    speed: Some((1.0 / factor).clamp(0.05, 1.0)),
                    inter_frac: None,
                });
                "cpu_load"
            }
            Injection::UplinkBandwidth {
                cluster,
                bandwidth_bps,
            } => {
                cluster_field = Some(cluster.0);
                // Map the shaped uplink onto a synthetic inter-cluster wait
                // fraction: full bandwidth ⇒ 0, a starved link ⇒ capped at
                // 0.45 of the period — far beyond the coordinator's 0.08
                // exceptional-overhead threshold.
                let base = grid.clusters[cluster.index()].uplink.bandwidth_bps;
                let frac = (1.0 - bandwidth_bps / base).clamp(0.0, 0.45);
                control.send(Message::Perturb {
                    cluster,
                    count: 0,
                    speed: None,
                    inter_frac: Some(frac),
                });
                "uplink_bandwidth"
            }
            Injection::CrashCluster { cluster } => {
                cluster_field = Some(cluster.0);
                for w in live
                    .iter_mut()
                    .filter(|w| !w.gone && w.cluster == cluster.0)
                {
                    let _ = w.child.kill();
                    let _ = w.child.wait();
                    w.gone = true;
                    println!("grid-local: SIGKILLed n{} ({cluster} site failure)", w.node);
                }
                "crash_cluster"
            }
            Injection::CrashNodes { cluster, count } => {
                cluster_field = Some(cluster.0);
                let n = scale_count(cluster.0, count);
                for w in live
                    .iter_mut()
                    .filter(|w| !w.gone && w.cluster == cluster.0)
                    .take(n)
                {
                    let _ = w.child.kill();
                    let _ = w.child.wait();
                    w.gone = true;
                    println!("grid-local: SIGKILLed n{}", w.node);
                }
                "crash_nodes"
            }
            Injection::Grow { count, prefer } => {
                // An external capacity grant (not a coordinator decision):
                // the hub allocates from the pool and replies SpawnWorker,
                // which the grow handler turns into real processes. The
                // grant is sized against the first layout entry (the
                // preferred cluster may be an empty spare site).
                let base = spec
                    .layout
                    .first()
                    .map_or(sa.wpc.max(1), |&(_, n)| n.max(1));
                control.send(Message::Grow {
                    count: ((count * sa.wpc).div_ceil(base)).max(1) as u32,
                    prefer: prefer.into_iter().collect(),
                    min_uplink_bps: None,
                    min_speed: None,
                });
                "grow"
            }
            Injection::Shrink { cluster, count } => {
                cluster_field = Some(cluster.0);
                let n = scale_count(cluster.0, count);
                for w in live
                    .iter_mut()
                    .filter(|w| !w.gone && w.cluster == cluster.0)
                    .take(n)
                {
                    w.gone = true;
                    control.send(Message::SignalLeave {
                        node: NodeId(w.node),
                    });
                }
                "shrink"
            }
        };
        let mut ev =
            MetricEvent::new(at_us, "injection").with("injection", Value::Str(kind.to_string()));
        if let Some(c) = cluster_field {
            ev = ev.with("cluster", Value::U64(u64::from(c)));
        }
        records.push(ev.to_json());
        println!(
            "grid-local: injected {kind} at +{:.2}s (virtual {:.1}s)",
            t0.elapsed().as_secs_f64(),
            s.at.0 as f64 / 1e6,
        );
    }

    // --- Settle, shut down, reap ------------------------------------------
    std::thread::sleep(SCENARIO_SETTLE);
    control.send(Message::Shutdown);

    let mut checks = Checks {
        failures: Vec::new(),
    };
    let mut all: Vec<Tracked> = Vec::new();
    all.push(Tracked {
        name: "hub".to_string(),
        child: hub_child,
    });
    all.push(Tracked {
        name: "coordinatord".to_string(),
        child: coord_child,
    });
    for w in live {
        all.push(Tracked {
            name: format!("worker-{}", w.node),
            child: w.child,
        });
    }
    all.append(&mut grown.lock().expect("grown list"));
    let reap_deadline = Instant::now() + Duration::from_secs(10);
    let mut orphans = Vec::new();
    for t in &mut all {
        loop {
            match t.child.try_wait() {
                Ok(Some(_)) => break,
                Ok(None) if Instant::now() > reap_deadline => {
                    let _ = t.child.kill();
                    let _ = t.child.wait();
                    orphans.push(t.name.clone());
                    break;
                }
                Ok(None) => std::thread::sleep(Duration::from_millis(50)),
                Err(e) => return Err(Failure::Infra(format!("wait for {}: {e}", t.name))),
            }
        }
    }
    checks.assert(
        orphans.is_empty(),
        &format!("all children exited after shutdown (orphans: {orphans:?})"),
    );
    checks.assert(
        provenance_ok.load(Ordering::Acquire),
        "coordinator self-verified its provenance stream (PROVENANCE_OK)",
    );

    // --- Compose one JSONL stream and judge it ----------------------------
    // Launcher-written injection records + the daemon's decision events,
    // on the shared (coordinator-epoch) time axis. This is the exact
    // artifact shape the DES twin emits, so the same checker runs on both.
    let coord_text =
        std::fs::read_to_string(&coord_out).map_err(|e| format!("read {coord_out}: {e}"))?;
    let mut composed = records.join("\n");
    composed.push('\n');
    composed.push_str(&coord_text);
    let stream_path = format!("{}/scenario_stream.jsonl", sa.out);
    std::fs::write(&stream_path, &composed).map_err(|e| format!("write {stream_path}: {e}"))?;

    let cfg = InvariantConfig {
        recovery_eff: 0.25,
        // Wall-clock settle: must fit inside SCENARIO_SETTLE.
        settle_us: 2_000_000,
        join_delay_us: 0,
        // Decision-only streams carry no membership or teardown-counter
        // records; those invariants are the DES twin's to certify.
        check_membership: false,
        check_conservation: false,
        expected_iterations: None,
    };
    let violations = check_jsonl(&composed, &cfg);
    checks.assert(
        violations.is_empty(),
        "adaptation invariants hold on the composed process-mode stream",
    );
    for v in &violations {
        println!("grid-local: violation {v}");
    }

    // Offline reconstruction of every decision, like the classic scenarios.
    let mut decisions = 0usize;
    for (i, line) in coord_text.lines().enumerate() {
        let value =
            parse_json(line).map_err(|e| format!("{coord_out}:{}: bad JSON: {e}", i + 1))?;
        if value.get("kind").and_then(|k| k.as_str()) == Some("decision") {
            reconstruct_decision(&value).map_err(|e| format!("{coord_out}:{}: {e}", i + 1))?;
            decisions += 1;
        }
    }
    checks.assert(
        decisions >= sa.min_decisions,
        &format!(
            "coordinator emitted at least {} reconstructible decision events (got {decisions})",
            sa.min_decisions
        ),
    );

    Ok(checks.failures)
}

/// The `hub-crash` scenario: the control plane itself fails. A standby hub
/// tails the primary's replication log from the start of the run; once the
/// grid is busy (and one worker has already crashed and been blacklisted
/// on the primary's watch) the launcher SIGKILLs the *primary*. The
/// standby must win the deterministic election, promote in place on its
/// pre-advertised port under a bumped epoch, and serve the replicated
/// state: surviving workers fail over through their `--hub` lists, the
/// blacklisted victim's rejoin is still refused (permanence across the
/// epoch boundary), the peer directory and learned bandwidth arrive
/// without re-measurement, and the coordinator redials and stamps
/// post-failover decisions with the new epoch. The launcher then composes
/// its injection records with the standby's and the coordinator's JSONL
/// and runs the crates/scenario checker over the merged stream, so the
/// takeover is certified from JSONL alone (`hub-failover` invariant:
/// exactly one takeover per injected hub crash).
fn run_hub_crash(
    workers: usize,
    duration: Duration,
    kill_index: u32,
    out: &str,
    bin_dir: &Path,
) -> Result<Vec<String>, Failure> {
    let hub_args = |extra: &[&str]| -> Vec<String> {
        [
            "--port",
            "0",
            "--clusters",
            "1",
            "--nodes-per-cluster",
            &(workers * 2 + 4).to_string(),
            "--heartbeat-timeout-ms",
            "700",
            "--detect-interval-ms",
            "100",
            "--out",
            out,
        ]
        .iter()
        .copied()
        .chain(extra.iter().copied())
        .map(str::to_string)
        .collect()
    };

    // --- Primary hub ------------------------------------------------------
    let mut primary_child = Command::new(bin_dir.join("sagrid-hub"))
        .args(hub_args(&[]))
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .map_err(|e| format!("spawn sagrid-hub: {e}"))?;
    track_child("primary-hub", &primary_child);
    let (port_tx, port_rx) = channel::<u16>();
    let died: Arc<Mutex<BTreeSet<u32>>> = Arc::new(Mutex::new(BTreeSet::new()));
    {
        let died = Arc::clone(&died);
        let stdout = primary_child.stdout.take().expect("piped stdout");
        pump("hub0".to_string(), stdout, move |line| {
            if let Some(rest) = line.strip_prefix("HUB_PORT=") {
                if let Ok(p) = rest.trim().parse() {
                    let _ = port_tx.send(p);
                }
            } else if let Some(rest) = line.strip_prefix("EVENT died n") {
                if let Ok(n) = rest.trim().parse() {
                    died.lock().expect("died set").insert(n);
                }
            }
        });
    }
    let primary_port = port_rx
        .recv_timeout(Duration::from_secs(10))
        .map_err(|_| Failure::Timeout("primary hub never printed HUB_PORT=".to_string()))?;
    let primary_addr = format!("127.0.0.1:{primary_port}");

    // --- Standby hub (replica 1, same cluster geometry) -------------------
    let mut standby_child = Command::new(bin_dir.join("sagrid-hub"))
        .args(hub_args(&[
            "--standby",
            "1",
            "--replicate-from",
            &primary_addr,
        ]))
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .map_err(|e| format!("spawn standby sagrid-hub: {e}"))?;
    track_child("standby-hub", &standby_child);
    let (sport_tx, sport_rx) = channel::<u16>();
    let attached = Arc::new(AtomicBool::new(false));
    let takeover_epoch: Arc<Mutex<Option<u64>>> = Arc::new(Mutex::new(None));
    let standby_joined: Arc<Mutex<BTreeSet<u32>>> = Arc::new(Mutex::new(BTreeSet::new()));
    {
        let attached = Arc::clone(&attached);
        let takeover = Arc::clone(&takeover_epoch);
        let joined = Arc::clone(&standby_joined);
        let stdout = standby_child.stdout.take().expect("piped stdout");
        pump("hub1".to_string(), stdout, move |line| {
            if let Some(rest) = line.strip_prefix("HUB_PORT=") {
                if let Ok(p) = rest.trim().parse() {
                    let _ = sport_tx.send(p);
                }
            } else if line.starts_with("EVENT standby attached") {
                attached.store(true, Ordering::Release);
            } else if let Some(rest) = line.strip_prefix("EVENT takeover epoch=") {
                if let Some(e) = rest.split_whitespace().next().and_then(|v| v.parse().ok()) {
                    *takeover.lock().expect("takeover epoch") = Some(e);
                }
            } else if let Some(rest) = line.strip_prefix("EVENT joined n") {
                if let Ok(n) = rest.trim().parse() {
                    joined.lock().expect("standby joined").insert(n);
                }
            }
        });
    }
    let standby_port = sport_rx
        .recv_timeout(Duration::from_secs(10))
        .map_err(|_| Failure::Timeout("standby hub never printed HUB_PORT=".to_string()))?;
    let standby_addr = format!("127.0.0.1:{standby_port}");
    // Everyone carries the full failover list; the primary is first, so all
    // traffic lands there until it dies.
    let hub_list = format!("{primary_addr},{standby_addr}");
    println!("grid-local: primary {primary_addr}, standby {standby_addr}");

    // The snapshot must be aboard before the grid starts filling the log.
    let attach_deadline = Instant::now() + Duration::from_secs(10);
    while !attached.load(Ordering::Acquire) {
        if Instant::now() > attach_deadline {
            return Err(Failure::Timeout(
                "standby never attached to the primary".to_string(),
            ));
        }
        std::thread::sleep(Duration::from_millis(50));
    }

    // --- Coordinator daemon (dials through the same failover list) --------
    let coord_out = format!("{out}/run_coordinatord.jsonl");
    // The warmup outlasts the whole disruption window (worker crash ~3.5s,
    // hub crash ~5s, takeover ~6s): the adaptation loop judges only the
    // NEW primary's steady state, so a transient efficiency dip during the
    // failover cannot shrink a surviving worker out from under the
    // "all survivors failed over" check.
    let mut coord_child = Command::new(bin_dir.join("sagrid-coordinatord"))
        .args([
            "--hub",
            &hub_list,
            "--period-ms",
            "600",
            "--warmup-ms",
            "8000",
            "--out",
            &coord_out,
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .map_err(|e| format!("spawn sagrid-coordinatord: {e}"))?;
    track_child("coordinatord", &coord_child);
    let provenance_ok = Arc::new(AtomicBool::new(false));
    // Highest hub epoch the daemon reported seeing (from HUB_EPOCH lines):
    // proves post-failover decisions run under the new primary.
    let coord_hub_epoch: Arc<Mutex<u64>> = Arc::new(Mutex::new(0));
    let coord_up = {
        let (tx, rx) = channel::<()>();
        let flag = Arc::clone(&provenance_ok);
        let epoch_seen = Arc::clone(&coord_hub_epoch);
        let stdout = coord_child.stdout.take().expect("piped stdout");
        pump("coord".to_string(), stdout, move |line| {
            if line.starts_with("COORDINATOR_UP") {
                let _ = tx.send(());
            } else if line.starts_with("PROVENANCE_OK") {
                flag.store(true, Ordering::Release);
            } else if let Some(rest) = line.strip_prefix("HUB_EPOCH epoch=") {
                if let Some(e) = rest
                    .split_whitespace()
                    .next()
                    .and_then(|v| v.parse::<u64>().ok())
                {
                    let mut seen = epoch_seen.lock().expect("coord epoch");
                    *seen = (*seen).max(e);
                }
            }
        });
        rx
    };
    coord_up
        .recv_timeout(Duration::from_secs(10))
        .map_err(|_| Failure::Timeout("coordinator daemon never came up".to_string()))?;
    // Injection records rebase onto the daemon's decision axis, exactly as
    // in run_scenario_file.
    let coord_epoch = Instant::now();

    // --- Workers: failover lists, steal plane on ---------------------------
    let wa = WorkerArgs {
        duty: 0.4,
        period_ms: 300,
        heartbeat_ms: 100,
    };
    let extra: Vec<String> = ["--steal", "on"].iter().map(|s| s.to_string()).collect();
    let mut worker_children: Vec<(u32, Child)> = Vec::new();
    for i in 0..workers {
        let (child, joined) = spawn_worker(
            bin_dir,
            &hub_list,
            &wa,
            0,
            None,
            None,
            &extra,
            format!("w{i}"),
            |_| {},
        )?;
        let node = joined
            .recv_timeout(Duration::from_secs(10))
            .map_err(|_| Failure::Timeout(format!("worker {i} never joined")))?;
        worker_children.push((node, child));
    }
    let start = Instant::now();
    println!("grid-local: {workers} workers up on the primary");

    // Let stats reports flow: the first benchmarks replicate as Bandwidth
    // deltas and the steal announcements fill the peer directory, so the
    // standby has real learned state to inherit.
    std::thread::sleep(Duration::from_millis(2000));

    let mut checks = Checks {
        failures: Vec::new(),
    };
    let mut records: Vec<String> = Vec::new();

    // --- Phase 1: a worker crashes on the primary's watch ------------------
    let victim = kill_index;
    let victim_child = worker_children
        .iter_mut()
        .find(|(n, _)| *n == victim)
        .ok_or(format!("no worker holds node id {victim} to kill"))?;
    victim_child.1.kill().map_err(|e| format!("kill: {e}"))?;
    victim_child.1.wait().map_err(|e| format!("reap: {e}"))?;
    records.push(
        MetricEvent::new(coord_epoch.elapsed().as_micros() as u64, "injection")
            .with("injection", Value::Str("crash_nodes".to_string()))
            .with("cluster", Value::U64(0))
            .to_json(),
    );
    println!("grid-local: SIGKILLed worker n{victim}");

    let detect_deadline = Instant::now() + Duration::from_secs(6);
    let detected = loop {
        if died.lock().expect("died set").contains(&victim) {
            break true;
        }
        if Instant::now() > detect_deadline {
            break false;
        }
        std::thread::sleep(Duration::from_millis(50));
    };
    checks.assert(
        detected,
        "primary detected the SIGKILLed worker via heartbeat timeout",
    );
    // Let the blacklist delta reach the standby's log before the primary
    // is allowed to die.
    std::thread::sleep(Duration::from_millis(500));

    // --- Phase 2: the primary itself dies ----------------------------------
    primary_child
        .kill()
        .map_err(|e| format!("kill primary: {e}"))?;
    primary_child
        .wait()
        .map_err(|e| format!("reap primary: {e}"))?;
    records.push(
        MetricEvent::new(coord_epoch.elapsed().as_micros() as u64, "injection")
            .with("injection", Value::Str("crash_hub".to_string()))
            .to_json(),
    );
    println!("grid-local: SIGKILLed the primary hub");

    let takeover_deadline = Instant::now() + Duration::from_secs(10);
    let epoch_won = loop {
        if let Some(e) = *takeover_epoch.lock().expect("takeover epoch") {
            break Some(e);
        }
        if Instant::now() > takeover_deadline {
            break None;
        }
        std::thread::sleep(Duration::from_millis(50));
    };
    checks.assert(
        epoch_won == Some(2),
        &format!("standby won the election and promoted under epoch 2 (got {epoch_won:?})"),
    );

    // --- Phase 3: survivors fail over, the blacklist holds -----------------
    let survivors: BTreeSet<u32> = worker_children
        .iter()
        .map(|(n, _)| *n)
        .filter(|n| *n != victim)
        .collect();
    if epoch_won.is_some() {
        let failover_deadline = Instant::now() + Duration::from_secs(10);
        let rejoined = loop {
            if survivors.is_subset(&standby_joined.lock().expect("standby joined")) {
                break true;
            }
            if Instant::now() > failover_deadline {
                break false;
            }
            std::thread::sleep(Duration::from_millis(50));
        };
        checks.assert(
            rejoined,
            &format!(
                "all {} surviving workers failed over to the standby",
                survivors.len()
            ),
        );

        // The victim's id must stay refused under the NEW epoch: blacklist
        // permanence is exactly what replication exists to guarantee.
        let (mut rejoin_child, _) = spawn_worker(
            bin_dir,
            &standby_addr,
            &wa,
            0,
            None,
            Some(victim),
            &[],
            format!("w{victim}-rejoin"),
            |_| {},
        )?;
        let rejoin_status = {
            let deadline = Instant::now() + Duration::from_secs(10);
            loop {
                match rejoin_child.try_wait() {
                    Ok(Some(status)) => break Some(status),
                    Ok(None) if Instant::now() > deadline => {
                        let _ = rejoin_child.kill();
                        let _ = rejoin_child.wait();
                        break None;
                    }
                    Ok(None) => std::thread::sleep(Duration::from_millis(50)),
                    Err(_) => break None,
                }
            }
        };
        checks.assert(
            rejoin_status.and_then(|s| s.code()) == Some(3),
            "blacklisted victim's rejoin was refused by the NEW primary (epoch 2)",
        );
    }

    // --- Let the adaptation loop settle under the new primary, shut down ---
    let remaining = duration.saturating_sub(start.elapsed());
    std::thread::sleep(remaining);
    // The launcher's shutdown goes to the new primary; the old one is gone.
    let (events_tx, _events_rx) = channel::<NetEvent>();
    match TcpStream::connect(&standby_addr) {
        Ok(stream) => {
            let control = Connection::spawn(1, stream, events_tx, None)
                .map_err(|e| format!("control conn: {e}"))?;
            control.send(Message::LauncherHello);
            control.send(Message::Shutdown);
            // Give the frames a moment to flush before the reap loop below
            // starts judging exits.
            std::thread::sleep(Duration::from_millis(300));
        }
        Err(e) => checks.assert(
            false,
            &format!("could dial the new primary for shutdown: {e}"),
        ),
    }

    let mut all: Vec<Tracked> = vec![
        Tracked {
            name: "standby-hub".to_string(),
            child: standby_child,
        },
        Tracked {
            name: "coordinatord".to_string(),
            child: coord_child,
        },
    ];
    for (n, child) in worker_children {
        all.push(Tracked {
            name: format!("worker-{n}"),
            child,
        });
    }
    let reap_deadline = Instant::now() + Duration::from_secs(10);
    let mut orphans = Vec::new();
    for t in &mut all {
        loop {
            match t.child.try_wait() {
                Ok(Some(_)) => break,
                Ok(None) if Instant::now() > reap_deadline => {
                    let _ = t.child.kill();
                    let _ = t.child.wait();
                    orphans.push(t.name.clone());
                    break;
                }
                Ok(None) => std::thread::sleep(Duration::from_millis(50)),
                Err(e) => return Err(Failure::Infra(format!("wait for {}: {e}", t.name))),
            }
        }
    }
    checks.assert(
        orphans.is_empty(),
        &format!("all children exited after shutdown (orphans: {orphans:?})"),
    );
    checks.assert(
        provenance_ok.load(Ordering::Acquire),
        "coordinator self-verified its provenance stream (PROVENANCE_OK)",
    );
    checks.assert(
        *coord_hub_epoch.lock().expect("coord epoch") >= 2,
        "coordinator observed the bumped hub epoch after failover",
    );

    // --- Judge the takeover from JSONL alone --------------------------------
    // The standby's stream holds the hub_failover event and replica
    // counters; the launcher knows nothing the files don't say.
    let standby_out = format!("{out}/run_hub_standby1.jsonl");
    let standby_text =
        std::fs::read_to_string(&standby_out).map_err(|e| format!("read {standby_out}: {e}"))?;
    let mut takeovers_counter = 0u64;
    let mut failover_event = None;
    for (i, line) in standby_text.lines().enumerate() {
        let value =
            parse_json(line).map_err(|e| format!("{standby_out}:{}: bad JSON: {e}", i + 1))?;
        match value.get("type").and_then(|t| t.as_str()) {
            Some("counter")
                if value.get("name").and_then(|n| n.as_str()) == Some("net.replica.takeovers") =>
            {
                takeovers_counter = value.get("value").and_then(|v| v.as_u64()).unwrap_or(0);
            }
            Some("event") if value.get("kind").and_then(|k| k.as_str()) == Some("hub_failover") => {
                failover_event = Some(value);
            }
            _ => {}
        }
    }
    checks.assert(
        takeovers_counter == 1,
        &format!(
            "standby counted exactly one takeover (net.replica.takeovers={takeovers_counter})"
        ),
    );
    let field = |key: &str| {
        failover_event
            .as_ref()
            .and_then(|v| v.get(key))
            .and_then(|v| v.as_u64())
    };
    checks.assert(
        field("epoch") == Some(2),
        "hub_failover event records the bumped epoch",
    );
    checks.assert(
        field("bandwidth_nodes").is_some_and(|n| n >= 1),
        "learned bandwidth survived the failover without re-measurement",
    );
    checks.assert(
        field("peers").is_some_and(|n| n >= 1),
        "the steal-plane peer directory survived the failover",
    );
    checks.assert(
        failover_event
            .as_ref()
            .and_then(|v| v.get("blacklisted_nodes"))
            .and_then(|v| v.as_arr())
            .is_some_and(|ids| ids.iter().any(|id| id.as_u64() == Some(u64::from(victim)))),
        "the victim's blacklist entry crossed the epoch boundary",
    );

    // Composed stream: launcher injections + the standby hub's events +
    // the coordinator's decisions — the artifact the crates/scenario
    // checker certifies, including the hub-failover invariant (exactly one
    // takeover per injected hub crash, no blacklisted join afterwards).
    let coord_text =
        std::fs::read_to_string(&coord_out).map_err(|e| format!("read {coord_out}: {e}"))?;
    let mut composed = records.join("\n");
    composed.push('\n');
    composed.push_str(&standby_text);
    composed.push_str(&coord_text);
    let stream_path = format!("{out}/hubcrash_stream.jsonl");
    std::fs::write(&stream_path, &composed).map_err(|e| format!("write {stream_path}: {e}"))?;
    let cfg = InvariantConfig {
        recovery_eff: 0.25,
        settle_us: 2_000_000,
        join_delay_us: 0,
        // Membership/conservation are the DES twin's to certify; this
        // composed stream spans two hub processes and the coordinator.
        check_membership: false,
        check_conservation: false,
        expected_iterations: None,
    };
    let violations = check_jsonl(&composed, &cfg);
    checks.assert(
        violations.is_empty(),
        "adaptation + hub-failover invariants hold on the composed stream",
    );
    for v in &violations {
        println!("grid-local: violation {v}");
    }

    Ok(checks.failures)
}

fn run() -> Result<Vec<String>, Failure> {
    let args = Args::parse(
        std::env::args().skip(1),
        &[
            "workers",
            "scenario",
            "scenario-file",
            "workers-per-cluster",
            "time-scale",
            "join-timeout-ms",
            "min-decisions",
            "duration-ms",
            "out",
            "kill-index",
        ],
    )?;
    if let Some(path) = args.get("scenario-file") {
        let path = path.to_string();
        let wpc: usize = args.get_or("workers-per-cluster", 3)?;
        let time_scale: f64 = args.get_or("time-scale", 0.01)?;
        let join_timeout = Duration::from_millis(args.get_or("join-timeout-ms", 10_000u64)?);
        let min_decisions: usize = args.get_or("min-decisions", 1)?;
        let out: String = args.get_or("out", "target/grid_local_out".to_string())?;
        std::fs::create_dir_all(&out).map_err(|e| format!("create {out}: {e}"))?;
        let bin_dir: PathBuf = std::env::current_exe()
            .map_err(|e| format!("current_exe: {e}"))?
            .parent()
            .ok_or_else(|| "current_exe has no parent".to_string())?
            .to_path_buf();
        return run_scenario_file(ScenarioArgs {
            path,
            wpc,
            time_scale,
            join_timeout,
            min_decisions,
            out,
            bin_dir,
        });
    }
    let scenario: String = args.get_or("scenario", "crash".to_string())?;
    if scenario == "churn-soak" {
        // The soak defaults to the headline population; `--workers` scales
        // it down for bounded CI smokes. `--duration-ms` is the overall
        // budget, not a dwell time — the waves finish as fast as they can.
        let workers: usize = args.get_or("workers", 5000)?;
        let duration = Duration::from_millis(args.get_or("duration-ms", 180_000u64)?);
        let out: String = args.get_or("out", "target/grid_local_out".to_string())?;
        std::fs::create_dir_all(&out).map_err(|e| format!("create {out}: {e}"))?;
        let bin_dir: PathBuf = std::env::current_exe()
            .map_err(|e| format!("current_exe: {e}"))?
            .parent()
            .ok_or_else(|| "current_exe has no parent".to_string())?
            .to_path_buf();
        return run_churn_soak(workers, duration, &out, &bin_dir);
    }
    let workers: usize = args.get_or("workers", 4)?;
    let (full, steal, hub_crash) = match scenario.as_str() {
        "crash" => (false, false, false),
        "full" => (true, false, false),
        "steal" => (false, true, false),
        "hub-crash" => (false, false, true),
        other => {
            return Err(Failure::Infra(format!(
                "unknown scenario {other:?} (crash|full|steal|hub-crash|churn-soak)"
            )))
        }
    };
    if workers < 3 {
        return Err(Failure::Infra("need at least 3 workers".to_string()));
    }
    let default_duration = if steal {
        30_000u64
    } else if hub_crash {
        15_000
    } else if full {
        12_000
    } else {
        7_000
    };
    let duration = Duration::from_millis(args.get_or("duration-ms", default_duration)?);
    let out: String = args.get_or("out", "target/grid_local_out".to_string())?;
    let kill_index: u32 = args.get_or("kill-index", 1)?;
    std::fs::create_dir_all(&out).map_err(|e| format!("create {out}: {e}"))?;

    let bin_dir: PathBuf = std::env::current_exe()
        .map_err(|e| format!("current_exe: {e}"))?
        .parent()
        .ok_or_else(|| "current_exe has no parent".to_string())?
        .to_path_buf();

    if steal {
        return run_steal(workers, duration, &out, &bin_dir).map_err(Failure::Infra);
    }
    if hub_crash {
        return run_hub_crash(workers, duration, kill_index, &out, &bin_dir);
    }

    // Full scenario math (defaults: E_MIN 0.30, E_MAX 0.50): healthy duty
    // 0.35 and one slow worker at speed 0.1 give a weighted average of
    // (4·0.35 + 0.1·0.35)/5 ≈ 0.287 < E_MIN, so the coordinator shrinks by
    // exactly one node — the slow one, whose badness (∝ 1/speed) dominates.
    // After its removal the healthy average 0.35 sits inside the band.
    let wa = WorkerArgs {
        duty: if full { 0.35 } else { 0.4 },
        period_ms: if full { 500 } else { 300 },
        heartbeat_ms: 100,
    };

    // --- Hub ------------------------------------------------------------
    let mut hub_child = Command::new(bin_dir.join("sagrid-hub"))
        .args([
            "--port",
            "0",
            "--clusters",
            "1",
            "--nodes-per-cluster",
            &(workers * 2 + 4).to_string(),
            "--heartbeat-timeout-ms",
            "700",
            "--detect-interval-ms",
            "100",
            "--out",
            &out,
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .map_err(|e| format!("spawn sagrid-hub: {e}"))?;
    track_child("hub", &hub_child);
    let (port_tx, port_rx) = channel::<u16>();
    let died: Arc<Mutex<BTreeSet<u32>>> = Arc::new(Mutex::new(BTreeSet::new()));
    {
        let died = Arc::clone(&died);
        let stdout = hub_child.stdout.take().expect("piped stdout");
        pump("hub".to_string(), stdout, move |line| {
            if let Some(rest) = line.strip_prefix("HUB_PORT=") {
                if let Ok(p) = rest.trim().parse() {
                    let _ = port_tx.send(p);
                }
            } else if let Some(rest) = line.strip_prefix("EVENT died n") {
                if let Ok(n) = rest.trim().parse() {
                    died.lock().expect("died set").insert(n);
                }
            }
        });
    }
    let port = port_rx
        .recv_timeout(Duration::from_secs(10))
        .map_err(|_| Failure::Timeout("hub never printed HUB_PORT=".to_string()))?;
    let hub_addr = format!("127.0.0.1:{port}");
    println!("grid-local: hub on {hub_addr}");

    // --- Coordinator daemon ---------------------------------------------
    let coord_out = format!("{out}/run_coordinatord.jsonl");
    let mut coord_child = Command::new(bin_dir.join("sagrid-coordinatord"))
        .args([
            "--hub",
            &hub_addr,
            "--period-ms",
            "600",
            "--warmup-ms",
            if full { "3000" } else { "1500" },
            "--out",
            &coord_out,
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .map_err(|e| format!("spawn sagrid-coordinatord: {e}"))?;
    track_child("coordinatord", &coord_child);
    let provenance_ok = Arc::new(AtomicBool::new(false));
    let coord_up = {
        let (tx, rx) = channel::<()>();
        let flag = Arc::clone(&provenance_ok);
        let stdout = coord_child.stdout.take().expect("piped stdout");
        pump("coord".to_string(), stdout, move |line| {
            if line.starts_with("COORDINATOR_UP") {
                let _ = tx.send(());
            } else if line.starts_with("PROVENANCE_OK") {
                flag.store(true, Ordering::Release);
            }
        });
        rx
    };
    coord_up
        .recv_timeout(Duration::from_secs(10))
        .map_err(|_| Failure::Timeout("coordinator daemon never came up".to_string()))?;

    // --- Launcher control connection (applies grow decisions) -----------
    let (events_tx, events_rx) = channel::<NetEvent>();
    let stream = TcpStream::connect(&hub_addr).map_err(|e| format!("connect to hub: {e}"))?;
    let control =
        Connection::spawn(1, stream, events_tx, None).map_err(|e| format!("control conn: {e}"))?;
    control.send(Message::LauncherHello);

    // Grow decisions come back as SpawnWorker; apply them by spawning real
    // processes that claim the granted node id.
    let grown: Arc<Mutex<Vec<Tracked>>> = Arc::new(Mutex::new(Vec::new()));
    let grow_handler: Sender<NetEvent>;
    {
        let (tx, rx) = channel::<NetEvent>();
        grow_handler = tx;
        let grown = Arc::clone(&grown);
        let bin_dir = bin_dir.clone();
        let hub_addr = hub_addr.clone();
        let wa2 = WorkerArgs { ..wa };
        std::thread::Builder::new()
            .name("grow-handler".to_string())
            .spawn(move || {
                while let Ok(evt) = rx.recv() {
                    if let NetEvent::Message(_, Message::SpawnWorker { node, .. }) = evt {
                        println!("grid-local: grow -> spawning worker for {node}");
                        if let Ok((child, _)) = spawn_worker(
                            &bin_dir,
                            &hub_addr,
                            &wa2,
                            0,
                            None,
                            Some(node.0),
                            &[],
                            format!("w{}+", node.0),
                            |_| {},
                        ) {
                            grown.lock().expect("grown list").push(Tracked {
                                name: format!("grown-worker-{}", node.0),
                                child,
                            });
                        }
                    }
                }
            })
            .expect("spawn grow handler");
    }
    std::thread::Builder::new()
        .name("control-events".to_string())
        .spawn(move || {
            while let Ok(evt) = events_rx.recv() {
                let _ = grow_handler.send(evt);
            }
        })
        .expect("spawn control event forwarder");

    // --- Workers ---------------------------------------------------------
    // In the full scenario the *last* worker is deliberately slow: the
    // paper's overloaded-processor case, which the badness ranking must
    // single out.
    let mut worker_children: Vec<(u32, Child)> = Vec::new();
    for i in 0..workers {
        let slow = full && i == workers - 1;
        let (child, joined) = spawn_worker(
            &bin_dir,
            &hub_addr,
            &wa,
            0,
            slow.then_some(0.1),
            None,
            &[],
            format!("w{i}"),
            |_| {},
        )?;
        let node = joined
            .recv_timeout(Duration::from_secs(10))
            .map_err(|_| Failure::Timeout(format!("worker {i} never joined")))?;
        worker_children.push((node, child));
    }
    let slow_node = full.then(|| worker_children[workers - 1].0);
    let start = Instant::now();
    println!(
        "grid-local: {workers} workers up{}",
        slow_node
            .map(|n| format!(" (slow: n{n})"))
            .unwrap_or_default()
    );

    // --- Crash injection -------------------------------------------------
    std::thread::sleep(Duration::from_millis(1000));
    let victim = kill_index;
    let victim_child = worker_children
        .iter_mut()
        .find(|(n, _)| *n == victim)
        .ok_or(format!("no worker holds node id {victim} to kill"))?;
    victim_child.1.kill().map_err(|e| format!("kill: {e}"))?;
    victim_child.1.wait().map_err(|e| format!("reap: {e}"))?;
    println!("grid-local: SIGKILLed worker n{victim}");

    let mut checks = Checks {
        failures: Vec::new(),
    };

    // The hub must declare the victim dead via missed heartbeats (the
    // closed socket alone is NOT treated as a death).
    let detect_deadline = Instant::now() + Duration::from_secs(6);
    let detected = loop {
        if died.lock().expect("died set").contains(&victim) {
            break true;
        }
        if Instant::now() > detect_deadline {
            break false;
        }
        std::thread::sleep(Duration::from_millis(50));
    };
    checks.assert(
        detected,
        "hub detected the SIGKILLed worker via heartbeat timeout",
    );

    // A blacklisted node id must never rejoin.
    let (mut rejoin_child, _) = spawn_worker(
        &bin_dir,
        &hub_addr,
        &wa,
        0,
        None,
        Some(victim),
        &[],
        format!("w{victim}-rejoin"),
        |_| {},
    )?;
    let rejoin_status = {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            match rejoin_child.try_wait() {
                Ok(Some(status)) => break Some(status),
                Ok(None) if Instant::now() > deadline => {
                    let _ = rejoin_child.kill();
                    let _ = rejoin_child.wait();
                    break None;
                }
                Ok(None) => std::thread::sleep(Duration::from_millis(50)),
                Err(_) => break None,
            }
        }
    };
    checks.assert(
        rejoin_status.and_then(|s| s.code()) == Some(3),
        "rejoin attempt under the blacklisted node id was refused",
    );

    // --- Let the adaptation loop run, then shut everything down ----------
    let remaining = duration.saturating_sub(start.elapsed());
    std::thread::sleep(remaining);
    control.send(Message::Shutdown);

    let mut all: Vec<Tracked> = Vec::new();
    all.push(Tracked {
        name: "hub".to_string(),
        child: hub_child,
    });
    all.push(Tracked {
        name: "coordinatord".to_string(),
        child: coord_child,
    });
    for (n, child) in worker_children {
        all.push(Tracked {
            name: format!("worker-{n}"),
            child,
        });
    }
    all.append(&mut grown.lock().expect("grown list"));

    let reap_deadline = Instant::now() + Duration::from_secs(10);
    let mut orphans = Vec::new();
    for t in &mut all {
        loop {
            match t.child.try_wait() {
                Ok(Some(_)) => break,
                Ok(None) if Instant::now() > reap_deadline => {
                    let _ = t.child.kill();
                    let _ = t.child.wait();
                    orphans.push(t.name.clone());
                    break;
                }
                Ok(None) => std::thread::sleep(Duration::from_millis(50)),
                Err(e) => return Err(Failure::Infra(format!("wait for {}: {e}", t.name))),
            }
        }
    }
    checks.assert(
        orphans.is_empty(),
        &format!("all children exited after shutdown (orphans: {orphans:?})"),
    );
    checks.assert(
        provenance_ok.load(Ordering::Acquire),
        "coordinator self-verified its provenance stream (PROVENANCE_OK)",
    );

    // --- Offline verification of the emitted decision stream -------------
    let text = std::fs::read_to_string(&coord_out).map_err(|e| format!("read {coord_out}: {e}"))?;
    let mut decisions: Vec<DecisionProvenance> = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let value =
            parse_json(line).map_err(|e| format!("{coord_out}:{}: bad JSON: {e}", i + 1))?;
        if value.get("kind").and_then(|k| k.as_str()) == Some("decision") {
            decisions.push(
                reconstruct_decision(&value).map_err(|e| format!("{coord_out}:{}: {e}", i + 1))?,
            );
        }
    }
    checks.assert(
        !decisions.is_empty(),
        "coordinator emitted reconstructible decision events",
    );
    checks.assert(
        decisions
            .last()
            .is_some_and(|d| d.blacklisted_nodes.contains(&NodeId(victim))),
        "crashed node is blacklisted in the final decision entry",
    );
    if let Some(slow) = slow_node {
        let removed = decisions
            .iter()
            .find(|d| d.kind == "remove-nodes" && d.removed.contains(&NodeId(slow)));
        checks.assert(
            removed.is_some(),
            "badness ranking removed the slow worker (remove-nodes decision)",
        );
        checks.assert(
            removed.is_some_and(|d| d.badness.first().is_some_and(|b| b.node == NodeId(slow))),
            "slow worker ranked worst in the removal's badness provenance",
        );
    }

    Ok(checks.failures)
}

fn main() {
    // Hold the reaper across `run()` and drop it explicitly before the
    // `process::exit` calls below: `exit` skips destructors, so every
    // failure path used to leak whatever children the run had spawned
    // (most visibly the hub on the exit-4 timeout path).
    let reaper = ReapGuard;
    let verdict = run();
    drop(reaper);
    match verdict {
        Ok(failures) if failures.is_empty() => {
            println!("grid-local: PASS");
        }
        Ok(failures) => {
            println!("grid-local: FAIL ({} checks)", failures.len());
            std::process::exit(1);
        }
        Err(Failure::Infra(e)) => {
            eprintln!("grid-local: {e}");
            std::process::exit(2);
        }
        Err(Failure::Timeout(e)) => {
            eprintln!("grid-local: timeout: {e}");
            std::process::exit(4);
        }
    }
}
