//! Local process-mode launcher: spawns a hub, a coordinator daemon and N
//! worker processes on loopback, then reproduces the paper's adaptation
//! scenarios over real sockets:
//!
//! * `--scenario crash` — SIGKILLs a worker and verifies the hub's
//!   heartbeat detector declares it dead, the coordinator blacklists it,
//!   and a rejoin attempt under the same node id is refused.
//! * `--scenario full` — additionally starts one deliberately slow worker
//!   (`--speed 0.2`) and verifies the out-of-process coordinator's badness
//!   ranking removes exactly that node, on top of the crash checks.
//!
//! Grow decisions are applied by spawning new worker processes when the hub
//! relays `SpawnWorker`; shrink decisions arrive at workers as leave
//! signals. On exit the launcher asserts every child has terminated (no
//! orphans) and that the coordinator's emitted JSONL decision stream
//! reconstructs through `simgrid::provenance` like an in-process run's.

use sagrid_core::ids::NodeId;
use sagrid_core::json::parse_json;
use sagrid_net::conn::{Connection, NetEvent};
use sagrid_net::wire::Message;
use sagrid_net::Args;
use sagrid_simgrid::provenance::{reconstruct_decision, DecisionProvenance};
use std::collections::BTreeSet;
use std::io::{BufRead, BufReader};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdout, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Tails a child's stdout, tagging every line, and feeds each line to a
/// hook (for machine-parsed markers like `HUB_PORT=` or `JOINED node=`).
fn pump(tag: String, out: ChildStdout, mut hook: impl FnMut(&str) + Send + 'static) {
    std::thread::Builder::new()
        .name(format!("pump-{tag}"))
        .spawn(move || {
            for line in BufReader::new(out).lines() {
                let Ok(line) = line else { break };
                println!("[{tag}] {line}");
                hook(&line);
            }
        })
        .expect("spawn pump thread");
}

struct WorkerArgs {
    duty: f64,
    period_ms: u64,
    heartbeat_ms: u64,
}

/// Spawns a worker process and returns it together with a channel that
/// yields the node id once the worker prints `JOINED node=K`.
fn spawn_worker(
    bin_dir: &Path,
    hub_addr: &str,
    wa: &WorkerArgs,
    speed: Option<f64>,
    claim: Option<u32>,
    tag: String,
) -> Result<(Child, Receiver<u32>), String> {
    let mut cmd = Command::new(bin_dir.join("sagrid-worker"));
    cmd.arg("--hub")
        .arg(hub_addr)
        .arg("--cluster")
        .arg("0")
        .arg("--duty")
        .arg(wa.duty.to_string())
        .arg("--period-ms")
        .arg(wa.period_ms.to_string())
        .arg("--heartbeat-ms")
        .arg(wa.heartbeat_ms.to_string())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit());
    if let Some(s) = speed {
        cmd.arg("--speed").arg(s.to_string());
    }
    if let Some(n) = claim {
        cmd.arg("--claim-node").arg(n.to_string());
    }
    let mut child = cmd
        .spawn()
        .map_err(|e| format!("spawn sagrid-worker: {e}"))?;
    let stdout = child.stdout.take().expect("piped stdout");
    let (tx, rx) = channel();
    pump(tag, stdout, move |line| {
        if let Some(rest) = line.strip_prefix("JOINED node=") {
            if let Ok(n) = rest.trim().parse::<u32>() {
                let _ = tx.send(n);
            }
        }
    });
    Ok((child, rx))
}

/// A spawned child plus what we know about it, for the final orphan sweep.
struct Tracked {
    name: String,
    child: Child,
}

struct Checks {
    failures: Vec<String>,
}

impl Checks {
    fn assert(&mut self, ok: bool, what: &str) {
        if ok {
            println!("CHECK ok: {what}");
        } else {
            println!("CHECK FAILED: {what}");
            self.failures.push(what.to_string());
        }
    }
}

fn run() -> Result<Vec<String>, String> {
    let args = Args::parse(
        std::env::args().skip(1),
        &["workers", "scenario", "duration-ms", "out", "kill-index"],
    )?;
    let workers: usize = args.get_or("workers", 4)?;
    let scenario: String = args.get_or("scenario", "crash".to_string())?;
    let full = match scenario.as_str() {
        "crash" => false,
        "full" => true,
        other => return Err(format!("unknown scenario {other:?} (crash|full)")),
    };
    if workers < 3 {
        return Err("need at least 3 workers".to_string());
    }
    let duration =
        Duration::from_millis(args.get_or("duration-ms", if full { 12_000u64 } else { 7_000u64 })?);
    let out: String = args.get_or("out", "target/grid_local_out".to_string())?;
    let kill_index: u32 = args.get_or("kill-index", 1)?;
    std::fs::create_dir_all(&out).map_err(|e| format!("create {out}: {e}"))?;

    let bin_dir: PathBuf = std::env::current_exe()
        .map_err(|e| format!("current_exe: {e}"))?
        .parent()
        .ok_or("current_exe has no parent")?
        .to_path_buf();

    // Full scenario math (defaults: E_MIN 0.30, E_MAX 0.50): healthy duty
    // 0.35 and one slow worker at speed 0.1 give a weighted average of
    // (4·0.35 + 0.1·0.35)/5 ≈ 0.287 < E_MIN, so the coordinator shrinks by
    // exactly one node — the slow one, whose badness (∝ 1/speed) dominates.
    // After its removal the healthy average 0.35 sits inside the band.
    let wa = WorkerArgs {
        duty: if full { 0.35 } else { 0.4 },
        period_ms: if full { 500 } else { 300 },
        heartbeat_ms: 100,
    };

    // --- Hub ------------------------------------------------------------
    let mut hub_child = Command::new(bin_dir.join("sagrid-hub"))
        .args([
            "--port",
            "0",
            "--clusters",
            "1",
            "--nodes-per-cluster",
            &(workers * 2 + 4).to_string(),
            "--heartbeat-timeout-ms",
            "700",
            "--detect-interval-ms",
            "100",
            "--out",
            &out,
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .map_err(|e| format!("spawn sagrid-hub: {e}"))?;
    let (port_tx, port_rx) = channel::<u16>();
    let died: Arc<Mutex<BTreeSet<u32>>> = Arc::new(Mutex::new(BTreeSet::new()));
    {
        let died = Arc::clone(&died);
        let stdout = hub_child.stdout.take().expect("piped stdout");
        pump("hub".to_string(), stdout, move |line| {
            if let Some(rest) = line.strip_prefix("HUB_PORT=") {
                if let Ok(p) = rest.trim().parse() {
                    let _ = port_tx.send(p);
                }
            } else if let Some(rest) = line.strip_prefix("EVENT died n") {
                if let Ok(n) = rest.trim().parse() {
                    died.lock().expect("died set").insert(n);
                }
            }
        });
    }
    let port = port_rx
        .recv_timeout(Duration::from_secs(10))
        .map_err(|_| "hub never printed HUB_PORT=".to_string())?;
    let hub_addr = format!("127.0.0.1:{port}");
    println!("grid-local: hub on {hub_addr}");

    // --- Coordinator daemon ---------------------------------------------
    let coord_out = format!("{out}/run_coordinatord.jsonl");
    let mut coord_child = Command::new(bin_dir.join("sagrid-coordinatord"))
        .args([
            "--hub",
            &hub_addr,
            "--period-ms",
            "600",
            "--warmup-ms",
            if full { "3000" } else { "1500" },
            "--out",
            &coord_out,
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .map_err(|e| format!("spawn sagrid-coordinatord: {e}"))?;
    let provenance_ok = Arc::new(AtomicBool::new(false));
    let coord_up = {
        let (tx, rx) = channel::<()>();
        let flag = Arc::clone(&provenance_ok);
        let stdout = coord_child.stdout.take().expect("piped stdout");
        pump("coord".to_string(), stdout, move |line| {
            if line.starts_with("COORDINATOR_UP") {
                let _ = tx.send(());
            } else if line.starts_with("PROVENANCE_OK") {
                flag.store(true, Ordering::Release);
            }
        });
        rx
    };
    coord_up
        .recv_timeout(Duration::from_secs(10))
        .map_err(|_| "coordinator daemon never came up".to_string())?;

    // --- Launcher control connection (applies grow decisions) -----------
    let (events_tx, events_rx) = channel::<NetEvent>();
    let stream = TcpStream::connect(&hub_addr).map_err(|e| format!("connect to hub: {e}"))?;
    let control =
        Connection::spawn(1, stream, events_tx, None).map_err(|e| format!("control conn: {e}"))?;
    control.send(Message::LauncherHello);

    // Grow decisions come back as SpawnWorker; apply them by spawning real
    // processes that claim the granted node id.
    let grown: Arc<Mutex<Vec<Tracked>>> = Arc::new(Mutex::new(Vec::new()));
    let grow_handler: Sender<NetEvent>;
    {
        let (tx, rx) = channel::<NetEvent>();
        grow_handler = tx;
        let grown = Arc::clone(&grown);
        let bin_dir = bin_dir.clone();
        let hub_addr = hub_addr.clone();
        let wa2 = WorkerArgs { ..wa };
        std::thread::Builder::new()
            .name("grow-handler".to_string())
            .spawn(move || {
                while let Ok(evt) = rx.recv() {
                    if let NetEvent::Message(_, Message::SpawnWorker { node, .. }) = evt {
                        println!("grid-local: grow -> spawning worker for {node}");
                        if let Ok((child, _)) = spawn_worker(
                            &bin_dir,
                            &hub_addr,
                            &wa2,
                            None,
                            Some(node.0),
                            format!("w{}+", node.0),
                        ) {
                            grown.lock().expect("grown list").push(Tracked {
                                name: format!("grown-worker-{}", node.0),
                                child,
                            });
                        }
                    }
                }
            })
            .expect("spawn grow handler");
    }
    std::thread::Builder::new()
        .name("control-events".to_string())
        .spawn(move || {
            while let Ok(evt) = events_rx.recv() {
                let _ = grow_handler.send(evt);
            }
        })
        .expect("spawn control event forwarder");

    // --- Workers ---------------------------------------------------------
    // In the full scenario the *last* worker is deliberately slow: the
    // paper's overloaded-processor case, which the badness ranking must
    // single out.
    let mut worker_children: Vec<(u32, Child)> = Vec::new();
    for i in 0..workers {
        let slow = full && i == workers - 1;
        let (child, joined) = spawn_worker(
            &bin_dir,
            &hub_addr,
            &wa,
            slow.then_some(0.1),
            None,
            format!("w{i}"),
        )?;
        let node = joined
            .recv_timeout(Duration::from_secs(10))
            .map_err(|_| format!("worker {i} never joined"))?;
        worker_children.push((node, child));
    }
    let slow_node = full.then(|| worker_children[workers - 1].0);
    let start = Instant::now();
    println!(
        "grid-local: {workers} workers up{}",
        slow_node
            .map(|n| format!(" (slow: n{n})"))
            .unwrap_or_default()
    );

    // --- Crash injection -------------------------------------------------
    std::thread::sleep(Duration::from_millis(1000));
    let victim = kill_index;
    let victim_child = worker_children
        .iter_mut()
        .find(|(n, _)| *n == victim)
        .ok_or(format!("no worker holds node id {victim} to kill"))?;
    victim_child.1.kill().map_err(|e| format!("kill: {e}"))?;
    victim_child.1.wait().map_err(|e| format!("reap: {e}"))?;
    println!("grid-local: SIGKILLed worker n{victim}");

    let mut checks = Checks {
        failures: Vec::new(),
    };

    // The hub must declare the victim dead via missed heartbeats (the
    // closed socket alone is NOT treated as a death).
    let detect_deadline = Instant::now() + Duration::from_secs(6);
    let detected = loop {
        if died.lock().expect("died set").contains(&victim) {
            break true;
        }
        if Instant::now() > detect_deadline {
            break false;
        }
        std::thread::sleep(Duration::from_millis(50));
    };
    checks.assert(
        detected,
        "hub detected the SIGKILLed worker via heartbeat timeout",
    );

    // A blacklisted node id must never rejoin.
    let (mut rejoin_child, _) = spawn_worker(
        &bin_dir,
        &hub_addr,
        &wa,
        None,
        Some(victim),
        format!("w{victim}-rejoin"),
    )?;
    let rejoin_status = {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            match rejoin_child.try_wait() {
                Ok(Some(status)) => break Some(status),
                Ok(None) if Instant::now() > deadline => {
                    let _ = rejoin_child.kill();
                    let _ = rejoin_child.wait();
                    break None;
                }
                Ok(None) => std::thread::sleep(Duration::from_millis(50)),
                Err(_) => break None,
            }
        }
    };
    checks.assert(
        rejoin_status.and_then(|s| s.code()) == Some(3),
        "rejoin attempt under the blacklisted node id was refused",
    );

    // --- Let the adaptation loop run, then shut everything down ----------
    let remaining = duration.saturating_sub(start.elapsed());
    std::thread::sleep(remaining);
    control.send(Message::Shutdown);

    let mut all: Vec<Tracked> = Vec::new();
    all.push(Tracked {
        name: "hub".to_string(),
        child: hub_child,
    });
    all.push(Tracked {
        name: "coordinatord".to_string(),
        child: coord_child,
    });
    for (n, child) in worker_children {
        all.push(Tracked {
            name: format!("worker-{n}"),
            child,
        });
    }
    all.append(&mut grown.lock().expect("grown list"));

    let reap_deadline = Instant::now() + Duration::from_secs(10);
    let mut orphans = Vec::new();
    for t in &mut all {
        loop {
            match t.child.try_wait() {
                Ok(Some(_)) => break,
                Ok(None) if Instant::now() > reap_deadline => {
                    let _ = t.child.kill();
                    let _ = t.child.wait();
                    orphans.push(t.name.clone());
                    break;
                }
                Ok(None) => std::thread::sleep(Duration::from_millis(50)),
                Err(e) => return Err(format!("wait for {}: {e}", t.name)),
            }
        }
    }
    checks.assert(
        orphans.is_empty(),
        &format!("all children exited after shutdown (orphans: {orphans:?})"),
    );
    checks.assert(
        provenance_ok.load(Ordering::Acquire),
        "coordinator self-verified its provenance stream (PROVENANCE_OK)",
    );

    // --- Offline verification of the emitted decision stream -------------
    let text = std::fs::read_to_string(&coord_out).map_err(|e| format!("read {coord_out}: {e}"))?;
    let mut decisions: Vec<DecisionProvenance> = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let value =
            parse_json(line).map_err(|e| format!("{coord_out}:{}: bad JSON: {e}", i + 1))?;
        if value.get("kind").and_then(|k| k.as_str()) == Some("decision") {
            decisions.push(
                reconstruct_decision(&value).map_err(|e| format!("{coord_out}:{}: {e}", i + 1))?,
            );
        }
    }
    checks.assert(
        !decisions.is_empty(),
        "coordinator emitted reconstructible decision events",
    );
    checks.assert(
        decisions
            .last()
            .is_some_and(|d| d.blacklisted_nodes.contains(&NodeId(victim))),
        "crashed node is blacklisted in the final decision entry",
    );
    if let Some(slow) = slow_node {
        let removed = decisions
            .iter()
            .find(|d| d.kind == "remove-nodes" && d.removed.contains(&NodeId(slow)));
        checks.assert(
            removed.is_some(),
            "badness ranking removed the slow worker (remove-nodes decision)",
        );
        checks.assert(
            removed.is_some_and(|d| d.badness.first().is_some_and(|b| b.node == NodeId(slow))),
            "slow worker ranked worst in the removal's badness provenance",
        );
    }

    Ok(checks.failures)
}

fn main() {
    match run() {
        Ok(failures) if failures.is_empty() => {
            println!("grid-local: PASS");
        }
        Ok(failures) => {
            println!("grid-local: FAIL ({} checks)", failures.len());
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("grid-local: {e}");
            std::process::exit(2);
        }
    }
}
