//! A process-mode worker: one threaded [`sagrid_runtime`] runtime that
//! joins the hub, heartbeats, runs a divide-and-conquer workload at a
//! configurable duty cycle, and reports its statistics record every
//! monitoring period.
//!
//! With `--steal on` the worker also participates in the wire-level work
//! stealing plane: it binds a steal listener, announces the address to the
//! hub (which broadcasts the peer directory to everyone), and installs a
//! remote-steal hook so idle runtime workers steal serialized jobs from
//! peer processes by CRS — a random same-cluster victim first, then a
//! random victim in another cluster. A worker given `--root-arg` is the
//! root of a distributed computation: it expands the root job into a
//! frontier of independent subjobs, exports them through its steal server
//! while executing its own share, and prints `ROOT_RESULT=<v>` /
//! `ROOT_DONE` once every subjob's value has come home.
//!
//! Exit codes: 0 normal (asked to leave / hub shut down), 2 usage error,
//! 3 join refused (e.g. blacklisted after a crash — the launcher asserts
//! this), 4 could not reach the hub.

use sagrid_apps::{frontier, RemoteJob};
use sagrid_core::ids::{ClusterId, NodeId};
use sagrid_core::metrics::Metrics;
use sagrid_core::stats::{MonitoringReport, OverheadBreakdown};
use sagrid_net::conn::{Connection, NetEvent};
use sagrid_net::steal::{spawn_steal_server, ExportPool, NetStealHook, StealClient, StealMetrics};
use sagrid_net::wire::Message;
use sagrid_net::{Args, Backoff, HubSet};
use sagrid_runtime::{Runtime, RuntimeConfig};
use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

const MAX_CONNECT_ATTEMPTS: u32 = 12;

/// How long an exported job may sit with a thief before the root assumes
/// the thief died and re-pends it.
const RECLAIM_AFTER: Duration = Duration::from_secs(5);

fn connect(hubs: &mut HubSet, backoff: &mut Backoff) -> Result<TcpStream, String> {
    // The attempt budget scales with the hub list: during a failover the
    // dead primary burns one failed dial per rotation, and the standby
    // needs a full heartbeat-timeout of silence before it takes over.
    let budget = MAX_CONNECT_ATTEMPTS * hubs.len() as u32;
    loop {
        match TcpStream::connect(hubs.current()) {
            Ok(s) => return Ok(s),
            Err(e) => {
                if backoff.attempts() >= budget {
                    return Err(format!("cannot reach any hub of {:?}: {e}", hubs.addrs()));
                }
                hubs.advance();
                std::thread::sleep(backoff.next_delay());
            }
        }
    }
}

/// Dials through the hub list, joins (fresh or claiming a specific node
/// id) and waits for the verdict. Returns the connection and the granted
/// node id.
///
/// A refusal whose reason starts with `"standby"` is *transient* — the
/// address answered but is not (yet) the primary — so the worker rotates
/// to the next hub and retries instead of exiting. Every other refusal
/// (e.g. blacklisted after a crash) is fatal: exit 3.
fn join(
    hubs: &mut HubSet,
    cluster: ClusterId,
    claim: Option<NodeId>,
    backoff: &mut Backoff,
    events: &Sender<NetEvent>,
    inbox: &Receiver<NetEvent>,
    next_conn: &mut u64,
) -> Result<(Connection, NodeId), String> {
    let mut soft_refusals = 0u32;
    loop {
        let stream = connect(hubs, backoff)?;
        *next_conn += 1;
        let conn = Connection::spawn(*next_conn, stream, events.clone(), None)
            .map_err(|e| format!("connection setup: {e}"))?;
        conn.send(Message::Join { cluster, claim });
        let deadline = Instant::now() + Duration::from_secs(10);
        // None = the connection dropped before a verdict arrived (a hub
        // torn down mid-dial); treated like a standby refusal below.
        let verdict = loop {
            let left = deadline.saturating_duration_since(Instant::now());
            match inbox.recv_timeout(left) {
                Ok(NetEvent::Message(
                    id,
                    Message::JoinAck {
                        node,
                        accepted,
                        reason,
                    },
                )) if id == conn.id() => break Some((node, accepted, reason)),
                Ok(NetEvent::Closed(id)) if id == conn.id() => break None,
                // Stale events from a previous connection: ignore.
                Ok(_) => continue,
                Err(_) => return Err("timed out waiting for join ack".to_string()),
            }
        };
        match verdict {
            Some((node, true, _)) => {
                backoff.reset();
                return Ok((conn, node));
            }
            Some((_, false, reason)) if reason.starts_with("standby") => {
                println!("JOIN_DEFERRED {reason}");
            }
            Some((_, false, reason)) => {
                println!("JOIN_REFUSED {reason}");
                std::io::stdout().flush().ok();
                std::process::exit(3);
            }
            None => {}
        }
        soft_refusals += 1;
        if soft_refusals > MAX_CONNECT_ATTEMPTS * hubs.len() as u32 {
            return Err("no hub accepted the join (all standby or closing)".to_string());
        }
        hubs.advance();
        std::thread::sleep(backoff.next_delay());
    }
}

/// Reconnects (claiming `node`) through the hub list after a transport
/// drop or a stale-primary disconnect, re-announcing the steal listener
/// once in. `None` means no hub answered — the session is over.
#[allow(clippy::too_many_arguments)]
fn failover(
    hubs: &mut HubSet,
    cluster: ClusterId,
    node: NodeId,
    seed: u64,
    events: &Sender<NetEvent>,
    inbox: &Receiver<NetEvent>,
    next_conn: &mut u64,
    steal_plane: Option<&StealPlane>,
) -> Option<Connection> {
    let mut rb = Backoff::new(
        Duration::from_millis(50),
        Duration::from_millis(250),
        seed ^ 0xdead,
    );
    match join(hubs, cluster, Some(node), &mut rb, events, inbox, next_conn) {
        Ok((conn, n)) => {
            assert_eq!(n, node, "hub re-assigned a claimed id");
            println!("REJOINED node={}", node.0);
            if let Some(plane) = steal_plane {
                // The hub pruned us from the directory if it declared us
                // dead; re-announcing is idempotent.
                conn.send(Message::PeerAnnounce {
                    node,
                    steal_addr: plane.addr.clone(),
                });
            }
            Some(conn)
        }
        Err(_) => None,
    }
}

/// Everything the steal plane hangs onto for the lifetime of the process.
struct StealPlane {
    pool: Arc<ExportPool>,
    client: Arc<StealClient>,
    /// The announced listener address, re-announced after a rejoin.
    addr: String,
}

fn run() -> Result<(), String> {
    let args = Args::parse(
        std::env::args().skip(1),
        &[
            "hub",
            "cluster",
            "claim-node",
            "speed",
            "heartbeat-ms",
            "period-ms",
            "duty",
            "steal",
            "workload",
            "root-arg",
            "root-depth",
            "out",
        ],
    )?;
    // `--hub` takes a comma-separated address list: the primary first,
    // then any standby hubs to fail over to when the primary dies.
    let mut hubs = HubSet::parse(&args.require::<String>("hub")?)?;
    let cluster = ClusterId(args.get_or("cluster", 0u16)?);
    let claim = args
        .get("claim-node")
        .map(|raw| raw.parse::<u32>().map(NodeId))
        .transpose()
        .map_err(|_| "--claim-node: expected a node id".to_string())?;
    let speed: f64 = args.get_or("speed", 1.0)?;
    let heartbeat = Duration::from_millis(args.get_or("heartbeat-ms", 100u64)?);
    let period = Duration::from_millis(args.get_or("period-ms", 500u64)?);
    let duty: f64 = args.get_or("duty", 0.4)?;
    if !(0.05..=1.0).contains(&duty) {
        return Err("--duty must be in [0.05, 1.0]".to_string());
    }
    let steal_on = match args.get("steal").unwrap_or("off") {
        "on" => true,
        "off" => false,
        other => return Err(format!("--steal: expected on|off, got {other:?}")),
    };
    let workload: String = args.get_or("workload", "fib".to_string())?;
    let root_arg: Option<u64> = args
        .get("root-arg")
        .map(|raw| raw.parse())
        .transpose()
        .map_err(|_| "--root-arg: expected a number".to_string())?;
    let root_depth: u32 = args.get_or("root-depth", 8u32)?;
    let metrics_out = args.get("out").map(|s| s.to_string());
    if root_arg.is_some() && !steal_on {
        return Err("--root-arg requires --steal on".to_string());
    }

    let (events_tx, events_rx) = channel::<NetEvent>();
    // Before a node id is granted only the claim (if any) is stable, so the
    // first-join jitter falls back to the pid; once joined, every later
    // failover derives its jitter from the *granted* node id, making the
    // reconnect schedule deterministic per node across the --hub rotation
    // (a respawned worker claiming the same node replays the same delays).
    let join_seed = 0x5eed_0000
        + u64::from(
            claim
                .map(|n| n.0)
                .unwrap_or(u32::from(std::process::id() as u16)),
        );
    let mut backoff = Backoff::new(Duration::from_millis(50), Duration::from_secs(1), join_seed);
    let mut next_conn = 0u64;
    let (mut conn, node) = join(
        &mut hubs,
        cluster,
        claim,
        &mut backoff,
        &events_tx,
        &events_rx,
        &mut next_conn,
    )
    .map_err(|e| {
        // The launcher distinguishes "unreachable" from "refused".
        eprintln!("sagrid-worker: {e}");
        std::process::exit(4);
    })
    .unwrap();
    let seed = 0x5eed_0000 + u64::from(node.0);
    println!("JOINED node={}", node.0);
    std::io::stdout().flush().ok();

    // One local worker thread; the speed knob emulates an overloaded or
    // intrinsically slow machine (it also stretches the benchmark, which is
    // how the coordinator learns the node's relative speed).
    let rt = Arc::new(Runtime::new(RuntimeConfig::single_cluster(1)));
    rt.set_worker_speed(0, speed.clamp(0.05, 1.0));

    // Steal-plane metrics live in a process-wide registry dumped to --out
    // JSONL on exit; with stealing off and no --out the registry is free.
    let metrics = if steal_on || metrics_out.is_some() {
        Metrics::enabled()
    } else {
        Metrics::disabled()
    };

    let steal_plane = if steal_on {
        let pool = Arc::new(ExportPool::new());
        let listener =
            TcpListener::bind("127.0.0.1:0").map_err(|e| format!("bind steal listener: {e}"))?;
        let addr = spawn_steal_server(
            listener,
            Arc::clone(&pool),
            metrics.counter("net.steals.served"),
        )
        .map_err(|e| format!("spawn steal server: {e}"))?
        .to_string();
        let client = Arc::new(StealClient::new(
            node,
            cluster,
            StealMetrics::resolve(&metrics),
        ));
        // Idle runtime workers steal serialized jobs over the wire and run
        // them through the normal spawn/join path, so their busy time is
        // accounted like any local task's.
        rt.set_remote_steal_hook(Arc::new(NetStealHook::new(
            Arc::clone(&client),
            |ctx, payload| {
                let job = RemoteJob::decode(payload).ok()?;
                Some(ctx.spawn(move |ctx| job.execute(ctx)).join(ctx))
            },
        )));
        conn.send(Message::PeerAnnounce {
            node,
            steal_addr: addr.clone(),
        });
        println!("STEAL_ADDR {addr}");
        Some(StealPlane { pool, client, addr })
    } else {
        None
    };

    let stop = Arc::new(AtomicBool::new(false));
    // Duty-cycle sleep multiplier, steered by the feedback loop in the
    // protocol loop below. A root worker spawns no duty workload, so the
    // feedback writes are simply never read.
    let sleep_factor = Arc::new(std::sync::Mutex::new((1.0 - duty) / duty));
    // Scenario-injected synthetic inter-cluster wait, as a fraction of each
    // monitoring period. Set by a `Perturb` from the launcher (via the hub)
    // to emulate a saturated uplink: the report assembly below reclassifies
    // that much idle time as inter_comm, so the cluster's ic overhead rises
    // without its busy fraction moving.
    let mut synth_inter = 0.0f64;

    if let Some(arg) = root_arg {
        // Root of a distributed computation: expand the frontier, export it
        // through the steal pool, execute our own share front-to-back while
        // thieves drain the back, and reassemble the result by addition.
        let plane = steal_plane.as_ref().expect("checked above");
        // Each frontier subjob runs as ONE sequential task wherever it
        // lands: the frontier expansion already provides the parallelism
        // (across processes), and a single task keeps the runtime's speed
        // emulation linear — nested spawn/join inside a slow worker pads
        // every nesting level, compounding the slowdown geometrically.
        let root_job = match workload.as_str() {
            "fib" => RemoteJob::Fib {
                n: arg,
                threshold: u64::MAX,
            },
            "nqueens" => RemoteJob::NQueens {
                n: arg as u32,
                cols: 0,
                d1: 0,
                d2: 0,
                spawn_depth: 0,
            },
            other => return Err(format!("--workload: expected fib|nqueens, got {other:?}")),
        };
        let jobs = frontier(root_job, root_depth);
        for job in &jobs {
            plane.pool.offer(job.encode());
        }
        println!("ROOT_JOBS {}", jobs.len());
        std::io::stdout().flush().ok();
        let pool = Arc::clone(&plane.pool);
        let client = Arc::clone(&plane.client);
        let rt = Arc::clone(&rt);
        let stop = Arc::clone(&stop);
        std::thread::Builder::new()
            .name("root-drive".to_string())
            .spawn(move || {
                // Give thieves a head start: hold off on local execution
                // until at least one peer is in the directory (or a bound
                // elapses), so a fast root on a fast host does not drain
                // the pool before any thief has even joined the grid.
                let t0 = Instant::now();
                while client.peers() == 0
                    && t0.elapsed() < Duration::from_secs(3)
                    && !stop.load(Ordering::Acquire)
                {
                    std::thread::sleep(Duration::from_millis(20));
                }
                std::thread::sleep(Duration::from_millis(200));
                while !stop.load(Ordering::Acquire) {
                    if let Some((id, payload)) = pool.take_local() {
                        if let Ok(job) = RemoteJob::decode(&payload) {
                            let value = rt.run(move |ctx| job.execute(ctx));
                            pool.complete(id, value);
                        }
                    } else if pool.is_done() {
                        println!("ROOT_RESULT={}", pool.sum());
                        println!("ROOT_DONE");
                        std::io::stdout().flush().ok();
                        return;
                    } else {
                        // Jobs are out with thieves; re-pend any whose
                        // thief has gone silent, then wait for results.
                        pool.reclaim_stale(RECLAIM_AFTER);
                        std::thread::sleep(Duration::from_millis(5));
                    }
                }
            })
            .expect("spawn root drive thread");
    } else {
        // Workload thread: bursts of divide-and-conquer work interleaved
        // with sleeps sized so the *measured* busy fraction tracks `duty`.
        // The sleep multiplier is steered by a feedback loop below, because
        // the runtime's accounting does not attribute every idle
        // microsecond (steal-scan time is unaccounted), so an open-loop
        // ratio would overshoot the target.
        let rt = Arc::clone(&rt);
        let stop = Arc::clone(&stop);
        let sleep_factor = Arc::clone(&sleep_factor);
        std::thread::Builder::new()
            .name("worker-load".to_string())
            .spawn(move || {
                while !stop.load(Ordering::Acquire) {
                    let t0 = Instant::now();
                    let _ = rt.run(|ctx| sagrid_apps::fib_par(ctx, 22, 12));
                    let busy = t0.elapsed();
                    let f = *sleep_factor.lock().expect("sleep factor");
                    // Cap so a leave signal is still honoured promptly, but
                    // high enough that slow machines keep the duty ratio.
                    std::thread::sleep(busy.mul_f64(f).min(Duration::from_secs(1)));
                }
            })
            .expect("spawn workload thread");
    }

    // Benchmarking runs on its own thread: on a slow node the probe takes
    // many times longer (that is the point of the speed knob), and blocking
    // the protocol loop on it would starve heartbeats into a false death.
    let bench_micros = Arc::new(AtomicU64::new(0));
    {
        let rt = Arc::clone(&rt);
        let stop = Arc::clone(&stop);
        let bench_micros = Arc::clone(&bench_micros);
        std::thread::Builder::new()
            .name("worker-bench".to_string())
            .spawn(move || {
                while !stop.load(Ordering::Acquire) {
                    if let Some(d) = rt.benchmark_worker(0) {
                        bench_micros.store((d.as_micros() as u64).max(1), Ordering::Release);
                    }
                    std::thread::sleep(period);
                }
            })
            .expect("spawn benchmark thread");
    }

    // Running total of measured cross-process communication time, printed
    // in the STEALS summary on exit (the per-period values flow to the hub
    // as the StatsReport's inter_comm overhead).
    let mut inter_total_us = 0u64;

    // Prints the steal summary and dumps the metrics registry; called on
    // every orderly exit path.
    let finish = |inter_total_us: u64| {
        let report = metrics.report();
        if steal_on {
            println!(
                "STEALS ok={} failed={} served={} inter_us={}",
                report.counter("net.steals.remote_ok"),
                report.counter("net.steals.remote_failed"),
                report.counter("net.steals.served"),
                inter_total_us,
            );
        }
        if let Some(path) = &metrics_out {
            if let Err(e) = std::fs::write(path, report.to_jsonl()) {
                eprintln!("sagrid-worker: write {path}: {e}");
            }
        }
        std::io::stdout().flush().ok();
    };

    let mut last_heartbeat = Instant::now();
    let mut last_report = Instant::now();
    // Highest hub epoch observed; a hub announcing a *lower* one is a
    // stale primary that survived a failover, and we must not follow it.
    let mut hub_epoch = 0u64;
    loop {
        match events_rx.recv_timeout(Duration::from_millis(20)) {
            Ok(NetEvent::Message(_, msg)) => match msg {
                Message::SignalLeave { node: n } if n == node => {
                    conn.send(Message::Leaving { node });
                    // Wait until the writer confirms the farewell actually
                    // reached the socket — a blind sleep raced the writer
                    // thread and sometimes lost the frame on a loaded host.
                    if !conn.flush(Duration::from_secs(2)) {
                        eprintln!("sagrid-worker: farewell flush failed");
                    }
                    println!("LEAVING");
                    stop.store(true, Ordering::Release);
                    finish(inter_total_us);
                    return Ok(());
                }
                Message::Shutdown => {
                    println!("SHUTDOWN");
                    stop.store(true, Ordering::Release);
                    finish(inter_total_us);
                    return Ok(());
                }
                Message::PeerDirectory { peers } => {
                    if let Some(plane) = &steal_plane {
                        plane.client.update_directory(peers);
                        println!("PEERS {}", plane.client.peers());
                    }
                }
                Message::HubEpoch { epoch, leader } => {
                    if epoch > hub_epoch {
                        hub_epoch = epoch;
                        println!("HUB_EPOCH epoch={epoch} leader={leader}");
                        std::io::stdout().flush().ok();
                    } else if epoch < hub_epoch {
                        // A fenced-off stale primary is still feeding us
                        // frames: drop it and fail over through the list.
                        println!("STALE_HUB epoch={epoch} known={hub_epoch}");
                        std::io::stdout().flush().ok();
                        hubs.advance();
                        match failover(
                            &mut hubs,
                            cluster,
                            node,
                            seed,
                            &events_tx,
                            &events_rx,
                            &mut next_conn,
                            steal_plane.as_ref(),
                        ) {
                            Some(c) => conn = c,
                            None => {
                                println!("HUB_GONE");
                                stop.store(true, Ordering::Release);
                                finish(inter_total_us);
                                return Ok(());
                            }
                        }
                    }
                }
                Message::Perturb {
                    speed, inter_frac, ..
                } => {
                    // A scenario perturbation relayed by the hub. Applying
                    // the speed knob live re-paces both the workload and the
                    // benchmark probe, so the coordinator's speed tracker
                    // sees the change within a period or two.
                    if let Some(s) = speed {
                        rt.set_worker_speed(0, s.clamp(0.05, 1.0));
                    }
                    if let Some(f) = inter_frac {
                        synth_inter = f.clamp(0.0, 0.95);
                    }
                    println!(
                        "PERTURBED speed={} inter_frac={}",
                        speed.map_or_else(|| "-".to_string(), |s| format!("{s}")),
                        inter_frac.map_or_else(|| "-".to_string(), |f| format!("{f}")),
                    );
                    std::io::stdout().flush().ok();
                }
                _ => {}
            },
            Ok(NetEvent::Closed(id)) if id == conn.id() => {
                // Transport dropped: reconnect with backoff through the hub
                // list, claiming our node id so the registry treats it as
                // the same member. A dead primary's standby needs a full
                // heartbeat timeout of silence before it takes over, so the
                // rotation keeps trying until the budget runs out. No hub
                // answering means the session is over (a shutdown's RST can
                // outrun the Shutdown frame itself) — a normal exit.
                match failover(
                    &mut hubs,
                    cluster,
                    node,
                    seed,
                    &events_tx,
                    &events_rx,
                    &mut next_conn,
                    steal_plane.as_ref(),
                ) {
                    Some(c) => conn = c,
                    None => {
                        println!("HUB_GONE");
                        stop.store(true, Ordering::Release);
                        finish(inter_total_us);
                        return Ok(());
                    }
                }
            }
            Ok(_) => {}
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => {
                finish(inter_total_us);
                return Ok(());
            }
        }

        if last_heartbeat.elapsed() >= heartbeat {
            last_heartbeat = Instant::now();
            conn.send(Message::Heartbeat { node });
        }
        if last_report.elapsed() >= period {
            last_report = Instant::now();
            let bench = bench_micros.load(Ordering::Acquire);
            let mut breakdown = OverheadBreakdown::default();
            for (r, _) in rt.take_monitoring_reports() {
                breakdown.busy += r.breakdown.busy;
                breakdown.idle += r.breakdown.idle;
                breakdown.intra_comm += r.breakdown.intra_comm;
                breakdown.inter_comm += r.breakdown.inter_comm;
                breakdown.benchmark += r.breakdown.benchmark;
            }
            if synth_inter > 0.0 {
                // Reclassify idle time as inter-cluster wait: the busy
                // fraction (and thus the efficiency term) stays put while
                // the ic-overhead fraction rises to roughly `synth_inter`,
                // which is exactly what a saturated uplink looks like in a
                // monitoring report.
                let synth =
                    ((breakdown.total().0 as f64 * synth_inter) as u64).min(breakdown.idle.0);
                breakdown.idle.0 -= synth;
                breakdown.inter_comm.0 += synth;
            }
            inter_total_us += breakdown.inter_comm.0;
            // Feedback: multiplicatively adjust the sleep multiplier so the
            // measured busy fraction converges onto the duty target.
            let measured = breakdown.busy.fraction_of(breakdown.total());
            if measured > 0.01 {
                let mut f = sleep_factor.lock().expect("sleep factor");
                *f = (*f * (measured / duty).clamp(0.5, 2.0)).clamp(0.05, 50.0);
            }
            let report = MonitoringReport {
                node,
                cluster,
                period_end: rt.now(),
                breakdown,
                // Placeholder: the coordinator recomputes relative speed
                // from the benchmark durations of *all* nodes.
                speed: 1.0,
            };
            // Skip the report until the first benchmark lands: the speed
            // tracker needs a real duration to rank this node.
            if bench > 0 {
                conn.send(Message::StatsReport {
                    report,
                    bench_micros: bench,
                });
            }
        }
    }
}

fn main() {
    if let Err(e) = run() {
        eprintln!("sagrid-worker: {e}");
        std::process::exit(2);
    }
}
