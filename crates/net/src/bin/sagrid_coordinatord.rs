//! The adaptation coordinator, out-of-process.
//!
//! This binary wraps the *unchanged* [`sagrid_adapt::Coordinator`]: stats
//! reports arrive over TCP instead of a function call, and decisions leave
//! as `Grow`/`Shrink` wire messages instead of return values — the
//! Figure-2 flowchart logic itself is byte-for-byte the library version
//! that the in-process runtime and the discrete-event simulation use.
//!
//! Every decision is also emitted as a `"decision"` metric event (via
//! [`sagrid_simgrid::provenance::decision_event`]), so the JSONL stream
//! written at shutdown reconstructs through
//! [`sagrid_simgrid::provenance::reconstruct_decision`] exactly like an
//! in-process run's. The daemon self-verifies this on shutdown and prints
//! `PROVENANCE_OK n=<entries>`.

use sagrid_adapt::{AdaptPolicy, Coordinator, Decision, SpeedTracker};
use sagrid_core::json::parse_json;
use sagrid_core::metrics::{Metrics, Value};
use sagrid_core::time::{SimDuration, SimTime};
use sagrid_net::conn::{Connection, NetEvent};
use sagrid_net::wire::Message;
use sagrid_net::{Args, Backoff, HubSet};
use sagrid_simgrid::provenance::{decision_event, reconstruct_decision};
use std::io::Write;
use std::net::TcpStream;
use std::sync::mpsc::{channel, RecvTimeoutError};
use std::time::{Duration, Instant};

fn run() -> Result<(), String> {
    let args = Args::parse(
        std::env::args().skip(1),
        &["hub", "period-ms", "warmup-ms", "out"],
    )?;
    // Like the worker's, `--hub` takes a comma-separated failover list.
    let hubs = HubSet::parse(&args.require::<String>("hub")?)?;
    let period = Duration::from_millis(args.get_or("period-ms", 600u64)?);
    let warmup = Duration::from_millis(args.get_or("warmup-ms", 0u64)?);
    let out = args.get("out").map(str::to_string);

    let (events_tx, events_rx) = channel::<NetEvent>();
    let mut backoff = Backoff::new(
        Duration::from_millis(50),
        Duration::from_millis(300),
        0xc00d,
    );
    let mut next_conn = 0u64;
    let mut hubs_dial = hubs.clone();
    let mut dial = |next_conn: &mut u64, backoff: &mut Backoff| -> Result<Connection, String> {
        // A standby answers the dial but stays silent (it closes new
        // connections until it wins an election); the Closed event then
        // drives another dial, which rotates onward. Only dials that fail
        // outright burn backoff attempts.
        loop {
            match TcpStream::connect(hubs_dial.current()) {
                Ok(s) => {
                    backoff.reset();
                    *next_conn += 1;
                    let conn = Connection::spawn(*next_conn, s, events_tx.clone(), None)
                        .map_err(|e| format!("connection setup: {e}"))?;
                    conn.send(Message::CoordinatorHello);
                    hubs_dial.advance();
                    return Ok(conn);
                }
                Err(e) => {
                    if backoff.attempts() >= 12 * hubs_dial.len() as u32 {
                        return Err(format!(
                            "cannot reach any hub of {:?}: {e}",
                            hubs_dial.addrs()
                        ));
                    }
                    hubs_dial.advance();
                    std::thread::sleep(backoff.next_delay());
                }
            }
        }
    };
    let mut conn = dial(&mut next_conn, &mut backoff)?;
    println!("COORDINATOR_UP");
    std::io::stdout().flush().ok();

    let metrics = Metrics::enabled();
    let suspect_marked = metrics.counter("adapt.suspect.marked").expect("enabled");
    let suspect_cleared = metrics.counter("adapt.suspect.cleared").expect("enabled");
    let holdfire_decisions = metrics
        .counter("adapt.holdfire.decisions")
        .expect("enabled");
    let mut coordinator = Coordinator::new(AdaptPolicy::default());
    let mut speeds = SpeedTracker::new();
    let mut emitted = 0usize;
    let epoch = Instant::now();
    let started = Instant::now();
    let mut last_eval = Instant::now();
    // Highest hub epoch seen (the hub stamps every CoordinatorHello with
    // one). Carried on every decision event so the JSONL distinguishes
    // pre- from post-failover decisions; a *lower* epoch marks a fenced
    // stale primary and forces a redial through the list.
    let mut hub_epoch = 0u64;

    let shutdown = loop {
        match events_rx.recv_timeout(Duration::from_millis(50)) {
            Ok(NetEvent::Message(_, msg)) => match msg {
                Message::StatsReport {
                    mut report,
                    bench_micros,
                } if !coordinator.blacklisted_nodes().contains(&report.node) => {
                    speeds.record(report.node, SimDuration::from_micros(bench_micros.max(1)));
                    report.speed = speeds.relative_speed(report.node).unwrap_or(1.0);
                    coordinator.record_report(report);
                }
                Message::SuspectNotice { node, suspected } => {
                    // The hub's failure detector crossed (or un-crossed) the
                    // suspicion threshold for this member. Until the verdict
                    // resolves — CrashNotice or a resume — the coordinator
                    // holds fire on shrink decisions.
                    if suspected {
                        coordinator.mark_suspect(node);
                        suspect_marked.inc();
                        println!("SUSPECT_MARKED node={}", node.0);
                    } else if coordinator.clear_suspect(node) {
                        suspect_cleared.inc();
                        println!("SUSPECT_CLEARED node={}", node.0);
                    }
                }
                Message::CrashNotice { node, .. } => {
                    // Single-node fail-stop: blacklist the node, keep its
                    // cluster (the hub reports cluster-wide outages as
                    // individual notices for every member).
                    coordinator.record_crashed(&[node], None);
                    speeds.remove(node);
                    println!("CRASH_RECORDED node={}", node.0);
                }
                Message::HubEpoch { epoch: e, leader } => {
                    if e > hub_epoch {
                        hub_epoch = e;
                        println!("HUB_EPOCH epoch={e} leader={leader}");
                        std::io::stdout().flush().ok();
                    } else if e < hub_epoch {
                        println!("STALE_HUB epoch={e} known={hub_epoch}");
                        std::io::stdout().flush().ok();
                        match dial(&mut next_conn, &mut backoff) {
                            Ok(c) => conn = c,
                            Err(_) => {
                                println!("HUB_GONE");
                                break false;
                            }
                        }
                    }
                }
                Message::Shutdown => break true,
                _ => {}
            },
            Ok(NetEvent::Closed(id)) if id == conn.id() => {
                // Reconnect; a hub that stays unreachable means the session
                // ended (the shutdown RST can outrun the Shutdown frame), so
                // finish up exactly as if Shutdown had arrived.
                match dial(&mut next_conn, &mut backoff) {
                    Ok(c) => conn = c,
                    Err(_) => {
                        println!("HUB_GONE");
                        break false;
                    }
                }
            }
            Ok(_) => {}
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break false,
        }

        if last_eval.elapsed() >= period && started.elapsed() >= warmup {
            last_eval = Instant::now();
            let now = SimTime::from_micros(epoch.elapsed().as_micros() as u64);
            let decision = coordinator.evaluate(now, None);
            match &decision {
                Decision::None => {}
                Decision::Add {
                    count,
                    requirements,
                    prefer,
                } => {
                    conn.send(Message::Grow {
                        count: *count as u32,
                        prefer: prefer.clone(),
                        min_uplink_bps: requirements.min_uplink_bps,
                        min_speed: requirements.min_speed,
                    });
                }
                Decision::RemoveNodes { nodes } => {
                    for n in nodes {
                        speeds.remove(*n);
                        coordinator.node_gone(*n);
                    }
                    conn.send(Message::Shrink {
                        nodes: nodes.clone(),
                        cluster: None,
                    });
                }
                Decision::RemoveCluster { cluster, nodes } => {
                    for n in nodes {
                        speeds.remove(*n);
                        coordinator.node_gone(*n);
                    }
                    conn.send(Message::Shrink {
                        nodes: nodes.clone(),
                        cluster: Some(*cluster),
                    });
                }
                Decision::OpportunisticSwap { .. } => {
                    // Off by default; process mode does not enable it.
                }
            }
            // Emit provenance events for every new log entry, exactly as
            // the in-process engines do.
            for entry in &coordinator.log()[emitted..] {
                // The hub epoch distinguishes pre- from post-failover
                // decisions; reconstruction ignores unknown fields.
                metrics.emit(decision_event(entry).with("hub_epoch", Value::U64(hub_epoch)));
                if entry.hold_fire.is_some() {
                    holdfire_decisions.inc();
                }
                println!(
                    "DECISION kind={} wa={:.3} nodes={} suspects={}",
                    entry.decision.kind(),
                    entry.wa_efficiency,
                    entry.nodes,
                    entry.suspect_ids.len()
                );
            }
            emitted = coordinator.log().len();
        }
    };

    // Self-verify: every emitted decision event must round-trip through
    // the provenance parser back to its in-memory log entry.
    let report = metrics.report();
    let events: Vec<_> = report.events_of_kind("decision").collect();
    if events.len() != coordinator.log().len() {
        return Err(format!(
            "provenance mismatch: {} events vs {} log entries",
            events.len(),
            coordinator.log().len()
        ));
    }
    for (event, entry) in events.iter().zip(coordinator.log()) {
        let json = parse_json(&event.to_json())
            .map_err(|e| format!("emitted decision does not re-parse: {e}"))?;
        let prov = reconstruct_decision(&json)?;
        if !prov.matches(entry) {
            return Err(format!(
                "provenance mismatch at t={:?}: {:?}",
                entry.at, entry.decision
            ));
        }
    }
    println!("PROVENANCE_OK n={}", events.len());

    if let Some(path) = out {
        if let Some(dir) = std::path::Path::new(&path).parent() {
            std::fs::create_dir_all(dir).map_err(|e| format!("create {dir:?}: {e}"))?;
        }
        std::fs::write(&path, report.to_jsonl()).map_err(|e| format!("write {path}: {e}"))?;
    }
    let _ = shutdown;
    Ok(())
}

fn main() {
    if let Err(e) = run() {
        eprintln!("sagrid-coordinatord: {e}");
        std::process::exit(1);
    }
}
