//! The hub binary: registry + resource pool over TCP.
//!
//! Prints `HUB_PORT=<port>` on stdout once bound (machine-parsed by
//! `grid-local`), then `EVENT joined/left/died <node>` lines as membership
//! changes, and writes a `run_hub.jsonl` metrics stream on shutdown.
//!
//! With `--standby <id> --replicate-from <addr>` the binary starts as a
//! *standby* hub instead: it binds its port immediately (so workers can be
//! pointed at it from the start; joins are refused with a `"standby"`
//! reason until a takeover), tails the primary's replication log, and on
//! primary death runs the deterministic election. If it wins it promotes
//! in place — same listener, same port — seeded from the replicated state,
//! serving under a bumped hub epoch. Standby metrics land in
//! `run_hub_standby<id>.jsonl`.

use sagrid_core::metrics::Metrics;
use sagrid_net::{run_standby, Args, Hub, HubConfig, StandbyConfig, StandbyOutcome};
use std::io::Write;
use std::net::TcpListener;
use std::time::Duration;

fn write_report(out: Option<&str>, file: &str, metrics: &Metrics) -> Result<(), String> {
    if let Some(dir) = out {
        std::fs::create_dir_all(dir).map_err(|e| format!("create {dir}: {e}"))?;
        let path = format!("{dir}/{file}");
        std::fs::write(&path, metrics.report().to_jsonl())
            .map_err(|e| format!("write {path}: {e}"))?;
    }
    Ok(())
}

fn run() -> Result<(), String> {
    let args = Args::parse(
        std::env::args().skip(1),
        &[
            "port",
            "clusters",
            "nodes-per-cluster",
            "heartbeat-timeout-ms",
            "detect-interval-ms",
            "out",
            "standby",
            "replicate-from",
            "advertise",
        ],
    )?;
    let port: u16 = args.get_or("port", 0)?;
    let cfg = HubConfig {
        clusters: args.get_or("clusters", 2usize)?,
        nodes_per_cluster: args.get_or("nodes-per-cluster", 32usize)?,
        heartbeat_timeout: Duration::from_millis(args.get_or("heartbeat-timeout-ms", 2000u64)?),
        detect_interval: Duration::from_millis(args.get_or("detect-interval-ms", 200u64)?),
    };
    let out = args.get("out").map(str::to_string);

    if let Some(replica_id) = args.get("standby") {
        let replica_id: u32 = replica_id
            .parse()
            .map_err(|_| format!("--standby: cannot parse {replica_id:?}"))?;
        if replica_id == 0 {
            return Err("--standby id must be nonzero (0 is the original primary)".into());
        }
        let primary: String = args.require("replicate-from")?;
        // Bind up front: workers can carry this address in their hub list
        // from the very start of the run.
        let listener = TcpListener::bind(format!("127.0.0.1:{port}"))
            .map_err(|e| format!("bind failed: {e}"))?;
        let bound = listener
            .local_addr()
            .map_err(|e| format!("local_addr: {e}"))?
            .port();
        println!("HUB_PORT={bound}");
        std::io::stdout().flush().ok();
        let advertise = args
            .get("advertise")
            .map(str::to_string)
            .unwrap_or_else(|| format!("127.0.0.1:{bound}"));

        let metrics = Metrics::enabled();
        let standby_cfg = StandbyConfig {
            replica_id,
            primary,
            advertise,
            heartbeat_timeout: cfg.heartbeat_timeout,
            detect_interval: cfg.detect_interval,
        };
        let report = format!("run_hub_standby{replica_id}.jsonl");
        // The standby reactor owns the listener (refusing walk-in joins)
        // for its whole tailing life and hands it back with the outcome.
        match run_standby(listener, &standby_cfg, &metrics).map_err(|e| format!("standby: {e}"))? {
            (StandbyOutcome::Takeover(takeover), listener) => {
                // Promote in place: serve the replicated state on the same
                // listener under the bumped epoch.
                let hub = Hub::from_listener(listener, cfg, metrics.clone())
                    .with_takeover(takeover, replica_id);
                let metrics = hub.run();
                write_report(out.as_deref(), &report, &metrics)?;
            }
            (StandbyOutcome::Shutdown, _) => {
                // Graceful deployment shutdown while still standby: the
                // JSONL still records the replication tail.
                write_report(out.as_deref(), &report, &metrics)?;
            }
        }
        return Ok(());
    }

    let hub = Hub::bind(&format!("127.0.0.1:{port}"), cfg, Metrics::enabled())
        .map_err(|e| format!("bind failed: {e}"))?;
    println!("HUB_PORT={}", hub.port());
    std::io::stdout().flush().ok();

    let metrics = hub.run();
    write_report(out.as_deref(), "run_hub.jsonl", &metrics)?;
    Ok(())
}

fn main() {
    if let Err(e) = run() {
        eprintln!("sagrid-hub: {e}");
        std::process::exit(2);
    }
}
