//! The hub binary: registry + resource pool over TCP.
//!
//! Prints `HUB_PORT=<port>` on stdout once bound (machine-parsed by
//! `grid-local`), then `EVENT joined/left/died <node>` lines as membership
//! changes, and writes a `run_hub.jsonl` metrics stream on shutdown.

use sagrid_core::metrics::Metrics;
use sagrid_net::{Args, Hub, HubConfig};
use std::io::Write;
use std::time::Duration;

fn run() -> Result<(), String> {
    let args = Args::parse(
        std::env::args().skip(1),
        &[
            "port",
            "clusters",
            "nodes-per-cluster",
            "heartbeat-timeout-ms",
            "detect-interval-ms",
            "out",
        ],
    )?;
    let port: u16 = args.get_or("port", 0)?;
    let cfg = HubConfig {
        clusters: args.get_or("clusters", 2usize)?,
        nodes_per_cluster: args.get_or("nodes-per-cluster", 32usize)?,
        heartbeat_timeout: Duration::from_millis(args.get_or("heartbeat-timeout-ms", 2000u64)?),
        detect_interval: Duration::from_millis(args.get_or("detect-interval-ms", 200u64)?),
    };
    let out = args.get("out").map(str::to_string);

    let hub = Hub::bind(&format!("127.0.0.1:{port}"), cfg, Metrics::enabled())
        .map_err(|e| format!("bind failed: {e}"))?;
    println!("HUB_PORT={}", hub.port());
    std::io::stdout().flush().ok();

    let metrics = hub.run();
    if let Some(dir) = out {
        std::fs::create_dir_all(&dir).map_err(|e| format!("create {dir}: {e}"))?;
        let path = format!("{dir}/run_hub.jsonl");
        std::fs::write(&path, metrics.report().to_jsonl())
            .map_err(|e| format!("write {path}: {e}"))?;
    }
    Ok(())
}

fn main() {
    if let Err(e) = run() {
        eprintln!("sagrid-hub: {e}");
        std::process::exit(2);
    }
}
