//! Replication log and materialised control-plane state.
//!
//! The primary hub appends one [`ReplicaOp`] to its [`RepLog`] for every
//! control-plane transition (join, leave, death, blacklist, peer-directory
//! change, learned-bandwidth update, replica attach) and fans the op out to
//! every attached standby as a [`crate::wire::Message::StateDelta`]. A
//! standby materialises the stream into a [`ControlState`] — byte-equivalent
//! to the primary's own copy by construction, because the primary applies
//! every op through the *same* [`ControlState::apply`] before broadcasting
//! it. Byte equivalence is checkable via [`ControlState::canonical_bytes`]
//! (a stable, sorted encoding) or its FNV-1a [`ControlState::digest`].
//!
//! What is replicated: membership phases, both blacklists, the steal-plane
//! peer directory, the last learned speed-benchmark per node, and the
//! standby set itself (id → advertised address, so surviving standbys can
//! find the election winner). What is *not* replicated: live socket state,
//! pending spawn grants and in-flight statistics — a new primary recovers
//! those from worker reconnects, which re-claim ids and re-announce steal
//! listeners through the ordinary join path.

use crate::wire::PeerInfo;
use sagrid_core::ids::{ClusterId, NodeId};
use std::collections::{BTreeMap, BTreeSet};

/// Replicated view of a member's lifecycle phase (mirrors
/// `sagrid_registry::MemberState`, but owned by the wire layer so the codec
/// has a stable byte mapping).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemberPhase {
    /// Participating in the computation.
    Alive,
    /// Signalled out; still alive until it confirms.
    Leaving,
    /// Left gracefully (may re-join later).
    Left,
    /// Declared dead by the failure detector.
    Dead,
}

impl MemberPhase {
    /// Stable wire byte for the phase.
    pub fn to_byte(self) -> u8 {
        match self {
            MemberPhase::Alive => 0,
            MemberPhase::Leaving => 1,
            MemberPhase::Left => 2,
            MemberPhase::Dead => 3,
        }
    }

    /// Inverse of [`MemberPhase::to_byte`]; `None` for unknown bytes.
    pub fn from_byte(b: u8) -> Option<MemberPhase> {
        match b {
            0 => Some(MemberPhase::Alive),
            1 => Some(MemberPhase::Leaving),
            2 => Some(MemberPhase::Left),
            3 => Some(MemberPhase::Dead),
            _ => None,
        }
    }
}

/// One replicated control-plane transition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReplicaOp {
    /// A node joined (fresh join or hub-requested spawn claim).
    Join {
        /// The joining node.
        node: NodeId,
        /// Its cluster.
        cluster: ClusterId,
    },
    /// A node left gracefully.
    Leave {
        /// The departing node.
        node: NodeId,
    },
    /// The failure detector declared a node dead.
    Death {
        /// The dead node.
        node: NodeId,
    },
    /// A node was blacklisted (death or shrink removal).
    BlacklistNode {
        /// The blacklisted node.
        node: NodeId,
    },
    /// An entire cluster was blacklisted (cluster shrink).
    BlacklistCluster {
        /// The blacklisted cluster.
        cluster: ClusterId,
    },
    /// Full steal-plane peer directory snapshot (the directory already
    /// travels to workers as idempotent snapshots; replicas get the same).
    PeerDir {
        /// Every known peer.
        peers: Vec<PeerInfo>,
    },
    /// The last learned speed-benchmark duration for a node changed.
    Bandwidth {
        /// The measured node.
        node: NodeId,
        /// Benchmark duration in microseconds.
        bench_micros: u64,
    },
    /// A standby hub attached (its id and where it can be dialled, so the
    /// whole standby set can find the election winner after a failover).
    ReplicaJoined {
        /// The standby's replica id (primary is implicitly 0).
        replica: u32,
        /// `host:port` the standby will serve on after a takeover.
        addr: String,
    },
}

/// Flat, wire-friendly form of a [`ControlState`] (sorted vectors; travels
/// in [`crate::wire::Message::StateSnapshot`]).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ControlSnapshot {
    /// Every known member with its cluster and phase, ascending by node.
    pub members: Vec<(NodeId, ClusterId, MemberPhase)>,
    /// Blacklisted nodes, ascending.
    pub blacklisted_nodes: Vec<NodeId>,
    /// Blacklisted clusters, ascending.
    pub blacklisted_clusters: Vec<ClusterId>,
    /// Steal-plane peer directory, ascending by node.
    pub peers: Vec<PeerInfo>,
    /// Last learned benchmark per node (microseconds), ascending by node.
    pub bandwidth: Vec<(NodeId, u64)>,
    /// Attached standby hubs: replica id → advertised address, ascending.
    pub replicas: Vec<(u32, String)>,
}

/// Materialised control-plane state — the thing a standby must hold a
/// byte-equivalent copy of to take over without losing blacklist
/// permanence or learned bandwidth.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ControlState {
    /// Member → (cluster, phase).
    pub members: BTreeMap<NodeId, (ClusterId, MemberPhase)>,
    /// Nodes that may never rejoin.
    pub blacklisted_nodes: BTreeSet<NodeId>,
    /// Clusters that may never be granted from again.
    pub blacklisted_clusters: BTreeSet<ClusterId>,
    /// Steal-plane peer directory.
    pub peers: BTreeMap<NodeId, PeerInfo>,
    /// Last learned benchmark per node (microseconds).
    pub bandwidth: BTreeMap<NodeId, u64>,
    /// Standby set: replica id → advertised address.
    pub replicas: BTreeMap<u32, String>,
}

impl ControlState {
    /// Applies one op. Idempotent where the op semantics allow (blacklist
    /// inserts, directory snapshots), last-writer-wins elsewhere — the
    /// primary serialises ops, so a replica applying them in log order
    /// converges exactly.
    pub fn apply(&mut self, op: &ReplicaOp) {
        match op {
            ReplicaOp::Join { node, cluster } => {
                self.members.insert(*node, (*cluster, MemberPhase::Alive));
            }
            ReplicaOp::Leave { node } => {
                if let Some(m) = self.members.get_mut(node) {
                    m.1 = MemberPhase::Left;
                }
            }
            ReplicaOp::Death { node } => {
                if let Some(m) = self.members.get_mut(node) {
                    m.1 = MemberPhase::Dead;
                }
            }
            ReplicaOp::BlacklistNode { node } => {
                self.blacklisted_nodes.insert(*node);
            }
            ReplicaOp::BlacklistCluster { cluster } => {
                self.blacklisted_clusters.insert(*cluster);
            }
            ReplicaOp::PeerDir { peers } => {
                self.peers = peers.iter().map(|p| (p.node, p.clone())).collect();
            }
            ReplicaOp::Bandwidth { node, bench_micros } => {
                self.bandwidth.insert(*node, *bench_micros);
            }
            ReplicaOp::ReplicaJoined { replica, addr } => {
                self.replicas.insert(*replica, addr.clone());
            }
        }
    }

    /// Flattens into the wire snapshot form (sorted by construction —
    /// `BTreeMap` iteration order).
    pub fn snapshot(&self) -> ControlSnapshot {
        ControlSnapshot {
            members: self.members.iter().map(|(&n, &(c, p))| (n, c, p)).collect(),
            blacklisted_nodes: self.blacklisted_nodes.iter().copied().collect(),
            blacklisted_clusters: self.blacklisted_clusters.iter().copied().collect(),
            peers: self.peers.values().cloned().collect(),
            bandwidth: self.bandwidth.iter().map(|(&n, &b)| (n, b)).collect(),
            replicas: self.replicas.iter().map(|(&r, a)| (r, a.clone())).collect(),
        }
    }

    /// Rebuilds the materialised state from a wire snapshot.
    pub fn from_snapshot(s: &ControlSnapshot) -> ControlState {
        ControlState {
            members: s.members.iter().map(|&(n, c, p)| (n, (c, p))).collect(),
            blacklisted_nodes: s.blacklisted_nodes.iter().copied().collect(),
            blacklisted_clusters: s.blacklisted_clusters.iter().copied().collect(),
            peers: s.peers.iter().map(|p| (p.node, p.clone())).collect(),
            bandwidth: s.bandwidth.iter().copied().collect(),
            replicas: s.replicas.iter().cloned().collect(),
        }
    }

    /// Stable byte encoding (the snapshot's canonical little-endian layout).
    /// Two states are byte-equivalent iff these vectors are equal.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let s = self.snapshot();
        let mut out = Vec::with_capacity(64);
        out.extend_from_slice(&(s.members.len() as u32).to_le_bytes());
        for (n, c, p) in &s.members {
            out.extend_from_slice(&n.0.to_le_bytes());
            out.extend_from_slice(&c.0.to_le_bytes());
            out.push(p.to_byte());
        }
        out.extend_from_slice(&(s.blacklisted_nodes.len() as u32).to_le_bytes());
        for n in &s.blacklisted_nodes {
            out.extend_from_slice(&n.0.to_le_bytes());
        }
        out.extend_from_slice(&(s.blacklisted_clusters.len() as u32).to_le_bytes());
        for c in &s.blacklisted_clusters {
            out.extend_from_slice(&c.0.to_le_bytes());
        }
        out.extend_from_slice(&(s.peers.len() as u32).to_le_bytes());
        for p in &s.peers {
            out.extend_from_slice(&p.node.0.to_le_bytes());
            out.extend_from_slice(&p.cluster.0.to_le_bytes());
            out.extend_from_slice(&(p.steal_addr.len() as u32).to_le_bytes());
            out.extend_from_slice(p.steal_addr.as_bytes());
        }
        out.extend_from_slice(&(s.bandwidth.len() as u32).to_le_bytes());
        for (n, b) in &s.bandwidth {
            out.extend_from_slice(&n.0.to_le_bytes());
            out.extend_from_slice(&b.to_le_bytes());
        }
        out.extend_from_slice(&(s.replicas.len() as u32).to_le_bytes());
        for (r, a) in &s.replicas {
            out.extend_from_slice(&r.to_le_bytes());
            out.extend_from_slice(&(a.len() as u32).to_le_bytes());
            out.extend_from_slice(a.as_bytes());
        }
        out
    }

    /// FNV-1a over [`ControlState::canonical_bytes`] — a cheap equivalence
    /// check that fits in a JSONL event field.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.canonical_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

/// The primary's replication log: a monotonically increasing offset per
/// appended op and per-replica acknowledgement high-water marks. Ops are
/// not retained — a late-attaching replica gets a fresh snapshot at the
/// current offset instead of a history replay.
#[derive(Clone, Debug)]
pub struct RepLog {
    next_offset: u64,
    acked: BTreeMap<u32, u64>,
}

impl RepLog {
    /// An empty log at offset 0.
    pub fn new() -> RepLog {
        RepLog {
            next_offset: 0,
            acked: BTreeMap::new(),
        }
    }

    /// Records one appended op and returns its offset.
    pub fn append(&mut self) -> u64 {
        let off = self.next_offset;
        self.next_offset += 1;
        off
    }

    /// Offset the next op will get (== number of ops appended so far).
    pub fn offset(&self) -> u64 {
        self.next_offset
    }

    /// Records a replica's acknowledgement high-water mark.
    pub fn ack(&mut self, replica: u32, offset: u64) {
        let e = self.acked.entry(replica).or_insert(0);
        *e = (*e).max(offset);
    }

    /// The highest offset a replica has acknowledged (0 if never).
    pub fn acked(&self, replica: u32) -> u64 {
        self.acked.get(&replica).copied().unwrap_or(0)
    }
}

impl Default for RepLog {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn peer(n: u32, c: u16, addr: &str) -> PeerInfo {
        PeerInfo {
            node: NodeId(n),
            cluster: ClusterId(c),
            steal_addr: addr.to_string(),
        }
    }

    fn sample_ops() -> Vec<ReplicaOp> {
        vec![
            ReplicaOp::Join {
                node: NodeId(0),
                cluster: ClusterId(0),
            },
            ReplicaOp::Join {
                node: NodeId(1),
                cluster: ClusterId(1),
            },
            ReplicaOp::ReplicaJoined {
                replica: 2,
                addr: "127.0.0.1:7002".to_string(),
            },
            ReplicaOp::PeerDir {
                peers: vec![peer(0, 0, "127.0.0.1:9000"), peer(1, 1, "127.0.0.1:9001")],
            },
            ReplicaOp::Bandwidth {
                node: NodeId(0),
                bench_micros: 1500,
            },
            ReplicaOp::Death { node: NodeId(1) },
            ReplicaOp::BlacklistNode { node: NodeId(1) },
            ReplicaOp::PeerDir {
                peers: vec![peer(0, 0, "127.0.0.1:9000")],
            },
            ReplicaOp::BlacklistCluster {
                cluster: ClusterId(1),
            },
            ReplicaOp::Leave { node: NodeId(0) },
        ]
    }

    #[test]
    fn primary_and_replica_converge_byte_for_byte() {
        // The primary applies ops as it appends them; a replica applies the
        // same stream in log order. Both must land on identical bytes.
        let mut primary = ControlState::default();
        let mut replica = ControlState::default();
        for op in sample_ops() {
            primary.apply(&op);
            replica.apply(&op);
        }
        assert_eq!(primary, replica);
        assert_eq!(primary.canonical_bytes(), replica.canonical_bytes());
        assert_eq!(primary.digest(), replica.digest());
    }

    #[test]
    fn snapshot_round_trips_the_materialised_state() {
        let mut st = ControlState::default();
        for op in sample_ops() {
            st.apply(&op);
        }
        let snap = st.snapshot();
        let back = ControlState::from_snapshot(&snap);
        assert_eq!(back, st);
        assert_eq!(back.canonical_bytes(), st.canonical_bytes());
    }

    #[test]
    fn snapshot_then_deltas_equals_full_replay() {
        // A standby that attaches mid-stream (snapshot at op k, deltas
        // after) must converge with one that replayed everything.
        let ops = sample_ops();
        for k in 0..ops.len() {
            let mut full = ControlState::default();
            for op in &ops {
                full.apply(op);
            }
            let mut head = ControlState::default();
            for op in &ops[..k] {
                head.apply(op);
            }
            let mut late = ControlState::from_snapshot(&head.snapshot());
            for op in &ops[k..] {
                late.apply(op);
            }
            assert_eq!(late.digest(), full.digest(), "attach at op {k}");
        }
    }

    #[test]
    fn blacklist_and_bandwidth_survive_apply_order() {
        let mut st = ControlState::default();
        st.apply(&ReplicaOp::BlacklistNode { node: NodeId(7) });
        st.apply(&ReplicaOp::BlacklistNode { node: NodeId(7) });
        st.apply(&ReplicaOp::Bandwidth {
            node: NodeId(3),
            bench_micros: 100,
        });
        st.apply(&ReplicaOp::Bandwidth {
            node: NodeId(3),
            bench_micros: 250,
        });
        assert_eq!(st.blacklisted_nodes.len(), 1);
        assert_eq!(st.bandwidth.get(&NodeId(3)), Some(&250));
    }

    #[test]
    fn member_phase_bytes_round_trip_and_reject_garbage() {
        for p in [
            MemberPhase::Alive,
            MemberPhase::Leaving,
            MemberPhase::Left,
            MemberPhase::Dead,
        ] {
            assert_eq!(MemberPhase::from_byte(p.to_byte()), Some(p));
        }
        assert_eq!(MemberPhase::from_byte(4), None);
        assert_eq!(MemberPhase::from_byte(0xff), None);
    }

    #[test]
    fn replog_offsets_are_monotonic_and_acks_high_water() {
        let mut log = RepLog::new();
        assert_eq!(log.append(), 0);
        assert_eq!(log.append(), 1);
        assert_eq!(log.offset(), 2);
        log.ack(3, 1);
        log.ack(3, 0); // stale ack never regresses the mark
        assert_eq!(log.acked(3), 1);
        assert_eq!(log.acked(9), 0);
    }
}
