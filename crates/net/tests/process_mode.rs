//! End-to-end process-mode test: `grid-local` spawns a real hub, a real
//! coordinator daemon and real worker processes over loopback TCP, injects
//! a SIGKILL crash, and verifies detection, blacklisting and the emitted
//! decision-provenance stream. This is the crash scenario kept short; the
//! full paper scenario (slow-worker removal) runs in ci.sh.

#[test]
fn grid_local_crash_scenario_passes() {
    let out = std::env::temp_dir().join(format!("grid_local_test_{}", std::process::id()));
    let status = std::process::Command::new(env!("CARGO_BIN_EXE_grid-local"))
        .args([
            "--workers",
            "3",
            "--scenario",
            "crash",
            "--duration-ms",
            "5000",
            "--out",
            out.to_str().expect("utf8 temp path"),
        ])
        .status()
        .expect("launch grid-local");
    assert!(status.success(), "grid-local exited with {status}");
    // The hub and coordinator both wrote their JSONL metric streams.
    assert!(out.join("run_hub.jsonl").exists());
    assert!(out.join("run_coordinatord.jsonl").exists());
    std::fs::remove_dir_all(&out).ok();
}

/// The checked-in paper scenario 3 (overloaded CPUs) drives real worker
/// processes from its declarative file, and the run's composed JSONL
/// stream satisfies the adaptation invariants: exit code 0.
#[test]
fn grid_local_scenario_file_s3_passes() {
    let out = std::env::temp_dir().join(format!("grid_local_s3_test_{}", std::process::id()));
    let scenario = concat!(env!("CARGO_MANIFEST_DIR"), "/../../scenarios/s3.json");
    let status = std::process::Command::new(env!("CARGO_BIN_EXE_grid-local"))
        .args([
            "--scenario-file",
            scenario,
            "--out",
            out.to_str().expect("utf8 temp path"),
        ])
        .status()
        .expect("launch grid-local");
    assert_eq!(
        status.code(),
        Some(0),
        "scenario-file run should pass every invariant check"
    );
    // The launcher wrote the composed injection+decision stream it judged.
    assert!(out.join("scenario_stream.jsonl").exists());
    std::fs::remove_dir_all(&out).ok();
}

/// True once `pid` no longer names a live (non-zombie) process. A zombie
/// counts as dead: it has been killed and merely awaits init's reap.
fn process_gone(pid: u32) -> bool {
    match std::fs::read_to_string(format!("/proc/{pid}/stat")) {
        Err(_) => true,
        Ok(stat) => match stat.rfind(')') {
            None => true,
            Some(idx) => matches!(
                stat[idx + 1..].trim_start().chars().next(),
                Some('Z') | None
            ),
        },
    }
}

/// Exit codes separate the three failure classes: 4 = infrastructure
/// timeout (the grid never came up), 2 = infrastructure/usage error,
/// 1 = a check failed on an otherwise healthy run. CI keys off this to
/// tell "the adaptation broke" from "the host was too slow".
#[test]
fn grid_local_scenario_file_exit_codes_distinguish_failure_classes() {
    let out = std::env::temp_dir().join(format!("grid_local_exit_test_{}", std::process::id()));
    let scenario = concat!(env!("CARGO_MANIFEST_DIR"), "/../../scenarios/s3.json");

    // A 1 ms join timeout can never see the hub come up: timeout, exit 4.
    let output = std::process::Command::new(env!("CARGO_BIN_EXE_grid-local"))
        .args([
            "--scenario-file",
            scenario,
            "--join-timeout-ms",
            "1",
            "--out",
            out.to_str().expect("utf8 temp path"),
        ])
        .output()
        .expect("launch grid-local");
    assert_eq!(
        output.status.code(),
        Some(4),
        "infrastructure timeout must exit 4"
    );

    // The failure exit must not leak children: the launcher prints each
    // spawned pid, and its Drop-based reaper runs before `process::exit`,
    // so every such pid must be gone once grid-local itself has exited.
    let stdout = String::from_utf8_lossy(&output.stdout);
    let spawned: Vec<u32> = stdout
        .lines()
        .filter_map(|l| l.strip_prefix("grid-local: spawned "))
        .filter_map(|rest| rest.split("pid=").nth(1))
        .filter_map(|p| p.trim().parse().ok())
        .collect();
    assert!(
        !spawned.is_empty() && stdout.contains("spawned hub pid="),
        "exit-4 run should have spawned (and reported) a hub before timing out: {stdout}"
    );
    for pid in spawned {
        // SIGKILL is asynchronous; allow the victim a moment to die.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while !process_gone(pid) && std::time::Instant::now() < deadline {
            std::thread::sleep(std::time::Duration::from_millis(50));
        }
        assert!(
            process_gone(pid),
            "child pid {pid} survived the exit-4 path (leaked process)"
        );
    }

    // An unreadable scenario file is an infrastructure error, exit 2.
    let status = std::process::Command::new(env!("CARGO_BIN_EXE_grid-local"))
        .args([
            "--scenario-file",
            "/nonexistent/scenario.json",
            "--out",
            out.to_str().expect("utf8 temp path"),
        ])
        .status()
        .expect("launch grid-local");
    assert_eq!(status.code(), Some(2), "infrastructure error must exit 2");

    // A healthy run that misses a check (an impossible decision quota on a
    // tiny undisturbed grid) is a verdict, exit 1.
    let tiny = out.join("tiny.json");
    std::fs::create_dir_all(&out).expect("create temp out dir");
    std::fs::write(
        &tiny,
        r#"{"name": "tiny", "grid": {"clusters": 2, "nodes_per_cluster": 6},
            "layout": [[0, 2], [1, 2]], "iterations": 4, "seed": 1,
            "target_nodes": 4, "target_iter_secs": 1, "events": []}"#,
    )
    .expect("write tiny scenario");
    let status = std::process::Command::new(env!("CARGO_BIN_EXE_grid-local"))
        .args([
            "--scenario-file",
            tiny.to_str().expect("utf8 temp path"),
            "--workers-per-cluster",
            "1",
            "--min-decisions",
            "100000",
            "--out",
            out.to_str().expect("utf8 temp path"),
        ])
        .status()
        .expect("launch grid-local");
    assert_eq!(status.code(), Some(1), "failed check must exit 1");
    std::fs::remove_dir_all(&out).ok();
}

#[test]
fn grid_local_steal_scenario_passes() {
    let out = std::env::temp_dir().join(format!("grid_local_steal_test_{}", std::process::id()));
    // The scenario itself asserts the interesting facts (root result
    // correct, remote steals observed, measured inter-cluster time > 0)
    // and exits non-zero if any check fails; the duration is a deadline,
    // not a sleep — the run ends as soon as the root result is in.
    let status = std::process::Command::new(env!("CARGO_BIN_EXE_grid-local"))
        .args([
            "--workers",
            "3",
            "--scenario",
            "steal",
            "--duration-ms",
            "30000",
            "--out",
            out.to_str().expect("utf8 temp path"),
        ])
        .status()
        .expect("launch grid-local");
    assert!(status.success(), "grid-local exited with {status}");
    assert!(out.join("steal_root_metrics.jsonl").exists());
    std::fs::remove_dir_all(&out).ok();
}
