//! End-to-end process-mode test: `grid-local` spawns a real hub, a real
//! coordinator daemon and real worker processes over loopback TCP, injects
//! a SIGKILL crash, and verifies detection, blacklisting and the emitted
//! decision-provenance stream. This is the crash scenario kept short; the
//! full paper scenario (slow-worker removal) runs in ci.sh.

#[test]
fn grid_local_crash_scenario_passes() {
    let out = std::env::temp_dir().join(format!("grid_local_test_{}", std::process::id()));
    let status = std::process::Command::new(env!("CARGO_BIN_EXE_grid-local"))
        .args([
            "--workers",
            "3",
            "--scenario",
            "crash",
            "--duration-ms",
            "5000",
            "--out",
            out.to_str().expect("utf8 temp path"),
        ])
        .status()
        .expect("launch grid-local");
    assert!(status.success(), "grid-local exited with {status}");
    // The hub and coordinator both wrote their JSONL metric streams.
    assert!(out.join("run_hub.jsonl").exists());
    assert!(out.join("run_coordinatord.jsonl").exists());
    std::fs::remove_dir_all(&out).ok();
}

#[test]
fn grid_local_steal_scenario_passes() {
    let out = std::env::temp_dir().join(format!("grid_local_steal_test_{}", std::process::id()));
    // The scenario itself asserts the interesting facts (root result
    // correct, remote steals observed, measured inter-cluster time > 0)
    // and exits non-zero if any check fails; the duration is a deadline,
    // not a sleep — the run ends as soon as the root result is in.
    let status = std::process::Command::new(env!("CARGO_BIN_EXE_grid-local"))
        .args([
            "--workers",
            "3",
            "--scenario",
            "steal",
            "--duration-ms",
            "30000",
            "--out",
            out.to_str().expect("utf8 temp path"),
        ])
        .status()
        .expect("launch grid-local");
    assert!(status.success(), "grid-local exited with {status}");
    assert!(out.join("steal_root_metrics.jsonl").exists());
    std::fs::remove_dir_all(&out).ok();
}
