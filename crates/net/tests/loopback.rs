//! Loopback integration tests for the hub: raw TCP clients drive the full
//! control-plane protocol against a real `Hub` on an ephemeral port.

use sagrid_core::ids::{ClusterId, NodeId};
use sagrid_core::metrics::Metrics;
use sagrid_net::conn::{Connection, NetEvent};
use sagrid_net::wire::{recv_message, send_message, Message, PeerInfo};
use sagrid_net::{Hub, HubConfig};
use std::net::TcpStream;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

fn start_hub(heartbeat_timeout: Duration) -> (u16, JoinHandle<Metrics>) {
    let cfg = HubConfig {
        clusters: 2,
        nodes_per_cluster: 4,
        heartbeat_timeout,
        detect_interval: Duration::from_millis(50),
    };
    let hub = Hub::bind("127.0.0.1:0", cfg, Metrics::enabled()).expect("bind hub");
    let port = hub.port();
    (port, std::thread::spawn(move || hub.run()))
}

struct Client {
    stream: TcpStream,
}

impl Client {
    fn connect(port: u16) -> Client {
        let stream = TcpStream::connect(("127.0.0.1", port)).expect("connect to hub");
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .expect("read timeout");
        Client { stream }
    }

    fn send(&mut self, msg: Message) {
        send_message(&mut self.stream, &msg).expect("send to hub");
    }

    /// Receives the next frame, transparently skipping `HubEpoch` stamps
    /// (the hub stamps joins/hellos with its epoch and ticks keepalives;
    /// tests that care about epochs use [`Client::recv_raw`]).
    fn recv(&mut self) -> Message {
        loop {
            match self.recv_raw() {
                Message::HubEpoch { .. } => continue,
                msg => return msg,
            }
        }
    }

    fn recv_raw(&mut self) -> Message {
        recv_message(&mut self.stream)
            .expect("recv from hub")
            .expect("hub closed the connection")
    }

    fn join(&mut self, cluster: u16, claim: Option<u32>) -> Result<NodeId, String> {
        self.send(Message::Join {
            cluster: ClusterId(cluster),
            claim: claim.map(NodeId),
        });
        match self.recv() {
            Message::JoinAck {
                node,
                accepted: true,
                ..
            } => Ok(node),
            Message::JoinAck {
                accepted: false,
                reason,
                ..
            } => Err(reason),
            other => panic!("expected JoinAck, got {other:?}"),
        }
    }
}

fn shutdown(port: u16, hub: JoinHandle<Metrics>) -> Metrics {
    let mut launcher = Client::connect(port);
    launcher.send(Message::LauncherHello);
    launcher.send(Message::Shutdown);
    hub.join().expect("hub thread")
}

/// Skips non-directory traffic until the next `PeerDirectory` broadcast.
fn next_directory(c: &mut Client) -> Vec<PeerInfo> {
    loop {
        if let Message::PeerDirectory { peers } = c.recv() {
            return peers;
        }
    }
}

#[test]
fn fresh_joins_get_pool_ids_cluster_major() {
    let (port, hub) = start_hub(Duration::from_secs(5));
    let mut a = Client::connect(port);
    let mut b = Client::connect(port);
    let mut c = Client::connect(port);
    // Cluster 0 owns ids 0..4, cluster 1 owns 4..8 (pool is cluster-major).
    assert_eq!(a.join(0, None).unwrap(), NodeId(0));
    assert_eq!(b.join(0, None).unwrap(), NodeId(1));
    assert_eq!(c.join(1, None).unwrap(), NodeId(4));
    // A cluster beyond the pool is refused.
    let mut d = Client::connect(port);
    assert!(d.join(9, None).is_err());
    let metrics = shutdown(port, hub);
    let report = metrics.report();
    assert_eq!(report.counter("net.joins"), 3);
    assert_eq!(report.counter("net.join_refusals"), 1);
}

#[test]
fn missed_heartbeats_declare_death_and_block_rejoin() {
    let (port, hub) = start_hub(Duration::from_millis(300));
    let mut coord = Client::connect(port);
    coord.send(Message::CoordinatorHello);

    let mut worker = Client::connect(port);
    let node = worker.join(0, None).unwrap();
    // Go silent without closing the socket: only the heartbeat timeout —
    // not an EOF — may declare the death, and the detector walks through
    // Suspect first (silence > timeout/2 raises suspicion before death).
    let notice = coord.recv();
    assert_eq!(
        notice,
        Message::SuspectNotice {
            node,
            suspected: true
        }
    );
    let notice = coord.recv();
    assert_eq!(
        notice,
        Message::CrashNotice {
            node,
            cluster: ClusterId(0)
        }
    );

    // The dead id is blacklisted: claiming it again is refused...
    let mut ghost = Client::connect(port);
    assert!(ghost.join(0, Some(node.0)).is_err());
    // ...and fresh joins are never granted it.
    let mut fresh = Client::connect(port);
    assert_ne!(fresh.join(0, None).unwrap(), node);

    let metrics = shutdown(port, hub);
    assert_eq!(metrics.report().counter("net.deaths"), 1);
}

#[test]
fn stats_reports_are_forwarded_to_the_coordinator() {
    let (port, hub) = start_hub(Duration::from_secs(5));
    let mut coord = Client::connect(port);
    coord.send(Message::CoordinatorHello);
    let mut worker = Client::connect(port);
    let node = worker.join(0, None).unwrap();

    let report = sagrid_core::stats::MonitoringReport {
        node,
        cluster: ClusterId(0),
        period_end: sagrid_core::time::SimTime::from_millis(500),
        breakdown: sagrid_core::stats::OverheadBreakdown {
            busy: sagrid_core::time::SimDuration::from_millis(300),
            idle: sagrid_core::time::SimDuration::from_millis(200),
            ..Default::default()
        },
        speed: 1.0,
    };
    worker.send(Message::StatsReport {
        report,
        bench_micros: 1234,
    });
    match coord.recv() {
        Message::StatsReport {
            report: fwd,
            bench_micros,
        } => {
            assert_eq!(fwd.node, node);
            assert_eq!(fwd.breakdown, report.breakdown);
            assert_eq!(bench_micros, 1234);
        }
        other => panic!("expected forwarded StatsReport, got {other:?}"),
    }
    shutdown(port, hub);
}

#[test]
fn grow_reaches_the_launcher_and_claimed_joins_are_accepted() {
    let (port, hub) = start_hub(Duration::from_secs(5));
    let mut coord = Client::connect(port);
    coord.send(Message::CoordinatorHello);
    let mut launcher = Client::connect(port);
    launcher.send(Message::LauncherHello);

    coord.send(Message::Grow {
        count: 2,
        prefer: vec![ClusterId(0)],
        min_uplink_bps: None,
        min_speed: None,
    });
    let mut granted = Vec::new();
    for _ in 0..2 {
        match launcher.recv() {
            Message::SpawnWorker { node, cluster } => {
                assert_eq!(cluster, ClusterId(0));
                granted.push(node);
            }
            other => panic!("expected SpawnWorker, got {other:?}"),
        }
    }
    assert_eq!(granted, vec![NodeId(0), NodeId(1)]);

    // The spawned processes claim exactly the granted ids.
    let mut w0 = Client::connect(port);
    assert_eq!(w0.join(0, Some(granted[0].0)).unwrap(), granted[0]);
    // An id that was never granted (and never spawned) is refused.
    let mut rogue = Client::connect(port);
    assert!(rogue.join(0, Some(3)).is_err());

    launcher.send(Message::Shutdown);
    hub.join().expect("hub thread");
}

#[test]
fn shrink_signals_the_node_and_blacklists_its_id() {
    let (port, hub) = start_hub(Duration::from_secs(5));
    let mut coord = Client::connect(port);
    coord.send(Message::CoordinatorHello);
    let mut w0 = Client::connect(port);
    let n0 = w0.join(0, None).unwrap();
    let mut w1 = Client::connect(port);
    let n1 = w1.join(0, None).unwrap();

    coord.send(Message::Shrink {
        nodes: vec![n0],
        cluster: None,
    });
    assert_eq!(w0.recv(), Message::SignalLeave { node: n0 });
    w0.send(Message::Leaving { node: n0 });

    // The removed id is blacklisted: no rejoin, and fresh joins skip it.
    let mut ghost = Client::connect(port);
    assert!(ghost.join(0, Some(n0.0)).is_err());
    let mut fresh = Client::connect(port);
    let n2 = fresh.join(0, None).unwrap();
    assert_ne!(n2, n0);
    assert_ne!(n2, n1);

    shutdown(port, hub);
}

#[test]
fn transport_reconnect_of_an_alive_member_is_accepted() {
    let (port, hub) = start_hub(Duration::from_secs(5));
    let mut worker = Client::connect(port);
    let node = worker.join(0, None).unwrap();
    drop(worker); // the TCP connection dies; the member does not

    let mut back = Client::connect(port);
    assert_eq!(back.join(0, Some(node.0)).unwrap(), node);
    shutdown(port, hub);
}

/// Reads directory snapshots until one satisfies `pred` (snapshots are
/// idempotent full states, so skipping intermediates is always safe).
fn wait_directory(c: &mut Client, pred: impl Fn(&[PeerInfo]) -> bool) -> Vec<PeerInfo> {
    loop {
        let dir = next_directory(c);
        if pred(&dir) {
            return dir;
        }
    }
}

#[test]
fn peer_directory_reaches_members_and_prunes_on_leave() {
    let (port, hub) = start_hub(Duration::from_secs(5));

    // A joins and announces: A's own snapshot eventually carries A with
    // the hub-resolved cluster.
    let mut a = Client::connect(port);
    let na = a.join(0, None).unwrap();
    a.send(Message::PeerAnnounce {
        node: na,
        steal_addr: "127.0.0.1:7001".to_string(),
    });
    let dir = wait_directory(&mut a, |d| d.iter().any(|p| p.node == na));
    assert!(dir.contains(&PeerInfo {
        node: na,
        cluster: ClusterId(0),
        steal_addr: "127.0.0.1:7001".to_string(),
    }));

    // B joins another cluster: between the post-join snapshot and the
    // announce rebroadcasts, B learns about A without A resending a thing.
    let mut b = Client::connect(port);
    let nb = b.join(1, None).unwrap();
    b.send(Message::PeerAnnounce {
        node: nb,
        steal_addr: "127.0.0.1:7002".to_string(),
    });
    for (c, me) in [(&mut a, na), (&mut b, nb)] {
        let dir = wait_directory(c, |d| d.len() == 2);
        assert!(dir.iter().any(|p| p.node == me));
        assert!(dir
            .iter()
            .any(|p| p.node == nb && p.cluster == ClusterId(1)));
    }

    // A rogue announcement for somebody else's node id is ignored: B may
    // only speak for itself.
    b.send(Message::PeerAnnounce {
        node: na,
        steal_addr: "6.6.6.6:666".to_string(),
    });
    // B leaves: A's directory converges back to just A, with A's original
    // address — proving the rogue update never landed.
    b.send(Message::Leaving { node: nb });
    let dir = wait_directory(&mut a, |d| d.len() == 1);
    assert_eq!(dir[0].node, na);
    assert_eq!(dir[0].steal_addr, "127.0.0.1:7001");

    shutdown(port, hub);
}

#[test]
fn peer_directory_prunes_dead_members() {
    let (port, hub) = start_hub(Duration::from_millis(400));
    let mut a = Client::connect(port);
    let na = a.join(0, None).unwrap();
    a.send(Message::PeerAnnounce {
        node: na,
        steal_addr: "127.0.0.1:7001".to_string(),
    });
    let mut b = Client::connect(port);
    let nb = b.join(0, None).unwrap();
    b.send(Message::PeerAnnounce {
        node: nb,
        steal_addr: "127.0.0.1:7002".to_string(),
    });

    // B goes silent; A keeps heartbeating and waits for the pruned
    // snapshot driven by the failure detector.
    a.stream
        .set_read_timeout(Some(Duration::from_millis(100)))
        .expect("read timeout");
    let deadline = Instant::now() + Duration::from_secs(5);
    // The hub interleaves frames from the two sockets arbitrarily, so an
    // early snapshot may hold either node alone; pruning is only proven
    // once B has been seen in the directory and then disappears from it.
    let mut seen_b = false;
    let pruned = loop {
        a.send(Message::Heartbeat { node: na });
        match recv_message(&mut a.stream) {
            Ok(Some(Message::PeerDirectory { peers })) => {
                seen_b |= peers.iter().any(|p| p.node == nb);
                if seen_b && peers.len() == 1 && peers[0].node == na {
                    break peers;
                }
            }
            Ok(Some(_)) => {}
            Ok(None) => panic!("hub closed the connection"),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                assert!(
                    Instant::now() < deadline,
                    "dead member was never pruned from the directory"
                );
            }
            Err(e) => panic!("recv: {e}"),
        }
    };
    assert_eq!(pruned[0].node, na);

    let metrics = shutdown(port, hub);
    assert_eq!(metrics.report().counter("net.deaths"), 1);
}

#[test]
fn leave_farewell_is_flushed_before_the_connection_is_torn_down() {
    let (port, hub) = start_hub(Duration::from_secs(5));
    let mut a = Client::connect(port);
    let na = a.join(0, None).unwrap();
    a.send(Message::PeerAnnounce {
        node: na,
        steal_addr: "127.0.0.1:7001".to_string(),
    });

    // B connects through a real `Connection` (the worker binary's path:
    // dedicated reader/writer threads, so a send() only queues).
    let (events_tx, events_rx) = std::sync::mpsc::channel::<NetEvent>();
    let stream = TcpStream::connect(("127.0.0.1", port)).expect("connect");
    let conn = Connection::spawn(77, stream, events_tx, None).expect("spawn conn");
    conn.send(Message::Join {
        cluster: ClusterId(0),
        claim: None,
    });
    let nb = loop {
        match events_rx
            .recv_timeout(Duration::from_secs(5))
            .expect("event")
        {
            NetEvent::Message(_, Message::JoinAck { node, accepted, .. }) => {
                assert!(accepted);
                break node;
            }
            other => drop(other), // Opened event holds a Connection clone
        }
    };
    conn.send(Message::PeerAnnounce {
        node: nb,
        steal_addr: "127.0.0.1:7002".to_string(),
    });

    // The farewell handshake under test: queue the Leaving frame, wait
    // until the writer confirms it reached the socket, then tear the
    // connection down immediately — no grace sleep.
    conn.send(Message::Leaving { node: nb });
    assert!(
        conn.flush(Duration::from_secs(5)),
        "writer never confirmed the farewell flush"
    );
    drop(conn);
    drop(events_rx);

    // Only the Leaving frame prunes the directory here (EOF alone never
    // does, and the heartbeat timeout is far beyond this test): once B has
    // appeared in a snapshot and the directory converges back to exactly
    // A, the farewell must have survived the teardown.
    let mut seen_b = false;
    let dir = loop {
        let d = next_directory(&mut a);
        seen_b |= d.iter().any(|p| p.node == nb);
        if seen_b && d.len() == 1 && d[0].node == na {
            break d;
        }
    };
    assert_eq!(dir[0].node, na);

    shutdown(port, hub);
}

/// Skips keepalives and other traffic until the next replication frame of
/// interest. The hub ticks `HubEpoch` keepalives every detect interval, so
/// a replica-side reader must be prepared to discard them.
fn next_matching(c: &mut Client, pred: impl Fn(&Message) -> bool) -> Message {
    loop {
        let msg = c.recv_raw();
        if pred(&msg) {
            return msg;
        }
    }
}

#[test]
fn replica_gets_snapshot_then_deltas_mirroring_the_control_plane() {
    let (port, hub) = start_hub(Duration::from_secs(5));

    // Attach as a standby: the hello is answered with a full snapshot of
    // the (still empty) control plane at the current epoch.
    let mut replica = Client::connect(port);
    replica.send(Message::ReplicaHello {
        replica: 7,
        addr: "127.0.0.1:61007".to_string(),
        log_offset: 0,
    });
    match next_matching(&mut replica, |m| matches!(m, Message::StateSnapshot { .. })) {
        Message::StateSnapshot { epoch, state, .. } => {
            assert_eq!(epoch, 1);
            assert!(state.members.is_empty());
            assert_eq!(state.replicas, vec![(7, "127.0.0.1:61007".to_string())]);
        }
        _ => unreachable!(),
    }

    // Every membership change now streams to the replica as a delta.
    let mut worker = Client::connect(port);
    let node = worker.join(0, None).unwrap();
    match next_matching(&mut replica, |m| matches!(m, Message::StateDelta { .. })) {
        Message::StateDelta { epoch, op, .. } => {
            assert_eq!(epoch, 1);
            assert_eq!(
                op,
                sagrid_net::ReplicaOp::Join {
                    node,
                    cluster: ClusterId(0)
                }
            );
        }
        _ => unreachable!(),
    }

    let metrics = shutdown(port, hub);
    let report = metrics.report();
    assert_eq!(report.counter("net.replica.snapshots_sent"), 1);
    // The ReplicaJoined op precedes the replica's own registration (no one
    // attached to fan it to), so only the worker's Join delta counts.
    assert!(report.counter("net.replica.deltas_sent") >= 1);
}

#[test]
fn stale_primary_writes_are_fenced_not_applied() {
    let (port, hub) = start_hub(Duration::from_secs(5));
    let mut worker = Client::connect(port);
    let node = worker.join(0, None).unwrap();

    // A stale primary (fenced off by a failover it has not noticed yet)
    // limps back and tries to push a write under its old epoch: the hub
    // must refuse the write and answer with the current epoch so the
    // stale peer can stand down.
    let mut stale = Client::connect(port);
    stale.send(Message::StateDelta {
        epoch: 0,
        log_offset: 99,
        op: sagrid_net::ReplicaOp::BlacklistNode { node },
    });
    match next_matching(&mut stale, |m| matches!(m, Message::HubEpoch { .. })) {
        Message::HubEpoch { epoch, leader } => {
            assert_eq!(epoch, 1);
            assert_eq!(leader, 0);
        }
        _ => unreachable!(),
    }

    // The refused blacklist never landed: a fresh replica's snapshot shows
    // a clean blacklist and the worker's membership intact...
    let mut replica = Client::connect(port);
    replica.send(Message::ReplicaHello {
        replica: 2,
        addr: "127.0.0.1:61002".to_string(),
        log_offset: 0,
    });
    match next_matching(&mut replica, |m| matches!(m, Message::StateSnapshot { .. })) {
        Message::StateSnapshot { state, .. } => {
            assert!(state.blacklisted_nodes.is_empty());
            assert!(state.members.iter().any(|&(n, ..)| n == node));
        }
        _ => unreachable!(),
    }
    // ...and the grid keeps serving joins as if nothing happened.
    let mut probe = Client::connect(port);
    probe.join(0, None).unwrap();

    let metrics = shutdown(port, hub);
    assert_eq!(metrics.report().counter("net.replica.fenced"), 1);
}

#[test]
fn newer_epoch_fences_the_hub_out_of_service() {
    let (port, hub) = start_hub(Duration::from_secs(5));
    let mut worker = Client::connect(port);
    worker.join(0, None).unwrap();

    // A frame from a NEWER epoch means this hub lost a failover it never
    // saw: it must stop serving immediately instead of splitting the
    // brain — no launcher shutdown required.
    let mut winner = Client::connect(port);
    winner.send(Message::HubEpoch {
        epoch: 5,
        leader: 3,
    });
    let metrics = hub.join().expect("hub thread");
    let report = metrics.report();
    let fenced: Vec<_> = report.events_of_kind("hub_fenced").collect();
    assert_eq!(fenced.len(), 1, "exactly one hub_fenced event");
    // After a fence-out the port is dead; there is nothing to shut down.
}

#[test]
fn shutdown_requires_the_launcher_role() {
    let (port, hub) = start_hub(Duration::from_secs(5));
    let mut worker = Client::connect(port);
    worker.join(0, None).unwrap();
    // A non-launcher Shutdown is ignored: the hub keeps serving.
    worker.send(Message::Shutdown);
    std::thread::sleep(Duration::from_millis(100));
    let mut probe = Client::connect(port);
    probe.join(0, None).unwrap();
    // A real launcher shutdown broadcasts to every connection and stops.
    let mut launcher = Client::connect(port);
    launcher.send(Message::LauncherHello);
    launcher.send(Message::Shutdown);
    assert_eq!(probe.recv(), Message::Shutdown);
    hub.join().expect("hub thread");
}
