//! Seeded, dependency-free fuzz tests for the control-plane codec.
//!
//! The wire decoder faces bytes from the network; nothing about them can
//! be trusted. These tests take a valid encoding of every [`Message`]
//! variant and damage it the two ways a hostile or broken peer would —
//! truncation and bit flips — asserting the decoder never panics and
//! never allocates beyond the frame bound. Flipped bytes may legitimately
//! decode (a flipped bit inside a `u64` field is just a different valid
//! message); when they do, the decoded value must re-encode and decode
//! back to itself, i.e. damage can change the message but never produce a
//! value outside the codec's closed set.
//!
//! Everything is seeded through the workspace RNG, so a failure
//! reproduces exactly.

use sagrid_core::ids::{ClusterId, NodeId};
use sagrid_core::rng::{Rng64, SplitMix64};
use sagrid_core::stats::{MonitoringReport, OverheadBreakdown};
use sagrid_core::time::{SimDuration, SimTime};
use sagrid_net::wire::{Message, PeerInfo, StealJob};
use sagrid_net::{ControlSnapshot, FrameDecoder, MemberPhase, Reactor, ReplicaOp};

/// One representative encoding of every variant (and every interesting
/// shape within a variant: `None`/`Some` options, empty/filled lists,
/// non-ASCII strings).
fn every_message() -> Vec<Message> {
    let report = MonitoringReport {
        node: NodeId(7),
        cluster: ClusterId(2),
        period_end: SimTime::from_millis(1234),
        breakdown: OverheadBreakdown {
            busy: SimDuration(100),
            idle: SimDuration(20),
            intra_comm: SimDuration(3),
            inter_comm: SimDuration(4),
            benchmark: SimDuration(5),
        },
        speed: 0.4375,
    };
    vec![
        Message::Join {
            cluster: ClusterId(3),
            claim: None,
        },
        Message::Join {
            cluster: ClusterId(0),
            claim: Some(NodeId(42)),
        },
        Message::JoinAck {
            node: NodeId(9),
            accepted: true,
            reason: String::new(),
        },
        Message::JoinAck {
            node: NodeId(9),
            accepted: false,
            reason: "node n9 is blacklisted — π≠\"3\"".to_string(),
        },
        Message::Heartbeat { node: NodeId(1) },
        Message::StatsReport {
            report,
            bench_micros: 1500,
        },
        Message::Leaving { node: NodeId(5) },
        Message::SignalLeave { node: NodeId(6) },
        Message::CrashNotice {
            node: NodeId(8),
            cluster: ClusterId(1),
        },
        Message::CoordinatorHello,
        Message::LauncherHello,
        Message::Grow {
            count: 4,
            prefer: vec![ClusterId(0), ClusterId(2)],
            min_uplink_bps: Some(1e6),
            min_speed: None,
        },
        Message::Shrink {
            nodes: vec![NodeId(3), NodeId(1)],
            cluster: Some(ClusterId(4)),
        },
        Message::SpawnWorker {
            node: NodeId(12),
            cluster: ClusterId(1),
        },
        Message::Shutdown,
        Message::PeerAnnounce {
            node: NodeId(3),
            steal_addr: "127.0.0.1:45231".to_string(),
        },
        Message::PeerDirectory { peers: vec![] },
        Message::PeerDirectory {
            peers: vec![
                PeerInfo {
                    node: NodeId(0),
                    cluster: ClusterId(0),
                    steal_addr: "127.0.0.1:9001".to_string(),
                },
                PeerInfo {
                    node: NodeId(5),
                    cluster: ClusterId(1),
                    steal_addr: "10.0.0.7:9002".to_string(),
                },
            ],
        },
        Message::StealRequest { thief: NodeId(2) },
        Message::StealReply { job: None },
        Message::StealReply {
            job: Some(StealJob {
                id: 99,
                payload: vec![0x01, 0xff, 0x00, 0x7f],
            }),
        },
        Message::StealResult {
            id: 99,
            value: u64::MAX,
        },
        Message::Perturb {
            cluster: ClusterId(1),
            count: 0,
            speed: Some(0.25),
            inter_frac: None,
        },
        Message::Perturb {
            cluster: ClusterId(4),
            count: 3,
            speed: None,
            inter_frac: Some(0.4),
        },
        // Replication plane: hello/snapshot/delta/ack/epoch.
        Message::ReplicaHello {
            replica: 1,
            addr: "127.0.0.1:61001".to_string(),
            log_offset: 0,
        },
        Message::StateSnapshot {
            epoch: 1,
            log_offset: 0,
            state: ControlSnapshot::default(),
        },
        Message::StateSnapshot {
            epoch: 3,
            log_offset: 77,
            state: ControlSnapshot {
                members: vec![
                    (NodeId(0), ClusterId(0), MemberPhase::Alive),
                    (NodeId(1), ClusterId(0), MemberPhase::Leaving),
                    (NodeId(2), ClusterId(1), MemberPhase::Left),
                    (NodeId(3), ClusterId(1), MemberPhase::Dead),
                ],
                blacklisted_nodes: vec![NodeId(3)],
                blacklisted_clusters: vec![ClusterId(2)],
                peers: vec![PeerInfo {
                    node: NodeId(0),
                    cluster: ClusterId(0),
                    steal_addr: "127.0.0.1:9001".to_string(),
                }],
                bandwidth: vec![(NodeId(0), 1500), (NodeId(1), u64::MAX)],
                replicas: vec![(1, "127.0.0.1:61001".to_string())],
            },
        },
        Message::StateDelta {
            epoch: 1,
            log_offset: 4,
            op: ReplicaOp::Join {
                node: NodeId(9),
                cluster: ClusterId(1),
            },
        },
        Message::StateDelta {
            epoch: 1,
            log_offset: 5,
            op: ReplicaOp::BlacklistNode { node: NodeId(9) },
        },
        Message::StateDelta {
            epoch: 2,
            log_offset: 6,
            op: ReplicaOp::PeerDir {
                peers: vec![PeerInfo {
                    node: NodeId(4),
                    cluster: ClusterId(0),
                    steal_addr: "10.0.0.4:9004".to_string(),
                }],
            },
        },
        Message::StateDelta {
            epoch: 2,
            log_offset: 7,
            op: ReplicaOp::Bandwidth {
                node: NodeId(4),
                bench_micros: 2500,
            },
        },
        Message::StateDelta {
            epoch: 2,
            log_offset: 8,
            op: ReplicaOp::ReplicaJoined {
                replica: 2,
                addr: "127.0.0.1:61002".to_string(),
            },
        },
        Message::ReplicaAck {
            replica: 1,
            log_offset: 8,
        },
        Message::HubEpoch {
            epoch: 2,
            leader: 1,
        },
    ]
}

#[test]
fn every_truncation_is_an_error_never_a_panic() {
    for msg in every_message() {
        let bytes = msg.encode();
        for cut in 0..bytes.len() {
            // A strict prefix can never be a complete message: every
            // variant either has fixed width or carries length prefixes
            // that then over-claim the remaining bytes.
            assert!(
                Message::decode(&bytes[..cut]).is_err(),
                "{msg:?} truncated to {cut}/{} bytes decoded Ok",
                bytes.len()
            );
        }
    }
}

#[test]
fn bit_flips_never_panic_and_ok_decodes_stay_canonical() {
    let mut rng = SplitMix64::new(0x000C_0DEC_FA22 ^ 0x5eed);
    for msg in every_message() {
        let bytes = msg.encode();
        // Every single-bit flip for small messages; a seeded sample of
        // 512 flips for larger ones.
        let total_bits = bytes.len() * 8;
        let flips: Vec<usize> = if total_bits <= 512 {
            (0..total_bits).collect()
        } else {
            (0..512).map(|_| rng.gen_index(total_bits)).collect()
        };
        for bit in flips {
            let mut damaged = bytes.clone();
            damaged[bit / 8] ^= 1 << (bit % 8);
            // A flipped tag, length or enum-discriminant bit must surface
            // as a decode error, not a panic or a giant allocation (the
            // length guards bound every list by the bytes actually
            // present). A flipped value bit instead yields a different
            // valid message; it must sit inside the codec's closed set:
            // re-encoding and decoding reproduces it exactly.
            if let Ok(m) = Message::decode(&damaged) {
                let re = m.encode();
                assert_eq!(
                    Message::decode(&re).as_ref(),
                    Ok(&m),
                    "{msg:?} bit {bit}: mutant decoded to {m:?} which does not round-trip"
                );
            }
        }
    }
}

#[test]
fn random_garbage_never_panics() {
    let mut rng = SplitMix64::new(0xBAD_B17E5);
    for _ in 0..2000 {
        let len = rng.gen_index(96);
        let buf: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        // Any outcome but a panic is acceptable; Ok values must be
        // canonical like above.
        if let Ok(m) = Message::decode(&buf) {
            assert_eq!(Message::decode(&m.encode()).as_ref(), Ok(&m));
        }
    }
}

/// The reactor's incremental [`FrameDecoder`] must agree byte-for-byte
/// with the one-shot path, no matter how the kernel slices the stream.
/// Every variant is fed one byte at a time: nothing may surface before
/// the final byte, and the surfaced message must equal the original.
#[test]
fn incremental_decode_byte_at_a_time_matches_one_shot() {
    for msg in every_message() {
        let frame = Reactor::encode_frame(&msg);
        let one_shot = Message::decode(&frame[4..]).expect("one-shot decode");
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        for (i, b) in frame.iter().enumerate() {
            dec.feed(std::slice::from_ref(b), &mut got)
                .unwrap_or_else(|e| panic!("{msg:?} byte {i}: {e:?}"));
            if i + 1 < frame.len() {
                assert!(got.is_empty(), "{msg:?} surfaced early at byte {i}");
                assert!(!dec.at_boundary(), "{msg:?} claimed boundary mid-frame");
            }
        }
        assert_eq!(got, vec![one_shot], "{msg:?} byte-at-a-time mismatch");
        assert_eq!(got[0], msg);
        assert!(dec.at_boundary(), "{msg:?} not at a frame boundary after");
    }
}

/// The whole fixture set concatenated into one stream, then replayed
/// under seeded random split points (the shapes `read(2)` actually
/// produces: short reads straddling length prefixes and frame bodies).
/// Every trial must reproduce the exact message sequence.
#[test]
fn incremental_decode_survives_randomized_split_points() {
    let msgs = every_message();
    let mut stream: Vec<u8> = Vec::new();
    for m in &msgs {
        stream.extend_from_slice(&Reactor::encode_frame(m));
    }
    let mut rng = SplitMix64::new(0x0DEC_0DE5_5EED);
    for trial in 0..200usize {
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        let mut pos = 0;
        // Vary the chunk-size regime per trial so both dribbles and
        // near-whole-frame reads are covered.
        let max_chunk = 1 + trial % 97;
        while pos < stream.len() {
            let chunk = 1 + rng.gen_index((stream.len() - pos).min(max_chunk));
            dec.feed(&stream[pos..pos + chunk], &mut got)
                .unwrap_or_else(|e| panic!("trial {trial} at {pos}: {e:?}"));
            pos += chunk;
        }
        assert_eq!(got, msgs, "trial {trial}: stream did not reproduce");
        assert!(dec.at_boundary(), "trial {trial}: dangling partial frame");
    }
}

/// An over-claiming length prefix must be rejected as soon as the header
/// completes — before any payload allocation — even when the header
/// itself arrives one byte at a time.
#[test]
fn incremental_decode_rejects_oversized_frames_at_the_header() {
    let huge = ((1u32 << 20) + 1).to_le_bytes();
    let mut dec = FrameDecoder::new();
    let mut got = Vec::new();
    for (i, b) in huge.iter().enumerate() {
        let fed = dec.feed(std::slice::from_ref(b), &mut got);
        if i < 3 {
            assert!(fed.is_ok(), "rejected before the length was known");
        } else {
            assert!(fed.is_err(), "accepted a frame beyond the bound");
        }
    }
    assert!(got.is_empty());
}

#[test]
fn multi_byte_corruption_never_panics() {
    let mut rng = SplitMix64::new(0xDEAD_BEEF_CAFE);
    for msg in every_message() {
        let bytes = msg.encode();
        if bytes.is_empty() {
            continue;
        }
        for _ in 0..64 {
            let mut damaged = bytes.clone();
            // Overwrite a random run of bytes with random values: the
            // classic way a length prefix gets replaced by a huge claim.
            let start = rng.gen_index(damaged.len());
            let run = 1 + rng.gen_index((damaged.len() - start).min(8));
            for b in &mut damaged[start..start + run] {
                *b = rng.next_u64() as u8;
            }
            if let Ok(m) = Message::decode(&damaged) {
                assert_eq!(Message::decode(&m.encode()).as_ref(), Ok(&m));
            }
        }
    }
}
