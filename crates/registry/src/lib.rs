//! # sagrid-registry
//!
//! An Ibis-registry-like membership service (paper §4). The registry
//! provides, to the application processes and to the adaptation coordinator:
//!
//! * a **membership service** — processes join and leave, everyone can
//!   enumerate the live set;
//! * **fault detection** — a heartbeat-timeout failure detector (in
//!   addition to the fault detection the communication channels provide);
//! * **signals** — the coordinator uses the registry to tell processes to
//!   leave the computation;
//! * **coordinator election** — the paper's registry is a centralized
//!   server; we keep a deterministic lowest-id election for the tests that
//!   exercise coordinator failover.
//!
//! The implementation is a pure state machine driven by timestamps, so the
//! discrete-event engine and the threaded runtime can both embed it.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod membership;

pub use membership::{MemberState, Membership, RegistryConfig, RegistryEvent};
