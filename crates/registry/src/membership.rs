//! Membership state machine with heartbeat failure detection.

use sagrid_core::ids::{ClusterId, NodeId};
use sagrid_core::time::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// Registry tuning knobs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RegistryConfig {
    /// A member that has not heartbeat for this long is declared dead.
    pub heartbeat_timeout: SimDuration,
}

impl Default for RegistryConfig {
    fn default() -> Self {
        Self {
            // Generous relative to the paper's multi-minute monitoring
            // periods; failure detection should be much faster than a period.
            heartbeat_timeout: SimDuration::from_secs(30),
        }
    }
}

/// Lifecycle state of a member.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemberState {
    /// Participating in the computation.
    Alive,
    /// Asked (signalled) to leave; still alive until it confirms.
    Leaving,
    /// Left gracefully.
    Left,
    /// Declared dead by the failure detector or reported crashed.
    Dead,
}

/// Events the registry emits for interested parties (the coordinator).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RegistryEvent {
    /// A node joined the computation.
    Joined(NodeId, ClusterId),
    /// A node left gracefully (e.g. after a leave signal).
    Left(NodeId),
    /// A node was declared dead.
    Died(NodeId),
}

#[derive(Clone, Debug)]
struct MemberInfo {
    cluster: ClusterId,
    state: MemberState,
    last_heartbeat: SimTime,
}

/// The membership registry. One logical instance per computation (the
/// paper's registry is a centralized server).
#[derive(Clone, Debug)]
pub struct Membership {
    cfg: RegistryConfig,
    members: BTreeMap<NodeId, MemberInfo>,
    events: Vec<RegistryEvent>,
    /// Leave signals queued for delivery (the engine drains these and
    /// notifies the target node).
    pending_signals: Vec<NodeId>,
}

impl Membership {
    /// Creates an empty registry.
    pub fn new(cfg: RegistryConfig) -> Self {
        Self {
            cfg,
            members: BTreeMap::new(),
            events: Vec::new(),
            pending_signals: Vec::new(),
        }
    }

    /// Registers a node as alive. An id whose previous incarnation left
    /// gracefully may register again — the pool releases such nodes and a
    /// later grant can hand the same machine back. Joining while alive
    /// (or after a crash: crashed nodes are never re-granted) indicates an
    /// engine bug.
    pub fn join(&mut self, now: SimTime, node: NodeId, cluster: ClusterId) {
        let prev = self.members.insert(
            node,
            MemberInfo {
                cluster,
                state: MemberState::Alive,
                last_heartbeat: now,
            },
        );
        assert!(
            prev.is_none_or(|p| p.state == MemberState::Left),
            "node {node} joined twice"
        );
        self.events.push(RegistryEvent::Joined(node, cluster));
    }

    /// Records a heartbeat from `node`. Heartbeats from unknown or
    /// non-alive members are ignored (they can race with failure
    /// declarations — the paper notes clocks are unsynchronized).
    pub fn heartbeat(&mut self, now: SimTime, node: NodeId) {
        if let Some(m) = self.members.get_mut(&node) {
            if matches!(m.state, MemberState::Alive | MemberState::Leaving) {
                m.last_heartbeat = now;
            }
        }
    }

    /// Graceful leave (e.g. in response to a signal).
    pub fn leave(&mut self, node: NodeId) {
        if let Some(m) = self.members.get_mut(&node) {
            if matches!(m.state, MemberState::Alive | MemberState::Leaving) {
                m.state = MemberState::Left;
                self.events.push(RegistryEvent::Left(node));
            }
        }
    }

    /// Immediate crash report (the communication layer noticed a broken
    /// channel before the heartbeat timeout fired).
    pub fn report_crash(&mut self, node: NodeId) {
        if let Some(m) = self.members.get_mut(&node) {
            if matches!(m.state, MemberState::Alive | MemberState::Leaving) {
                m.state = MemberState::Dead;
                self.events.push(RegistryEvent::Died(node));
            }
        }
    }

    /// Runs the failure detector: every alive/leaving member whose last
    /// heartbeat is older than the timeout is declared dead. Returns the
    /// newly dead nodes.
    pub fn detect_failures(&mut self, now: SimTime) -> Vec<NodeId> {
        let timeout = self.cfg.heartbeat_timeout;
        let mut died = Vec::new();
        for (&id, m) in self.members.iter_mut() {
            if matches!(m.state, MemberState::Alive | MemberState::Leaving)
                && now.saturating_since(m.last_heartbeat) > timeout
            {
                m.state = MemberState::Dead;
                died.push(id);
            }
        }
        for &id in &died {
            self.events.push(RegistryEvent::Died(id));
        }
        died
    }

    /// Queues a leave signal for `node` (coordinator → node). The engine
    /// must drain [`Membership::take_signals`] and deliver them.
    pub fn signal_leave(&mut self, node: NodeId) {
        if let Some(m) = self.members.get_mut(&node) {
            if m.state == MemberState::Alive {
                m.state = MemberState::Leaving;
                self.pending_signals.push(node);
            }
        }
    }

    /// Drains queued leave signals.
    pub fn take_signals(&mut self) -> Vec<NodeId> {
        std::mem::take(&mut self.pending_signals)
    }

    /// Drains the event log.
    pub fn take_events(&mut self) -> Vec<RegistryEvent> {
        std::mem::take(&mut self.events)
    }

    /// State of a member, if known.
    pub fn state(&self, node: NodeId) -> Option<MemberState> {
        self.members.get(&node).map(|m| m.state)
    }

    /// Cluster of a member, if known.
    pub fn cluster_of(&self, node: NodeId) -> Option<ClusterId> {
        self.members.get(&node).map(|m| m.cluster)
    }

    /// Iterator over alive (and leaving) members, in id order.
    pub fn alive(&self) -> impl Iterator<Item = (NodeId, ClusterId)> + '_ {
        self.members.iter().filter_map(|(&id, m)| {
            matches!(m.state, MemberState::Alive | MemberState::Leaving).then_some((id, m.cluster))
        })
    }

    /// Number of alive (incl. leaving) members.
    pub fn alive_count(&self) -> usize {
        self.alive().count()
    }

    /// Alive members of one cluster.
    pub fn alive_in_cluster(&self, cluster: ClusterId) -> Vec<NodeId> {
        self.alive()
            .filter_map(|(id, c)| (c == cluster).then_some(id))
            .collect()
    }

    /// Deterministic election: the lowest-id alive member.
    pub fn elect_coordinator(&self) -> Option<NodeId> {
        self.alive().map(|(id, _)| id).next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reg() -> Membership {
        Membership::new(RegistryConfig::default())
    }

    #[test]
    fn join_heartbeat_survive() {
        let mut r = reg();
        r.join(SimTime::ZERO, NodeId(1), ClusterId(0));
        r.heartbeat(SimTime::from_secs(20), NodeId(1));
        // 25s after last heartbeat: within the 30s timeout.
        assert!(r.detect_failures(SimTime::from_secs(45)).is_empty());
        assert_eq!(r.state(NodeId(1)), Some(MemberState::Alive));
    }

    #[test]
    fn missed_heartbeats_kill() {
        let mut r = reg();
        r.join(SimTime::ZERO, NodeId(1), ClusterId(0));
        r.join(SimTime::ZERO, NodeId(2), ClusterId(1));
        r.heartbeat(SimTime::from_secs(40), NodeId(2));
        let dead = r.detect_failures(SimTime::from_secs(50));
        assert_eq!(dead, vec![NodeId(1)]);
        assert_eq!(r.state(NodeId(1)), Some(MemberState::Dead));
        assert_eq!(r.state(NodeId(2)), Some(MemberState::Alive));
        assert_eq!(r.alive_count(), 1);
    }

    #[test]
    fn leave_signal_flow() {
        let mut r = reg();
        r.join(SimTime::ZERO, NodeId(7), ClusterId(2));
        r.signal_leave(NodeId(7));
        assert_eq!(r.state(NodeId(7)), Some(MemberState::Leaving));
        assert_eq!(r.take_signals(), vec![NodeId(7)]);
        assert!(r.take_signals().is_empty(), "signals drain once");
        // Node confirms departure.
        r.leave(NodeId(7));
        assert_eq!(r.state(NodeId(7)), Some(MemberState::Left));
        assert_eq!(r.alive_count(), 0);
    }

    #[test]
    fn signalling_a_dead_node_is_a_noop() {
        let mut r = reg();
        r.join(SimTime::ZERO, NodeId(1), ClusterId(0));
        r.report_crash(NodeId(1));
        r.signal_leave(NodeId(1));
        assert!(r.take_signals().is_empty());
        assert_eq!(r.state(NodeId(1)), Some(MemberState::Dead));
    }

    #[test]
    fn crash_report_is_idempotent_and_logged_once() {
        let mut r = reg();
        r.join(SimTime::ZERO, NodeId(1), ClusterId(0));
        r.report_crash(NodeId(1));
        r.report_crash(NodeId(1));
        let events = r.take_events();
        let deaths = events
            .iter()
            .filter(|e| matches!(e, RegistryEvent::Died(_)))
            .count();
        assert_eq!(deaths, 1);
    }

    #[test]
    fn alive_in_cluster_filters() {
        let mut r = reg();
        for i in 0..6 {
            r.join(SimTime::ZERO, NodeId(i), ClusterId((i % 2) as u16));
        }
        r.report_crash(NodeId(0));
        let c0 = r.alive_in_cluster(ClusterId(0));
        assert_eq!(c0, vec![NodeId(2), NodeId(4)]);
        assert_eq!(r.alive_in_cluster(ClusterId(1)).len(), 3);
    }

    #[test]
    fn election_is_lowest_alive_id_and_fails_over() {
        let mut r = reg();
        r.join(SimTime::ZERO, NodeId(3), ClusterId(0));
        r.join(SimTime::ZERO, NodeId(5), ClusterId(0));
        r.join(SimTime::ZERO, NodeId(9), ClusterId(1));
        assert_eq!(r.elect_coordinator(), Some(NodeId(3)));
        r.report_crash(NodeId(3));
        assert_eq!(r.elect_coordinator(), Some(NodeId(5)));
        r.leave(NodeId(5));
        assert_eq!(r.elect_coordinator(), Some(NodeId(9)));
        r.report_crash(NodeId(9));
        assert_eq!(r.elect_coordinator(), None);
    }

    #[test]
    #[should_panic(expected = "joined twice")]
    fn double_join_panics() {
        let mut r = reg();
        r.join(SimTime::ZERO, NodeId(1), ClusterId(0));
        r.join(SimTime::ZERO, NodeId(1), ClusterId(0));
    }

    #[test]
    fn rejoin_after_graceful_leave_is_allowed() {
        let mut r = reg();
        r.join(SimTime::ZERO, NodeId(1), ClusterId(0));
        r.leave(NodeId(1));
        r.join(SimTime::from_secs(10), NodeId(1), ClusterId(0));
        assert_eq!(r.state(NodeId(1)), Some(MemberState::Alive));
        let joins = r
            .take_events()
            .iter()
            .filter(|e| matches!(e, RegistryEvent::Joined(_, _)))
            .count();
        assert_eq!(joins, 2, "both incarnations are logged");
    }

    #[test]
    #[should_panic(expected = "joined twice")]
    fn rejoin_after_crash_panics() {
        // Crashed nodes are marked lost in the pool and never re-granted;
        // a join for one can only be an engine bookkeeping bug.
        let mut r = reg();
        r.join(SimTime::ZERO, NodeId(1), ClusterId(0));
        r.report_crash(NodeId(1));
        r.join(SimTime::from_secs(10), NodeId(1), ClusterId(0));
    }

    #[test]
    fn heartbeat_from_unknown_node_ignored() {
        let mut r = reg();
        r.heartbeat(SimTime::from_secs(1), NodeId(99));
        assert_eq!(r.alive_count(), 0);
    }

    #[test]
    fn events_record_full_lifecycle() {
        let mut r = reg();
        r.join(SimTime::ZERO, NodeId(1), ClusterId(0));
        r.join(SimTime::ZERO, NodeId(2), ClusterId(0));
        r.leave(NodeId(1));
        r.report_crash(NodeId(2));
        assert_eq!(
            r.take_events(),
            vec![
                RegistryEvent::Joined(NodeId(1), ClusterId(0)),
                RegistryEvent::Joined(NodeId(2), ClusterId(0)),
                RegistryEvent::Left(NodeId(1)),
                RegistryEvent::Died(NodeId(2)),
            ]
        );
    }
}
