//! Membership state machine with heartbeat failure detection.

use sagrid_core::ids::{ClusterId, NodeId};
use sagrid_core::time::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// Registry tuning knobs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RegistryConfig {
    /// A member that has not heartbeat for this long is declared dead.
    pub heartbeat_timeout: SimDuration,
    /// A member silent for longer than this (but not yet past the
    /// timeout) is marked [`MemberState::Suspect`]: liveness unresolved,
    /// not yet a death verdict. Must be below `heartbeat_timeout` to be
    /// meaningful; equal disables the Suspect window entirely.
    pub suspect_after: SimDuration,
}

impl RegistryConfig {
    /// Config with the given death timeout and the suspicion threshold at
    /// half of it — silence past half the budget is already suspicious,
    /// while an ordinarily-scheduled heartbeat never trips it.
    pub fn with_timeout(heartbeat_timeout: SimDuration) -> Self {
        Self {
            heartbeat_timeout,
            suspect_after: SimDuration(heartbeat_timeout.0 / 2),
        }
    }
}

impl Default for RegistryConfig {
    fn default() -> Self {
        // Generous relative to the paper's multi-minute monitoring
        // periods; failure detection should be much faster than a period.
        Self::with_timeout(SimDuration::from_secs(30))
    }
}

/// Lifecycle state of a member.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemberState {
    /// Participating in the computation.
    Alive,
    /// Suspiciously silent: past `suspect_after` without a heartbeat but
    /// not yet past the death timeout. Still a member (holds resources),
    /// but its liveness is unresolved — consumers must not treat its
    /// monitoring data as current, and adaptation holds fire on shrink
    /// decisions until the silence resolves into Alive or Dead.
    Suspect,
    /// Asked (signalled) to leave; still alive until it confirms.
    Leaving,
    /// Left gracefully.
    Left,
    /// Declared dead by the failure detector or reported crashed.
    Dead,
}

/// Events the registry emits for interested parties (the coordinator).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RegistryEvent {
    /// A node joined the computation.
    Joined(NodeId, ClusterId),
    /// A node left gracefully (e.g. after a leave signal).
    Left(NodeId),
    /// A node was declared dead.
    Died(NodeId),
    /// A node fell suspiciously silent (Alive → Suspect).
    Suspected(NodeId),
    /// A suspect node resumed heartbeating (Suspect → Alive). No
    /// blacklist entry is ever made for having been suspect.
    Resumed(NodeId),
}

#[derive(Clone, Debug)]
struct MemberInfo {
    cluster: ClusterId,
    state: MemberState,
    last_heartbeat: SimTime,
}

/// The membership registry. One logical instance per computation (the
/// paper's registry is a centralized server).
#[derive(Clone, Debug)]
pub struct Membership {
    cfg: RegistryConfig,
    members: BTreeMap<NodeId, MemberInfo>,
    events: Vec<RegistryEvent>,
    /// Leave signals queued for delivery (the engine drains these and
    /// notifies the target node).
    pending_signals: Vec<NodeId>,
}

impl Membership {
    /// Creates an empty registry.
    pub fn new(cfg: RegistryConfig) -> Self {
        Self {
            cfg,
            members: BTreeMap::new(),
            events: Vec::new(),
            pending_signals: Vec::new(),
        }
    }

    /// Registers a node as alive. An id whose previous incarnation left
    /// gracefully may register again — the pool releases such nodes and a
    /// later grant can hand the same machine back. Joining while alive
    /// (or after a crash: crashed nodes are never re-granted) indicates an
    /// engine bug.
    pub fn join(&mut self, now: SimTime, node: NodeId, cluster: ClusterId) {
        let prev = self.members.insert(
            node,
            MemberInfo {
                cluster,
                state: MemberState::Alive,
                last_heartbeat: now,
            },
        );
        assert!(
            prev.is_none_or(|p| p.state == MemberState::Left),
            "node {node} joined twice"
        );
        self.events.push(RegistryEvent::Joined(node, cluster));
    }

    /// Records a heartbeat from `node`. Heartbeats from unknown or
    /// non-alive members are ignored (they can race with failure
    /// declarations — the paper notes clocks are unsynchronized). A
    /// heartbeat from a Suspect member is proof of life: it returns to
    /// Alive and a [`RegistryEvent::Resumed`] is emitted — suspicion is
    /// not a verdict and leaves no blacklist trace.
    pub fn heartbeat(&mut self, now: SimTime, node: NodeId) {
        if let Some(m) = self.members.get_mut(&node) {
            match m.state {
                MemberState::Alive | MemberState::Leaving => {
                    m.last_heartbeat = now;
                }
                MemberState::Suspect => {
                    m.state = MemberState::Alive;
                    m.last_heartbeat = now;
                    self.events.push(RegistryEvent::Resumed(node));
                }
                MemberState::Left | MemberState::Dead => {}
            }
        }
    }

    /// Graceful leave (e.g. in response to a signal). A Suspect member
    /// may still leave — the leave message itself resolves the silence.
    pub fn leave(&mut self, node: NodeId) {
        if let Some(m) = self.members.get_mut(&node) {
            if matches!(
                m.state,
                MemberState::Alive | MemberState::Leaving | MemberState::Suspect
            ) {
                m.state = MemberState::Left;
                self.events.push(RegistryEvent::Left(node));
            }
        }
    }

    /// Immediate crash report (the communication layer noticed a broken
    /// channel before the heartbeat timeout fired).
    pub fn report_crash(&mut self, node: NodeId) {
        if let Some(m) = self.members.get_mut(&node) {
            if matches!(
                m.state,
                MemberState::Alive | MemberState::Leaving | MemberState::Suspect
            ) {
                m.state = MemberState::Dead;
                self.events.push(RegistryEvent::Died(node));
            }
        }
    }

    /// Runs the failure detector's three-state sweep over silence
    /// duration (both transitions use a strict `>` so a heartbeat landing
    /// exactly on a boundary survives it):
    ///
    /// - silence > `heartbeat_timeout` ⇒ **Dead**, whatever the prior
    ///   state — a member that was never seen Suspect (e.g. between
    ///   coarse sweeps) still dies on time.
    /// - `suspect_after` < silence ≤ `heartbeat_timeout` ⇒ an Alive
    ///   member becomes **Suspect** ([`RegistryEvent::Suspected`]).
    ///   Leaving members are not suspected — they are already on their
    ///   way out and their silence resolves at the timeout regardless.
    ///
    /// Returns the newly dead nodes.
    pub fn detect_failures(&mut self, now: SimTime) -> Vec<NodeId> {
        let timeout = self.cfg.heartbeat_timeout;
        let suspect_after = self.cfg.suspect_after;
        let mut died = Vec::new();
        let mut suspected = Vec::new();
        for (&id, m) in self.members.iter_mut() {
            if !matches!(
                m.state,
                MemberState::Alive | MemberState::Leaving | MemberState::Suspect
            ) {
                continue;
            }
            let silence = now.saturating_since(m.last_heartbeat);
            if silence > timeout {
                m.state = MemberState::Dead;
                died.push(id);
            } else if silence > suspect_after && m.state == MemberState::Alive {
                m.state = MemberState::Suspect;
                suspected.push(id);
            }
        }
        for &id in &suspected {
            self.events.push(RegistryEvent::Suspected(id));
        }
        for &id in &died {
            self.events.push(RegistryEvent::Died(id));
        }
        died
    }

    /// Queues a leave signal for `node` (coordinator → node). The engine
    /// must drain [`Membership::take_signals`] and deliver them.
    pub fn signal_leave(&mut self, node: NodeId) {
        if let Some(m) = self.members.get_mut(&node) {
            if m.state == MemberState::Alive {
                m.state = MemberState::Leaving;
                self.pending_signals.push(node);
            }
        }
    }

    /// Drains queued leave signals.
    pub fn take_signals(&mut self) -> Vec<NodeId> {
        std::mem::take(&mut self.pending_signals)
    }

    /// Drains the event log.
    pub fn take_events(&mut self) -> Vec<RegistryEvent> {
        std::mem::take(&mut self.events)
    }

    /// State of a member, if known.
    pub fn state(&self, node: NodeId) -> Option<MemberState> {
        self.members.get(&node).map(|m| m.state)
    }

    /// Cluster of a member, if known.
    pub fn cluster_of(&self, node: NodeId) -> Option<ClusterId> {
        self.members.get(&node).map(|m| m.cluster)
    }

    /// Iterator over alive (incl. leaving and suspect) members, in id
    /// order. Suspect members still hold their resources and count as
    /// members until the detector resolves their silence.
    pub fn alive(&self) -> impl Iterator<Item = (NodeId, ClusterId)> + '_ {
        self.members.iter().filter_map(|(&id, m)| {
            matches!(
                m.state,
                MemberState::Alive | MemberState::Leaving | MemberState::Suspect
            )
            .then_some((id, m.cluster))
        })
    }

    /// Members currently Suspect, in id order.
    pub fn suspects(&self) -> Vec<NodeId> {
        self.members
            .iter()
            .filter_map(|(&id, m)| (m.state == MemberState::Suspect).then_some(id))
            .collect()
    }

    /// Number of alive (incl. leaving) members.
    pub fn alive_count(&self) -> usize {
        self.alive().count()
    }

    /// Alive members of one cluster.
    pub fn alive_in_cluster(&self, cluster: ClusterId) -> Vec<NodeId> {
        self.alive()
            .filter_map(|(id, c)| (c == cluster).then_some(id))
            .collect()
    }

    /// Deterministic election: the lowest-id alive member.
    pub fn elect_coordinator(&self) -> Option<NodeId> {
        self.alive().map(|(id, _)| id).next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reg() -> Membership {
        Membership::new(RegistryConfig::default())
    }

    #[test]
    fn join_heartbeat_survive() {
        let mut r = reg();
        r.join(SimTime::ZERO, NodeId(1), ClusterId(0));
        r.heartbeat(SimTime::from_secs(20), NodeId(1));
        // 10s after last heartbeat: within the 15s suspicion threshold.
        assert!(r.detect_failures(SimTime::from_secs(30)).is_empty());
        assert_eq!(r.state(NodeId(1)), Some(MemberState::Alive));
        // 25s of silence: past suspect_after (15s) but inside the 30s
        // timeout — suspiciously silent, not dead.
        assert!(r.detect_failures(SimTime::from_secs(45)).is_empty());
        assert_eq!(r.state(NodeId(1)), Some(MemberState::Suspect));
        assert_eq!(r.alive_count(), 1, "a suspect is still a member");
    }

    #[test]
    fn suspect_resuming_heartbeats_returns_to_alive() {
        let mut r = reg();
        r.join(SimTime::ZERO, NodeId(1), ClusterId(0));
        assert!(r.detect_failures(SimTime::from_secs(20)).is_empty());
        assert_eq!(r.state(NodeId(1)), Some(MemberState::Suspect));
        // The next heartbeat is proof of life: back to Alive, and the
        // round trip is visible as Suspected → Resumed in the event log.
        r.heartbeat(SimTime::from_secs(22), NodeId(1));
        assert_eq!(r.state(NodeId(1)), Some(MemberState::Alive));
        assert_eq!(
            r.take_events(),
            vec![
                RegistryEvent::Joined(NodeId(1), ClusterId(0)),
                RegistryEvent::Suspected(NodeId(1)),
                RegistryEvent::Resumed(NodeId(1)),
            ]
        );
        // And it survives the next sweep on the refreshed clock.
        assert!(r.detect_failures(SimTime::from_secs(30)).is_empty());
        assert_eq!(r.state(NodeId(1)), Some(MemberState::Alive));
    }

    #[test]
    fn suspect_promotes_to_dead_at_the_timeout() {
        let mut r = reg();
        r.join(SimTime::ZERO, NodeId(1), ClusterId(0));
        assert!(r.detect_failures(SimTime::from_secs(20)).is_empty());
        assert_eq!(r.state(NodeId(1)), Some(MemberState::Suspect));
        // Exactly at the timeout: strict `>` keeps it Suspect.
        assert!(r.detect_failures(SimTime::from_secs(30)).is_empty());
        assert_eq!(r.state(NodeId(1)), Some(MemberState::Suspect));
        // Past it: promoted to Dead and reported exactly once.
        assert_eq!(
            r.detect_failures(SimTime::from_micros(30_000_001)),
            vec![NodeId(1)]
        );
        assert_eq!(r.state(NodeId(1)), Some(MemberState::Dead));
        assert!(r.detect_failures(SimTime::from_secs(60)).is_empty());
    }

    #[test]
    fn coarse_sweep_skips_suspect_straight_to_dead() {
        // A detector that only wakes after the full timeout has elapsed
        // never observed the Suspect window — the member must still die
        // on time (promotion is by silence duration, not by step count).
        let mut r = reg();
        r.join(SimTime::ZERO, NodeId(1), ClusterId(0));
        assert_eq!(r.detect_failures(SimTime::from_secs(50)), vec![NodeId(1)]);
        assert_eq!(r.state(NodeId(1)), Some(MemberState::Dead));
    }

    #[test]
    fn flapping_suspicion_emits_no_death_and_no_duplicate_events() {
        let mut r = reg();
        r.join(SimTime::ZERO, NodeId(1), ClusterId(0));
        let mut t = 0u64;
        for _ in 0..4 {
            // Silent long enough to be suspected...
            t += 20;
            assert!(r.detect_failures(SimTime::from_secs(t)).is_empty());
            assert_eq!(r.state(NodeId(1)), Some(MemberState::Suspect));
            // A second sweep while already Suspect is not re-reported.
            assert!(r.detect_failures(SimTime::from_secs(t + 1)).is_empty());
            // ...then resumes inside the death budget.
            t += 5;
            r.heartbeat(SimTime::from_secs(t), NodeId(1));
            assert_eq!(r.state(NodeId(1)), Some(MemberState::Alive));
        }
        let events = r.take_events();
        let suspected = events
            .iter()
            .filter(|e| matches!(e, RegistryEvent::Suspected(_)))
            .count();
        let resumed = events
            .iter()
            .filter(|e| matches!(e, RegistryEvent::Resumed(_)))
            .count();
        let died = events
            .iter()
            .filter(|e| matches!(e, RegistryEvent::Died(_)))
            .count();
        assert_eq!((suspected, resumed, died), (4, 4, 0));
    }

    #[test]
    fn leaving_members_are_not_suspected() {
        // A Leaving member is already on its way out: it skips the
        // Suspect window and resolves at the death timeout directly.
        let mut r = reg();
        r.join(SimTime::ZERO, NodeId(1), ClusterId(0));
        r.signal_leave(NodeId(1));
        assert!(r.detect_failures(SimTime::from_secs(20)).is_empty());
        assert_eq!(r.state(NodeId(1)), Some(MemberState::Leaving));
        assert_eq!(r.detect_failures(SimTime::from_secs(31)), vec![NodeId(1)]);
    }

    #[test]
    fn missed_heartbeats_kill() {
        let mut r = reg();
        r.join(SimTime::ZERO, NodeId(1), ClusterId(0));
        r.join(SimTime::ZERO, NodeId(2), ClusterId(1));
        r.heartbeat(SimTime::from_secs(40), NodeId(2));
        let dead = r.detect_failures(SimTime::from_secs(50));
        assert_eq!(dead, vec![NodeId(1)]);
        assert_eq!(r.state(NodeId(1)), Some(MemberState::Dead));
        assert_eq!(r.state(NodeId(2)), Some(MemberState::Alive));
        assert_eq!(r.alive_count(), 1);
    }

    #[test]
    fn leave_signal_flow() {
        let mut r = reg();
        r.join(SimTime::ZERO, NodeId(7), ClusterId(2));
        r.signal_leave(NodeId(7));
        assert_eq!(r.state(NodeId(7)), Some(MemberState::Leaving));
        assert_eq!(r.take_signals(), vec![NodeId(7)]);
        assert!(r.take_signals().is_empty(), "signals drain once");
        // Node confirms departure.
        r.leave(NodeId(7));
        assert_eq!(r.state(NodeId(7)), Some(MemberState::Left));
        assert_eq!(r.alive_count(), 0);
    }

    #[test]
    fn signalling_a_dead_node_is_a_noop() {
        let mut r = reg();
        r.join(SimTime::ZERO, NodeId(1), ClusterId(0));
        r.report_crash(NodeId(1));
        r.signal_leave(NodeId(1));
        assert!(r.take_signals().is_empty());
        assert_eq!(r.state(NodeId(1)), Some(MemberState::Dead));
    }

    #[test]
    fn crash_report_is_idempotent_and_logged_once() {
        let mut r = reg();
        r.join(SimTime::ZERO, NodeId(1), ClusterId(0));
        r.report_crash(NodeId(1));
        r.report_crash(NodeId(1));
        let events = r.take_events();
        let deaths = events
            .iter()
            .filter(|e| matches!(e, RegistryEvent::Died(_)))
            .count();
        assert_eq!(deaths, 1);
    }

    #[test]
    fn alive_in_cluster_filters() {
        let mut r = reg();
        for i in 0..6 {
            r.join(SimTime::ZERO, NodeId(i), ClusterId((i % 2) as u16));
        }
        r.report_crash(NodeId(0));
        let c0 = r.alive_in_cluster(ClusterId(0));
        assert_eq!(c0, vec![NodeId(2), NodeId(4)]);
        assert_eq!(r.alive_in_cluster(ClusterId(1)).len(), 3);
    }

    #[test]
    fn election_is_lowest_alive_id_and_fails_over() {
        let mut r = reg();
        r.join(SimTime::ZERO, NodeId(3), ClusterId(0));
        r.join(SimTime::ZERO, NodeId(5), ClusterId(0));
        r.join(SimTime::ZERO, NodeId(9), ClusterId(1));
        assert_eq!(r.elect_coordinator(), Some(NodeId(3)));
        r.report_crash(NodeId(3));
        assert_eq!(r.elect_coordinator(), Some(NodeId(5)));
        r.leave(NodeId(5));
        assert_eq!(r.elect_coordinator(), Some(NodeId(9)));
        r.report_crash(NodeId(9));
        assert_eq!(r.elect_coordinator(), None);
    }

    #[test]
    #[should_panic(expected = "joined twice")]
    fn double_join_panics() {
        let mut r = reg();
        r.join(SimTime::ZERO, NodeId(1), ClusterId(0));
        r.join(SimTime::ZERO, NodeId(1), ClusterId(0));
    }

    #[test]
    fn rejoin_after_graceful_leave_is_allowed() {
        let mut r = reg();
        r.join(SimTime::ZERO, NodeId(1), ClusterId(0));
        r.leave(NodeId(1));
        r.join(SimTime::from_secs(10), NodeId(1), ClusterId(0));
        assert_eq!(r.state(NodeId(1)), Some(MemberState::Alive));
        let joins = r
            .take_events()
            .iter()
            .filter(|e| matches!(e, RegistryEvent::Joined(_, _)))
            .count();
        assert_eq!(joins, 2, "both incarnations are logged");
    }

    #[test]
    #[should_panic(expected = "joined twice")]
    fn rejoin_after_crash_panics() {
        // Crashed nodes are marked lost in the pool and never re-granted;
        // a join for one can only be an engine bookkeeping bug.
        let mut r = reg();
        r.join(SimTime::ZERO, NodeId(1), ClusterId(0));
        r.report_crash(NodeId(1));
        r.join(SimTime::from_secs(10), NodeId(1), ClusterId(0));
    }

    #[test]
    fn heartbeat_from_unknown_node_ignored() {
        let mut r = reg();
        r.heartbeat(SimTime::from_secs(1), NodeId(99));
        assert_eq!(r.alive_count(), 0);
    }

    #[test]
    fn events_record_full_lifecycle() {
        let mut r = reg();
        r.join(SimTime::ZERO, NodeId(1), ClusterId(0));
        r.join(SimTime::ZERO, NodeId(2), ClusterId(0));
        r.leave(NodeId(1));
        r.report_crash(NodeId(2));
        assert_eq!(
            r.take_events(),
            vec![
                RegistryEvent::Joined(NodeId(1), ClusterId(0)),
                RegistryEvent::Joined(NodeId(2), ClusterId(0)),
                RegistryEvent::Left(NodeId(1)),
                RegistryEvent::Died(NodeId(2)),
            ]
        );
    }
}
