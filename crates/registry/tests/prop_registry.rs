//! Randomized property tests for the membership registry: arbitrary
//! operation sequences keep the state machine consistent. Driven by the
//! in-repo fixed-seed RNG so every case is reproducible offline.

use sagrid_core::ids::{ClusterId, NodeId};
use sagrid_core::rng::{Rng64, Xoshiro256StarStar};
use sagrid_core::time::SimTime;
use sagrid_registry::{MemberState, Membership, RegistryConfig, RegistryEvent};

const CASES: u64 = 150;

fn rng_for(test: u64, case: u64) -> Xoshiro256StarStar {
    Xoshiro256StarStar::seeded(0x4E61_0000 + test * 1_000 + case)
}

#[derive(Debug, Clone)]
enum Op {
    Join(u32, u16),
    Heartbeat(u32),
    Leave(u32),
    Crash(u32),
    Signal(u32),
    Detect,
}

fn random_op(rng: &mut impl Rng64) -> Op {
    let n = rng.gen_range(20) as u32;
    match rng.gen_range(6) {
        0 => Op::Join(n, rng.gen_range(3) as u16),
        1 => Op::Heartbeat(n),
        2 => Op::Leave(n),
        3 => Op::Crash(n),
        4 => Op::Signal(n),
        _ => Op::Detect,
    }
}

/// Invariants across arbitrary operation sequences:
/// * a node never resurrects (Left/Dead are terminal);
/// * every Died/Left event corresponds to exactly one state change;
/// * alive counts match the per-node states;
/// * signals are only queued for alive nodes and drain exactly once.
#[test]
fn registry_state_machine_is_consistent() {
    for case in 0..CASES {
        let mut rng = rng_for(1, case);
        let n_ops = 1 + rng.gen_index(149);
        let mut reg = Membership::new(RegistryConfig::default());
        let mut joined: std::collections::BTreeSet<u32> = Default::default();
        let mut terminal: std::collections::BTreeSet<u32> = Default::default();
        let mut t = 0u64;
        for _ in 0..n_ops {
            t += 1;
            let now = SimTime::from_secs(t);
            match random_op(&mut rng) {
                Op::Join(n, c) => {
                    if joined.insert(n) {
                        reg.join(now, NodeId(n), ClusterId(c));
                    }
                }
                Op::Heartbeat(n) => reg.heartbeat(now, NodeId(n)),
                Op::Leave(n) => {
                    let was_terminal = terminal.contains(&n);
                    reg.leave(NodeId(n));
                    if joined.contains(&n) && !was_terminal {
                        terminal.insert(n);
                    }
                }
                Op::Crash(n) => {
                    let was_terminal = terminal.contains(&n);
                    reg.report_crash(NodeId(n));
                    if joined.contains(&n) && !was_terminal {
                        terminal.insert(n);
                    }
                }
                Op::Signal(n) => reg.signal_leave(NodeId(n)),
                Op::Detect => {
                    for d in reg.detect_failures(now) {
                        terminal.insert(d.0);
                    }
                }
            }
            // Terminal states never resurrect.
            for &n in &terminal {
                let s = reg.state(NodeId(n)).expect("terminal node is known");
                assert!(
                    matches!(s, MemberState::Left | MemberState::Dead),
                    "case {case}: node {n} resurrected to {s:?}"
                );
            }
            // Alive set is exactly joined minus terminal.
            let alive: std::collections::BTreeSet<u32> = reg.alive().map(|(id, _)| id.0).collect();
            let expected: std::collections::BTreeSet<u32> =
                joined.difference(&terminal).copied().collect();
            assert_eq!(alive, expected, "case {case}");
        }
        // Signals drain exactly once and only for nodes that were alive
        // when signalled.
        let signalled = reg.take_signals();
        for n in &signalled {
            assert!(joined.contains(&n.0), "case {case}");
        }
        assert!(reg.take_signals().is_empty(), "case {case}");
        // Event log: one Joined per join; Died/Left counts match terminal.
        let events = reg.take_events();
        let joins = events
            .iter()
            .filter(|e| matches!(e, RegistryEvent::Joined(_, _)))
            .count();
        assert_eq!(joins, joined.len(), "case {case}");
        let ends = events
            .iter()
            .filter(|e| matches!(e, RegistryEvent::Died(_) | RegistryEvent::Left(_)))
            .count();
        assert_eq!(ends, terminal.len(), "case {case}");
    }
}

/// The failure detector is sound and complete with respect to the timeout:
/// nodes heartbeating within the window survive, silent nodes die.
#[test]
fn failure_detection_matches_heartbeat_recency() {
    for case in 0..CASES {
        let mut rng = rng_for(2, case);
        let cfg = RegistryConfig::with_timeout(sagrid_core::time::SimDuration::from_secs(30));
        let mut reg = Membership::new(cfg);
        for n in 0..10u32 {
            reg.join(SimTime::ZERO, NodeId(n), ClusterId(0));
        }
        let mut last_hb = [0u64; 10];
        let n_beats = rng.gen_index(60);
        let mut heartbeats: Vec<(u32, u64)> = (0..n_beats)
            .map(|_| (rng.gen_range(10) as u32, rng.gen_range(100)))
            .collect();
        heartbeats.sort_by_key(|&(_, t)| t);
        for (n, t) in heartbeats {
            reg.heartbeat(SimTime::from_secs(t), NodeId(n));
            last_hb[n as usize] = last_hb[n as usize].max(t);
        }
        let check_at = 100 + rng.gen_range(100);
        let now = SimTime::from_secs(check_at);
        let died = reg.detect_failures(now);
        for n in 0..10u32 {
            let silent_for = check_at - last_hb[n as usize];
            if silent_for > 30 {
                assert!(
                    died.contains(&NodeId(n)),
                    "case {case}: node {n} silent {silent_for}s"
                );
            } else {
                assert!(
                    !died.contains(&NodeId(n)),
                    "case {case}: node {n} heartbeat {silent_for}s ago"
                );
            }
        }
    }
}
