//! Property tests for the membership registry: arbitrary operation
//! sequences keep the state machine consistent.

use proptest::prelude::*;
use sagrid_core::ids::{ClusterId, NodeId};
use sagrid_core::time::SimTime;
use sagrid_registry::{MemberState, Membership, RegistryConfig, RegistryEvent};

#[derive(Debug, Clone)]
enum Op {
    Join(u32, u16),
    Heartbeat(u32),
    Leave(u32),
    Crash(u32),
    Signal(u32),
    Detect,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u32..20, 0u16..3).prop_map(|(n, c)| Op::Join(n, c)),
        (0u32..20).prop_map(Op::Heartbeat),
        (0u32..20).prop_map(Op::Leave),
        (0u32..20).prop_map(Op::Crash),
        (0u32..20).prop_map(Op::Signal),
        Just(Op::Detect),
    ]
}

proptest! {
    /// Invariants across arbitrary operation sequences:
    /// * a node never resurrects (Left/Dead are terminal);
    /// * every Died/Left event corresponds to exactly one state change;
    /// * alive counts match the per-node states;
    /// * signals are only queued for alive nodes and drain exactly once.
    #[test]
    fn registry_state_machine_is_consistent(ops in prop::collection::vec(arb_op(), 1..150)) {
        let mut reg = Membership::new(RegistryConfig::default());
        let mut joined: std::collections::BTreeSet<u32> = Default::default();
        let mut terminal: std::collections::BTreeSet<u32> = Default::default();
        let mut t = 0u64;
        for op in ops {
            t += 1;
            let now = SimTime::from_secs(t);
            match op {
                Op::Join(n, c) => {
                    if joined.insert(n) {
                        reg.join(now, NodeId(n), ClusterId(c));
                    }
                }
                Op::Heartbeat(n) => reg.heartbeat(now, NodeId(n)),
                Op::Leave(n) => {
                    let was_terminal = terminal.contains(&n);
                    reg.leave(NodeId(n));
                    if joined.contains(&n) && !was_terminal {
                        terminal.insert(n);
                    }
                }
                Op::Crash(n) => {
                    let was_terminal = terminal.contains(&n);
                    reg.report_crash(NodeId(n));
                    if joined.contains(&n) && !was_terminal {
                        terminal.insert(n);
                    }
                }
                Op::Signal(n) => reg.signal_leave(NodeId(n)),
                Op::Detect => {
                    for d in reg.detect_failures(now) {
                        terminal.insert(d.0);
                    }
                }
            }
            // Terminal states never resurrect.
            for &n in &terminal {
                let s = reg.state(NodeId(n)).expect("terminal node is known");
                prop_assert!(
                    matches!(s, MemberState::Left | MemberState::Dead),
                    "node {n} resurrected to {s:?}"
                );
            }
            // Alive set is exactly joined minus terminal.
            let alive: std::collections::BTreeSet<u32> =
                reg.alive().map(|(id, _)| id.0).collect();
            let expected: std::collections::BTreeSet<u32> =
                joined.difference(&terminal).copied().collect();
            prop_assert_eq!(&alive, &expected);
        }
        // Signals drain exactly once and only for nodes that were alive
        // when signalled.
        let signalled = reg.take_signals();
        for n in &signalled {
            prop_assert!(joined.contains(&n.0));
        }
        prop_assert!(reg.take_signals().is_empty());
        // Event log: one Joined per join; Died/Left counts match terminal.
        let events = reg.take_events();
        let joins = events
            .iter()
            .filter(|e| matches!(e, RegistryEvent::Joined(_, _)))
            .count();
        prop_assert_eq!(joins, joined.len());
        let ends = events
            .iter()
            .filter(|e| matches!(e, RegistryEvent::Died(_) | RegistryEvent::Left(_)))
            .count();
        prop_assert_eq!(ends, terminal.len());
    }

    /// The failure detector is sound and complete with respect to the
    /// timeout: nodes heartbeating within the window survive, silent nodes
    /// die.
    #[test]
    fn failure_detection_matches_heartbeat_recency(
        heartbeats in prop::collection::vec((0u32..10, 0u64..100), 0..60),
        check_at in 100u64..200,
    ) {
        let cfg = RegistryConfig {
            heartbeat_timeout: sagrid_core::time::SimDuration::from_secs(30),
        };
        let mut reg = Membership::new(cfg);
        for n in 0..10u32 {
            reg.join(SimTime::ZERO, NodeId(n), ClusterId(0));
        }
        let mut last_hb = [0u64; 10];
        let mut sorted = heartbeats.clone();
        sorted.sort_by_key(|&(_, t)| t);
        for (n, t) in sorted {
            reg.heartbeat(SimTime::from_secs(t), NodeId(n));
            last_hb[n as usize] = last_hb[n as usize].max(t);
        }
        let now = SimTime::from_secs(check_at);
        let died = reg.detect_failures(now);
        for n in 0..10u32 {
            let silent_for = check_at - last_hb[n as usize];
            if silent_for > 30 {
                prop_assert!(died.contains(&NodeId(n)), "node {n} silent {silent_for}s");
            } else {
                prop_assert!(!died.contains(&NodeId(n)), "node {n} heartbeat {silent_for}s ago");
            }
        }
    }
}
