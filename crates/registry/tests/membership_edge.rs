//! Edge cases of the membership failure detector that the process-mode
//! hub depends on: the timeout boundary is strict, a detection sweep is
//! idempotent, and the deterministic election re-elects after the elected
//! node itself dies of heartbeat silence.

use sagrid_core::ids::{ClusterId, NodeId};
use sagrid_core::time::{SimDuration, SimTime};
use sagrid_registry::{MemberState, Membership, RegistryConfig, RegistryEvent};

fn registry(timeout: SimDuration) -> Membership {
    Membership::new(RegistryConfig::with_timeout(timeout))
}

#[test]
fn boundaries_are_strict_for_both_suspicion_and_death() {
    // Both detector transitions use a strict `>` comparison: a member
    // whose silence equals the suspicion threshold exactly is still
    // Alive, one whose silence equals the timeout exactly is still (only)
    // Suspect, and one microsecond more kills it. The hub's wall-clock
    // mapping relies on this, otherwise a heartbeat arriving in the same
    // detector tick would be a coin flip.
    let timeout = SimDuration::from_micros(1_000); // suspect_after = 500
    let mut r = registry(timeout);
    r.join(SimTime::ZERO, NodeId(0), ClusterId(0));

    assert!(r.detect_failures(SimTime::from_micros(500)).is_empty());
    assert_eq!(r.state(NodeId(0)), Some(MemberState::Alive));

    assert!(r.detect_failures(SimTime::from_micros(501)).is_empty());
    assert_eq!(r.state(NodeId(0)), Some(MemberState::Suspect));

    assert!(r.detect_failures(SimTime::from_micros(1_000)).is_empty());
    assert_eq!(r.state(NodeId(0)), Some(MemberState::Suspect));

    let dead = r.detect_failures(SimTime::from_micros(1_001));
    assert_eq!(dead, vec![NodeId(0)]);
    assert_eq!(r.state(NodeId(0)), Some(MemberState::Dead));
}

#[test]
fn suspect_resume_leaves_no_trace_and_full_death_budget() {
    // A suspect that resumes gets its full death budget back from the
    // resume heartbeat — suspicion is not a strike against it.
    let timeout = SimDuration::from_micros(1_000);
    let mut r = registry(timeout);
    r.join(SimTime::ZERO, NodeId(0), ClusterId(0));
    assert!(r.detect_failures(SimTime::from_micros(600)).is_empty());
    assert_eq!(r.state(NodeId(0)), Some(MemberState::Suspect));
    r.heartbeat(SimTime::from_micros(700), NodeId(0));
    assert_eq!(r.state(NodeId(0)), Some(MemberState::Alive));
    // 1_000 µs after the resume: exactly the full budget, still in.
    assert!(r.detect_failures(SimTime::from_micros(1_700)).is_empty());
    assert_ne!(r.state(NodeId(0)), Some(MemberState::Dead));
    // Die only at resume + timeout + 1.
    assert_eq!(
        r.detect_failures(SimTime::from_micros(1_701)),
        vec![NodeId(0)]
    );
}

#[test]
fn detect_failures_is_idempotent() {
    // Repeated sweeps past the same death must not re-report it: the hub
    // runs the detector every tick and forwards each death to the
    // coordinator exactly once (record_crashed is also idempotent, but the
    // wire traffic should not repeat either).
    let mut r = registry(SimDuration::from_secs(1));
    r.join(SimTime::ZERO, NodeId(4), ClusterId(1));

    let first = r.detect_failures(SimTime::from_secs(5));
    assert_eq!(first, vec![NodeId(4)]);
    let second = r.detect_failures(SimTime::from_secs(6));
    assert!(second.is_empty(), "death re-reported: {second:?}");
    let third = r.detect_failures(SimTime::from_secs(60));
    assert!(third.is_empty());

    let died: Vec<_> = r
        .take_events()
        .into_iter()
        .filter(|e| matches!(e, RegistryEvent::Died(_)))
        .collect();
    assert_eq!(died, vec![RegistryEvent::Died(NodeId(4))]);
}

#[test]
fn coordinator_reelection_after_the_elected_node_crashes() {
    // Election is deterministic (lowest alive id). When the elected node
    // dies of heartbeat silence the next-lowest survivor takes over, and
    // heartbeats from the dead ex-coordinator are ignored — it cannot
    // resurrect itself and split the election.
    let mut r = registry(SimDuration::from_secs(1));
    r.join(SimTime::ZERO, NodeId(2), ClusterId(0));
    r.join(SimTime::ZERO, NodeId(5), ClusterId(0));
    r.join(SimTime::ZERO, NodeId(8), ClusterId(1));
    assert_eq!(r.elect_coordinator(), Some(NodeId(2)));

    // Only the two higher-id members keep heartbeating.
    r.heartbeat(SimTime::from_secs(2), NodeId(5));
    r.heartbeat(SimTime::from_secs(2), NodeId(8));
    let dead = r.detect_failures(SimTime::from_secs(2));
    assert_eq!(dead, vec![NodeId(2)]);
    assert_eq!(r.elect_coordinator(), Some(NodeId(5)));

    // A late heartbeat from the dead node must not flip the election back.
    r.heartbeat(SimTime::from_secs(3), NodeId(2));
    assert_eq!(r.state(NodeId(2)), Some(MemberState::Dead));
    assert_eq!(r.elect_coordinator(), Some(NodeId(5)));

    // The failover cascades: kill the new coordinator too.
    r.heartbeat(SimTime::from_secs(4), NodeId(8));
    let dead = r.detect_failures(SimTime::from_secs(4));
    assert_eq!(dead, vec![NodeId(5)]);
    assert_eq!(r.elect_coordinator(), Some(NodeId(8)));
}
