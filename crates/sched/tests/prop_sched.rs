//! Randomized property tests for the resource pool: conservation and
//! policy invariants under arbitrary allocate/release/crash interleavings.
//! Driven by the in-repo fixed-seed RNG so every case is reproducible
//! offline.

use sagrid_core::config::GridConfig;
use sagrid_core::ids::{ClusterId, NodeId};
use sagrid_core::rng::{Rng64, Xoshiro256StarStar};
use sagrid_sched::{AllocPolicy, NodeGrant, Requirements, ResourcePool};
use std::collections::BTreeSet;

const CASES: u64 = 150;

fn rng_for(test: u64, case: u64) -> Xoshiro256StarStar {
    Xoshiro256StarStar::seeded(0x5C4E_0000 + test * 1_000 + case)
}

#[derive(Debug, Clone)]
enum Op {
    Request(usize),
    ReleaseSome(usize),
    CrashSome(usize),
}

fn random_op(rng: &mut impl Rng64) -> Op {
    match rng.gen_range(3) {
        0 => Op::Request(rng.gen_index(20)),
        1 => Op::ReleaseSome(rng.gen_index(10)),
        _ => Op::CrashSome(rng.gen_index(4)),
    }
}

/// Node conservation: free + held + lost == total, no node is ever in two
/// states, grants are unique.
#[test]
fn pool_conserves_nodes() {
    for case in 0..CASES {
        let mut rng = rng_for(1, case);
        let n_ops = 1 + rng.gen_index(59);
        let total = 24usize;
        let mut pool = ResourcePool::new(&GridConfig::uniform(3, 8));
        let mut held: Vec<NodeGrant> = Vec::new();
        let mut lost: BTreeSet<NodeId> = BTreeSet::new();
        let empty_nodes = BTreeSet::new();
        let empty_clusters = BTreeSet::new();
        for _ in 0..n_ops {
            match random_op(&mut rng) {
                Op::Request(n) => {
                    let grants = pool.request(
                        n,
                        AllocPolicy::LocalityAware,
                        &Requirements::default(),
                        &empty_nodes,
                        &empty_clusters,
                        &[],
                    );
                    for g in &grants {
                        assert!(
                            !held.iter().any(|h| h.node == g.node),
                            "case {case}: node {} double-granted",
                            g.node
                        );
                        assert!(!lost.contains(&g.node), "case {case}: lost node granted");
                    }
                    held.extend(grants);
                }
                Op::ReleaseSome(k) => {
                    for _ in 0..k.min(held.len()) {
                        let g = held.pop().expect("non-empty");
                        pool.release(g.node);
                    }
                }
                Op::CrashSome(k) => {
                    for _ in 0..k.min(held.len()) {
                        let g = held.pop().expect("non-empty");
                        pool.mark_lost(g.node);
                        pool.release(g.node); // crash + release path
                        lost.insert(g.node);
                    }
                }
            }
            assert_eq!(
                pool.free_count() + held.len() + lost.len(),
                total,
                "case {case}: conservation violated"
            );
        }
    }
}

/// Locality-aware allocation uses the minimum possible number of distinct
/// clusters for a fresh pool.
#[test]
fn locality_minimizes_cluster_spread() {
    for n in 1usize..24 {
        let mut pool = ResourcePool::new(&GridConfig::uniform(3, 8));
        let grants = pool.request(
            n,
            AllocPolicy::LocalityAware,
            &Requirements::default(),
            &BTreeSet::new(),
            &BTreeSet::new(),
            &[],
        );
        assert_eq!(grants.len(), n.min(24));
        let clusters: BTreeSet<ClusterId> = grants.iter().map(|g| g.cluster).collect();
        let min_clusters = n.div_ceil(8);
        assert_eq!(clusters.len(), min_clusters.min(3), "n = {n}");
    }
}

/// Fastest-first never grants a slower node while a faster one is free.
#[test]
fn fastest_first_is_greedy() {
    for case in 0..CASES {
        let mut rng = rng_for(3, case);
        let n_clusters = 3 + rng.gen_index(3);
        let speeds: Vec<f64> = (0..n_clusters).map(|_| 0.1 + 0.9 * rng.gen_f64()).collect();
        let n = 1 + rng.gen_index(11);
        let mut cfg = GridConfig::uniform(speeds.len(), 4);
        for (c, &s) in cfg.clusters.iter_mut().zip(&speeds) {
            c.node_speed = s;
        }
        let mut pool = ResourcePool::new(&cfg);
        let grants = pool.request(
            n,
            AllocPolicy::FastestFirst,
            &Requirements::default(),
            &BTreeSet::new(),
            &BTreeSet::new(),
            &[],
        );
        // Granted speeds must be nonincreasing.
        for w in grants.windows(2) {
            assert!(w[0].base_speed >= w[1].base_speed - 1e-12, "case {case}");
        }
        // And the slowest granted speed must be ≥ the fastest *remaining*
        // free node's speed only when clusters were exhausted in order —
        // check the simpler invariant: every granted speed is ≥ any speed
        // that still has free capacity beyond the grant count.
        if let Some(last) = grants.last() {
            let mut by_speed: Vec<f64> = speeds.clone();
            by_speed.sort_by(|a, b| b.partial_cmp(a).expect("finite"));
            let expected_min = {
                let full = n / 4;
                by_speed
                    .get(full)
                    .copied()
                    .unwrap_or(*by_speed.last().expect("non-empty"))
            };
            assert!(last.base_speed >= expected_min - 1e-12, "case {case}");
        }
    }
}

/// Requirements filtering is sound: no grant violates the bounds.
#[test]
fn requirements_are_honoured() {
    for case in 0..CASES {
        let mut rng = rng_for(4, case);
        let min_bw = 1_000.0 + (1e9 - 1_000.0) * rng.gen_f64();
        let n = 1 + rng.gen_index(29);
        let mut pool = ResourcePool::new(&GridConfig::uniform(3, 8));
        pool.set_uplink_estimate(ClusterId(1), 500.0); // very slow site
        let req = Requirements {
            min_uplink_bps: Some(min_bw),
            min_speed: None,
        };
        let grants = pool.request(
            n,
            AllocPolicy::LocalityAware,
            &req,
            &BTreeSet::new(),
            &BTreeSet::new(),
            &[],
        );
        for g in &grants {
            assert!(pool.uplink_estimate(g.cluster) >= min_bw, "case {case}");
        }
    }
}
