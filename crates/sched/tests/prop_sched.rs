//! Property tests for the resource pool: conservation and policy
//! invariants under arbitrary allocate/release/crash interleavings.

use proptest::prelude::*;
use sagrid_core::config::GridConfig;
use sagrid_core::ids::{ClusterId, NodeId};
use sagrid_sched::{AllocPolicy, NodeGrant, Requirements, ResourcePool};
use std::collections::BTreeSet;

#[derive(Debug, Clone)]
enum Op {
    Request(usize),
    ReleaseSome(usize),
    CrashSome(usize),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..20).prop_map(Op::Request),
        (0usize..10).prop_map(Op::ReleaseSome),
        (0usize..4).prop_map(Op::CrashSome),
    ]
}

proptest! {
    /// Node conservation: free + held + lost == total, no node is ever in
    /// two states, grants are unique.
    #[test]
    fn pool_conserves_nodes(ops in prop::collection::vec(arb_op(), 1..60)) {
        let total = 24usize;
        let mut pool = ResourcePool::new(&GridConfig::uniform(3, 8));
        let mut held: Vec<NodeGrant> = Vec::new();
        let mut lost: BTreeSet<NodeId> = BTreeSet::new();
        let empty_nodes = BTreeSet::new();
        let empty_clusters = BTreeSet::new();
        for op in ops {
            match op {
                Op::Request(n) => {
                    let grants = pool.request(
                        n,
                        AllocPolicy::LocalityAware,
                        &Requirements::default(),
                        &empty_nodes,
                        &empty_clusters,
                        &[],
                    );
                    for g in &grants {
                        prop_assert!(
                            !held.iter().any(|h| h.node == g.node),
                            "node {} double-granted",
                            g.node
                        );
                        prop_assert!(!lost.contains(&g.node), "lost node granted");
                    }
                    held.extend(grants);
                }
                Op::ReleaseSome(k) => {
                    for _ in 0..k.min(held.len()) {
                        let g = held.pop().expect("non-empty");
                        pool.release(g.node);
                    }
                }
                Op::CrashSome(k) => {
                    for _ in 0..k.min(held.len()) {
                        let g = held.pop().expect("non-empty");
                        pool.mark_lost(g.node);
                        pool.release(g.node); // crash + release path
                        lost.insert(g.node);
                    }
                }
            }
            prop_assert_eq!(
                pool.free_count() + held.len() + lost.len(),
                total,
                "conservation violated"
            );
        }
    }

    /// Locality-aware allocation uses the minimum possible number of
    /// distinct clusters for a fresh pool.
    #[test]
    fn locality_minimizes_cluster_spread(n in 1usize..24) {
        let mut pool = ResourcePool::new(&GridConfig::uniform(3, 8));
        let grants = pool.request(
            n,
            AllocPolicy::LocalityAware,
            &Requirements::default(),
            &BTreeSet::new(),
            &BTreeSet::new(),
            &[],
        );
        prop_assert_eq!(grants.len(), n.min(24));
        let clusters: BTreeSet<ClusterId> = grants.iter().map(|g| g.cluster).collect();
        let min_clusters = n.div_ceil(8);
        prop_assert_eq!(clusters.len(), min_clusters.min(3));
    }

    /// Fastest-first never grants a slower node while a faster one is
    /// free.
    #[test]
    fn fastest_first_is_greedy(speeds in prop::collection::vec(0.1f64..1.0, 3..6), n in 1usize..12) {
        let mut cfg = GridConfig::uniform(speeds.len(), 4);
        for (c, &s) in cfg.clusters.iter_mut().zip(&speeds) {
            c.node_speed = s;
        }
        let mut pool = ResourcePool::new(&cfg);
        let grants = pool.request(
            n,
            AllocPolicy::FastestFirst,
            &Requirements::default(),
            &BTreeSet::new(),
            &BTreeSet::new(),
            &[],
        );
        // Granted speeds must be nonincreasing.
        for w in grants.windows(2) {
            prop_assert!(w[0].base_speed >= w[1].base_speed - 1e-12);
        }
        // And the slowest granted speed must be ≥ the fastest *remaining*
        // free node's speed only when clusters were exhausted in order —
        // check the simpler invariant: every granted speed is ≥ any speed
        // that still has free capacity beyond the grant count.
        if let Some(last) = grants.last() {
            let mut by_speed: Vec<f64> = speeds.clone();
            by_speed.sort_by(|a, b| b.partial_cmp(a).expect("finite"));
            let expected_min = {
                let full = n / 4;
                by_speed.get(full).copied().unwrap_or(*by_speed.last().expect("non-empty"))
            };
            prop_assert!(last.base_speed >= expected_min - 1e-12);
        }
    }

    /// Requirements filtering is sound: no grant violates the bounds.
    #[test]
    fn requirements_are_honoured(min_bw in 1_000.0f64..1e9, n in 1usize..30) {
        let mut pool = ResourcePool::new(&GridConfig::uniform(3, 8));
        pool.set_uplink_estimate(ClusterId(1), 500.0); // very slow site
        let req = Requirements {
            min_uplink_bps: Some(min_bw),
            min_speed: None,
        };
        let grants = pool.request(
            n,
            AllocPolicy::LocalityAware,
            &req,
            &BTreeSet::new(),
            &BTreeSet::new(),
            &[],
        );
        for g in &grants {
            prop_assert!(pool.uplink_estimate(g.cluster) >= min_bw);
        }
    }
}
