//! # sagrid-sched
//!
//! A Zorilla-like grid scheduler (paper §4): "a peer-to-peer supercomputing
//! middleware which allows straightforward allocation of processors in
//! multiple clusters, providing locality-aware scheduling which tries to
//! allocate processors that are located close to each other".
//!
//! The adaptation coordinator interacts with the scheduler in three ways:
//!
//! 1. **request nodes** — "currently we add any nodes the scheduler gives
//!    us" (locality-aware policy). The paper's future-work extensions —
//!    fastest-first allocation via a benchmark handed to the scheduler, and
//!    requirement bounds (minimal uplink bandwidth) learned at runtime — are
//!    implemented as [`AllocPolicy::FastestFirst`] and
//!    [`Requirements::min_uplink_bps`];
//! 2. **release nodes** — removed nodes return to the pool;
//! 3. **exclusions** — blacklisted nodes/clusters are never handed back.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod pool;

pub use pool::{AllocPolicy, NodeGrant, Requirements, ResourcePool};
