//! Grid resource pool with locality-aware allocation.

use sagrid_core::config::GridConfig;
use sagrid_core::ids::{ClusterId, NodeId};
use sagrid_core::metrics::{Counter, Metrics};
use std::collections::BTreeSet;
use std::sync::Arc;

/// A node handed out by the scheduler.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NodeGrant {
    /// The granted node.
    pub node: NodeId,
    /// Its site.
    pub cluster: ClusterId,
    /// The node's intrinsic relative speed (before any background load).
    pub base_speed: f64,
}

/// Requirements the coordinator has *learned* about the application
/// (paper §3.3: "during application execution we can learn some application
/// requirements and pass them to the scheduler").
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Requirements {
    /// Minimal uplink bandwidth (bytes/s) a site must have. Tightened each
    /// time a badly-connected cluster is removed.
    pub min_uplink_bps: Option<f64>,
    /// Minimal node speed (for opportunistic-migration experiments).
    pub min_speed: Option<f64>,
}

/// Allocation policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AllocPolicy {
    /// Zorilla's default: pack requested nodes into as few sites as
    /// possible, preferring sites where the application already runs
    /// (minimizes wide-area communication).
    LocalityAware,
    /// Paper future-work extension: the scheduler measures per-site speed
    /// with an application benchmark and hands out the fastest nodes first.
    FastestFirst,
}

#[derive(Clone, Debug)]
struct ClusterPool {
    id: ClusterId,
    /// Free nodes (id-ordered for determinism).
    free: BTreeSet<NodeId>,
    /// Intrinsic node speed for this (homogeneous) site.
    base_speed: f64,
    /// Scheduler's current estimate of the site's uplink bandwidth.
    uplink_bps: f64,
    /// Crashed/unavailable nodes (never handed out again).
    lost: BTreeSet<NodeId>,
}

/// The grid-wide pool of allocatable processors.
///
/// Node ids are assigned cluster-major at construction: cluster 0 owns ids
/// `0..n0`, cluster 1 owns `n0..n0+n1`, and so on. This mapping is stable
/// for the lifetime of the pool, which keeps engine-side dense arrays cheap.
#[derive(Clone, Debug)]
pub struct ResourcePool {
    clusters: Vec<ClusterPool>,
    /// Cluster of every node ever created (dense, indexed by node id).
    node_cluster: Vec<ClusterId>,
    /// Pre-resolved metric handles; `None` when metrics are disabled so the
    /// hot path pays a single branch.
    sm: Option<SchedMetrics>,
}

/// Pre-resolved counter handles for the scheduler, so the allocation path
/// never does a name lookup.
#[derive(Clone, Debug)]
struct SchedMetrics {
    grants: Arc<Counter>,
    requests: Arc<Counter>,
    releases: Arc<Counter>,
    nodes_lost: Arc<Counter>,
}

impl ResourcePool {
    /// Builds a pool with every node of `cfg` free.
    pub fn new(cfg: &GridConfig) -> Self {
        let mut clusters = Vec::with_capacity(cfg.clusters.len());
        let mut node_cluster = Vec::with_capacity(cfg.total_nodes());
        let mut next = 0u32;
        for (ci, spec) in cfg.clusters.iter().enumerate() {
            let id = ClusterId(ci as u16);
            let mut free = BTreeSet::new();
            for _ in 0..spec.nodes {
                free.insert(NodeId(next));
                node_cluster.push(id);
                next += 1;
            }
            clusters.push(ClusterPool {
                id,
                free,
                base_speed: spec.node_speed,
                uplink_bps: spec.uplink.bandwidth_bps,
                lost: BTreeSet::new(),
            });
        }
        Self {
            clusters,
            node_cluster,
            sm: None,
        }
    }

    /// Connects the pool to a metrics registry. When `metrics` is enabled
    /// the pool counts grants (`sched.grants`), allocation requests
    /// (`sched.requests`), releases (`sched.releases`) and permanently lost
    /// nodes (`sched.nodes_lost`); when disabled this is a no-op.
    pub fn set_metrics(&mut self, metrics: &Metrics) {
        self.sm = metrics.is_enabled().then(|| SchedMetrics {
            grants: metrics.counter("sched.grants").expect("metrics enabled"),
            requests: metrics.counter("sched.requests").expect("metrics enabled"),
            releases: metrics.counter("sched.releases").expect("metrics enabled"),
            nodes_lost: metrics
                .counter("sched.nodes_lost")
                .expect("metrics enabled"),
        });
    }

    /// The cluster a node belongs to.
    pub fn cluster_of(&self, node: NodeId) -> ClusterId {
        self.node_cluster[node.index()]
    }

    /// Total free nodes across all sites.
    pub fn free_count(&self) -> usize {
        self.clusters.iter().map(|c| c.free.len()).sum()
    }

    /// Free nodes at one site.
    pub fn free_in_cluster(&self, cluster: ClusterId) -> usize {
        self.clusters[cluster.index()].free.len()
    }

    /// Updates the scheduler's estimate of a site's uplink bandwidth (fed by
    /// grid monitoring, or by the coordinator's own transfer measurements).
    pub fn set_uplink_estimate(&mut self, cluster: ClusterId, bps: f64) {
        self.clusters[cluster.index()].uplink_bps = bps;
    }

    /// Current uplink estimate for a site.
    pub fn uplink_estimate(&self, cluster: ClusterId) -> f64 {
        self.clusters[cluster.index()].uplink_bps
    }

    /// Takes specific counts from specific clusters — used to place the
    /// application's *initial* resource set ("we start an application on any
    /// set of resources"). Panics if a cluster lacks free nodes.
    pub fn allocate_initial(&mut self, layout: &[(ClusterId, usize)]) -> Vec<NodeGrant> {
        let mut grants = Vec::new();
        for &(cid, n) in layout {
            let c = &mut self.clusters[cid.index()];
            assert!(
                c.free.len() >= n,
                "cluster {cid} has {} free nodes, {n} requested",
                c.free.len()
            );
            for _ in 0..n {
                let node = *c.free.iter().next().expect("checked above");
                c.free.remove(&node);
                grants.push(NodeGrant {
                    node,
                    cluster: cid,
                    base_speed: c.base_speed,
                });
            }
        }
        if let Some(sm) = &self.sm {
            sm.grants.add(grants.len() as u64);
        }
        grants
    }

    /// Requests up to `n` nodes. Returns fewer (possibly zero) grants when
    /// the eligible pool is smaller than `n` — exactly how a real grid
    /// scheduler behaves when resources are scarce.
    ///
    /// * `policy` — see [`AllocPolicy`];
    /// * `req` — learned requirements; sites violating them are skipped;
    /// * `excluded_nodes` / `excluded_clusters` — the coordinator's
    ///   blacklist;
    /// * `prefer` — sites where the application already has nodes
    ///   (locality).
    pub fn request(
        &mut self,
        n: usize,
        policy: AllocPolicy,
        req: &Requirements,
        excluded_nodes: &BTreeSet<NodeId>,
        excluded_clusters: &BTreeSet<ClusterId>,
        prefer: &[ClusterId],
    ) -> Vec<NodeGrant> {
        let mut grants = Vec::new();
        if let Some(sm) = &self.sm {
            sm.requests.inc();
        }
        if n == 0 {
            return grants;
        }
        // Rank eligible clusters.
        let mut order: Vec<usize> = (0..self.clusters.len())
            .filter(|&i| {
                let c = &self.clusters[i];
                if excluded_clusters.contains(&c.id) || c.free.is_empty() {
                    return false;
                }
                if let Some(min_bw) = req.min_uplink_bps {
                    if c.uplink_bps < min_bw {
                        return false;
                    }
                }
                if let Some(min_speed) = req.min_speed {
                    if c.base_speed < min_speed {
                        return false;
                    }
                }
                true
            })
            .collect();
        match policy {
            AllocPolicy::LocalityAware => {
                // Preferred sites first, then the fullest sites (fewest
                // distinct sites overall), id as the final deterministic
                // tie-break.
                order.sort_by_key(|&i| {
                    let c = &self.clusters[i];
                    let preferred = prefer.contains(&c.id);
                    (!preferred, usize::MAX - c.free.len(), c.id)
                });
            }
            AllocPolicy::FastestFirst => {
                order.sort_by(|&a, &b| {
                    let (ca, cb) = (&self.clusters[a], &self.clusters[b]);
                    cb.base_speed
                        .partial_cmp(&ca.base_speed)
                        .expect("speeds are finite")
                        .then(ca.id.cmp(&cb.id))
                });
            }
        }
        for i in order {
            if grants.len() == n {
                break;
            }
            let c = &mut self.clusters[i];
            let take: Vec<NodeId> = c
                .free
                .iter()
                .filter(|id| !excluded_nodes.contains(id))
                .take(n - grants.len())
                .copied()
                .collect();
            for node in take {
                c.free.remove(&node);
                grants.push(NodeGrant {
                    node,
                    cluster: c.id,
                    base_speed: c.base_speed,
                });
            }
        }
        if let Some(sm) = &self.sm {
            sm.grants.add(grants.len() as u64);
        }
        grants
    }

    /// Returns a node to the free pool (the application released it).
    pub fn release(&mut self, node: NodeId) {
        let cid = self.cluster_of(node);
        let c = &mut self.clusters[cid.index()];
        if !c.lost.contains(&node) {
            let newly = c.free.insert(node);
            assert!(newly, "node {node} released twice");
        }
        if let Some(sm) = &self.sm {
            sm.releases.inc();
        }
    }

    /// Removes a specific node from the free set without a grant — a hub
    /// that took over from a replicated control-plane snapshot seeds its
    /// pool this way, so ids already held by live workers are never granted
    /// a second time. Returns whether the node was actually free.
    pub fn reserve(&mut self, node: NodeId) -> bool {
        let cid = self.cluster_of(node);
        self.clusters[cid.index()].free.remove(&node)
    }

    /// Marks a node permanently unavailable (crashed hardware).
    pub fn mark_lost(&mut self, node: NodeId) {
        let cid = self.cluster_of(node);
        let c = &mut self.clusters[cid.index()];
        c.free.remove(&node);
        c.lost.insert(node);
        if let Some(sm) = &self.sm {
            sm.nodes_lost.inc();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> ResourcePool {
        // 3 clusters × 8 nodes.
        ResourcePool::new(&GridConfig::uniform(3, 8))
    }

    fn no_excl() -> (BTreeSet<NodeId>, BTreeSet<ClusterId>) {
        (BTreeSet::new(), BTreeSet::new())
    }

    #[test]
    fn ids_are_cluster_major() {
        let p = pool();
        assert_eq!(p.cluster_of(NodeId(0)), ClusterId(0));
        assert_eq!(p.cluster_of(NodeId(7)), ClusterId(0));
        assert_eq!(p.cluster_of(NodeId(8)), ClusterId(1));
        assert_eq!(p.cluster_of(NodeId(23)), ClusterId(2));
        assert_eq!(p.free_count(), 24);
    }

    #[test]
    fn initial_allocation_takes_from_named_clusters() {
        let mut p = pool();
        let g = p.allocate_initial(&[(ClusterId(0), 4), (ClusterId(2), 2)]);
        assert_eq!(g.len(), 6);
        assert_eq!(p.free_in_cluster(ClusterId(0)), 4);
        assert_eq!(p.free_in_cluster(ClusterId(1)), 8);
        assert_eq!(p.free_in_cluster(ClusterId(2)), 6);
    }

    #[test]
    fn locality_prefers_existing_sites_then_packs() {
        let mut p = pool();
        let (en, ec) = no_excl();
        // App already runs in cluster 1.
        let g = p.request(
            10,
            AllocPolicy::LocalityAware,
            &Requirements::default(),
            &en,
            &ec,
            &[ClusterId(1)],
        );
        assert_eq!(g.len(), 10);
        // All 8 of cluster 1 first, then 2 from one other site.
        let from_c1 = g.iter().filter(|x| x.cluster == ClusterId(1)).count();
        assert_eq!(from_c1, 8);
        let other_sites: BTreeSet<ClusterId> = g
            .iter()
            .map(|x| x.cluster)
            .filter(|&c| c != ClusterId(1))
            .collect();
        assert_eq!(other_sites.len(), 1, "should not spread over extra sites");
    }

    #[test]
    fn request_returns_partial_when_scarce() {
        let mut p = pool();
        let (en, ec) = no_excl();
        let g = p.request(
            100,
            AllocPolicy::LocalityAware,
            &Requirements::default(),
            &en,
            &ec,
            &[],
        );
        assert_eq!(g.len(), 24);
        assert_eq!(p.free_count(), 0);
        let g2 = p.request(
            1,
            AllocPolicy::LocalityAware,
            &Requirements::default(),
            &en,
            &ec,
            &[],
        );
        assert!(g2.is_empty());
    }

    #[test]
    fn blacklisted_cluster_never_granted() {
        let mut p = pool();
        let en = BTreeSet::new();
        let ec: BTreeSet<ClusterId> = [ClusterId(0)].into();
        let g = p.request(
            24,
            AllocPolicy::LocalityAware,
            &Requirements::default(),
            &en,
            &ec,
            &[],
        );
        assert_eq!(g.len(), 16);
        assert!(g.iter().all(|x| x.cluster != ClusterId(0)));
    }

    #[test]
    fn blacklisted_nodes_skipped_within_cluster() {
        let mut p = pool();
        let en: BTreeSet<NodeId> = [NodeId(0), NodeId(1)].into();
        let ec = BTreeSet::new();
        let g = p.request(
            8,
            AllocPolicy::LocalityAware,
            &Requirements::default(),
            &en,
            &ec,
            &[ClusterId(0)],
        );
        assert!(g.iter().all(|x| x.node != NodeId(0) && x.node != NodeId(1)));
        assert_eq!(g.len(), 8);
    }

    #[test]
    fn min_bandwidth_requirement_filters_sites() {
        let mut p = pool();
        p.set_uplink_estimate(ClusterId(1), 100_000.0); // shaped site
        let (en, ec) = no_excl();
        let req = Requirements {
            min_uplink_bps: Some(1_000_000.0),
            min_speed: None,
        };
        let g = p.request(24, AllocPolicy::LocalityAware, &req, &en, &ec, &[]);
        assert_eq!(g.len(), 16);
        assert!(g.iter().all(|x| x.cluster != ClusterId(1)));
    }

    #[test]
    fn fastest_first_prefers_fast_sites() {
        let mut cfg = GridConfig::uniform(3, 4);
        cfg.clusters[0].node_speed = 0.5;
        cfg.clusters[1].node_speed = 1.0;
        cfg.clusters[2].node_speed = 0.8;
        let mut p = ResourcePool::new(&cfg);
        let (en, ec) = no_excl();
        let g = p.request(
            6,
            AllocPolicy::FastestFirst,
            &Requirements::default(),
            &en,
            &ec,
            &[],
        );
        assert_eq!(g.len(), 6);
        // 4 from the 1.0 site, 2 from the 0.8 site.
        assert_eq!(g.iter().filter(|x| x.cluster == ClusterId(1)).count(), 4);
        assert_eq!(g.iter().filter(|x| x.cluster == ClusterId(2)).count(), 2);
    }

    #[test]
    fn release_and_reacquire() {
        let mut p = pool();
        let g = p.allocate_initial(&[(ClusterId(0), 8)]);
        assert_eq!(p.free_in_cluster(ClusterId(0)), 0);
        for x in &g {
            p.release(x.node);
        }
        assert_eq!(p.free_in_cluster(ClusterId(0)), 8);
    }

    #[test]
    #[should_panic(expected = "released twice")]
    fn double_release_panics() {
        let mut p = pool();
        let g = p.allocate_initial(&[(ClusterId(0), 1)]);
        p.release(g[0].node);
        p.release(g[0].node);
    }

    #[test]
    fn lost_nodes_never_return() {
        let mut p = pool();
        let g = p.allocate_initial(&[(ClusterId(0), 2)]);
        p.mark_lost(g[0].node);
        p.release(g[0].node); // crash then release: stays lost
        p.release(g[1].node);
        assert_eq!(p.free_in_cluster(ClusterId(0)), 7);
        let (en, ec) = no_excl();
        let all = p.request(
            24,
            AllocPolicy::LocalityAware,
            &Requirements::default(),
            &en,
            &ec,
            &[],
        );
        assert!(all.iter().all(|x| x.node != g[0].node));
    }
}
