//! The declarative scenario format.
//!
//! A scenario file is a single JSON object (parsed with the repo's
//! hand-rolled [`sagrid_core::json`] parser — no external dependencies)
//! describing a grid, an initial layout, a workload size and a list of
//! timed perturbation events. The same file drives both twins:
//!
//! * [`ScenarioSpec::sim_config`] compiles it onto a
//!   [`sagrid_simgrid::SimConfig`] whose [`InjectionSchedule`] the DES
//!   executes, and
//! * `grid-local --scenario-file` (crates/net) maps the same events onto
//!   real worker processes (speed perturbations, SIGKILL crashes, spawns).
//!
//! Primitive event kinds map 1:1 onto [`Injection`] variants; *shape*
//! kinds (`load_ramp`, `square_wave`, `brownout`, `diurnal`,
//! `flash_crowd`) are sugar that [`ScenarioSpec::compile`] lowers to
//! sequences of primitives, so neither engine needs to know about them.
//!
//! [`ScenarioSpec::to_json`] is a *canonical* writer: field order, number
//! formatting (shortest-roundtrip floats) and array layout are fixed, so
//! the same spec always serialises to the same bytes — the property the
//! fuzzer's reproducibility guarantee ("same seed ⇒ byte-identical
//! scenario file") rests on.

use sagrid_adapt::AdaptPolicy;
use sagrid_core::config::GridConfig;
use sagrid_core::ids::ClusterId;
use sagrid_core::json::{parse_json, write_f64, write_json_string, JsonValue};
use sagrid_core::time::{SimDuration, SimTime};
use sagrid_core::workload::barnes_hut_profile;
use sagrid_simgrid::{AdaptMode, SimConfig, StealPolicy, TimingConfig};
use sagrid_simnet::{Injection, InjectionSchedule, ScheduledInjection};
use std::fmt::Write as _;

/// Which grid the scenario runs on.
#[derive(Clone, Debug, PartialEq)]
pub enum GridSpec {
    /// The paper's DAS-2 system (5 clusters: 72 + 4×32 nodes).
    Das2,
    /// `clusters` uniform clusters of `nodes_per_cluster` nodes each.
    Uniform {
        /// Number of clusters.
        clusters: usize,
        /// Nodes per cluster.
        nodes_per_cluster: usize,
    },
}

impl GridSpec {
    /// Builds the concrete grid.
    pub fn build(&self) -> GridConfig {
        match *self {
            GridSpec::Das2 => GridConfig::das2(),
            GridSpec::Uniform {
                clusters,
                nodes_per_cluster,
            } => GridConfig::uniform(clusters, nodes_per_cluster),
        }
    }
}

/// One timed entry of a scenario's event list.
#[derive(Clone, Debug, PartialEq)]
pub struct TimedEvent {
    /// Firing time in virtual microseconds from the start of the run.
    pub at_us: u64,
    /// What happens.
    pub event: EventKind,
}

/// A scenario event: either a primitive perturbation (1:1 with
/// [`Injection`]) or a shape that lowers to a primitive sequence.
#[derive(Clone, Debug, PartialEq)]
pub enum EventKind {
    /// Multiply the effective load of `count` nodes (all if `None`) in
    /// `cluster` by `factor` (1.0 restores).
    CpuLoad {
        /// Affected cluster index.
        cluster: u16,
        /// Nodes affected (`None` = every node of the cluster).
        count: Option<usize>,
        /// Slowdown factor.
        factor: f64,
    },
    /// Set the effective speed of nodes to `speed` (sugar for a CPU load
    /// of `1/speed`; `speed = 1.0` restores full speed).
    Speed {
        /// Affected cluster index.
        cluster: u16,
        /// Nodes affected (`None` = every node of the cluster).
        count: Option<usize>,
        /// New relative speed in `(0, 1]`.
        speed: f64,
    },
    /// Re-shape a cluster's uplink to `bps` bytes/second.
    UplinkBandwidth {
        /// Affected cluster index.
        cluster: u16,
        /// New uplink bandwidth (bytes/second).
        bps: f64,
    },
    /// Crash every node of a cluster (fail-stop site failure).
    CrashCluster {
        /// The crashing cluster.
        cluster: u16,
    },
    /// Crash `count` nodes of `cluster`.
    CrashNodes {
        /// Affected cluster index.
        cluster: u16,
        /// Number of victims.
        count: usize,
    },
    /// SIGKILL the primary hub: a control-plane (not compute) failure.
    /// The DES has no out-of-process hub, so this compiles to no
    /// primitive injection there; process mode (`grid-local`) kills the
    /// hub process and expects a standby to take over. The invariant
    /// checker pairs each injected hub crash with exactly one
    /// `hub_failover` takeover event.
    CrashHub,
    /// Grant `count` extra nodes from the pool (external capacity).
    Grow {
        /// Number of nodes to request.
        count: usize,
        /// Preferred cluster, if any.
        prefer: Option<u16>,
    },
    /// Withdraw `count` nodes of `cluster` gracefully.
    Shrink {
        /// Affected cluster index.
        cluster: u16,
        /// Number of nodes asked to leave.
        count: usize,
    },
    /// Staircase CPU-load ramp from 1.0 up to `to_factor` in `steps`
    /// equal increments spread over `duration_us`.
    LoadRamp {
        /// Affected cluster index.
        cluster: u16,
        /// Nodes affected (`None` = all).
        count: Option<usize>,
        /// Final slowdown factor.
        to_factor: f64,
        /// Number of staircase steps (≥ 1).
        steps: usize,
        /// Ramp length in microseconds.
        duration_us: u64,
    },
    /// Square-wave duty: `factor` for half a period, restored for the
    /// other half, `cycles` times.
    SquareWave {
        /// Affected cluster index.
        cluster: u16,
        /// Nodes affected (`None` = all).
        count: Option<usize>,
        /// Slowdown factor during the high half-period.
        factor: f64,
        /// Full period length in microseconds.
        period_us: u64,
        /// Number of full cycles.
        cycles: usize,
    },
    /// Slow-network brownout: shape the uplink to `bps`, restore the
    /// grid's configured uplink bandwidth after `duration_us`.
    Brownout {
        /// Affected cluster index.
        cluster: u16,
        /// Browned-out uplink bandwidth (bytes/second).
        bps: f64,
        /// Brownout length in microseconds.
        duration_us: u64,
    },
    /// Diurnal load: a sinusoidal staircase between 1.0 and
    /// `peak_factor`, `steps` stairs per cycle, `cycles` cycles.
    Diurnal {
        /// Affected cluster index.
        cluster: u16,
        /// Nodes affected (`None` = all).
        count: Option<usize>,
        /// Load factor at the peak of the wave.
        peak_factor: f64,
        /// Full day-cycle length in microseconds.
        period_us: u64,
        /// Number of cycles.
        cycles: usize,
        /// Staircase steps per cycle (≥ 2).
        steps: usize,
    },
    /// Flash crowd: load spikes to `peak_factor` instantly, then decays
    /// back to 1.0 in `decay_steps` stairs over `decay_us`.
    FlashCrowd {
        /// Affected cluster index.
        cluster: u16,
        /// Nodes affected (`None` = all).
        count: Option<usize>,
        /// Initial spike factor.
        peak_factor: f64,
        /// Decay staircase steps (≥ 1).
        decay_steps: usize,
        /// Decay length in microseconds.
        decay_us: u64,
    },
}

/// A parsed scenario file.
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioSpec {
    /// Scenario name (used in reports and generated file names).
    pub name: String,
    /// One-line human description.
    pub description: String,
    /// The grid to run on.
    pub grid: GridSpec,
    /// Initial resource set: `(cluster, node count)` pairs.
    pub layout: Vec<(u16, usize)>,
    /// Barnes-Hut iterations.
    pub iterations: usize,
    /// Master RNG seed (workload + engine).
    pub seed: u64,
    /// Node count the workload is sized for (paper default: 36).
    pub target_nodes: usize,
    /// Target seconds per iteration at `target_nodes` (paper default: 10).
    pub target_iter_secs: f64,
    /// Coordinator monitoring period override, in seconds (`None` keeps
    /// the [`AdaptPolicy`] default of 180 s).
    pub monitoring_period_secs: Option<u64>,
    /// The timed perturbations.
    pub events: Vec<TimedEvent>,
}

/// Workload sizing defaults (the paper's "reasonable" configuration).
pub const DEFAULT_TARGET_NODES: usize = 36;
/// Default per-iteration duration target at [`DEFAULT_TARGET_NODES`].
pub const DEFAULT_TARGET_ITER_SECS: f64 = 10.0;

fn secs_to_us(secs: f64) -> Result<u64, String> {
    if !secs.is_finite() || secs < 0.0 {
        return Err(format!("time {secs} must be a finite non-negative number"));
    }
    Ok((secs * 1_000_000.0).round() as u64)
}

fn us_to_secs(us: u64) -> f64 {
    us as f64 / 1_000_000.0
}

fn need_f64(obj: &JsonValue, key: &str, ctx: &str) -> Result<f64, String> {
    obj.get(key)
        .and_then(|v| v.as_f64())
        .ok_or_else(|| format!("{ctx}: missing/invalid number field \"{key}\""))
}

fn need_u64(obj: &JsonValue, key: &str, ctx: &str) -> Result<u64, String> {
    obj.get(key)
        .and_then(|v| v.as_u64())
        .ok_or_else(|| format!("{ctx}: missing/invalid integer field \"{key}\""))
}

fn opt_count(obj: &JsonValue) -> Option<usize> {
    obj.get("count")
        .and_then(|v| v.as_u64())
        .map(|n| n as usize)
}

fn need_cluster(obj: &JsonValue, ctx: &str) -> Result<u16, String> {
    Ok(need_u64(obj, "cluster", ctx)? as u16)
}

fn need_secs_us(obj: &JsonValue, key: &str, ctx: &str) -> Result<u64, String> {
    secs_to_us(need_f64(obj, key, ctx)?)
}

impl ScenarioSpec {
    /// Parses a scenario file.
    pub fn parse(text: &str) -> Result<Self, String> {
        let root = parse_json(text)?;
        let name = root
            .get("name")
            .and_then(|v| v.as_str())
            .ok_or("scenario: missing string field \"name\"")?
            .to_string();
        let description = root
            .get("description")
            .and_then(|v| v.as_str())
            .unwrap_or("")
            .to_string();
        let grid = match root.get("grid") {
            None => GridSpec::Das2,
            Some(g) => {
                if g.as_str() == Some("das2") {
                    GridSpec::Das2
                } else {
                    GridSpec::Uniform {
                        clusters: need_u64(g, "clusters", "grid")? as usize,
                        nodes_per_cluster: need_u64(g, "nodes_per_cluster", "grid")? as usize,
                    }
                }
            }
        };
        let layout_arr = root
            .get("layout")
            .and_then(|v| v.as_arr())
            .ok_or("scenario: missing array field \"layout\"")?;
        let mut layout = Vec::with_capacity(layout_arr.len());
        for (i, pair) in layout_arr.iter().enumerate() {
            let p = pair
                .as_arr()
                .filter(|p| p.len() == 2)
                .ok_or_else(|| format!("layout[{i}]: expected [cluster, nodes]"))?;
            let c = p[0]
                .as_u64()
                .ok_or_else(|| format!("layout[{i}]: invalid cluster"))?;
            let n = p[1]
                .as_u64()
                .ok_or_else(|| format!("layout[{i}]: invalid node count"))?;
            layout.push((c as u16, n as usize));
        }
        let iterations = need_u64(&root, "iterations", "scenario")? as usize;
        let seed = need_u64(&root, "seed", "scenario")?;
        let target_nodes = root
            .get("target_nodes")
            .and_then(|v| v.as_u64())
            .map_or(DEFAULT_TARGET_NODES, |n| n as usize);
        let target_iter_secs = root
            .get("target_iter_secs")
            .and_then(|v| v.as_f64())
            .unwrap_or(DEFAULT_TARGET_ITER_SECS);
        let monitoring_period_secs = root.get("monitoring_period_secs").and_then(|v| v.as_u64());
        let mut events = Vec::new();
        if let Some(list) = root.get("events").and_then(|v| v.as_arr()) {
            for (i, e) in list.iter().enumerate() {
                events.push(Self::parse_event(e, i)?);
            }
        }
        Ok(Self {
            name,
            description,
            grid,
            layout,
            iterations,
            seed,
            target_nodes,
            target_iter_secs,
            monitoring_period_secs,
            events,
        })
    }

    fn parse_event(e: &JsonValue, i: usize) -> Result<TimedEvent, String> {
        let ctx = format!("events[{i}]");
        let at_us = need_secs_us(e, "at_secs", &ctx)?;
        let kind = e
            .get("kind")
            .and_then(|v| v.as_str())
            .ok_or_else(|| format!("{ctx}: missing string field \"kind\""))?;
        let event = match kind {
            "cpu_load" => EventKind::CpuLoad {
                cluster: need_cluster(e, &ctx)?,
                count: opt_count(e),
                factor: need_f64(e, "factor", &ctx)?,
            },
            "speed" => {
                let speed = need_f64(e, "speed", &ctx)?;
                if speed <= 0.0 {
                    return Err(format!("{ctx}: speed must be > 0"));
                }
                EventKind::Speed {
                    cluster: need_cluster(e, &ctx)?,
                    count: opt_count(e),
                    speed,
                }
            }
            "uplink_bandwidth" => EventKind::UplinkBandwidth {
                cluster: need_cluster(e, &ctx)?,
                bps: need_f64(e, "bps", &ctx)?,
            },
            "crash_cluster" => EventKind::CrashCluster {
                cluster: need_cluster(e, &ctx)?,
            },
            "crash_nodes" => EventKind::CrashNodes {
                cluster: need_cluster(e, &ctx)?,
                count: need_u64(e, "count", &ctx)? as usize,
            },
            "crash_hub" => EventKind::CrashHub,
            "grow" => EventKind::Grow {
                count: need_u64(e, "count", &ctx)? as usize,
                prefer: e.get("prefer").and_then(|v| v.as_u64()).map(|c| c as u16),
            },
            "shrink" => EventKind::Shrink {
                cluster: need_cluster(e, &ctx)?,
                count: need_u64(e, "count", &ctx)? as usize,
            },
            "load_ramp" => EventKind::LoadRamp {
                cluster: need_cluster(e, &ctx)?,
                count: opt_count(e),
                to_factor: need_f64(e, "to_factor", &ctx)?,
                steps: need_u64(e, "steps", &ctx)?.max(1) as usize,
                duration_us: need_secs_us(e, "duration_secs", &ctx)?,
            },
            "square_wave" => EventKind::SquareWave {
                cluster: need_cluster(e, &ctx)?,
                count: opt_count(e),
                factor: need_f64(e, "factor", &ctx)?,
                period_us: need_secs_us(e, "period_secs", &ctx)?,
                cycles: need_u64(e, "cycles", &ctx)?.max(1) as usize,
            },
            "brownout" => EventKind::Brownout {
                cluster: need_cluster(e, &ctx)?,
                bps: need_f64(e, "bps", &ctx)?,
                duration_us: need_secs_us(e, "duration_secs", &ctx)?,
            },
            "diurnal" => EventKind::Diurnal {
                cluster: need_cluster(e, &ctx)?,
                count: opt_count(e),
                peak_factor: need_f64(e, "peak_factor", &ctx)?,
                period_us: need_secs_us(e, "period_secs", &ctx)?,
                cycles: need_u64(e, "cycles", &ctx)?.max(1) as usize,
                steps: need_u64(e, "steps", &ctx)?.max(2) as usize,
            },
            "flash_crowd" => EventKind::FlashCrowd {
                cluster: need_cluster(e, &ctx)?,
                count: opt_count(e),
                peak_factor: need_f64(e, "peak_factor", &ctx)?,
                decay_steps: need_u64(e, "decay_steps", &ctx)?.max(1) as usize,
                decay_us: need_secs_us(e, "decay_secs", &ctx)?,
            },
            other => return Err(format!("{ctx}: unknown event kind \"{other}\"")),
        };
        Ok(TimedEvent { at_us, event })
    }

    /// Serialises the spec back to its canonical JSON form: fixed field
    /// order, shortest-roundtrip floats, one line per event. Parsing the
    /// output yields an equal spec; writing an equal spec yields equal
    /// bytes.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + self.events.len() * 96);
        out.push_str("{\n  \"name\": ");
        write_json_string(&mut out, &self.name);
        out.push_str(",\n  \"description\": ");
        write_json_string(&mut out, &self.description);
        out.push_str(",\n  \"grid\": ");
        match self.grid {
            GridSpec::Das2 => out.push_str("\"das2\""),
            GridSpec::Uniform {
                clusters,
                nodes_per_cluster,
            } => {
                let _ = write!(
                    out,
                    "{{\"clusters\": {clusters}, \"nodes_per_cluster\": {nodes_per_cluster}}}"
                );
            }
        }
        out.push_str(",\n  \"layout\": [");
        for (i, &(c, n)) in self.layout.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "[{c}, {n}]");
        }
        let _ = write!(out, "],\n  \"iterations\": {},", self.iterations);
        let _ = write!(out, "\n  \"seed\": {},", self.seed);
        let _ = write!(out, "\n  \"target_nodes\": {},", self.target_nodes);
        out.push_str("\n  \"target_iter_secs\": ");
        write_f64(&mut out, self.target_iter_secs);
        if let Some(p) = self.monitoring_period_secs {
            let _ = write!(out, ",\n  \"monitoring_period_secs\": {p}");
        }
        out.push_str(",\n  \"events\": [");
        for (i, ev) in self.events.iter().enumerate() {
            out.push_str(if i > 0 { ",\n    " } else { "\n    " });
            Self::write_event(&mut out, ev);
        }
        if self.events.is_empty() {
            out.push_str("]\n}\n");
        } else {
            out.push_str("\n  ]\n}\n");
        }
        out
    }

    fn write_event(out: &mut String, ev: &TimedEvent) {
        out.push_str("{\"at_secs\": ");
        write_f64(out, us_to_secs(ev.at_us));
        out.push_str(", \"kind\": ");
        let field_f64 = |out: &mut String, key: &str, v: f64| {
            let _ = write!(out, ", \"{key}\": ");
            write_f64(out, v);
        };
        let write_count = |out: &mut String, count: Option<usize>| {
            if let Some(n) = count {
                let _ = write!(out, ", \"count\": {n}");
            }
        };
        match &ev.event {
            EventKind::CpuLoad {
                cluster,
                count,
                factor,
            } => {
                let _ = write!(out, "\"cpu_load\", \"cluster\": {cluster}");
                write_count(out, *count);
                field_f64(out, "factor", *factor);
            }
            EventKind::Speed {
                cluster,
                count,
                speed,
            } => {
                let _ = write!(out, "\"speed\", \"cluster\": {cluster}");
                write_count(out, *count);
                field_f64(out, "speed", *speed);
            }
            EventKind::UplinkBandwidth { cluster, bps } => {
                let _ = write!(out, "\"uplink_bandwidth\", \"cluster\": {cluster}");
                field_f64(out, "bps", *bps);
            }
            EventKind::CrashCluster { cluster } => {
                let _ = write!(out, "\"crash_cluster\", \"cluster\": {cluster}");
            }
            EventKind::CrashNodes { cluster, count } => {
                let _ = write!(
                    out,
                    "\"crash_nodes\", \"cluster\": {cluster}, \"count\": {count}"
                );
            }
            EventKind::CrashHub => {
                out.push_str("\"crash_hub\"");
            }
            EventKind::Grow { count, prefer } => {
                let _ = write!(out, "\"grow\", \"count\": {count}");
                if let Some(p) = prefer {
                    let _ = write!(out, ", \"prefer\": {p}");
                }
            }
            EventKind::Shrink { cluster, count } => {
                let _ = write!(
                    out,
                    "\"shrink\", \"cluster\": {cluster}, \"count\": {count}"
                );
            }
            EventKind::LoadRamp {
                cluster,
                count,
                to_factor,
                steps,
                duration_us,
            } => {
                let _ = write!(out, "\"load_ramp\", \"cluster\": {cluster}");
                write_count(out, *count);
                field_f64(out, "to_factor", *to_factor);
                let _ = write!(out, ", \"steps\": {steps}");
                field_f64(out, "duration_secs", us_to_secs(*duration_us));
            }
            EventKind::SquareWave {
                cluster,
                count,
                factor,
                period_us,
                cycles,
            } => {
                let _ = write!(out, "\"square_wave\", \"cluster\": {cluster}");
                write_count(out, *count);
                field_f64(out, "factor", *factor);
                field_f64(out, "period_secs", us_to_secs(*period_us));
                let _ = write!(out, ", \"cycles\": {cycles}");
            }
            EventKind::Brownout {
                cluster,
                bps,
                duration_us,
            } => {
                let _ = write!(out, "\"brownout\", \"cluster\": {cluster}");
                field_f64(out, "bps", *bps);
                field_f64(out, "duration_secs", us_to_secs(*duration_us));
            }
            EventKind::Diurnal {
                cluster,
                count,
                peak_factor,
                period_us,
                cycles,
                steps,
            } => {
                let _ = write!(out, "\"diurnal\", \"cluster\": {cluster}");
                write_count(out, *count);
                field_f64(out, "peak_factor", *peak_factor);
                field_f64(out, "period_secs", us_to_secs(*period_us));
                let _ = write!(out, ", \"cycles\": {cycles}, \"steps\": {steps}");
            }
            EventKind::FlashCrowd {
                cluster,
                count,
                peak_factor,
                decay_steps,
                decay_us,
            } => {
                let _ = write!(out, "\"flash_crowd\", \"cluster\": {cluster}");
                write_count(out, *count);
                field_f64(out, "peak_factor", *peak_factor);
                let _ = write!(out, ", \"decay_steps\": {decay_steps}");
                field_f64(out, "decay_secs", us_to_secs(*decay_us));
            }
        }
        out.push('}');
    }

    /// Lowers every event to primitive [`Injection`]s, in file order
    /// (shape events expand in place, so same-time primitives keep the
    /// file's ordering — the property scenario 5 depends on).
    pub fn compile(&self, grid: &GridConfig) -> Result<Vec<ScheduledInjection>, String> {
        let mut out = Vec::with_capacity(self.events.len());
        let mut push = |at_us: u64, injection: Injection| {
            out.push(ScheduledInjection {
                at: SimTime(at_us),
                injection,
            });
        };
        for (i, ev) in self.events.iter().enumerate() {
            let cluster_of = |c: u16| -> Result<ClusterId, String> {
                if (c as usize) < grid.clusters.len() {
                    Ok(ClusterId(c))
                } else {
                    Err(format!("events[{i}]: cluster {c} not in grid"))
                }
            };
            match ev.event.clone() {
                EventKind::CpuLoad {
                    cluster,
                    count,
                    factor,
                } => push(
                    ev.at_us,
                    Injection::CpuLoad {
                        cluster: cluster_of(cluster)?,
                        count,
                        factor,
                    },
                ),
                EventKind::Speed {
                    cluster,
                    count,
                    speed,
                } => push(
                    ev.at_us,
                    Injection::CpuLoad {
                        cluster: cluster_of(cluster)?,
                        count,
                        factor: 1.0 / speed,
                    },
                ),
                EventKind::UplinkBandwidth { cluster, bps } => push(
                    ev.at_us,
                    Injection::UplinkBandwidth {
                        cluster: cluster_of(cluster)?,
                        bandwidth_bps: bps,
                    },
                ),
                EventKind::CrashCluster { cluster } => push(
                    ev.at_us,
                    Injection::CrashCluster {
                        cluster: cluster_of(cluster)?,
                    },
                ),
                EventKind::CrashNodes { cluster, count } => push(
                    ev.at_us,
                    Injection::CrashNodes {
                        cluster: cluster_of(cluster)?,
                        count,
                    },
                ),
                // The in-process DES *is* its own control plane — there is
                // no hub process to kill — so a hub crash lowers to no
                // primitive injection and the DES twin trivially satisfies
                // the hub-failover invariant (no injection, no takeover).
                EventKind::CrashHub => {}
                EventKind::Grow { count, prefer } => {
                    let prefer = match prefer {
                        Some(c) => Some(cluster_of(c)?),
                        None => None,
                    };
                    push(ev.at_us, Injection::Grow { count, prefer });
                }
                EventKind::Shrink { cluster, count } => push(
                    ev.at_us,
                    Injection::Shrink {
                        cluster: cluster_of(cluster)?,
                        count,
                    },
                ),
                EventKind::LoadRamp {
                    cluster,
                    count,
                    to_factor,
                    steps,
                    duration_us,
                } => {
                    let cluster = cluster_of(cluster)?;
                    for s in 0..steps {
                        let frac = (s + 1) as f64 / steps as f64;
                        push(
                            ev.at_us + duration_us * s as u64 / steps as u64,
                            Injection::CpuLoad {
                                cluster,
                                count,
                                factor: 1.0 + (to_factor - 1.0) * frac,
                            },
                        );
                    }
                }
                EventKind::SquareWave {
                    cluster,
                    count,
                    factor,
                    period_us,
                    cycles,
                } => {
                    let cluster = cluster_of(cluster)?;
                    for c in 0..cycles as u64 {
                        push(
                            ev.at_us + c * period_us,
                            Injection::CpuLoad {
                                cluster,
                                count,
                                factor,
                            },
                        );
                        push(
                            ev.at_us + c * period_us + period_us / 2,
                            Injection::CpuLoad {
                                cluster,
                                count,
                                factor: 1.0,
                            },
                        );
                    }
                }
                EventKind::Brownout {
                    cluster,
                    bps,
                    duration_us,
                } => {
                    let cluster = cluster_of(cluster)?;
                    let restore = grid.clusters[cluster.index()].uplink.bandwidth_bps;
                    push(
                        ev.at_us,
                        Injection::UplinkBandwidth {
                            cluster,
                            bandwidth_bps: bps,
                        },
                    );
                    push(
                        ev.at_us + duration_us,
                        Injection::UplinkBandwidth {
                            cluster,
                            bandwidth_bps: restore,
                        },
                    );
                }
                EventKind::Diurnal {
                    cluster,
                    count,
                    peak_factor,
                    period_us,
                    cycles,
                    steps,
                } => {
                    let cluster = cluster_of(cluster)?;
                    for c in 0..cycles {
                        for s in 0..steps {
                            let phase = s as f64 / steps as f64;
                            // Raised cosine: starts and ends each cycle at
                            // factor 1.0, peaks mid-cycle.
                            let wave = 0.5 - 0.5 * (2.0 * std::f64::consts::PI * phase).cos();
                            push(
                                ev.at_us
                                    + period_us * c as u64
                                    + period_us * s as u64 / steps as u64,
                                Injection::CpuLoad {
                                    cluster,
                                    count,
                                    factor: 1.0 + (peak_factor - 1.0) * wave,
                                },
                            );
                        }
                    }
                    // Restore after the final cycle.
                    push(
                        ev.at_us + period_us * cycles as u64,
                        Injection::CpuLoad {
                            cluster,
                            count,
                            factor: 1.0,
                        },
                    );
                }
                EventKind::FlashCrowd {
                    cluster,
                    count,
                    peak_factor,
                    decay_steps,
                    decay_us,
                } => {
                    let cluster = cluster_of(cluster)?;
                    for s in 0..=decay_steps {
                        let frac = 1.0 - s as f64 / decay_steps as f64;
                        push(
                            ev.at_us + decay_us * s as u64 / decay_steps as u64,
                            Injection::CpuLoad {
                                cluster,
                                count,
                                factor: 1.0 + (peak_factor - 1.0) * frac,
                            },
                        );
                    }
                }
            }
        }
        Ok(out)
    }

    /// Time of the last compiled perturbation, if any (used by the
    /// invariant checker to find the post-disturbance window).
    pub fn last_disturbance_us(&self, grid: &GridConfig) -> Result<Option<u64>, String> {
        Ok(self.compile(grid)?.iter().map(|s| s.at.0).max())
    }

    /// Compiles the full DES configuration for this scenario.
    pub fn sim_config(&self, mode: AdaptMode) -> Result<SimConfig, String> {
        let grid = self.grid.build();
        let injections = InjectionSchedule::new(self.compile(&grid)?);
        let mut policy = AdaptPolicy::default();
        if let Some(p) = self.monitoring_period_secs {
            policy.monitoring_period = SimDuration::from_secs(p);
        }
        let workload = barnes_hut_profile(
            self.iterations,
            self.target_nodes,
            self.target_iter_secs,
            self.seed,
        );
        let cfg = SimConfig {
            grid,
            policy,
            initial_layout: self
                .layout
                .iter()
                .map(|&(c, n)| (ClusterId(c), n))
                .collect(),
            workload,
            injections,
            mode,
            steal_policy: StealPolicy::ClusterAware,
            timing: TimingConfig::default(),
            record_trace: false,
            feedback_tuning: false,
            hierarchical_coordinator: false,
            queue_backend: Default::default(),
            seed: self.seed,
        };
        cfg.validate()?;
        Ok(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ScenarioSpec {
        ScenarioSpec {
            name: "sample".into(),
            description: "round-trip \"fixture\"".into(),
            grid: GridSpec::Uniform {
                clusters: 3,
                nodes_per_cluster: 12,
            },
            layout: vec![(0, 12), (1, 12), (2, 8)],
            iterations: 10,
            seed: 77,
            target_nodes: 36,
            target_iter_secs: 10.0,
            monitoring_period_secs: Some(60),
            events: vec![
                TimedEvent {
                    at_us: 0,
                    event: EventKind::UplinkBandwidth {
                        cluster: 2,
                        bps: 100_000.0,
                    },
                },
                TimedEvent {
                    at_us: 12_500_000,
                    event: EventKind::Speed {
                        cluster: 1,
                        count: Some(4),
                        speed: 0.25,
                    },
                },
                TimedEvent {
                    at_us: 30_000_000,
                    event: EventKind::SquareWave {
                        cluster: 1,
                        count: None,
                        factor: 5.0,
                        period_us: 20_000_000,
                        cycles: 2,
                    },
                },
                TimedEvent {
                    at_us: 40_000_000,
                    event: EventKind::Grow {
                        count: 4,
                        prefer: Some(0),
                    },
                },
            ],
        }
    }

    #[test]
    fn canonical_json_round_trips_to_equal_spec_and_equal_bytes() {
        let spec = sample();
        let json = spec.to_json();
        let parsed = ScenarioSpec::parse(&json).expect("canonical output parses");
        assert_eq!(parsed, spec);
        assert_eq!(parsed.to_json(), json, "writer is canonical");
    }

    #[test]
    fn speed_event_compiles_to_reciprocal_cpu_load() {
        let spec = sample();
        let grid = spec.grid.build();
        let compiled = spec.compile(&grid).unwrap();
        assert_eq!(
            compiled[1].injection,
            Injection::CpuLoad {
                cluster: ClusterId(1),
                count: Some(4),
                factor: 4.0,
            }
        );
    }

    #[test]
    fn square_wave_alternates_factor_and_restore() {
        let spec = sample();
        let grid = spec.grid.build();
        let compiled = spec.compile(&grid).unwrap();
        let wave: Vec<_> = compiled
            .iter()
            .filter(|s| s.at.0 >= 30_000_000 && matches!(s.injection, Injection::CpuLoad { .. }))
            .collect();
        assert_eq!(wave.len(), 4);
        assert_eq!(
            (wave[0].at.0, wave[1].at.0, wave[2].at.0, wave[3].at.0),
            (30_000_000, 40_000_000, 50_000_000, 60_000_000)
        );
        for (i, s) in wave.iter().enumerate() {
            let Injection::CpuLoad { factor, .. } = s.injection else {
                unreachable!()
            };
            assert_eq!(factor, if i % 2 == 0 { 5.0 } else { 1.0 });
        }
    }

    #[test]
    fn brownout_restores_the_grid_uplink() {
        let mut spec = sample();
        spec.events = vec![TimedEvent {
            at_us: 5_000_000,
            event: EventKind::Brownout {
                cluster: 1,
                bps: 50_000.0,
                duration_us: 10_000_000,
            },
        }];
        let grid = spec.grid.build();
        let compiled = spec.compile(&grid).unwrap();
        assert_eq!(compiled.len(), 2);
        let Injection::UplinkBandwidth { bandwidth_bps, .. } = compiled[1].injection else {
            panic!("expected restore injection")
        };
        assert_eq!(bandwidth_bps, grid.clusters[1].uplink.bandwidth_bps);
        assert_eq!(compiled[1].at.0, 15_000_000);
    }

    #[test]
    fn unknown_kind_and_bad_cluster_are_rejected() {
        let bad_kind = r#"{"name":"x","layout":[[0,4]],"iterations":1,"seed":1,
            "events":[{"at_secs":1,"kind":"meteor_strike"}]}"#;
        assert!(ScenarioSpec::parse(bad_kind)
            .unwrap_err()
            .contains("unknown event kind"));
        let bad_cluster = ScenarioSpec {
            events: vec![TimedEvent {
                at_us: 0,
                event: EventKind::CrashCluster { cluster: 9 },
            }],
            ..sample()
        };
        let grid = bad_cluster.grid.build();
        assert!(bad_cluster.compile(&grid).is_err());
    }

    #[test]
    fn sim_config_validates_and_carries_injections() {
        let cfg = sample().sim_config(AdaptMode::Adapt).unwrap();
        assert_eq!(cfg.initial_nodes(), 32);
        assert!(cfg.injections.remaining() > 0);
        assert_eq!(cfg.policy.monitoring_period, SimDuration::from_secs(60));
    }
}
