//! Declarative scenario engine and adaptation-invariant fuzzer.
//!
//! The paper's evaluation perturbs a running application with hand-coded
//! schedules; this crate replaces those scripts with *data*. A scenario
//! file (hand-parsed JSON, [`spec`]) names a grid, a layout, a workload
//! size and a list of timed events — crashes, speed changes, load ramps
//! and square waves, grow/shrink, link brownouts — and compiles onto
//! [`sagrid_simnet::InjectionSchedule`] for the DES twin and onto the
//! `grid-local` process launcher for the wire twin, so one file drives
//! both.
//!
//! On top sit the adaptation *invariants* ([`invariants`]) — efficiency
//! recovery, blacklist permanence, decision provenance completeness and
//! work conservation — checked from a run's JSONL stream alone, and a
//! seeded fuzzer ([`fuzz`]) that composes random bounded event streams
//! and asserts those invariants on every generated run.

pub mod fuzz;
pub mod invariants;
pub mod spec;

pub use invariants::{check_jsonl, InvariantConfig, Violation};
pub use spec::{EventKind, GridSpec, ScenarioSpec, TimedEvent};
