//! Adaptation invariants, checked from a run's JSONL stream alone.
//!
//! The checker never looks at in-memory engine state: it re-reads the
//! same `MetricsReport::to_jsonl` text a human (or CI) would, so a pass
//! here certifies that the *emitted* record of a run is self-consistent.
//! Four invariants, from the paper's claims:
//!
//! 1. **Efficiency recovery** — after the last disturbance the weighted
//!    average efficiency seen by the coordinator climbs back above a
//!    threshold (the adaptation loop actually repairs the damage).
//! 2. **Blacklist permanence** — blacklists only grow, and no blacklisted
//!    node (or node of a blacklisted cluster) ever joins again.
//! 3. **Provenance completeness** — every `decision` line reconstructs
//!    losslessly, and every pool change is justified: a join traces to an
//!    add decision / grow injection exactly one join-delay earlier (or is
//!    part of the initial t = 0 wave), a leave follows some removal
//!    decision or shrink injection, a crash coincides with a crash
//!    injection.
//! 4. **Work conservation** — the counters agree with the event stream
//!    (joins/leaves/crashes/injections/decisions), the alive-node gauge
//!    balances the membership flow, and a completed run finished every
//!    iteration it was asked to run.
//! 5. **No suspect shrink** — the hold-fire rule of the suspicion-aware
//!    failure detector: no removal decision ever targets a member whose
//!    liveness was unresolved (Suspect) at decision time, and a decision
//!    that recorded a hold-fire reason decided nothing.

use sagrid_core::json::{parse_json, JsonValue};
use sagrid_simgrid::provenance::reconstruct_decision;
use std::collections::BTreeSet;

/// Tunables of the invariant checker.
#[derive(Clone, Debug)]
pub struct InvariantConfig {
    /// Efficiency the run must climb back to after its last disturbance.
    /// Kept below the coordinator's default `e_min = 0.30`: the invariant
    /// is "adaptation repaired the damage", not "the run was ideal".
    pub recovery_eff: f64,
    /// Recovery is only demanded if the run kept going at least this long
    /// past the last disturbance (microseconds); shorter tails can't have
    /// seen a post-disturbance coordinator evaluation yet.
    pub settle_us: u64,
    /// The engine's grant→join delay (microseconds): a join at `t` is
    /// justified by an add/grow at exactly `t - join_delay_us`.
    pub join_delay_us: u64,
    /// Check join/leave/crash membership provenance (DES streams carry
    /// the full membership record; process-mode decision-only streams
    /// don't, so the launcher disables this part).
    pub check_membership: bool,
    /// Check counter/gauge conservation (requires the instrument records
    /// that only the DES teardown emits).
    pub check_conservation: bool,
    /// Iterations the workload was asked to run, if known: conservation
    /// then also requires the iteration histogram to account for all of
    /// them.
    pub expected_iterations: Option<u64>,
}

impl Default for InvariantConfig {
    fn default() -> Self {
        Self {
            recovery_eff: 0.25,
            // Two default monitoring periods (2 × 180 s).
            settle_us: 360_000_000,
            join_delay_us: 5_000_000,
            check_membership: true,
            check_conservation: true,
            expected_iterations: None,
        }
    }
}

/// One failed invariant.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Which invariant failed.
    pub invariant: &'static str,
    /// Human-readable specifics.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.invariant, self.detail)
    }
}

fn u64_field(v: &JsonValue, key: &str) -> Option<u64> {
    v.get(key).and_then(|x| x.as_u64())
}

fn u64_set(v: &JsonValue, key: &str) -> BTreeSet<u64> {
    v.get(key)
        .and_then(|x| x.as_arr())
        .map(|arr| arr.iter().filter_map(|e| e.as_u64()).collect())
        .unwrap_or_default()
}

/// Everything the checker extracted from one JSONL stream.
struct Stream {
    /// `(at_us, kind, parsed line)` for every event record, in order.
    events: Vec<(u64, String, JsonValue)>,
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, i64)>,
    /// `(name, sample count)` per histogram.
    histograms: Vec<(String, u64)>,
}

impl Stream {
    fn parse(jsonl: &str) -> Result<Stream, String> {
        let mut s = Stream {
            events: Vec::new(),
            counters: Vec::new(),
            gauges: Vec::new(),
            histograms: Vec::new(),
        };
        for (lineno, line) in jsonl.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let v = parse_json(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
            let ty = v.get("type").and_then(|t| t.as_str()).unwrap_or("");
            match ty {
                "event" => {
                    let at = u64_field(&v, "at_us")
                        .ok_or_else(|| format!("line {}: event without at_us", lineno + 1))?;
                    let kind = v
                        .get("kind")
                        .and_then(|k| k.as_str())
                        .unwrap_or("")
                        .to_string();
                    s.events.push((at, kind, v));
                }
                "counter" | "gauge" | "histogram" => {
                    let name = v
                        .get("name")
                        .and_then(|n| n.as_str())
                        .unwrap_or("")
                        .to_string();
                    match ty {
                        "counter" => s.counters.push((name, u64_field(&v, "value").unwrap_or(0))),
                        "gauge" => s.gauges.push((
                            name,
                            v.get("value").and_then(|x| x.as_f64()).unwrap_or(0.0) as i64,
                        )),
                        _ => s
                            .histograms
                            .push((name, u64_field(&v, "count").unwrap_or(0))),
                    }
                }
                other => {
                    return Err(format!(
                        "line {}: unknown record type {other:?}",
                        lineno + 1
                    ))
                }
            }
        }
        Ok(s)
    }

    fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |&(_, v)| v)
    }

    fn of_kind<'a>(&'a self, kind: &'a str) -> impl Iterator<Item = &'a (u64, String, JsonValue)> {
        self.events.iter().filter(move |(_, k, _)| k == kind)
    }
}

/// Checks every adaptation invariant against one JSONL stream. Returns
/// the (possibly empty) list of violations; a malformed stream is itself
/// reported as a violation rather than an `Err`, so callers treat "can't
/// even parse the record" and "record contradicts itself" uniformly.
pub fn check_jsonl(jsonl: &str, cfg: &InvariantConfig) -> Vec<Violation> {
    let stream = match Stream::parse(jsonl) {
        Ok(s) => s,
        Err(e) => {
            return vec![Violation {
                invariant: "well-formed-stream",
                detail: e,
            }]
        }
    };
    let mut out = Vec::new();
    check_efficiency_recovery(&stream, cfg, &mut out);
    check_blacklist_permanence(&stream, cfg, &mut out);
    check_provenance(&stream, cfg, &mut out);
    check_hub_failover(&stream, &mut out);
    check_no_suspect_shrink(&stream, &mut out);
    if cfg.check_conservation {
        check_conservation(&stream, cfg, &mut out);
    }
    out
}

/// **Hub failover** — a control-plane takeover is accounted and safe:
/// exactly one `hub_failover` event per injected `crash_hub`, and no node
/// the promoted hub inherited as blacklisted ever joins under the new
/// epoch. Streams without hub crashes or takeovers pass trivially, so the
/// check always runs (DES streams simply have nothing to judge).
fn check_hub_failover(stream: &Stream, out: &mut Vec<Violation>) {
    let hub_crashes = stream
        .of_kind("injection")
        .filter(|(_, _, v)| injection_sub_kind(v) == "crash_hub")
        .count();
    let takeovers: Vec<&(u64, String, JsonValue)> = stream.of_kind("hub_failover").collect();
    if takeovers.len() != hub_crashes {
        out.push(Violation {
            invariant: "hub-failover",
            detail: format!(
                "{} hub_failover takeover(s) recorded for {} crash_hub injection(s) \
                 — expected exactly one takeover per injected hub crash",
                takeovers.len(),
                hub_crashes
            ),
        });
    }
    // Blacklist permanence across the epoch boundary: the takeover event
    // names the blacklisted ids the new primary inherited; none of them
    // may appear in a later membership join on the same stream (the
    // promoted hub's own time axis, so ordering is well-defined).
    for (at, _, v) in &takeovers {
        let inherited = u64_set(v, "blacklisted_nodes");
        for (jat, _, jv) in stream.of_kind("member") {
            let joined = jv.get("state").and_then(|s| s.as_str()) == Some("joined");
            let Some(node) = u64_field(jv, "node") else {
                continue;
            };
            if joined && jat >= at && inherited.contains(&node) {
                out.push(Violation {
                    invariant: "hub-failover",
                    detail: format!(
                        "node {node} was blacklisted at the epoch-{} takeover yet joined \
                         the promoted hub at t={:.1}s",
                        u64_field(v, "epoch").unwrap_or(0),
                        *jat as f64 / 1e6
                    ),
                });
            }
        }
    }
}

/// **No suspect shrink** — judged from the stream alone, three ways.
///
/// 1. Every removal decision's `remove` list is disjoint from the
///    decision's own `suspects` snapshot (the coordinator must never
///    shrink away a member it itself recorded as unresolved).
/// 2. A decision carrying a `hold_fire` reason decided nothing — the
///    reason exists precisely because a shrink was withheld.
/// 3. On streams that carry `member` records sharing the decision time
///    axis, a removal decision falling inside a member's open suspect
///    interval (suspect at `t1`, not yet resumed/died/left by decision
///    time) never targets that member.
///
/// Streams that predate suspicion (no `suspects` field, no `member`
/// suspect records) pass trivially.
fn check_no_suspect_shrink(stream: &Stream, out: &mut Vec<Violation>) {
    let removal_kind = |kind: &str| {
        matches!(
            kind,
            "remove-nodes" | "remove-cluster" | "opportunistic-swap"
        )
    };
    for (at, _, v) in stream.of_kind("decision") {
        let kind = v.get("decision").and_then(|d| d.as_str()).unwrap_or("");
        if removal_kind(kind) {
            let suspects = u64_set(v, "suspects");
            let removed = u64_set(v, "remove");
            let hit: Vec<u64> = removed.intersection(&suspects).copied().collect();
            if !hit.is_empty() {
                out.push(Violation {
                    invariant: "no-suspect-shrink",
                    detail: format!(
                        "{kind} decision at t={:.1}s removes node(s) {hit:?} that its own \
                         suspicion snapshot records as unresolved",
                        *at as f64 / 1e6
                    ),
                });
            }
        }
        if v.get("hold_fire").is_some() && kind != "none" {
            out.push(Violation {
                invariant: "no-suspect-shrink",
                detail: format!(
                    "decision at t={:.1}s records a hold-fire reason yet decided {kind:?} \
                     — a withheld decision must decide nothing",
                    *at as f64 / 1e6
                ),
            });
        }
    }
    // Suspect intervals from membership records: `suspect` opens, any
    // later state for the same node (alive / died / left) closes.
    let mut open: std::collections::BTreeMap<u64, u64> = std::collections::BTreeMap::new();
    let mut intervals: Vec<(u64, u64, u64)> = Vec::new();
    for (at, _, v) in stream.of_kind("member") {
        let Some(node) = u64_field(v, "node") else {
            continue;
        };
        match v.get("state").and_then(|s| s.as_str()) {
            Some("suspect") => {
                open.entry(node).or_insert(*at);
            }
            Some(_) => {
                if let Some(start) = open.remove(&node) {
                    intervals.push((node, start, *at));
                }
            }
            None => {}
        }
    }
    intervals.extend(
        open.into_iter()
            .map(|(node, start)| (node, start, u64::MAX)),
    );
    if intervals.is_empty() {
        return;
    }
    for (at, _, v) in stream.of_kind("decision") {
        let kind = v.get("decision").and_then(|d| d.as_str()).unwrap_or("");
        if !removal_kind(kind) {
            continue;
        }
        let removed = u64_set(v, "remove");
        for &(node, start, end) in &intervals {
            if removed.contains(&node) && *at >= start && *at < end {
                out.push(Violation {
                    invariant: "no-suspect-shrink",
                    detail: format!(
                        "{kind} decision at t={:.1}s removes node {node} inside its suspect \
                         window [{:.1}s, {})",
                        *at as f64 / 1e6,
                        start as f64 / 1e6,
                        if end == u64::MAX {
                            "unresolved".to_string()
                        } else {
                            format!("{:.1}s", end as f64 / 1e6)
                        },
                    ),
                });
            }
        }
    }
}

fn check_efficiency_recovery(stream: &Stream, cfg: &InvariantConfig, out: &mut Vec<Violation>) {
    let Some(t_last) = stream.of_kind("injection").map(|&(at, ..)| at).max() else {
        return; // undisturbed run: nothing to recover from
    };
    let t_end = stream.events.iter().map(|&(at, ..)| at).max().unwrap_or(0);
    if t_end < t_last.saturating_add(cfg.settle_us) {
        return; // run ended before a recovery could be observed
    }
    let best = stream
        .of_kind("decision")
        .filter(|&&(at, ..)| at > t_last)
        .filter_map(|(_, _, v)| v.get("wa_eff").and_then(|e| e.as_f64()))
        .fold(f64::NEG_INFINITY, f64::max);
    if best < cfg.recovery_eff {
        out.push(Violation {
            invariant: "efficiency-recovery",
            detail: format!(
                "after the last disturbance at {:.1}s the best coordinator-seen \
                 efficiency was {best:.3} (< {:.3}) though the run continued to {:.1}s",
                t_last as f64 / 1e6,
                cfg.recovery_eff,
                t_end as f64 / 1e6,
            ),
        });
    }
}

fn check_blacklist_permanence(stream: &Stream, cfg: &InvariantConfig, out: &mut Vec<Violation>) {
    // Blacklists only grow across the decision sequence.
    let mut nodes: BTreeSet<u64> = BTreeSet::new();
    let mut clusters: BTreeSet<u64> = BTreeSet::new();
    // `(at_us, nodes, clusters)` snapshots for the join check below.
    let mut timeline: Vec<(u64, BTreeSet<u64>, BTreeSet<u64>)> = Vec::new();
    for (at, _, v) in stream.of_kind("decision") {
        let n = u64_set(v, "blacklist_nodes");
        let c = u64_set(v, "blacklist_clusters");
        if !n.is_superset(&nodes) || !c.is_superset(&clusters) {
            out.push(Violation {
                invariant: "blacklist-permanence",
                detail: format!(
                    "blacklist shrank at decision t={:.1}s (nodes {} -> {}, clusters {} -> {})",
                    *at as f64 / 1e6,
                    nodes.len(),
                    n.len(),
                    clusters.len(),
                    c.len()
                ),
            });
            return;
        }
        nodes = n;
        clusters = c;
        timeline.push((*at, nodes.clone(), clusters.clone()));
    }
    if !cfg.check_membership {
        return;
    }
    // No blacklisted node — and no node of a blacklisted cluster — ever
    // joins after the blacklisting decision.
    for (at, _, v) in stream.of_kind("join") {
        let (Some(node), Some(cluster)) = (u64_field(v, "node"), u64_field(v, "cluster")) else {
            continue;
        };
        let Some((_, bl_nodes, bl_clusters)) = timeline.iter().rev().find(|&&(t, ..)| t < *at)
        else {
            continue;
        };
        if bl_nodes.contains(&node) || bl_clusters.contains(&cluster) {
            out.push(Violation {
                invariant: "blacklist-permanence",
                detail: format!(
                    "node {node} (cluster {cluster}) joined at t={:.1}s while blacklisted",
                    *at as f64 / 1e6
                ),
            });
        }
    }
}

fn injection_sub_kind(v: &JsonValue) -> &str {
    v.get("injection").and_then(|k| k.as_str()).unwrap_or("")
}

fn check_provenance(stream: &Stream, cfg: &InvariantConfig, out: &mut Vec<Violation>) {
    // Every decision line reconstructs losslessly.
    for (at, _, v) in stream.of_kind("decision") {
        if let Err(e) = reconstruct_decision(v) {
            out.push(Violation {
                invariant: "decision-provenance",
                detail: format!(
                    "decision at t={:.1}s failed reconstruction: {e}",
                    *at as f64 / 1e6
                ),
            });
        }
    }
    if !cfg.check_membership {
        return;
    }
    // Times at which an add-like source fired: a join at source+delay is
    // justified.
    let add_times: BTreeSet<u64> = stream
        .of_kind("decision")
        .filter(|(_, _, v)| {
            matches!(
                v.get("decision").and_then(|d| d.as_str()),
                Some("add") | Some("opportunistic-swap")
            )
        })
        .map(|&(at, ..)| at)
        .chain(
            stream
                .of_kind("injection")
                .filter(|(_, _, v)| injection_sub_kind(v) == "grow")
                .map(|&(at, ..)| at),
        )
        .collect();
    for (at, _, _) in stream.of_kind("join") {
        if *at == 0 {
            continue; // initial t = 0 activation wave
        }
        let source = at.checked_sub(cfg.join_delay_us);
        if source.is_none_or(|s| !add_times.contains(&s)) {
            out.push(Violation {
                invariant: "decision-provenance",
                detail: format!(
                    "join at t={:.1}s has no add decision or grow injection at t={:.1}s",
                    *at as f64 / 1e6,
                    at.saturating_sub(cfg.join_delay_us) as f64 / 1e6
                ),
            });
        }
    }
    // A leave must follow SOME removal source (nodes drain at their own
    // pace after the signal, so the match is "a source fired earlier",
    // not an exact time).
    let removal_times: Vec<u64> = stream
        .of_kind("decision")
        .filter(|(_, _, v)| {
            matches!(
                v.get("decision").and_then(|d| d.as_str()),
                Some("remove-nodes") | Some("remove-cluster") | Some("opportunistic-swap")
            )
        })
        .map(|&(at, ..)| at)
        .chain(
            stream
                .of_kind("injection")
                .filter(|(_, _, v)| injection_sub_kind(v) == "shrink")
                .map(|&(at, ..)| at),
        )
        .collect();
    for (at, _, v) in stream.of_kind("leave") {
        if !removal_times.iter().any(|&t| t <= *at) {
            out.push(Violation {
                invariant: "decision-provenance",
                detail: format!(
                    "node {} left at t={:.1}s with no prior removal decision or shrink injection",
                    u64_field(v, "node").unwrap_or(u64::MAX),
                    *at as f64 / 1e6
                ),
            });
        }
    }
    // A crash burst coincides with a crash injection.
    let crash_injection_times: BTreeSet<u64> = stream
        .of_kind("injection")
        .filter(|(_, _, v)| matches!(injection_sub_kind(v), "crash_cluster" | "crash_nodes"))
        .map(|&(at, ..)| at)
        .collect();
    for (at, _, _) in stream.of_kind("crash") {
        if !crash_injection_times.contains(at) {
            out.push(Violation {
                invariant: "decision-provenance",
                detail: format!(
                    "crash at t={:.1}s matches no crash injection",
                    *at as f64 / 1e6
                ),
            });
        }
    }
}

fn check_conservation(stream: &Stream, cfg: &InvariantConfig, out: &mut Vec<Violation>) {
    let mut expect = |name: &'static str, counter: &str, got: u64| {
        let want = stream.counter(counter);
        if want != got {
            out.push(Violation {
                invariant: "work-conservation",
                detail: format!("counter {counter}={want} but the event stream records {got}"),
            });
        }
        let _ = name;
    };
    let joins = stream.of_kind("join").count() as u64;
    let leaves = stream.of_kind("leave").count() as u64;
    let crashes: u64 = stream
        .of_kind("crash")
        .map(|(_, _, v)| u64_set(v, "victims").len() as u64)
        .sum();
    expect("joins", "des.node_joins", joins);
    expect("leaves", "des.node_leaves", leaves);
    expect("crashes", "des.node_crashes", crashes);
    expect(
        "injections",
        "des.injections",
        stream.of_kind("injection").count() as u64,
    );
    expect(
        "decisions",
        "des.decisions",
        stream.of_kind("decision").count() as u64,
    );
    // Membership flow balance: what joined and never left or crashed is
    // exactly what's still alive.
    let alive = stream
        .gauges
        .iter()
        .find(|(n, _)| n == "des.nodes_alive")
        .map_or(0, |&(_, v)| v);
    if joins as i64 - leaves as i64 - crashes as i64 != alive {
        out.push(Violation {
            invariant: "work-conservation",
            detail: format!(
                "membership flow does not balance: {joins} joins - {leaves} leaves - \
                 {crashes} crashes != {alive} alive"
            ),
        });
    }
    if let Some(want) = cfg.expected_iterations {
        let done = stream
            .histograms
            .iter()
            .find(|(n, _)| n == "des.iteration_secs")
            .map_or(0, |&(_, c)| c);
        if done != want {
            out.push(Violation {
                invariant: "work-conservation",
                detail: format!("run completed {done} of {want} iterations"),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sagrid_core::metrics::Metrics;
    use sagrid_simgrid::{AdaptMode, GridSim};

    use crate::spec::{EventKind, GridSpec, ScenarioSpec, TimedEvent};

    fn base_spec(events: Vec<TimedEvent>) -> ScenarioSpec {
        ScenarioSpec {
            name: "inv".into(),
            description: String::new(),
            grid: GridSpec::Uniform {
                clusters: 3,
                nodes_per_cluster: 12,
            },
            layout: vec![(0, 12), (1, 12), (2, 12)],
            iterations: 6,
            seed: 11,
            target_nodes: 36,
            target_iter_secs: 4.0,
            monitoring_period_secs: Some(30),
            events,
        }
    }

    fn run_jsonl(spec: &ScenarioSpec) -> (String, InvariantConfig) {
        let cfg = spec.sim_config(AdaptMode::Adapt).unwrap();
        let expected_iterations = spec.iterations as u64;
        let metrics = Metrics::enabled();
        let result = GridSim::try_run_with_metrics(cfg, metrics).unwrap();
        assert!(!result.timed_out);
        let jsonl = result.metrics.expect("metrics enabled").to_jsonl();
        let inv = InvariantConfig {
            settle_us: 60_000_000,
            expected_iterations: Some(expected_iterations),
            ..InvariantConfig::default()
        };
        (jsonl, inv)
    }

    #[test]
    fn clean_crash_run_passes_every_invariant() {
        let spec = base_spec(vec![TimedEvent {
            at_us: 20_000_000,
            event: EventKind::CrashCluster { cluster: 2 },
        }]);
        let (jsonl, inv) = run_jsonl(&spec);
        let violations = check_jsonl(&jsonl, &inv);
        assert!(violations.is_empty(), "unexpected: {violations:?}");
    }

    #[test]
    fn grow_and_shrink_membership_changes_are_accounted() {
        let spec = base_spec(vec![
            TimedEvent {
                at_us: 15_000_000,
                event: EventKind::Grow {
                    count: 4,
                    prefer: Some(0),
                },
            },
            TimedEvent {
                at_us: 25_000_000,
                event: EventKind::Shrink {
                    cluster: 1,
                    count: 3,
                },
            },
        ]);
        let (jsonl, inv) = run_jsonl(&spec);
        let violations = check_jsonl(&jsonl, &inv);
        assert!(violations.is_empty(), "unexpected: {violations:?}");
        // The stream really contains what the invariants certify.
        assert!(jsonl.contains("\"injection\":\"grow\""));
        assert!(jsonl.contains("\"injection\":\"shrink\""));
    }

    #[test]
    fn doctored_streams_are_caught() {
        let spec = base_spec(vec![TimedEvent {
            at_us: 20_000_000,
            event: EventKind::CrashNodes {
                cluster: 1,
                count: 4,
            },
        }]);
        let (jsonl, inv) = run_jsonl(&spec);

        // Remove the crash injection record: the crash event loses its
        // justification AND the injection counter stops matching.
        let no_injection: String = jsonl
            .lines()
            .filter(|l| !l.contains("\"injection\":\"crash_nodes\""))
            .map(|l| format!("{l}\n"))
            .collect();
        let v = check_jsonl(&no_injection, &inv);
        assert!(
            v.iter().any(|v| v.invariant == "decision-provenance"),
            "missing injection must break crash provenance: {v:?}"
        );
        assert!(v.iter().any(|v| v.invariant == "work-conservation"));

        // Drop a join event: flow balance and the join counter both break.
        let mut dropped = false;
        let no_join: String = jsonl
            .lines()
            .filter(|l| {
                if !dropped && l.contains("\"kind\":\"join\"") {
                    dropped = true;
                    return false;
                }
                true
            })
            .map(|l| format!("{l}\n"))
            .collect();
        let v = check_jsonl(&no_join, &inv);
        assert!(
            v.iter().any(|v| v.invariant == "work-conservation"),
            "missing join must break conservation: {v:?}"
        );

        // A garbage line fails the stream itself.
        let v = check_jsonl("not json\n", &inv);
        assert_eq!(v[0].invariant, "well-formed-stream");
    }

    #[test]
    fn suspect_shrink_is_caught_from_the_stream_alone() {
        let inv = InvariantConfig {
            check_membership: false,
            check_conservation: false,
            ..InvariantConfig::default()
        };
        // Reconstructible decision lines (the provenance invariant runs on
        // every stream, so the fixtures carry the full evidence fields).
        let base =
            r#""wa_eff":0.5,"reports":4,"badness":[],"blacklist_nodes":[],"blacklist_clusters":[]"#;
        // A removal whose own snapshot lists a removed node as suspect.
        let bad_snapshot = format!(
            r#"{{"type":"event","at_us":1000,"kind":"decision","decision":"remove-nodes",{base},"remove":[4,7],"suspects":[7]}}"#
        );
        let v = check_jsonl(&format!("{bad_snapshot}\n"), &inv);
        assert!(
            v.iter()
                .any(|v| v.invariant == "no-suspect-shrink" && v.detail.contains("[7]")),
            "snapshot overlap must be caught: {v:?}"
        );

        // A hold-fire reason on anything but a kind-none decision.
        let bad_holdfire = format!(
            r#"{{"type":"event","at_us":1000,"kind":"decision","decision":"remove-nodes",{base},"remove":[4],"suspects":[],"hold_fire":"withheld"}}"#
        );
        let v = check_jsonl(&format!("{bad_holdfire}\n"), &inv);
        assert!(
            v.iter().any(|v| v.invariant == "no-suspect-shrink"),
            "hold_fire on a removal must be caught: {v:?}"
        );

        // A removal landing inside a member's open suspect interval.
        let suspect = r#"{"type":"event","at_us":500,"kind":"member","node":9,"state":"suspect"}"#;
        let in_window = format!(
            r#"{{"type":"event","at_us":800,"kind":"decision","decision":"remove-nodes",{base},"remove":[9],"suspects":[]}}"#
        );
        let v = check_jsonl(&format!("{suspect}\n{in_window}\n"), &inv);
        assert!(
            v.iter()
                .any(|v| v.invariant == "no-suspect-shrink" && v.detail.contains("node 9")),
            "interval overlap must be caught: {v:?}"
        );

        // The same removal after the suspicion resolved is clean, and a
        // held (kind-none) decision with suspects outstanding is clean.
        let resumed = r#"{"type":"event","at_us":700,"kind":"member","node":9,"state":"alive"}"#;
        let held = format!(
            r#"{{"type":"event","at_us":600,"kind":"decision","decision":"none",{base},"suspects":[9],"hold_fire":"withheld remove-nodes: 1 member(s) suspect"}}"#
        );
        let good = format!("{suspect}\n{held}\n{resumed}\n{in_window}\n");
        assert!(check_jsonl(&good, &inv).is_empty());
    }

    #[test]
    fn hub_failover_takeovers_match_injections_and_blacklists_persist() {
        let inv = InvariantConfig {
            check_membership: false,
            check_conservation: false,
            ..InvariantConfig::default()
        };
        let crash =
            r#"{"type":"event","at_us":1000000,"kind":"injection","injection":"crash_hub"}"#;
        let takeover = r#"{"type":"event","at_us":100,"kind":"hub_failover","epoch":2,"leader":1,"blacklisted_nodes":[3]}"#;
        let clean_join =
            r#"{"type":"event","at_us":200,"kind":"member","node":5,"state":"joined"}"#;
        let bad_join = r#"{"type":"event","at_us":300,"kind":"member","node":3,"state":"joined"}"#;

        // One crash, one takeover, blacklisted node stays out: passes.
        let good = format!("{crash}\n{takeover}\n{clean_join}\n");
        assert!(check_jsonl(&good, &inv).is_empty());

        // A takeover with no crash_hub injection (or vice versa) is caught.
        let unmatched = format!("{takeover}\n{clean_join}\n");
        assert!(check_jsonl(&unmatched, &inv)
            .iter()
            .any(|v| v.invariant == "hub-failover"));
        let lost = format!("{crash}\n");
        assert!(check_jsonl(&lost, &inv)
            .iter()
            .any(|v| v.invariant == "hub-failover"));

        // An inherited-blacklist node joining the promoted hub is caught.
        let rejoined = format!("{crash}\n{takeover}\n{bad_join}\n");
        assert!(check_jsonl(&rejoined, &inv)
            .iter()
            .any(|v| v.invariant == "hub-failover" && v.detail.contains("node 3")));
    }
}
