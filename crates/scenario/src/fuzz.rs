//! Seeded scenario fuzzing.
//!
//! [`generate`] composes a random — but *bounded* — perturbation stream
//! from a [`Xoshiro256StarStar`] seed and [`run_seed`] drives it through
//! the DES with metrics enabled, then asserts every adaptation invariant
//! on the emitted JSONL alone. The generator keeps cluster 0 pristine
//! (never crashed, loaded, shrunk or traffic-shaped) so every generated
//! scenario is *recoverable by construction*: whatever happens to the
//! other clusters, the adaptation loop always has healthy capacity to
//! fall back to — if efficiency does not recover, that is the
//! coordinator's failure, not the scenario's.
//!
//! Determinism contract: the same seed produces a byte-identical scenario
//! file ([`ScenarioSpec::to_json`]) and a byte-identical run trace
//! (`MetricsReport::to_jsonl`), so any CI failure is reproducible with
//! the printed one-line command ([`rerun_command`]).

use crate::invariants::{check_jsonl, InvariantConfig, Violation};
use crate::spec::{EventKind, GridSpec, ScenarioSpec, TimedEvent};
use sagrid_core::metrics::Metrics;
use sagrid_core::rng::{Rng64, Xoshiro256StarStar};
use sagrid_simgrid::{AdaptMode, GridSim};

/// Clusters of the fuzz grid (cluster 0 is the protected safe harbor).
pub const FUZZ_CLUSTERS: usize = 3;
/// Nodes per fuzz cluster.
pub const FUZZ_NODES_PER_CLUSTER: usize = 12;
/// Iterations per fuzz run (big enough that the run outlives its
/// disturbances and the coordinator gets several post-disturbance looks).
pub const FUZZ_ITERATIONS: usize = 10;
/// Per-iteration duration target (seconds) — short, the fuzzer runs many.
pub const FUZZ_ITER_SECS: f64 = 4.0;
/// Fuzz coordinator monitoring period (seconds).
pub const FUZZ_MONITORING_SECS: u64 = 30;

/// Generates the bounded random scenario for `seed`.
pub fn generate(seed: u64) -> ScenarioSpec {
    let mut rng = Xoshiro256StarStar::seeded(seed ^ 0xF022_5EED_F022_5EED);
    // 1–4 events at whole-second times in [5, 25] s; shapes extend past
    // their start by bounded tails, so everything lands well inside the
    // run.
    let n_events = 1 + rng.gen_index(4);
    let mut events = Vec::with_capacity(n_events);
    let mut crashed_clusters = 0usize;
    for _ in 0..n_events {
        let at_us = (5 + rng.gen_range(21)) * 1_000_000;
        // Perturbations only ever target clusters 1 and 2.
        let cluster = 1 + rng.gen_index(FUZZ_CLUSTERS - 1) as u16;
        let count = if rng.gen_bool(0.5) {
            None
        } else {
            Some(1 + rng.gen_index(FUZZ_NODES_PER_CLUSTER))
        };
        let factor = (2 + rng.gen_index(9)) as f64;
        let bps = 50_000.0 * (1 + rng.gen_index(20)) as f64;
        let event = match rng.gen_index(12) {
            0 => EventKind::CpuLoad {
                cluster,
                count,
                factor,
            },
            1 => EventKind::Speed {
                cluster,
                count,
                speed: (1 + rng.gen_index(10)) as f64 / 10.0,
            },
            2 => EventKind::UplinkBandwidth { cluster, bps },
            3 => EventKind::CrashNodes {
                cluster,
                count: 1 + rng.gen_index(6),
            },
            4 if crashed_clusters < FUZZ_CLUSTERS - 1 => {
                crashed_clusters += 1;
                EventKind::CrashCluster { cluster }
            }
            5 => EventKind::Grow {
                count: 1 + rng.gen_index(8),
                prefer: match rng.gen_index(4) {
                    0 => None,
                    c => Some((c - 1) as u16),
                },
            },
            6 => EventKind::Shrink {
                cluster,
                count: 1 + rng.gen_index(4),
            },
            7 => EventKind::SquareWave {
                cluster,
                count,
                factor,
                period_us: (6 + rng.gen_range(7)) * 1_000_000,
                cycles: 1 + rng.gen_index(2),
            },
            8 => EventKind::LoadRamp {
                cluster,
                count,
                to_factor: factor,
                steps: 2 + rng.gen_index(3),
                duration_us: (8 + rng.gen_range(9)) * 1_000_000,
            },
            9 => EventKind::Brownout {
                cluster,
                bps,
                duration_us: (8 + rng.gen_range(9)) * 1_000_000,
            },
            10 => EventKind::Diurnal {
                cluster,
                count,
                peak_factor: factor,
                period_us: (12 + rng.gen_range(9)) * 1_000_000,
                cycles: 1,
                steps: 4,
            },
            _ => EventKind::FlashCrowd {
                cluster,
                count,
                peak_factor: factor,
                decay_steps: 2 + rng.gen_index(3),
                decay_us: (8 + rng.gen_range(9)) * 1_000_000,
            },
        };
        events.push(TimedEvent { at_us, event });
    }
    events.sort_by_key(|e| e.at_us); // stable: equal times keep generation order
    ScenarioSpec {
        name: format!("fuzz-{seed:#018x}"),
        description: "generated adaptation-invariant fuzz scenario".into(),
        grid: GridSpec::Uniform {
            clusters: FUZZ_CLUSTERS,
            nodes_per_cluster: FUZZ_NODES_PER_CLUSTER,
        },
        layout: (0..FUZZ_CLUSTERS as u16)
            .map(|c| (c, FUZZ_NODES_PER_CLUSTER))
            .collect(),
        iterations: FUZZ_ITERATIONS,
        seed,
        target_nodes: FUZZ_CLUSTERS * FUZZ_NODES_PER_CLUSTER,
        target_iter_secs: FUZZ_ITER_SECS,
        monitoring_period_secs: Some(FUZZ_MONITORING_SECS),
        events,
    }
}

/// The invariant configuration matching [`generate`]'s scenarios.
pub fn fuzz_invariant_config(spec: &ScenarioSpec) -> InvariantConfig {
    InvariantConfig {
        // ~1.5 fuzz monitoring periods: long enough for a post-disturbance
        // evaluation, short enough that most runs reach it.
        settle_us: FUZZ_MONITORING_SECS * 1_500_000,
        expected_iterations: Some(spec.iterations as u64),
        ..InvariantConfig::default()
    }
}

/// Everything one fuzz case produced.
pub struct FuzzOutcome {
    /// The seed that generated it.
    pub seed: u64,
    /// The generated scenario.
    pub spec: ScenarioSpec,
    /// Canonical scenario file bytes (same seed ⇒ same bytes).
    pub file: String,
    /// The run's JSONL trace (same seed ⇒ same bytes).
    pub jsonl: String,
    /// Invariant violations (empty = pass).
    pub violations: Vec<Violation>,
}

/// Generates, runs and checks one seed.
pub fn run_seed(seed: u64) -> FuzzOutcome {
    let spec = generate(seed);
    let file = spec.to_json();
    let cfg = spec
        .sim_config(AdaptMode::Adapt)
        .expect("generated scenarios are always valid");
    let result = GridSim::try_run_with_metrics(cfg, Metrics::enabled())
        .expect("generated configs always run");
    let jsonl = result
        .metrics
        .as_ref()
        .expect("metrics were enabled")
        .to_jsonl();
    let mut violations = check_jsonl(&jsonl, &fuzz_invariant_config(&spec));
    if result.timed_out {
        violations.push(Violation {
            invariant: "work-conservation",
            detail: "run hit the virtual-time cap before finishing its workload".into(),
        });
    }
    FuzzOutcome {
        seed,
        spec,
        file,
        jsonl,
        violations,
    }
}

/// The one-line command that reproduces a failing seed.
pub fn rerun_command(seed: u64) -> String {
    format!("cargo run --release -p sagrid-exp --bin experiments -- --fuzz 1 --fuzz-seed {seed}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_is_byte_identical_file_and_trace() {
        // The fuzzer's reproducibility contract: scenario file AND run
        // trace are byte-for-byte functions of the seed.
        let a = run_seed(0xFEED_BEEF);
        let b = run_seed(0xFEED_BEEF);
        assert_eq!(a.file, b.file, "scenario file must be byte-identical");
        assert_eq!(a.jsonl, b.jsonl, "run trace must be byte-identical");
        assert!(
            ScenarioSpec::parse(&a.file).unwrap() == a.spec,
            "generated file round-trips"
        );
        // Different seeds diverge (not a constant generator).
        let c = run_seed(0xFEED_BEF0);
        assert_ne!(a.file, c.file);
    }

    #[test]
    fn a_seed_batch_holds_every_invariant() {
        // A small deterministic batch as a unit test; CI runs a larger
        // batch through `experiments --fuzz`.
        for seed in 0..4u64 {
            let out = run_seed(seed);
            assert!(
                out.violations.is_empty(),
                "seed {seed} violated invariants: {:?}\nrerun: {}",
                out.violations,
                rerun_command(seed)
            );
        }
    }

    #[test]
    fn rerun_command_names_the_seed() {
        assert!(rerun_command(42).contains("--fuzz-seed 42"));
    }
}
