//! Worker threads: local LIFO execution, cluster-aware random stealing,
//! statistics attribution, speed emulation and control signals.

use crate::config::RuntimeConfig;
use crate::deque::{Injector, Stealer, Worker as Deque};
use crate::job::Task;
use sagrid_core::metrics::{Counter, Gauge, Metrics};
use sagrid_core::rng::{Rng64, SplitMix64};
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::{Duration, Instant};

/// Control messages a worker drains between tasks.
pub(crate) enum Control {
    /// Graceful leave: hand queued tasks back to the global queue, exit.
    Leave,
    /// Simulated crash: abandon everything, exit immediately.
    Crash,
    /// Run the speed benchmark and publish its duration.
    Benchmark(Arc<BenchProbe>),
}

/// A speed-benchmark request (paper §3.2: a small application-specific
/// benchmark re-run periodically to track processor speed).
pub(crate) struct BenchProbe {
    pub(crate) spins: u64,
    pub(crate) result: Mutex<Option<Duration>>,
    pub(crate) done: Condvar,
}

impl BenchProbe {
    pub(crate) fn new(spins: u64) -> Arc<Self> {
        Arc::new(Self {
            spins,
            result: Mutex::new(None),
            done: Condvar::new(),
        })
    }

    pub(crate) fn wait(&self, timeout: Duration) -> Option<Duration> {
        let mut slot = self.result.lock().expect("probe lock poisoned");
        if slot.is_none() {
            let (guard, _) = self
                .done
                .wait_timeout(slot, timeout)
                .expect("probe lock poisoned");
            slot = guard;
        }
        *slot
    }

    fn publish(&self, d: Duration) {
        let mut slot = self.result.lock().expect("probe lock poisoned");
        *slot = Some(d);
        self.done.notify_all();
    }
}

/// Per-worker overhead counters (nanoseconds), reset when a monitoring
/// report is taken.
#[derive(Default)]
pub(crate) struct StatCounters {
    pub busy_ns: AtomicU64,
    pub idle_ns: AtomicU64,
    pub intra_ns: AtomicU64,
    pub inter_ns: AtomicU64,
    pub bench_ns: AtomicU64,
    /// Latest benchmark duration in nanoseconds (0 = never benchmarked).
    pub last_bench_ns: AtomicU64,
    pub tasks_executed: AtomicU64,
    pub steals_ok: AtomicU64,
    pub steals_failed: AtomicU64,
}

/// The runtime-visible half of a worker.
pub(crate) struct WorkerShared {
    pub(crate) stealer: Stealer<Arc<dyn Task>>,
    pub(crate) ctrl: Sender<Control>,
    pub(crate) cluster: usize,
    pub(crate) alive: AtomicBool,
    /// Speed knob ×1000 (1000 = full speed).
    pub(crate) speed_milli: AtomicU32,
    pub(crate) stats: StatCounters,
}

impl WorkerShared {
    pub(crate) fn speed(&self) -> f64 {
        f64::from(self.speed_milli.load(Ordering::Relaxed)) / 1000.0
    }
}

/// Pre-resolved metric handles for the threaded runtime; `None` when
/// metrics are disabled, so every hot-path observation is a single branch.
pub(crate) struct RtMetrics {
    pub(crate) spawns: Arc<Counter>,
    pub(crate) steals_local_ok: Arc<Counter>,
    pub(crate) steals_local_failed: Arc<Counter>,
    pub(crate) steals_remote_ok: Arc<Counter>,
    pub(crate) steals_remote_failed: Arc<Counter>,
    pub(crate) crashes: Arc<Counter>,
    pub(crate) requeues: Arc<Counter>,
    pub(crate) rescues: Arc<Counter>,
    pub(crate) workers_joined: Arc<Counter>,
    pub(crate) workers_left: Arc<Counter>,
    pub(crate) workers_alive: Arc<Gauge>,
}

impl RtMetrics {
    /// Resolves every handle once; `None` when `metrics` is disabled.
    pub(crate) fn resolve(metrics: &Metrics) -> Option<Self> {
        if !metrics.is_enabled() {
            return None;
        }
        let c = |name: &str| metrics.counter(name).expect("metrics enabled");
        Some(Self {
            spawns: c("rt.spawns"),
            steals_local_ok: c("rt.steals.local_ok"),
            steals_local_failed: c("rt.steals.local_failed"),
            steals_remote_ok: c("rt.steals.remote_ok"),
            steals_remote_failed: c("rt.steals.remote_failed"),
            crashes: c("rt.crashes"),
            requeues: c("rt.requeues"),
            rescues: c("rt.rescues"),
            workers_joined: c("rt.workers_joined"),
            workers_left: c("rt.workers_left"),
            workers_alive: metrics.gauge("rt.workers_alive").expect("metrics enabled"),
        })
    }
}

/// A pluggable provider of work from *outside* this process.
///
/// Installed via [`crate::Runtime::set_remote_steal_hook`], invoked by a
/// worker only after every in-process source came up dry (own deque,
/// global queue, sibling threads). The hook owns the whole remote
/// interaction — victim selection, the wire round trip, reconstructing
/// and executing the stolen job via `ctx`, returning the result to the
/// victim — and reports whether it made progress. It must return `false`
/// promptly when nothing is stealable so the worker can park; blocking
/// here stalls the worker loop.
pub trait RemoteStealHook: Send + Sync {
    /// Tries to obtain and execute one remote job. `true` = progress made.
    fn try_remote_steal(&self, ctx: &WorkerCtx<'_>) -> bool;
}

/// Runtime-wide shared state.
pub(crate) struct Shared {
    pub(crate) cfg: RuntimeConfig,
    pub(crate) workers: RwLock<Vec<Arc<WorkerShared>>>,
    pub(crate) injector: Injector<Arc<dyn Task>>,
    pub(crate) shutdown: AtomicBool,
    /// The registry the runtime reports into (disabled by default).
    pub(crate) metrics: Metrics,
    /// Pre-resolved handles derived from `metrics`.
    pub(crate) rm: Option<RtMetrics>,
    /// Cross-process steal provider; `None` until installed.
    pub(crate) remote_steal: RwLock<Option<Arc<dyn RemoteStealHook>>>,
}

/// The execution context handed to every divide-and-conquer job. Provides
/// `spawn` (Satin's `spawn` annotation) and helps `JoinHandle::join`
/// (Satin's `sync`) keep the worker busy while waiting.
pub struct WorkerCtx<'a> {
    shared: &'a Shared,
    me: usize,
    local: &'a Deque<Arc<dyn Task>>,
    rng: RefCell<SplitMix64>,
}

impl<'a> WorkerCtx<'a> {
    pub(crate) fn new(shared: &'a Shared, me: usize, local: &'a Deque<Arc<dyn Task>>) -> Self {
        Self {
            shared,
            me,
            local,
            rng: RefCell::new(SplitMix64::new(0x5EED ^ (me as u64).wrapping_mul(0x9E37))),
        }
    }

    /// Index of the executing worker.
    pub fn worker_id(&self) -> usize {
        self.me
    }

    /// The emulated cluster of the executing worker.
    pub fn cluster(&self) -> usize {
        self.shared.workers.read().expect("workers poisoned")[self.me].cluster
    }

    /// Spawns a divide-and-conquer child job onto this worker's deque.
    ///
    /// The closure must be pure (re-executable): that is what lets the
    /// runtime transparently re-run it if the worker holding it crashes.
    pub fn spawn<T, F>(&self, f: F) -> crate::job::JoinHandle<T>
    where
        T: Send + 'static,
        F: Fn(&WorkerCtx<'_>) -> T + Send + Sync + 'static,
    {
        let job = crate::job::Job::new(f);
        job.set_holder(self.me);
        self.local.push(job.clone());
        if let Some(rm) = &self.shared.rm {
            rm.spawns.inc();
        }
        crate::job::JoinHandle { job }
    }

    /// Attributes `d` of measured remote-steal wire time to this worker's
    /// inter-cluster communication overhead — the paper's `inter_comm`
    /// input, here a real wall-clock measurement of network round trips
    /// rather than an emulated delay. Called by [`RemoteStealHook`]
    /// implementations.
    pub fn note_remote_wait(&self, d: Duration) {
        let workers = self.shared.workers.read().expect("workers poisoned");
        workers[self.me]
            .stats
            .inter_ns
            .fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Records a joiner re-executing a job lost with a dead worker
    /// (fault-tolerance self-rescue).
    pub(crate) fn note_rescue(&self) {
        if let Some(rm) = &self.shared.rm {
            rm.rescues.inc();
        }
    }

    /// Whether worker `id` is currently alive ([`crate::job::NO_HOLDER`]
    /// counts as not-alive so joiners self-rescue queued-nowhere jobs).
    pub(crate) fn is_worker_alive(&self, id: usize) -> bool {
        let workers = self.shared.workers.read().expect("workers poisoned");
        workers
            .get(id)
            .is_some_and(|w| w.alive.load(Ordering::Acquire))
    }

    /// Pops or steals one task and executes it. Returns `false` when no
    /// work was found anywhere.
    pub fn run_one(&self) -> bool {
        if let Some(task) = self.find_task() {
            self.execute_timed(task);
            return true;
        }
        false
    }

    fn execute_timed(&self, task: Arc<dyn Task>) {
        let start = Instant::now();
        task.execute(self);
        let busy = start.elapsed();
        let workers = self.shared.workers.read().expect("workers poisoned");
        let me = &workers[self.me];
        // Speed emulation: a worker at speed s pads every t of work with
        // t·(1/s − 1) of spin, exactly like background load on a
        // time-shared grid node.
        let speed = me.speed();
        if speed < 1.0 {
            let penalty = busy.mul_f64(1.0 / speed - 1.0);
            spin_for(penalty);
            me.stats
                .busy_ns
                .fetch_add((busy + penalty).as_nanos() as u64, Ordering::Relaxed);
        } else {
            me.stats
                .busy_ns
                .fetch_add(busy.as_nanos() as u64, Ordering::Relaxed);
        }
        me.stats.tasks_executed.fetch_add(1, Ordering::Relaxed);
    }

    /// Work-finding: own deque (LIFO), then the global queue, then
    /// cluster-aware random stealing — a random victim in the own cluster,
    /// then a random victim in another cluster (paying the emulated WAN
    /// latency).
    fn find_task(&self) -> Option<Arc<dyn Task>> {
        if let Some(t) = self.local.pop() {
            return Some(t);
        }
        if let Some(t) = self.shared.injector.steal() {
            return Some(t);
        }
        let workers = self.shared.workers.read().expect("workers poisoned");
        let my_cluster = workers[self.me].cluster;
        let mut rng = self.rng.borrow_mut();
        // One local attempt, then one wide attempt, mirroring CRS.
        for wide in [false, true] {
            let candidates: Vec<usize> = workers
                .iter()
                .enumerate()
                .filter(|(i, w)| {
                    *i != self.me
                        && w.alive.load(Ordering::Acquire)
                        && (w.cluster == my_cluster) != wide
                })
                .map(|(i, _)| i)
                .collect();
            if candidates.is_empty() {
                continue;
            }
            let victim = candidates[rng.gen_index(candidates.len())];
            let latency = if wide {
                self.shared.cfg.wan_latency
            } else {
                self.shared.cfg.lan_latency
            };
            let start = Instant::now();
            // The emulated network round trip for the steal message.
            spin_for(latency);
            let got = workers[victim].stealer.steal();
            if got.is_some() {
                spin_for(latency); // task transfer back
            }
            let waited = start.elapsed().as_nanos() as u64;
            let stats = &workers[self.me].stats;
            if wide {
                stats.inter_ns.fetch_add(waited, Ordering::Relaxed);
            } else {
                stats.intra_ns.fetch_add(waited, Ordering::Relaxed);
            }
            if let Some(t) = got {
                stats.steals_ok.fetch_add(1, Ordering::Relaxed);
                if let Some(rm) = &self.shared.rm {
                    let c = if wide {
                        &rm.steals_remote_ok
                    } else {
                        &rm.steals_local_ok
                    };
                    c.inc();
                }
                return Some(t);
            }
            stats.steals_failed.fetch_add(1, Ordering::Relaxed);
            if let Some(rm) = &self.shared.rm {
                let c = if wide {
                    &rm.steals_remote_failed
                } else {
                    &rm.steals_local_failed
                };
                c.inc();
            }
        }
        None
    }
}

/// Busy-waits for `d` (precise sub-millisecond emulation; `thread::sleep`
/// granularity would distort the statistics).
fn spin_for(d: Duration) {
    if d.is_zero() {
        return;
    }
    let start = Instant::now();
    while start.elapsed() < d {
        std::hint::spin_loop();
    }
}

/// The worker thread body.
pub(crate) fn worker_main(
    shared: Arc<Shared>,
    me: usize,
    local: Deque<Arc<dyn Task>>,
    ctrl: Receiver<Control>,
) {
    let ctx = WorkerCtx::new(&shared, me, &local);
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        // Drain control messages.
        while let Ok(msg) = ctrl.try_recv() {
            let my = shared.workers.read().expect("workers poisoned")[me].clone();
            match msg {
                Control::Leave => {
                    // Malleability: hand every queued task back to the
                    // global queue so no work is lost, then retire.
                    let mut handed_back = 0u64;
                    while let Some(t) = local.pop() {
                        t.set_holder(crate::job::NO_HOLDER);
                        shared.injector.push(t);
                        handed_back += 1;
                    }
                    my.alive.store(false, Ordering::Release);
                    if let Some(rm) = &shared.rm {
                        rm.requeues.add(handed_back);
                        rm.workers_left.inc();
                        rm.workers_alive.add(-1);
                    }
                    return;
                }
                Control::Crash => {
                    // Abandon everything; joiners will re-execute. The
                    // crash counters live in `Runtime::crash_worker` (the
                    // only sender), which keeps them exact even when this
                    // thread exits through the alive-flag check instead.
                    my.alive.store(false, Ordering::Release);
                    return;
                }
                Control::Benchmark(probe) => {
                    let start = Instant::now();
                    let mut acc = 0u64;
                    for i in 0..probe.spins {
                        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
                        std::hint::black_box(acc);
                    }
                    let raw = start.elapsed();
                    let speed = my.speed();
                    if speed < 1.0 {
                        spin_for(raw.mul_f64(1.0 / speed - 1.0));
                    }
                    let total = start.elapsed();
                    my.stats
                        .bench_ns
                        .fetch_add(total.as_nanos() as u64, Ordering::Relaxed);
                    my.stats
                        .last_bench_ns
                        .store(total.as_nanos() as u64, Ordering::Relaxed);
                    probe.publish(total);
                }
            }
        }
        // A worker that was crashed externally must stop promptly too.
        if !shared.workers.read().expect("workers poisoned")[me]
            .alive
            .load(Ordering::Acquire)
        {
            return;
        }
        if !ctx.run_one() {
            // Every in-process source is dry: give the cross-process hook
            // a chance before parking.
            let hook = shared
                .remote_steal
                .read()
                .expect("remote steal hook poisoned")
                .clone();
            if hook.is_some_and(|h| h.try_remote_steal(&ctx)) {
                continue;
            }
            let park = shared.cfg.idle_park;
            std::thread::sleep(park);
            shared.workers.read().expect("workers poisoned")[me]
                .stats
                .idle_ns
                .fetch_add(park.as_nanos() as u64, Ordering::Relaxed);
        }
    }
}
