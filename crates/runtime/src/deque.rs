//! Minimal work-stealing primitives on `std` alone.
//!
//! The threaded runtime previously leaned on `crossbeam::deque`; this module
//! replaces it with mutex-guarded double-ended queues so the workspace builds
//! with no external dependencies at all. The semantics are the same ones the
//! runtime relies on: the owner pushes and pops LIFO at the back of its deque
//! (depth-first execution keeps the working set small), thieves and the
//! global injector take FIFO from the front (stealing the biggest subtrees).
//! Contention on these locks is bounded by the steal rate, which the runtime
//! already throttles with emulated network latency.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// The owning side of a worker's deque: LIFO push/pop at the back.
pub(crate) struct Worker<T> {
    inner: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Worker<T> {
    /// A fresh, empty deque.
    pub(crate) fn new_lifo() -> Self {
        Self {
            inner: Arc::new(Mutex::new(VecDeque::new())),
        }
    }

    /// Pushes a task for LIFO execution by the owner.
    pub(crate) fn push(&self, t: T) {
        self.inner.lock().expect("deque poisoned").push_back(t);
    }

    /// Pops the most recently pushed task (depth-first order).
    pub(crate) fn pop(&self) -> Option<T> {
        self.inner.lock().expect("deque poisoned").pop_back()
    }

    /// A handle other workers use to steal from this deque.
    pub(crate) fn stealer(&self) -> Stealer<T> {
        Stealer {
            inner: Arc::clone(&self.inner),
        }
    }
}

/// The thieving side of a worker's deque: FIFO steal from the front.
pub(crate) struct Stealer<T> {
    inner: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Stealer<T> {
    /// Steals the oldest queued task, if any.
    pub(crate) fn steal(&self) -> Option<T> {
        self.inner.lock().expect("deque poisoned").pop_front()
    }
}

/// A global FIFO injection queue shared by the whole pool.
pub(crate) struct Injector<T> {
    queue: Mutex<VecDeque<T>>,
}

impl<T> Injector<T> {
    /// An empty injector.
    pub(crate) fn new() -> Self {
        Self {
            queue: Mutex::new(VecDeque::new()),
        }
    }

    /// Enqueues a task for any worker to pick up.
    pub(crate) fn push(&self, t: T) {
        self.queue.lock().expect("injector poisoned").push_back(t);
    }

    /// Takes the oldest injected task, if any.
    pub(crate) fn steal(&self) -> Option<T> {
        self.queue.lock().expect("injector poisoned").pop_front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owner_is_lifo_thief_is_fifo() {
        let w: Worker<u32> = Worker::new_lifo();
        let s = w.stealer();
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(s.steal(), Some(1), "thief takes the oldest");
        assert_eq!(w.pop(), Some(3), "owner takes the newest");
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn injector_is_fifo() {
        let inj: Injector<u32> = Injector::new();
        inj.push(1);
        inj.push(2);
        assert_eq!(inj.steal(), Some(1));
        assert_eq!(inj.steal(), Some(2));
        assert_eq!(inj.steal(), None);
    }

    #[test]
    fn stealing_is_safe_across_threads() {
        let w: Worker<u64> = Worker::new_lifo();
        for i in 0..1000 {
            w.push(i);
        }
        let total: u64 = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let s = w.stealer();
                    scope.spawn(move || {
                        let mut sum = 0u64;
                        while let Some(v) = s.steal() {
                            sum += v;
                        }
                        sum
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("no panics"))
                .sum()
        });
        assert_eq!(total, 999 * 1000 / 2);
    }
}
