//! Runtime configuration: emulated grid layout for a thread pool.

use std::time::Duration;

/// One emulated cluster of worker threads.
#[derive(Clone, Debug, PartialEq)]
pub struct ClusterLayout {
    /// Site name (reports/debugging).
    pub name: String,
    /// Number of worker threads started in this cluster.
    pub workers: usize,
    /// Relative speed knob in `(0, 1]`: workers in this cluster pad each
    /// task with `t·(1/speed − 1)` of spin time, emulating slower
    /// processors the same way background load does on a time-shared grid
    /// node. The speed of individual workers can be changed at runtime
    /// ([`crate::Runtime::set_worker_speed`]) to script overload scenarios.
    pub speed: f64,
}

impl ClusterLayout {
    /// A full-speed cluster.
    pub fn new(name: &str, workers: usize) -> Self {
        Self {
            name: name.to_string(),
            workers,
            speed: 1.0,
        }
    }
}

/// Thread-pool-wide configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct RuntimeConfig {
    /// The emulated sites.
    pub clusters: Vec<ClusterLayout>,
    /// One-way latency injected on every *inter-cluster* steal interaction
    /// (the WAN). Zero disables the emulation.
    pub wan_latency: Duration,
    /// Latency injected on intra-cluster steals (the LAN); usually tiny.
    pub lan_latency: Duration,
    /// How long an idle worker parks between failed steal sweeps.
    pub idle_park: Duration,
    /// Spin iterations of the speed benchmark
    /// ([`crate::Runtime::benchmark_worker`]).
    pub benchmark_spins: u64,
}

impl RuntimeConfig {
    /// A single local cluster of `workers` threads — plain shared-memory
    /// divide-and-conquer, no WAN emulation.
    pub fn single_cluster(workers: usize) -> Self {
        Self {
            clusters: vec![ClusterLayout::new("local", workers)],
            wan_latency: Duration::ZERO,
            lan_latency: Duration::ZERO,
            idle_park: Duration::from_micros(50),
            benchmark_spins: 2_000_000,
        }
    }

    /// An emulated wide-area grid: `n_clusters` sites of `workers_each`
    /// threads with a 2 ms emulated WAN latency.
    pub fn emulated_grid(n_clusters: usize, workers_each: usize) -> Self {
        Self {
            clusters: (0..n_clusters)
                .map(|i| ClusterLayout::new(&format!("site{i}"), workers_each))
                .collect(),
            wan_latency: Duration::from_millis(2),
            lan_latency: Duration::from_micros(20),
            idle_park: Duration::from_micros(50),
            benchmark_spins: 2_000_000,
        }
    }

    /// Total worker count.
    pub fn total_workers(&self) -> usize {
        self.clusters.iter().map(|c| c.workers).sum()
    }

    /// Sanity checks.
    pub fn validate(&self) -> Result<(), String> {
        if self.clusters.is_empty() || self.total_workers() == 0 {
            return Err("at least one worker is required".into());
        }
        for c in &self.clusters {
            if !(c.speed > 0.0 && c.speed <= 1.0) {
                return Err(format!("cluster {} speed must be in (0,1]", c.name));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_produce_valid_configs() {
        RuntimeConfig::single_cluster(4).validate().unwrap();
        RuntimeConfig::emulated_grid(3, 2).validate().unwrap();
        assert_eq!(RuntimeConfig::emulated_grid(3, 2).total_workers(), 6);
    }

    #[test]
    fn bad_speed_rejected() {
        let mut c = RuntimeConfig::single_cluster(2);
        c.clusters[0].speed = 0.0;
        assert!(c.validate().is_err());
        c.clusters[0].speed = 1.5;
        assert!(c.validate().is_err());
    }

    #[test]
    fn empty_pool_rejected() {
        let c = RuntimeConfig {
            clusters: vec![],
            ..RuntimeConfig::single_cluster(1)
        };
        assert!(c.validate().is_err());
    }
}
