//! Spawned-task records.
//!
//! Every `spawn` creates a `Job` holding the (pure, re-executable)
//! closure, a result slot, and a *holder* tag recording which worker
//! currently has the job in its deque or under execution. The holder tag is
//! the whole fault-tolerance story: a joiner that finds its job held by a
//! dead worker simply re-executes the closure inline — a simplified form of
//! Satin's orphan recomputation (Wrzesinska et al., IPDPS 2005), sound
//! because divide-and-conquer jobs are side-effect-free.

use crate::worker::WorkerCtx;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Holder tag for a job that is not in any worker's hands (global queue or
/// not yet queued).
pub(crate) const NO_HOLDER: usize = usize::MAX;

/// Type-erased view of a job, as stored in deques.
pub(crate) trait Task: Send + Sync {
    /// Runs the job (idempotent: completed jobs return immediately; a
    /// racing duplicate execution is wasted work, never wrong results).
    fn execute(&self, ctx: &WorkerCtx<'_>);
    /// Whether a result has been stored.
    fn is_done(&self) -> bool;
    /// Current holder worker, or [`NO_HOLDER`].
    fn holder(&self) -> usize;
    /// Updates the holder tag.
    fn set_holder(&self, worker: usize);
}

/// The shared state behind a [`JoinHandle`].
pub(crate) struct Job<T> {
    func: Box<dyn Fn(&WorkerCtx<'_>) -> T + Send + Sync>,
    result: Mutex<Option<T>>,
    done: AtomicBool,
    poisoned: AtomicBool,
    holder: AtomicUsize,
    wake: Condvar,
    wake_lock: Mutex<()>,
}

impl<T: Send> Job<T> {
    pub(crate) fn new(func: impl Fn(&WorkerCtx<'_>) -> T + Send + Sync + 'static) -> Arc<Self> {
        Arc::new(Self {
            func: Box::new(func),
            result: Mutex::new(None),
            done: AtomicBool::new(false),
            poisoned: AtomicBool::new(false),
            holder: AtomicUsize::new(NO_HOLDER),
            wake: Condvar::new(),
            wake_lock: Mutex::new(()),
        })
    }

    fn store_result(&self, value: T) {
        let mut slot = self.result.lock().expect("result lock poisoned");
        if slot.is_none() {
            *slot = Some(value);
            self.done.store(true, Ordering::Release);
            drop(slot);
            let _guard = self.wake_lock.lock().expect("wake lock poisoned");
            self.wake.notify_all();
        }
        // A racing duplicate execution (fault-tolerance re-run that lost the
        // race against the presumed-dead worker) drops its value: first
        // result wins, and pure jobs make both values identical anyway.
    }

    pub(crate) fn take_result(&self) -> Option<T> {
        self.result.lock().expect("result lock poisoned").take()
    }

    /// Whether the job's closure panicked.
    pub(crate) fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Acquire)
    }

    fn mark_poisoned(&self) {
        self.poisoned.store(true, Ordering::Release);
        self.done.store(true, Ordering::Release);
        let _guard = self.wake_lock.lock().expect("wake lock poisoned");
        self.wake.notify_all();
    }

    /// Blocks a non-worker thread until the job completes, waking every
    /// `tick` so the caller can run its lost-job recovery check.
    pub(crate) fn wait_with_tick(&self, tick: Duration, mut on_tick: impl FnMut()) {
        while !self.is_done() {
            {
                let guard = self.wake_lock.lock().expect("wake lock poisoned");
                if self.done.load(Ordering::Acquire) {
                    break;
                }
                let _ = self
                    .wake
                    .wait_timeout(guard, tick)
                    .expect("wake lock poisoned");
            }
            on_tick();
        }
    }
}

impl<T: Send> Task for Job<T> {
    fn execute(&self, ctx: &WorkerCtx<'_>) {
        if self.is_done() {
            return;
        }
        self.set_holder(ctx.worker_id());
        // Jobs are user code: a panic must not take the worker thread (and
        // with it every queued task) down, nor leave joiners hanging — it
        // is captured and re-thrown at the join point.
        match std::panic::catch_unwind(AssertUnwindSafe(|| (self.func)(ctx))) {
            Ok(value) => self.store_result(value),
            Err(_) => self.mark_poisoned(),
        }
    }

    fn is_done(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }

    fn holder(&self) -> usize {
        self.holder.load(Ordering::Acquire)
    }

    fn set_holder(&self, worker: usize) {
        self.holder.store(worker, Ordering::Release);
    }
}

/// Handle to a spawned job; redeem with [`JoinHandle::join`] (from worker
/// code) — the joining worker keeps executing other tasks while it waits,
/// exactly like Satin's `sync`.
pub struct JoinHandle<T> {
    pub(crate) job: Arc<Job<T>>,
}

impl<T: Send> JoinHandle<T> {
    /// Whether the result is already available.
    pub fn is_done(&self) -> bool {
        self.job.is_done()
    }

    /// Waits for the job, helping with other work meanwhile, and returns
    /// its result. If the job was held by a worker that has since crashed
    /// or left, the joiner re-executes it inline (fault tolerance).
    ///
    /// Panics if the job's closure panicked (the panic is propagated to
    /// the joiner, like `std::thread::JoinHandle`).
    pub fn join(self, ctx: &WorkerCtx<'_>) -> T {
        loop {
            if self.job.is_done() {
                if self.job.is_poisoned() {
                    panic!("divide-and-conquer job panicked");
                }
                if let Some(v) = self.job.take_result() {
                    return v;
                }
            }
            // Help: run any available task (our own deque first).
            if ctx.run_one() {
                continue;
            }
            // Nothing to run and still not done: is the job lost?
            let holder = self.job.holder();
            if holder == ctx.worker_id() || !ctx.is_worker_alive(holder) {
                // Either nobody will ever run it for us, or it died with a
                // crashed worker. Re-execute inline.
                if holder != ctx.worker_id() {
                    ctx.note_rescue();
                }
                self.job.execute(ctx);
                continue;
            }
            std::thread::yield_now();
        }
    }
}
