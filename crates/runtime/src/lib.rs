//! # sagrid-runtime
//!
//! A Satin-like malleable divide-and-conquer runtime on real threads
//! (paper §4). Satin is the substrate the paper's adaptation component was
//! built into: programs are written with spawn/sync primitives, load is
//! balanced with **cluster-aware random work stealing** (CRS), and the
//! runtime provides transparent **malleability** (processors can join and
//! leave an ongoing computation) and **fault tolerance** (work held by a
//! crashed processor is re-executed).
//!
//! This crate is the shared-memory twin of the discrete-event engine in
//! `sagrid-simgrid`: workers are OS threads grouped into emulated
//! "clusters", wide-area stealing pays an injected latency, and the same
//! per-worker overhead statistics (busy / idle / intra- / inter-cluster
//! communication) feed the same [`sagrid_adapt::Coordinator`].
//!
//! ```
//! use sagrid_runtime::{Runtime, RuntimeConfig, WorkerCtx};
//!
//! fn fib(ctx: &WorkerCtx, n: u64) -> u64 {
//!     if n < 2 {
//!         return n;
//!     }
//!     let a = ctx.spawn(move |ctx| fib(ctx, n - 1));
//!     let b = fib(ctx, n - 2);
//!     a.join(ctx) + b
//! }
//!
//! let rt = Runtime::new(RuntimeConfig::single_cluster(4));
//! let result = rt.run(|ctx| fib(ctx, 20));
//! assert_eq!(result, 6765);
//! rt.shutdown();
//! ```
//!
//! Module map:
//!
//! * [`config`] — cluster layout, WAN emulation parameters;
//! * [`job`] — spawned-task records: result slots, ownership state, the
//!   re-execution machinery behind fault tolerance;
//! * [`worker`] — the worker loop: local LIFO execution, CRS victim
//!   selection, statistics attribution, speed emulation, control signals;
//! * [`runtime`] — the public façade: run jobs, add/remove/crash workers,
//!   collect monitoring reports, run speed benchmarks;
//! * [`adaptive`] — the self-adaptation driver: wires live worker
//!   statistics into the paper's coordinator and applies its decisions to
//!   the thread pool.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod adaptive;
pub mod config;
mod deque;
pub mod job;
pub mod runtime;
pub mod worker;

pub use adaptive::AdaptiveRuntime;
pub use config::{ClusterLayout, RuntimeConfig};
pub use job::JoinHandle;
pub use runtime::{Runtime, WorkerId};
pub use worker::{RemoteStealHook, WorkerCtx};
