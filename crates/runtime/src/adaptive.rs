//! The live self-adaptation loop: the paper's coordinator driving a real
//! thread pool.
//!
//! [`AdaptiveRuntime`] owns a [`Runtime`] plus an
//! [`sagrid_adapt::Coordinator`]. Each call to [`AdaptiveRuntime::tick`]
//! plays one monitoring period: benchmark the workers, collect their
//! overhead statistics, compute weighted average efficiency, and apply the
//! coordinator's decision to the pool (add workers up to the configured
//! capacity, retire the worst ones, drop a badly-connected "cluster").
//!
//! This is the same decision code the discrete-event engine runs at DAS-2
//! scale; here it manipulates actual OS threads, which is what the
//! `grid_rescue` example demonstrates end to end.

use crate::runtime::{Runtime, WorkerId};
use sagrid_adapt::coordinator::Decision;
use sagrid_adapt::{AdaptPolicy, Coordinator, SpeedTracker};
use sagrid_core::ids::NodeId;
use sagrid_core::time::SimDuration;
use std::sync::Arc;

/// A [`Runtime`] under control of the paper's adaptation coordinator.
pub struct AdaptiveRuntime {
    runtime: Arc<Runtime>,
    coordinator: Coordinator,
    speeds: SpeedTracker,
    /// Maximum workers per cluster the "scheduler" may grant.
    capacity_per_cluster: Vec<usize>,
}

impl AdaptiveRuntime {
    /// Wraps a runtime. `capacity_per_cluster[c]` bounds how many workers
    /// cluster `c` may grow to (the resource pool).
    pub fn new(runtime: Runtime, policy: AdaptPolicy, capacity_per_cluster: Vec<usize>) -> Self {
        Self {
            runtime: Arc::new(runtime),
            coordinator: Coordinator::new(policy),
            speeds: SpeedTracker::new(),
            capacity_per_cluster,
        }
    }

    /// Access to the underlying runtime (submit jobs, inject load, …).
    pub fn runtime(&self) -> &Runtime {
        &self.runtime
    }

    /// A shareable handle to the runtime, so other threads can submit work
    /// while the adaptation loop ticks.
    pub fn runtime_handle(&self) -> Arc<Runtime> {
        Arc::clone(&self.runtime)
    }

    /// The coordinator (decision log, blacklists, learned requirements).
    pub fn coordinator(&self) -> &Coordinator {
        &self.coordinator
    }

    /// Plays one monitoring period: benchmark, collect, decide, apply.
    /// Returns the decision for inspection.
    pub fn tick(&mut self) -> Decision {
        // 1. Speed benchmarks (paper §3.2).
        for id in self.runtime.alive_workers() {
            if let Some(d) = self.runtime.benchmark_worker(id) {
                self.speeds.record(
                    NodeId(id as u32),
                    SimDuration::from_micros(d.as_micros().max(1) as u64),
                );
            }
        }
        // 2. Collect the period's overhead statistics.
        let rel = self.speeds.all_relative_speeds();
        for (mut report, _) in self.runtime.take_monitoring_reports() {
            report.speed = rel.get(&report.node).copied().unwrap_or(1.0);
            self.coordinator.record_report(report);
        }
        // 3. Decide and apply.
        let decision = self.coordinator.evaluate(self.runtime.now(), None);
        match &decision {
            Decision::None => {}
            Decision::Add { count, prefer, .. } => {
                let mut remaining = *count;
                // Locality: fill preferred clusters first, then any with
                // spare capacity.
                let clusters: Vec<usize> = prefer
                    .iter()
                    .map(|c| c.index())
                    .chain(0..self.capacity_per_cluster.len())
                    .collect();
                for c in clusters {
                    while remaining > 0 && self.cluster_population(c) < self.capacity(c) {
                        self.runtime.add_worker(c);
                        remaining -= 1;
                    }
                    if remaining == 0 {
                        break;
                    }
                }
            }
            Decision::RemoveNodes { nodes } => {
                for n in nodes {
                    self.runtime.remove_worker(n.index() as WorkerId);
                }
            }
            Decision::RemoveCluster { nodes, .. } => {
                for n in nodes {
                    self.runtime.remove_worker(n.index() as WorkerId);
                }
            }
            Decision::OpportunisticSwap { remove, add, .. } => {
                for _ in 0..*add {
                    // Fastest-first: clusters are homogeneous here, pick the
                    // first with capacity.
                    if let Some(c) = (0..self.capacity_per_cluster.len())
                        .find(|&c| self.cluster_population(c) < self.capacity(c))
                    {
                        self.runtime.add_worker(c);
                    }
                }
                for n in remove {
                    self.runtime.remove_worker(n.index() as WorkerId);
                }
            }
        }
        decision
    }

    fn capacity(&self, cluster: usize) -> usize {
        self.capacity_per_cluster.get(cluster).copied().unwrap_or(0)
    }

    fn cluster_population(&self, cluster: usize) -> usize {
        self.runtime
            .alive_workers()
            .into_iter()
            .filter(|&w| self.runtime.worker_cluster(w) == Some(cluster))
            .count()
    }

    /// Consumes the wrapper, returning the runtime for shutdown.
    ///
    /// Panics if runtime handles from [`AdaptiveRuntime::runtime_handle`]
    /// are still alive — join those threads first.
    pub fn into_runtime(self) -> Runtime {
        Arc::try_unwrap(self.runtime)
            .ok()
            .expect("outstanding runtime handles; join worker threads first")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RuntimeConfig;
    use crate::worker::WorkerCtx;
    use sagrid_core::time::SimDuration;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    /// A long-running irregular workload that keeps spawning until told to
    /// stop (so adaptation ticks happen mid-computation).
    fn busy_tree(ctx: &WorkerCtx<'_>, depth: u32, stop: &Arc<AtomicBool>) -> u64 {
        // Each task spins ~50µs of work.
        let start = std::time::Instant::now();
        while start.elapsed() < std::time::Duration::from_micros(50) {
            std::hint::spin_loop();
        }
        if depth == 0 || stop.load(Ordering::Relaxed) {
            return 1;
        }
        let s = stop.clone();
        let a = ctx.spawn(move |ctx| busy_tree(ctx, depth - 1, &s));
        let b = busy_tree(ctx, depth - 1, stop);
        a.join(ctx) + b
    }

    fn quick_policy() -> AdaptPolicy {
        AdaptPolicy {
            monitoring_period: SimDuration::from_millis(50),
            ..AdaptPolicy::default()
        }
    }

    #[test]
    fn tick_collects_and_decides_without_workload() {
        // Idle pool: overhead ~100% idle → wa_eff ≈ 0 → shrink decision.
        let rt = Runtime::new(RuntimeConfig::single_cluster(4));
        std::thread::sleep(std::time::Duration::from_millis(30));
        let mut art = AdaptiveRuntime::new(rt, quick_policy(), vec![4]);
        let d = art.tick();
        assert_eq!(d.kind(), "remove-nodes", "idle pool should shrink: {d:?}");
        art.into_runtime().shutdown();
    }

    #[test]
    fn tick_grows_a_saturated_pool() {
        let rt = Runtime::new(RuntimeConfig::single_cluster(2));
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let mut art = AdaptiveRuntime::new(rt, quick_policy(), vec![6]);
        let result = std::thread::scope(|s| {
            let handle = s.spawn({
                let stop = stop2.clone();
                move || {
                    // Saturating workload on the runtime while we tick.
                    std::thread::sleep(std::time::Duration::from_millis(20));
                    stop.load(Ordering::Relaxed)
                }
            });
            // Run the workload from this thread via the runtime.
            let stop3 = stop.clone();
            let r = art.runtime().run(move |ctx| busy_tree(ctx, 10, &stop3));
            let _ = handle.join();
            r
        });
        assert!(result > 0);
        // Workers were busy the whole run: the period's stats show high
        // utilization → the coordinator asks for more nodes.
        let d = art.tick();
        assert_eq!(d.kind(), "add", "busy pool should grow: {d:?}");
        let alive_before = art.runtime().alive_workers().len();
        assert!(alive_before > 2, "workers were actually added");
        art.into_runtime().shutdown();
    }
}
