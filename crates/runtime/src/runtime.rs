//! The public runtime façade.

use crate::config::RuntimeConfig;
use crate::deque::{Injector, Worker as Deque};
use crate::job::{Job, Task, NO_HOLDER};
use crate::worker::{
    worker_main, BenchProbe, Control, RemoteStealHook, RtMetrics, Shared, WorkerShared,
};
use sagrid_core::ids::{ClusterId, NodeId};
use sagrid_core::metrics::Metrics;
use sagrid_core::stats::{MonitoringReport, OverheadBreakdown};
use sagrid_core::time::{SimDuration, SimTime};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::mpsc::channel;
use std::sync::Arc;
use std::sync::{Mutex, RwLock};
use std::thread::JoinHandle as ThreadHandle;
use std::time::{Duration, Instant};

/// Identifier of a worker thread (stable for the runtime's lifetime; slots
/// of departed workers are never reused).
pub type WorkerId = usize;

/// A malleable divide-and-conquer runtime over an emulated multi-cluster
/// grid of worker threads. See the crate docs for an example.
pub struct Runtime {
    shared: Arc<Shared>,
    threads: Mutex<Vec<ThreadHandle<()>>>,
    started_at: Instant,
}

impl Runtime {
    /// Starts the worker threads described by `cfg`.
    ///
    /// Panics on an invalid configuration.
    pub fn new(cfg: RuntimeConfig) -> Self {
        Self::with_metrics(cfg, Metrics::disabled())
    }

    /// Starts the worker threads described by `cfg`, reporting spawns,
    /// steals (split by locality), crashes, requeues and membership changes
    /// into `metrics`. With [`Metrics::disabled`] this is exactly
    /// [`Runtime::new`]: no registry is allocated and every observation
    /// point is a single branch.
    ///
    /// Panics on an invalid configuration.
    pub fn with_metrics(cfg: RuntimeConfig, metrics: Metrics) -> Self {
        cfg.validate().expect("invalid runtime configuration");
        let rm = RtMetrics::resolve(&metrics);
        let shared = Arc::new(Shared {
            cfg: cfg.clone(),
            workers: RwLock::new(Vec::new()),
            injector: Injector::new(),
            shutdown: AtomicBool::new(false),
            metrics,
            rm,
            remote_steal: RwLock::new(None),
        });
        let rt = Self {
            shared,
            threads: Mutex::new(Vec::new()),
            started_at: Instant::now(),
        };
        for (ci, cluster) in cfg.clusters.iter().enumerate() {
            for _ in 0..cluster.workers {
                rt.spawn_worker(ci, cluster.speed);
            }
        }
        rt
    }

    fn spawn_worker(&self, cluster: usize, speed: f64) -> WorkerId {
        let deque: Deque<Arc<dyn Task>> = Deque::new_lifo();
        let (tx, rx) = channel();
        let ws = Arc::new(WorkerShared {
            stealer: deque.stealer(),
            ctrl: tx,
            cluster,
            alive: AtomicBool::new(true),
            speed_milli: AtomicU32::new((speed * 1000.0).round() as u32),
            stats: Default::default(),
        });
        let id = {
            let mut workers = self.shared.workers.write().expect("workers poisoned");
            workers.push(ws);
            workers.len() - 1
        };
        let shared = Arc::clone(&self.shared);
        let handle = std::thread::Builder::new()
            .name(format!("sagrid-worker-{id}"))
            .spawn(move || worker_main(shared, id, deque, rx))
            .expect("spawn worker thread");
        self.threads.lock().expect("threads poisoned").push(handle);
        if let Some(rm) = &self.shared.rm {
            rm.workers_joined.inc();
            rm.workers_alive.add(1);
        }
        id
    }

    /// The metrics registry this runtime reports into (disabled unless the
    /// runtime was built with [`Runtime::with_metrics`]).
    pub fn metrics(&self) -> &Metrics {
        &self.shared.metrics
    }

    /// Runs a root job to completion on the pool and returns its result.
    ///
    /// The calling thread blocks (it is not a worker); if the worker
    /// holding the root job crashes, the job is re-injected automatically.
    pub fn run<T, F>(&self, f: F) -> T
    where
        T: Send + 'static,
        F: Fn(&crate::worker::WorkerCtx<'_>) -> T + Send + Sync + 'static,
    {
        let job = Job::new(f);
        self.shared.injector.push(job.clone());
        let shared = Arc::clone(&self.shared);
        let job_for_tick = job.clone();
        job.wait_with_tick(Duration::from_millis(5), move || {
            let holder = job_for_tick.holder();
            if holder != NO_HOLDER {
                let workers = shared.workers.read().expect("workers poisoned");
                let dead = workers
                    .get(holder)
                    .is_none_or(|w| !w.alive.load(Ordering::Acquire));
                if dead && !job_for_tick.is_done() {
                    job_for_tick.set_holder(NO_HOLDER);
                    shared.injector.push(job_for_tick.clone());
                    if let Some(rm) = &shared.rm {
                        rm.requeues.inc();
                    }
                }
            }
        });
        job.take_result()
            .unwrap_or_else(|| panic!("divide-and-conquer job panicked"))
    }

    /// Installs (or replaces) the cross-process steal provider. Workers
    /// invoke it when every in-process work source is dry, before parking;
    /// see [`RemoteStealHook`] for the contract.
    pub fn set_remote_steal_hook(&self, hook: Arc<dyn RemoteStealHook>) {
        *self
            .shared
            .remote_steal
            .write()
            .expect("remote steal hook poisoned") = Some(hook);
    }

    /// Removes the cross-process steal provider, if any.
    pub fn clear_remote_steal_hook(&self) {
        *self
            .shared
            .remote_steal
            .write()
            .expect("remote steal hook poisoned") = None;
    }

    /// Adds a fresh worker to `cluster` at full speed (malleability:
    /// "processors can be added at any point in the computation").
    pub fn add_worker(&self, cluster: usize) -> WorkerId {
        self.spawn_worker(cluster, 1.0)
    }

    /// Gracefully removes a worker: it hands its queued work back and
    /// retires at the next task boundary.
    pub fn remove_worker(&self, id: WorkerId) {
        let workers = self.shared.workers.read().expect("workers poisoned");
        if let Some(w) = workers.get(id) {
            let _ = w.ctrl.send(Control::Leave);
        }
    }

    /// Simulates a crash: the worker abandons its queued tasks immediately;
    /// joiners transparently re-execute the lost work.
    pub fn crash_worker(&self, id: WorkerId) {
        let workers = self.shared.workers.read().expect("workers poisoned");
        if let Some(w) = workers.get(id) {
            let was_alive = w.alive.swap(false, Ordering::AcqRel);
            let _ = w.ctrl.send(Control::Crash);
            if was_alive {
                if let Some(rm) = &self.shared.rm {
                    rm.crashes.inc();
                    rm.workers_alive.add(-1);
                }
            }
        }
    }

    /// Changes a worker's emulated speed in `(0, 1]` (background-load
    /// injection for overload scenarios).
    pub fn set_worker_speed(&self, id: WorkerId, speed: f64) {
        assert!(speed > 0.0 && speed <= 1.0, "speed must be in (0,1]");
        let workers = self.shared.workers.read().expect("workers poisoned");
        if let Some(w) = workers.get(id) {
            w.speed_milli
                .store((speed * 1000.0).round() as u32, Ordering::Relaxed);
        }
    }

    /// Runs the spin benchmark on worker `id` and returns the measured
    /// duration (paper §3.2's application-specific speed probe). `None` if
    /// the worker is gone or unresponsive.
    pub fn benchmark_worker(&self, id: WorkerId) -> Option<Duration> {
        let probe = BenchProbe::new(self.shared.cfg.benchmark_spins);
        {
            let workers = self.shared.workers.read().expect("workers poisoned");
            let w = workers.get(id)?;
            if !w.alive.load(Ordering::Acquire) {
                return None;
            }
            w.ctrl.send(Control::Benchmark(probe.clone())).ok()?;
        }
        probe.wait(Duration::from_secs(10))
    }

    /// Ids of currently alive workers.
    pub fn alive_workers(&self) -> Vec<WorkerId> {
        self.shared
            .workers
            .read()
            .expect("workers poisoned")
            .iter()
            .enumerate()
            .filter(|(_, w)| w.alive.load(Ordering::Acquire))
            .map(|(i, _)| i)
            .collect()
    }

    /// The emulated cluster of a worker.
    pub fn worker_cluster(&self, id: WorkerId) -> Option<usize> {
        self.shared
            .workers
            .read()
            .expect("workers poisoned")
            .get(id)
            .map(|w| w.cluster)
    }

    /// Number of tasks executed so far, across all workers.
    pub fn tasks_executed(&self) -> u64 {
        self.shared
            .workers
            .read()
            .expect("workers poisoned")
            .iter()
            .map(|w| w.stats.tasks_executed.load(Ordering::Relaxed))
            .sum()
    }

    /// Elapsed wall time since the runtime started, as virtual-time for
    /// monitoring reports.
    pub fn now(&self) -> SimTime {
        SimTime::from_micros(self.started_at.elapsed().as_micros() as u64)
    }

    /// Takes (and resets) every alive worker's overhead counters as
    /// [`MonitoringReport`]s — the statistics stream the adaptation
    /// coordinator consumes. Speeds are *raw* benchmark durations turned
    /// relative by the caller (see [`crate::AdaptiveRuntime`]); here each
    /// report carries speed 1.0 and the caller overrides it.
    pub fn take_monitoring_reports(&self) -> Vec<(MonitoringReport, Option<Duration>)> {
        let now = self.now();
        let workers = self.shared.workers.read().expect("workers poisoned");
        workers
            .iter()
            .enumerate()
            .filter(|(_, w)| w.alive.load(Ordering::Acquire))
            .map(|(i, w)| {
                let ns = |a: &std::sync::atomic::AtomicU64| {
                    SimDuration((a.swap(0, Ordering::Relaxed)) / 1_000)
                };
                let breakdown = OverheadBreakdown {
                    busy: ns(&w.stats.busy_ns),
                    idle: ns(&w.stats.idle_ns),
                    intra_comm: ns(&w.stats.intra_ns),
                    inter_comm: ns(&w.stats.inter_ns),
                    benchmark: ns(&w.stats.bench_ns),
                };
                let last_bench = w.stats.last_bench_ns.load(Ordering::Relaxed);
                let bench = (last_bench > 0).then(|| Duration::from_nanos(last_bench));
                (
                    MonitoringReport {
                        node: NodeId(i as u32),
                        cluster: ClusterId(w.cluster as u16),
                        period_end: now,
                        breakdown,
                        speed: 1.0,
                    },
                    bench,
                )
            })
            .collect()
    }

    /// Stops every worker and joins the threads. Queued work is discarded.
    pub fn shutdown(self) {
        self.shared.shutdown.store(true, Ordering::Release);
        let mut threads = self.threads.lock().expect("threads poisoned");
        for t in threads.drain(..) {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::worker::WorkerCtx;

    fn fib(ctx: &WorkerCtx<'_>, n: u64) -> u64 {
        if n < 2 {
            return n;
        }
        let a = ctx.spawn(move |ctx| fib(ctx, n - 1));
        let b = fib(ctx, n - 2);
        a.join(ctx) + b
    }

    #[test]
    fn computes_fib_on_one_worker() {
        let rt = Runtime::new(RuntimeConfig::single_cluster(1));
        assert_eq!(rt.run(|ctx| fib(ctx, 15)), 610);
        rt.shutdown();
    }

    #[test]
    fn computes_fib_on_many_workers() {
        let rt = Runtime::new(RuntimeConfig::single_cluster(4));
        assert_eq!(rt.run(|ctx| fib(ctx, 22)), 17711);
        assert!(rt.tasks_executed() > 0);
        rt.shutdown();
    }

    #[test]
    fn computes_across_emulated_clusters() {
        let mut cfg = RuntimeConfig::emulated_grid(2, 2);
        cfg.wan_latency = Duration::from_micros(200);
        let rt = Runtime::new(cfg);
        assert_eq!(rt.run(|ctx| fib(ctx, 20)), 6765);
        rt.shutdown();
    }

    #[test]
    fn workers_join_mid_computation() {
        let rt = Runtime::new(RuntimeConfig::single_cluster(1));
        let added = rt.add_worker(0);
        assert_eq!(rt.alive_workers().len(), 2);
        assert_eq!(rt.run(|ctx| fib(ctx, 20)), 6765);
        assert_eq!(rt.worker_cluster(added), Some(0));
        rt.shutdown();
    }

    #[test]
    fn graceful_leave_preserves_work() {
        let rt = Runtime::new(RuntimeConfig::single_cluster(3));
        rt.remove_worker(2);
        assert_eq!(rt.run(|ctx| fib(ctx, 20)), 6765);
        // The removed worker eventually drops out of the alive set.
        let deadline = Instant::now() + Duration::from_secs(2);
        while rt.alive_workers().len() != 2 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(rt.alive_workers().len(), 2);
        rt.shutdown();
    }

    #[test]
    fn crash_mid_run_is_survivable() {
        let rt = Runtime::new(RuntimeConfig::single_cluster(4));
        // Crash a worker while a computation is in flight: spawn the crash
        // from another thread after a short delay.
        let result = std::thread::scope(|s| {
            s.spawn(|| {
                std::thread::sleep(Duration::from_millis(10));
                rt.crash_worker(3);
                rt.crash_worker(2);
            });
            rt.run(|ctx| fib(ctx, 24))
        });
        assert_eq!(result, 46368);
        rt.shutdown();
    }

    #[test]
    fn benchmark_reflects_speed_knob() {
        let rt = Runtime::new(RuntimeConfig::single_cluster(2));
        let fast = rt.benchmark_worker(0).expect("fast benchmark");
        rt.set_worker_speed(1, 0.25);
        let slow = rt.benchmark_worker(1).expect("slow benchmark");
        assert!(
            slow > fast.mul_f64(2.0),
            "slow worker ({slow:?}) should take ≥2x the fast one ({fast:?})"
        );
        rt.shutdown();
    }

    #[test]
    fn monitoring_reports_cover_alive_workers_and_reset() {
        let rt = Runtime::new(RuntimeConfig::single_cluster(3));
        let _ = rt.run(|ctx| fib(ctx, 18));
        let reports = rt.take_monitoring_reports();
        assert_eq!(reports.len(), 3);
        let total_busy: u64 = reports.iter().map(|(r, _)| r.breakdown.busy.0).sum();
        assert!(total_busy > 0, "someone must have done the work");
        rt.shutdown();
    }

    #[test]
    fn panicking_jobs_propagate_without_killing_workers() {
        let rt = Runtime::new(RuntimeConfig::single_cluster(2));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            rt.run(|_ctx| -> u64 { panic!("boom") })
        }));
        assert!(result.is_err(), "the panic must reach the caller");
        // The pool survives: a follow-up computation still works.
        assert_eq!(rt.run(|ctx| fib(ctx, 15)), 610);
        assert_eq!(rt.alive_workers().len(), 2);
        rt.shutdown();
    }

    #[test]
    fn spawned_panics_propagate_at_join() {
        let rt = Runtime::new(RuntimeConfig::single_cluster(2));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            rt.run(|ctx| {
                let h = ctx.spawn(|_| -> u64 { panic!("child boom") });
                h.join(ctx)
            })
        }));
        assert!(result.is_err());
        rt.shutdown();
    }

    #[test]
    fn join_handle_reports_completion() {
        let rt = Runtime::new(RuntimeConfig::single_cluster(2));
        let done = rt.run(|ctx| {
            let h = ctx.spawn(|_| 41u64);
            // Help until it completes, then check the flag.
            let v = h.join(ctx);
            v + 1
        });
        assert_eq!(done, 42);
        rt.shutdown();
    }

    #[test]
    fn metrics_count_spawns_steals_and_membership() {
        let rt = Runtime::with_metrics(RuntimeConfig::single_cluster(4), Metrics::enabled());
        assert_eq!(rt.run(|ctx| fib(ctx, 20)), 6765);
        let report = rt.metrics().report();
        // fib(20) spawns one child per node with n >= 2.
        assert!(report.counter("rt.spawns") > 1_000);
        assert_eq!(report.counter("rt.workers_joined"), 4);
        assert_eq!(report.gauge("rt.workers_alive"), 4);
        // On a single cluster every steal is local.
        assert_eq!(report.counter("rt.steals.remote_ok"), 0);
        rt.shutdown();
    }

    #[test]
    fn metrics_count_crashes_and_leaves() {
        let rt = Runtime::with_metrics(RuntimeConfig::single_cluster(3), Metrics::enabled());
        rt.crash_worker(2);
        rt.crash_worker(2); // double-crash counts once
        rt.remove_worker(1);
        assert_eq!(rt.run(|ctx| fib(ctx, 15)), 610);
        let deadline = Instant::now() + Duration::from_secs(2);
        while rt.alive_workers().len() != 1 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        let report = rt.metrics().report();
        assert_eq!(report.counter("rt.crashes"), 1);
        assert_eq!(report.counter("rt.workers_left"), 1);
        assert_eq!(report.gauge("rt.workers_alive"), 1);
        rt.shutdown();
    }

    #[test]
    fn default_runtime_reports_nothing() {
        let rt = Runtime::new(RuntimeConfig::single_cluster(2));
        assert_eq!(rt.run(|ctx| fib(ctx, 15)), 610);
        assert!(!rt.metrics().is_enabled());
        assert!(rt.metrics().report().is_empty());
        rt.shutdown();
    }

    #[test]
    fn remote_steal_hook_feeds_idle_workers_and_counts_inter_comm() {
        use std::sync::atomic::AtomicU64;

        // Hands out exactly one "remote" job, executes it through the
        // normal spawn/join path, and attributes a measured wire wait.
        struct FeedOnce {
            fed: AtomicBool,
            result: Arc<AtomicU64>,
        }
        impl crate::worker::RemoteStealHook for FeedOnce {
            fn try_remote_steal(&self, ctx: &crate::worker::WorkerCtx<'_>) -> bool {
                if self.fed.swap(true, Ordering::SeqCst) {
                    return false;
                }
                let h = ctx.spawn(move |ctx| fib(ctx, 10));
                let v = h.join(ctx);
                self.result.store(v, Ordering::SeqCst);
                ctx.note_remote_wait(Duration::from_micros(80));
                true
            }
        }

        let rt = Runtime::new(RuntimeConfig::single_cluster(2));
        let result = Arc::new(AtomicU64::new(0));
        rt.set_remote_steal_hook(Arc::new(FeedOnce {
            fed: AtomicBool::new(false),
            result: Arc::clone(&result),
        }));
        let deadline = Instant::now() + Duration::from_secs(5);
        while result.load(Ordering::SeqCst) == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(result.load(Ordering::SeqCst), 55, "hook never ran");
        let reports = rt.take_monitoring_reports();
        let inter: u64 = reports.iter().map(|(r, _)| r.breakdown.inter_comm.0).sum();
        assert!(
            inter >= 80,
            "measured remote wait must land in inter_comm, got {inter}µs"
        );
        rt.clear_remote_steal_hook();
        rt.shutdown();
    }

    #[test]
    fn run_result_is_correct_under_parallel_stress() {
        let rt = Runtime::new(RuntimeConfig::single_cluster(8));
        for n in [10u64, 15, 18] {
            let expected = [55, 610, 2584][match n {
                10 => 0,
                15 => 1,
                _ => 2,
            }];
            assert_eq!(rt.run(move |ctx| fib(ctx, n)), expected);
        }
        rt.shutdown();
    }
}
