//! `experiments` — regenerates every table and figure of the paper's
//! evaluation.
//!
//! ```text
//! experiments [--all] [--figure N] [--table s1] [--ablations]
//!             [--quick] [--serial] [--out DIR] [--emit-metrics DIR]
//!             [--scenario FILE] [--fuzz N] [--fuzz-seed SEED]
//! ```
//!
//! With no arguments, runs everything at paper scale and prints the
//! paper-style reports to stdout. `--out DIR` additionally writes CSV series
//! for external plotting. `--quick` shortens runs (for smoke testing).
//! `--emit-metrics DIR` enables the metrics registry for every batched run
//! and writes one `run_NNNN.jsonl` stream (counters, gauges, histograms and
//! the structured event log, decisions included) plus one
//! `run_NNNN_gantt.csv` activity trace per run; stdout stays byte-identical
//! to a plain invocation.
//!
//! Independent simulation runs are fanned out over a worker pool sized by
//! the `SAGRID_THREADS` environment variable (default: all cores); every
//! byte of output is identical whatever the pool size. `--serial` forces a
//! single worker.
//!
//! `--scenario FILE` runs one declarative scenario file (see
//! `sagrid_scenario::spec`) through the DES with metrics enabled and
//! gates on the adaptation invariants; the process exits non-zero on any
//! violation. `--fuzz N` runs `N` seeded random scenarios (seeds
//! `SEED..SEED+N`, `--fuzz-seed` defaults to 0) the same way, printing a
//! one-line re-run command for every failing seed.

use sagrid_adapt::AdaptPolicy;
use sagrid_exp::report;
use sagrid_exp::runner::{run_scenarios, ScenarioOutcome};
use sagrid_exp::scenarios::{Scenario, ScenarioId, SubScenario};
use sagrid_exp::{ablation, parallel, runner};
use sagrid_simgrid::AdaptMode;
use std::path::PathBuf;

struct Args {
    figures: Vec<u32>,
    table_s1: bool,
    ablations: bool,
    quick: bool,
    serial: bool,
    out: Option<PathBuf>,
    emit_metrics: Option<PathBuf>,
    scenario: Option<PathBuf>,
    fuzz: Option<u64>,
    fuzz_seed: u64,
}

fn parse_args() -> Args {
    let mut args = Args {
        figures: Vec::new(),
        table_s1: false,
        ablations: false,
        quick: false,
        serial: false,
        out: None,
        emit_metrics: None,
        scenario: None,
        fuzz: None,
        fuzz_seed: 0,
    };
    let mut all = true;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--all" => all = true,
            "--figure" => {
                all = false;
                let n = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--figure takes a number (1, 3..7)");
                args.figures.push(n);
            }
            "--table" => {
                all = false;
                let t = it.next().expect("--table takes a name (s1)");
                assert_eq!(t, "s1", "only table s1 exists");
                args.table_s1 = true;
            }
            "--ablations" => {
                all = false;
                args.ablations = true;
            }
            "--quick" => args.quick = true,
            "--serial" => args.serial = true,
            "--out" => args.out = it.next().map(PathBuf::from),
            "--emit-metrics" => {
                let dir = it.next().expect("--emit-metrics takes a directory");
                args.emit_metrics = Some(PathBuf::from(dir));
            }
            "--scenario" => {
                all = false;
                let f = it.next().expect("--scenario takes a scenario file");
                args.scenario = Some(PathBuf::from(f));
            }
            "--fuzz" => {
                all = false;
                let n = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--fuzz takes a seed count");
                args.fuzz = Some(n);
            }
            "--fuzz-seed" => {
                args.fuzz_seed = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--fuzz-seed takes an integer seed");
            }
            other => panic!("unknown argument {other}; see the crate docs"),
        }
    }
    if all {
        args.figures = vec![1, 3, 4, 5, 6, 7];
        args.table_s1 = true;
        args.ablations = true;
    }
    args
}

fn scenario(id: ScenarioId, quick: bool) -> Scenario {
    if quick {
        Scenario::quick(id)
    } else {
        Scenario::new(id)
    }
}

/// Runs one declarative scenario file through the DES with metrics on and
/// gates on the adaptation invariants. Returns `true` when the gate
/// failed. With an `--emit-metrics` directory, the run's JSONL stream is
/// written there as `scenario_<name>.jsonl`.
fn run_scenario_file(path: &std::path::Path, emit_dir: Option<&std::path::Path>) -> bool {
    use sagrid_core::metrics::Metrics;
    use sagrid_scenario::{check_jsonl, InvariantConfig, ScenarioSpec};

    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read scenario file {}: {e}", path.display()));
    let spec = ScenarioSpec::parse(&text)
        .unwrap_or_else(|e| panic!("invalid scenario file {}: {e}", path.display()));
    let cfg = spec
        .sim_config(sagrid_simgrid::AdaptMode::Adapt)
        .unwrap_or_else(|e| panic!("scenario {} does not compile: {e}", spec.name));
    println!("== SCENARIO {} ==\n", spec.name);
    if !spec.description.is_empty() {
        println!("  {}", spec.description);
    }
    let monitoring_secs = spec.monitoring_period_secs.unwrap_or(180);
    let result = sagrid_simgrid::GridSim::try_run_with_metrics(cfg, Metrics::enabled())
        .expect("validated scenario config must run");
    let jsonl = result.metrics.as_ref().expect("metrics enabled").to_jsonl();
    if let Some(dir) = emit_dir {
        let out = dir.join(format!("scenario_{}.jsonl", spec.name));
        std::fs::write(&out, &jsonl).expect("write scenario metrics stream");
    }
    println!(
        "  runtime {:.1}s  iterations {}/{}  events processed {}  decisions {}{}",
        result.total_runtime.as_secs_f64(),
        result.iteration_durations.len(),
        spec.iterations,
        result.events_processed,
        result.decisions.len(),
        if result.timed_out { "  TIMED OUT" } else { "" },
    );
    let inv = InvariantConfig {
        settle_us: monitoring_secs * 2_000_000,
        expected_iterations: (!result.timed_out).then_some(spec.iterations as u64),
        ..InvariantConfig::default()
    };
    let violations = check_jsonl(&jsonl, &inv);
    if violations.is_empty() && !result.timed_out {
        println!("  invariants: PASS\n");
        false
    } else {
        for v in &violations {
            println!("  invariant VIOLATED: {v}");
        }
        if result.timed_out {
            println!("  invariant VIOLATED: run hit the virtual-time cap");
        }
        println!();
        true
    }
}

/// Runs `n` seeded fuzz scenarios (seeds `base..base+n`) and reports per
/// seed. Returns `true` when any seed failed.
fn run_fuzz(n: u64, base: u64) -> bool {
    use sagrid_scenario::fuzz;

    println!("== FUZZ: {n} seeded scenarios from seed {base} ==\n");
    let mut failures = 0u64;
    for seed in base..base.saturating_add(n) {
        let out = fuzz::run_seed(seed);
        if out.violations.is_empty() {
            println!(
                "  seed {seed}: PASS  ({} events, {} jsonl lines)",
                out.spec.events.len(),
                out.jsonl.lines().count()
            );
        } else {
            failures += 1;
            println!("  seed {seed}: FAIL");
            for v in &out.violations {
                println!("      {v}");
            }
            println!("      rerun: {}", fuzz::rerun_command(seed));
        }
    }
    println!("\n  {n} seeds, {failures} failures.\n");
    failures > 0
}

fn main() {
    let args = parse_args();
    if args.serial {
        parallel::set_thread_override(Some(1));
    }
    if let Some(dir) = &args.out {
        std::fs::create_dir_all(dir).expect("create --out directory");
    }
    if let Some(dir) = &args.emit_metrics {
        std::fs::create_dir_all(dir).expect("create --emit-metrics directory");
        parallel::set_emit_dir(Some(dir.clone()));
    }

    let mut gate_failed = false;
    if let Some(path) = &args.scenario {
        gate_failed |= run_scenario_file(path, args.emit_metrics.as_deref());
    }
    if let Some(n) = args.fuzz {
        gate_failed |= run_fuzz(n, args.fuzz_seed);
    }
    if gate_failed {
        std::process::exit(1);
    }

    if args.figures.contains(&1) {
        println!("== FIG-1: total runtimes across all scenarios ==\n");
        let batch: Vec<(Scenario, bool)> = ScenarioId::all()
            .into_iter()
            .map(|id| {
                let with_monitor = matches!(id, ScenarioId::S1Overhead);
                (scenario(id, args.quick), with_monitor)
            })
            .collect();
        let fig1_outcomes: Vec<ScenarioOutcome> = run_scenarios(&batch);
        print!("{}", report::figure1(&fig1_outcomes));
        println!();
        if let Some(dir) = &args.out {
            report::write_figure1_csv(&dir.join("fig1_runtimes.csv"), &fig1_outcomes)
                .expect("write fig1 csv");
        }
    }

    let figure_map: [(u32, ScenarioId, &str); 5] = [
        (
            3,
            ScenarioId::S2Expand(SubScenario::A),
            "FIG-3: iteration durations, expanding (start on 8 nodes)",
        ),
        (
            4,
            ScenarioId::S3OverloadedCpus,
            "FIG-4: iteration durations, overloaded CPUs",
        ),
        (
            5,
            ScenarioId::S4OverloadedLink,
            "FIG-5: iteration durations, overloaded network link",
        ),
        (
            6,
            ScenarioId::S5CpusAndLink,
            "FIG-6: iteration durations, overloaded CPUs + network link",
        ),
        (
            7,
            ScenarioId::S6Crash,
            "FIG-7: iteration durations, crashing nodes",
        ),
    ];
    // One batch for every requested iteration figure (figure 3 brings its
    // 2b/2c sub-scenarios along); results come back in push order.
    let requested: Vec<(u32, &str)> = figure_map
        .iter()
        .filter(|(fignum, _, _)| args.figures.contains(fignum))
        .map(|&(fignum, _, title)| (fignum, title))
        .collect();
    let mut fig_batch: Vec<(Scenario, bool)> = Vec::new();
    for &(fignum, id, _) in &figure_map {
        if !args.figures.contains(&fignum) {
            continue;
        }
        fig_batch.push((scenario(id, args.quick), false));
        if fignum == 3 {
            for sub in [SubScenario::B, SubScenario::C] {
                fig_batch.push((scenario(ScenarioId::S2Expand(sub), args.quick), false));
            }
        }
    }
    let mut fig_outcomes = run_scenarios(&fig_batch).into_iter();
    for (fignum, title) in requested {
        let out = fig_outcomes.next().expect("one outcome per figure");
        println!("== {title} ==\n");
        print!("{}", report::iteration_figure(title, &out));
        println!();
        if fignum == 3 {
            // Figure 3 also covers sub-scenarios 2b and 2c.
            for name in ["16", "24"] {
                let o = fig_outcomes.next().expect("one outcome per sub-scenario");
                println!(
                    "   start on {name} nodes: no-adapt {}, adapt {} ({:+.1}%)",
                    report::fmt_time(sagrid_core::time::SimTime(o.no_adapt.total_runtime.0)),
                    report::fmt_time(sagrid_core::time::SimTime(o.adapt.total_runtime.0)),
                    -o.improvement() * 100.0
                );
                if let Some(dir) = &args.out {
                    report::write_iteration_csv(&dir.join(format!("fig3_start{name}.csv")), &o)
                        .expect("write csv");
                }
            }
            println!();
        }
        if let Some(dir) = &args.out {
            report::write_iteration_csv(&dir.join(format!("fig{fignum}.csv")), &out)
                .expect("write csv");
        }
    }

    if args.table_s1 {
        println!("== TAB-S1: adaptivity overhead vs monitoring period ==\n");
        let periods: &[u64] = if args.quick {
            &[60, 180]
        } else {
            &[180, 300, 600, 900]
        };
        let s = scenario(ScenarioId::S1Overhead, args.quick);
        // Baseline plus the whole monitoring-period sweep, one batch.
        let mut configs = vec![s.config(AdaptMode::NoAdapt)];
        configs.extend(periods.iter().map(|&p| {
            let mut cfg = s.config(AdaptMode::Adapt);
            cfg.policy = AdaptPolicy {
                monitoring_period: sagrid_core::time::SimDuration::from_secs(p),
                ..cfg.policy
            };
            cfg
        }));
        let mut results = parallel::run_batch(configs).into_iter();
        let t1 = results
            .next()
            .expect("baseline result")
            .total_runtime
            .as_secs_f64();
        let rows: Vec<(u64, f64, f64)> = periods
            .iter()
            .zip(results)
            .map(|(&p, r)| {
                let overhead = r.total_runtime.as_secs_f64() / t1 - 1.0;
                (p, overhead, r.benchmark_fraction())
            })
            .collect();
        print!("{}", report::table_s1(&rows));
        println!();
    }

    if args.ablations {
        println!("== ABL-1: badness-coefficient sensitivity (scenario 3) ==\n");
        let rows =
            ablation::badness_coefficients(&scenario(ScenarioId::S3OverloadedCpus, args.quick));
        for r in &rows {
            println!(
                "  {:<36} adapt runtime {:>8.1}s  improvement {:+.1}%",
                r.name,
                r.adapt_runtime_secs,
                r.improvement * 100.0
            );
        }
        println!();

        println!("== ABL-2: cluster-aware vs plain random stealing ==\n");
        let (crs, rnd) =
            ablation::crs_vs_random(&scenario(ScenarioId::S2Expand(SubScenario::C), args.quick));
        println!("  CRS:           {}", report::summarize_run(&crs));
        println!("  random-global: {}", report::summarize_run(&rnd));
        println!();

        if !args.quick {
            println!("== ABL-3: opportunistic migration (scenario 5) ==\n");
            let (off, on) = ablation::opportunistic_migration();
            println!("  extension off: {}", report::summarize_run(&off));
            println!("  extension on:  {}", report::summarize_run(&on));
            println!();
        }

        println!("== ABL-4: load-aware benchmarking (scenario 1, monitor-only) ==\n");
        let (off, on) =
            ablation::load_aware_benchmarking(&scenario(ScenarioId::S1Overhead, args.quick));
        println!(
            "  periodic benchmarks:   benchmark share {:>5.2}%  ({})",
            off.benchmark_fraction() * 100.0,
            report::summarize_run(&off)
        );
        println!(
            "  load-aware benchmarks: benchmark share {:>5.2}%  ({})",
            on.benchmark_fraction() * 100.0,
            report::summarize_run(&on)
        );
        println!();
    }

    // A convenience check the CI-style invocation can grep for.
    let _ = runner::run_scenario; // (module is exercised above)
    println!("experiments complete.");
}
