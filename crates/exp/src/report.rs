//! Paper-style report rendering (text tables + CSV series).

use crate::runner::ScenarioOutcome;
use sagrid_core::time::SimTime;
use sagrid_simgrid::RunResult;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// Renders Figure 1: the bar chart of total runtimes per scenario
/// (runtime1 = no adaptation, runtime2 = with adaptation, runtime3 =
/// monitoring only where measured).
pub fn figure1(outcomes: &[ScenarioOutcome]) -> String {
    let mut s = String::new();
    // Bar chart first (the paper's Figure 1 is a bar chart), table after.
    let mut bars = Vec::new();
    for o in outcomes {
        bars.push((
            format!("{} no-adapt", o.scenario.id.label()),
            o.no_adapt.total_runtime.as_secs_f64(),
        ));
        bars.push((
            format!("{} adapt   ", o.scenario.id.label()),
            o.adapt.total_runtime.as_secs_f64(),
        ));
    }
    s.push_str(&crate::chart::bar_chart(
        "FIG-1  total runtimes (seconds of virtual time)",
        &bars,
        60,
    ));
    let _ = writeln!(s);
    let _ = writeln!(
        s,
        "FIG-1  Barnes-Hut total runtimes per scenario (seconds of virtual time)"
    );
    let _ = writeln!(
        s,
        "{:<9} {:>12} {:>12} {:>12} {:>10}  description",
        "scenario", "runtime1", "runtime2", "runtime3", "delta"
    );
    for o in outcomes {
        let t1 = o.no_adapt.total_runtime.as_secs_f64();
        let t2 = o.adapt.total_runtime.as_secs_f64();
        let t3 = o
            .monitor_only
            .as_ref()
            .map(|r| format!("{:>12.1}", r.total_runtime.as_secs_f64()))
            .unwrap_or_else(|| format!("{:>12}", "-"));
        let delta = if t2 <= t1 {
            format!("-{:.1}%", (1.0 - t2 / t1) * 100.0)
        } else {
            format!("+{:.1}%", (t2 / t1 - 1.0) * 100.0)
        };
        let _ = writeln!(
            s,
            "{:<9} {:>12.1} {:>12.1} {} {:>10}  {}",
            o.scenario.id.label(),
            t1,
            t2,
            t3,
            delta,
            o.scenario.id.description()
        );
    }
    s
}

/// Renders one of Figures 3–7: per-iteration durations with and without
/// adaptation, with the adaptive run's decision log as annotations.
pub fn iteration_figure(title: &str, outcome: &ScenarioOutcome) -> String {
    let mut s = String::new();
    let secs = |r: &RunResult| -> Vec<f64> {
        r.iteration_durations
            .iter()
            .map(|d| d.as_secs_f64())
            .collect()
    };
    s.push_str(&crate::chart::dual_series_plot(
        title,
        &secs(&outcome.no_adapt),
        &secs(&outcome.adapt),
        14,
    ));
    let _ = writeln!(s);
    let _ = writeln!(
        s,
        "{:>5} {:>14} {:>14}",
        "iter", "no-adapt (s)", "adapt (s)"
    );
    let n = outcome
        .no_adapt
        .iteration_durations
        .len()
        .max(outcome.adapt.iteration_durations.len());
    for i in 0..n {
        let a = outcome
            .no_adapt
            .iteration_durations
            .get(i)
            .map(|d| format!("{:>14.2}", d.as_secs_f64()))
            .unwrap_or_else(|| format!("{:>14}", "-"));
        let b = outcome
            .adapt
            .iteration_durations
            .get(i)
            .map(|d| format!("{:>14.2}", d.as_secs_f64()))
            .unwrap_or_else(|| format!("{:>14}", "-"));
        let _ = writeln!(s, "{i:>5} {a} {b}");
    }
    let _ = writeln!(s, "adaptive-run decision log:");
    for d in &outcome.adapt.decisions {
        if d.decision.kind() == "none" {
            continue;
        }
        let _ = writeln!(
            s,
            "  t={:>8.1}s  wa_eff={:.3}  nodes={:>3}  {}",
            d.at.as_secs_f64(),
            d.wa_efficiency,
            d.nodes,
            describe_decision(&d.decision)
        );
    }
    let _ = writeln!(s, "node-count timeline (adaptive):");
    for &(t, n) in &outcome.adapt.node_count_timeline {
        let _ = writeln!(s, "  t={:>8.1}s  {n} nodes", t.as_secs_f64());
    }
    s
}

fn describe_decision(d: &sagrid_adapt::Decision) -> String {
    use sagrid_adapt::Decision;
    match d {
        Decision::None => "no action".into(),
        Decision::Add { count, .. } => format!("request {count} node(s)"),
        Decision::RemoveNodes { nodes } => format!("remove {} worst node(s)", nodes.len()),
        Decision::RemoveCluster { cluster, nodes } => format!(
            "remove badly connected cluster {cluster} ({} nodes)",
            nodes.len()
        ),
        Decision::OpportunisticSwap { remove, add, .. } => format!(
            "opportunistic migration: retire {} slow node(s), request {add}",
            remove.len()
        ),
    }
}

/// Renders the scenario-1 overhead table (TAB-S1): monitoring-period sweep.
pub fn table_s1(rows: &[(u64, f64, f64)]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "TAB-S1  adaptivity overhead vs monitoring period (scenario 1)"
    );
    let _ = writeln!(
        s,
        "{:>12} {:>12} {:>18}",
        "period (s)", "overhead", "benchmark share"
    );
    for &(period, overhead, bench_frac) in rows {
        let _ = writeln!(
            s,
            "{:>12} {:>11.1}% {:>17.1}%",
            period,
            overhead * 100.0,
            bench_frac * 100.0
        );
    }
    s
}

/// Writes `(iteration, no_adapt, adapt)` series as CSV for external
/// plotting.
pub fn write_iteration_csv(path: &Path, outcome: &ScenarioOutcome) -> io::Result<()> {
    let mut s = String::from("iteration,no_adapt_secs,adapt_secs\n");
    let n = outcome
        .no_adapt
        .iteration_durations
        .len()
        .max(outcome.adapt.iteration_durations.len());
    for i in 0..n {
        let a = outcome
            .no_adapt
            .iteration_durations
            .get(i)
            .map(|d| d.as_secs_f64().to_string())
            .unwrap_or_default();
        let b = outcome
            .adapt
            .iteration_durations
            .get(i)
            .map(|d| d.as_secs_f64().to_string())
            .unwrap_or_default();
        let _ = writeln!(s, "{i},{a},{b}");
    }
    fs::write(path, s)
}

/// Writes the Figure-1 bar data as CSV.
pub fn write_figure1_csv(path: &Path, outcomes: &[ScenarioOutcome]) -> io::Result<()> {
    let mut s = String::from("scenario,runtime1_secs,runtime2_secs,runtime3_secs\n");
    for o in outcomes {
        let t3 = o
            .monitor_only
            .as_ref()
            .map(|r| r.total_runtime.as_secs_f64().to_string())
            .unwrap_or_default();
        let _ = writeln!(
            s,
            "{},{},{},{}",
            o.scenario.id.label(),
            o.no_adapt.total_runtime.as_secs_f64(),
            o.adapt.total_runtime.as_secs_f64(),
            t3
        );
    }
    fs::write(path, s)
}

/// One-line summary of a run, used by several reports.
pub fn summarize_run(r: &RunResult) -> String {
    format!(
        "runtime {:.1}s, {} iterations (mean {:.2}s, max {:.2}s, sd {:.2}s), final nodes {}, events {}",
        r.total_runtime.as_secs_f64(),
        r.iteration_durations.len(),
        r.mean_iteration_secs(),
        r.max_iteration_secs(),
        r.iteration_stddev_secs(),
        r.final_node_count(),
        r.events_processed,
    )
}

/// Efficiency timeline rendering (useful when reading scenario 5).
pub fn efficiency_trace(r: &RunResult) -> String {
    let mut s = String::from("wa_efficiency trace:\n");
    for &(t, e) in &r.efficiency_timeline {
        let _ = writeln!(s, "  t={:>8.1}s  wa_eff={:.3}", t.as_secs_f64(), e);
    }
    s
}

/// Pretty time for annotations.
pub fn fmt_time(t: SimTime) -> String {
    format!("{:.1}s", t.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_scenario;
    use crate::scenarios::{Scenario, ScenarioId};

    #[test]
    fn reports_render_without_panicking() {
        let out = run_scenario(&Scenario::quick(ScenarioId::S1Overhead), true);
        let f1 = figure1(std::slice::from_ref(&out));
        assert!(f1.contains("FIG-1"));
        assert!(f1.contains("runtime1"));
        let fig = iteration_figure("FIG-test", &out);
        assert!(fig.contains("no-adapt"));
        let s1 = table_s1(&[(180, 0.08, 0.9), (900, 0.02, 0.9)]);
        assert!(s1.contains("8.0%"));
        assert!(!summarize_run(&out.adapt).is_empty());
        assert!(efficiency_trace(&out.adapt).contains("wa_eff"));
    }

    #[test]
    fn csv_writers_produce_files() {
        let out = run_scenario(&Scenario::quick(ScenarioId::S1Overhead), false);
        let dir = std::env::temp_dir().join("sagrid_report_test");
        std::fs::create_dir_all(&dir).unwrap();
        let p1 = dir.join("iters.csv");
        let p2 = dir.join("fig1.csv");
        write_iteration_csv(&p1, &out).unwrap();
        write_figure1_csv(&p2, std::slice::from_ref(&out)).unwrap();
        let body = std::fs::read_to_string(&p1).unwrap();
        assert!(body.starts_with("iteration,"));
        assert!(body.lines().count() > 5);
    }
}
