//! Scenario execution.

use crate::parallel;
use crate::scenarios::Scenario;
use sagrid_simgrid::{AdaptMode, RunResult};

/// Results of one scenario across the paper's three modes.
///
/// `runtime1` = no adaptation, `runtime2` = with adaptation, `runtime3` =
/// monitoring only (paper §5, Figure 1).
#[derive(Clone, Debug)]
pub struct ScenarioOutcome {
    /// The scenario that was run.
    pub scenario: Scenario,
    /// runtime1: plain run.
    pub no_adapt: RunResult,
    /// runtime2: adaptive run.
    pub adapt: RunResult,
    /// runtime3: monitoring without adaptation (only measured where the
    /// paper reports it — scenario 1).
    pub monitor_only: Option<RunResult>,
}

impl ScenarioOutcome {
    /// Relative runtime improvement of adaptation: `1 − t₂/t₁`.
    pub fn improvement(&self) -> f64 {
        let t1 = self.no_adapt.total_runtime.as_secs_f64();
        let t2 = self.adapt.total_runtime.as_secs_f64();
        if t1 <= 0.0 {
            return 0.0;
        }
        1.0 - t2 / t1
    }

    /// Adaptivity-support overhead in the ideal scenario: `t₂/t₁ − 1`.
    pub fn overhead(&self) -> f64 {
        let t1 = self.no_adapt.total_runtime.as_secs_f64();
        let t2 = self.adapt.total_runtime.as_secs_f64();
        if t1 <= 0.0 {
            return 0.0;
        }
        t2 / t1 - 1.0
    }
}

/// Runs a scenario in no-adapt and adapt modes (plus monitor-only when
/// `with_monitor_only` is set, as the paper does for scenario 1).
pub fn run_scenario(scenario: &Scenario, with_monitor_only: bool) -> ScenarioOutcome {
    run_scenarios(&[(scenario.clone(), with_monitor_only)])
        .pop()
        .expect("one scenario in, one outcome out")
}

/// Runs a whole batch of scenarios, all their mode runs fanned out over the
/// [`parallel`] worker pool at once. Outcomes come back in input order, so
/// reports built from them match a serial loop byte for byte.
pub fn run_scenarios(batch: &[(Scenario, bool)]) -> Vec<ScenarioOutcome> {
    let mut configs = Vec::new();
    for (scenario, with_monitor_only) in batch {
        configs.push(scenario.config(AdaptMode::NoAdapt));
        configs.push(scenario.config(AdaptMode::Adapt));
        if *with_monitor_only {
            configs.push(scenario.config(AdaptMode::MonitorOnly));
        }
    }
    let mut results = parallel::run_batch(configs).into_iter();
    batch
        .iter()
        .map(|(scenario, with_monitor_only)| ScenarioOutcome {
            scenario: scenario.clone(),
            no_adapt: results.next().expect("one result per config"),
            adapt: results.next().expect("one result per config"),
            monitor_only: with_monitor_only.then(|| results.next().expect("one result per config")),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::{Scenario, ScenarioId, SubScenario};

    #[test]
    fn quick_scenario1_overhead_is_small() {
        let out = run_scenario(&Scenario::quick(ScenarioId::S1Overhead), true);
        assert!(!out.no_adapt.timed_out && !out.adapt.timed_out);
        let ovh = out.overhead();
        assert!(
            ovh > -0.05 && ovh < 0.35,
            "scenario-1 overhead should be modest, got {ovh}"
        );
        let mon = out.monitor_only.unwrap();
        assert!(mon.aggregate.benchmark.0 > 0);
    }

    #[test]
    fn quick_scenario2a_adaptation_wins() {
        let mut s = Scenario::new(ScenarioId::S2Expand(SubScenario::A));
        s.iterations = 20;
        let out = run_scenario(&s, false);
        assert!(
            out.improvement() > 0.15,
            "expanding from 8 nodes should speed things up: {:.1}% (t1={} t2={})",
            out.improvement() * 100.0,
            out.no_adapt.total_runtime,
            out.adapt.total_runtime
        );
        assert!(out.adapt.final_node_count() > 8);
    }
}
