//! Parallel batch execution of independent simulations.
//!
//! Every experiment in this crate is a set of *independent* `GridSim` runs
//! (scenario × adaptation-mode × parameter variants); each run is
//! deterministic given its `SimConfig`. [`run_batch`] fans a batch out
//! across a `std::thread::scope` worker pool and returns results **in input
//! order**, so callers assemble reports exactly as a serial loop would —
//! the rendered figures, tables and CSVs are byte-identical whatever the
//! thread count.
//!
//! Thread count resolution, highest precedence first:
//!
//! 1. [`set_thread_override`] (the `--serial` flag routes through this);
//! 2. the `SAGRID_THREADS` environment variable;
//! 3. [`std::thread::available_parallelism`].

use sagrid_core::metrics::Metrics;
use sagrid_simgrid::{trace, GridSim, RunResult, SimConfig};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Process-wide thread-count override (0 = no override).
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Directory that [`run_batch`] writes per-run metrics into (none by
/// default — the `--emit-metrics DIR` flag routes through this).
static EMIT_DIR: Mutex<Option<PathBuf>> = Mutex::new(None);

/// Monotonic run index across batches, so emitted file names are stable in
/// submission order regardless of the worker-pool size.
static EMIT_INDEX: AtomicUsize = AtomicUsize::new(0);

/// Forces the worker-pool size for subsequent [`run_batch`] calls
/// (`None` restores automatic selection). `Some(1)` is serial mode.
pub fn set_thread_override(n: Option<usize>) {
    THREAD_OVERRIDE.store(n.unwrap_or(0), Ordering::Relaxed);
}

/// Directs subsequent [`run_batch`] calls to run with the metrics registry
/// and activity tracing enabled, writing one `run_NNNN.jsonl` metrics
/// stream and one `run_NNNN_gantt.csv` trace per run into `dir` (`None`
/// restores the default: metrics disabled, nothing written). Run numbering
/// restarts from zero and follows batch submission order, so the emitted
/// files are identical whatever the thread count.
pub fn set_emit_dir(dir: Option<PathBuf>) {
    EMIT_INDEX.store(0, Ordering::Relaxed);
    *EMIT_DIR.lock().expect("emit dir poisoned") = dir;
}

/// Runs one configuration, honouring the emit directory: metrics and
/// tracing on + files written when set, the byte-identical default path
/// otherwise.
fn run_one(cfg: SimConfig, emit: Option<&(PathBuf, usize)>) -> RunResult {
    let Some((dir, index)) = emit else {
        return GridSim::run(cfg);
    };
    let mut cfg = cfg;
    cfg.record_trace = true;
    let result = GridSim::try_run_with_metrics(cfg, Metrics::enabled())
        .expect("invalid simulation configuration");
    write_run_artifacts(dir, *index, &result);
    result
}

/// Writes the JSONL metrics stream and the Gantt-style trace CSV for run
/// `index` into `dir`.
fn write_run_artifacts(dir: &Path, index: usize, result: &RunResult) {
    let report = result
        .metrics
        .as_ref()
        .expect("emit runs always enable metrics");
    std::fs::write(dir.join(format!("run_{index:04}.jsonl")), report.to_jsonl())
        .expect("write metrics jsonl");
    let mut csv = String::from("node,start,end,kind\n");
    for (node, tr) in &result.activity_traces {
        csv.push_str(&trace::to_csv(*node, tr));
    }
    std::fs::write(dir.join(format!("run_{index:04}_gantt.csv")), csv).expect("write trace csv");
}

/// The worker-pool size [`run_batch`] would use for `jobs` runs.
pub fn effective_threads(jobs: usize) -> usize {
    let configured = match THREAD_OVERRIDE.load(Ordering::Relaxed) {
        0 => std::env::var("SAGRID_THREADS")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get())),
        n => n,
    };
    configured.clamp(1, jobs.max(1))
}

/// Runs every configuration and returns the results in input order.
///
/// With an effective thread count of 1 this is exactly the serial loop;
/// otherwise workers claim runs from a shared index, so wall time scales
/// with the slowest chain of runs rather than their sum. A panicking run
/// propagates to the caller, like it would serially.
pub fn run_batch(configs: Vec<SimConfig>) -> Vec<RunResult> {
    let jobs = configs.len();
    let threads = effective_threads(jobs);
    run_batch_on(configs, threads)
}

/// [`run_batch`] with an explicit worker count (used by the determinism
/// tests to pin both sides of a serial-vs-parallel comparison).
pub fn run_batch_on(configs: Vec<SimConfig>, threads: usize) -> Vec<RunResult> {
    // Reserve this batch's run indices up front: file names depend only on
    // submission order, never on which worker claims which run.
    let emit: Option<PathBuf> = EMIT_DIR.lock().expect("emit dir poisoned").clone();
    let emit_base = emit
        .is_some()
        .then(|| EMIT_INDEX.fetch_add(configs.len(), Ordering::Relaxed));
    let emit_for = |i: usize| emit.clone().zip(emit_base.map(|b| b + i));
    if threads <= 1 || configs.len() <= 1 {
        return configs
            .into_iter()
            .enumerate()
            .map(|(i, c)| run_one(c, emit_for(i).as_ref()))
            .collect();
    }
    let inputs: Vec<Mutex<Option<SimConfig>>> =
        configs.into_iter().map(|c| Mutex::new(Some(c))).collect();
    let slots: Vec<Mutex<Option<RunResult>>> = inputs.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads.min(inputs.len()) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(input) = inputs.get(i) else {
                    break;
                };
                let cfg = input
                    .lock()
                    .expect("input slot poisoned")
                    .take()
                    .expect("each run is claimed exactly once");
                let result = run_one(cfg, emit_for(i).as_ref());
                *slots[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every claimed run stores its result")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::{Scenario, ScenarioId};
    use sagrid_simgrid::AdaptMode;

    fn batch() -> Vec<SimConfig> {
        let s1 = Scenario::quick(ScenarioId::S1Overhead);
        let s4 = Scenario::quick(ScenarioId::S4OverloadedLink);
        vec![
            s1.config(AdaptMode::NoAdapt),
            s1.config(AdaptMode::Adapt),
            s4.config(AdaptMode::NoAdapt),
            s4.config(AdaptMode::Adapt),
        ]
    }

    #[test]
    fn parallel_results_match_serial_in_order() {
        let serial = run_batch_on(batch(), 1);
        let parallel = run_batch_on(batch(), 4);
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.iteration_durations, p.iteration_durations);
            assert_eq!(s.events_processed, p.events_processed);
            assert_eq!(s.steal_attempts, p.steal_attempts);
            assert_eq!(s.node_count_timeline, p.node_count_timeline);
        }
    }

    #[test]
    fn effective_threads_respects_override_and_jobs() {
        set_thread_override(Some(3));
        assert_eq!(effective_threads(10), 3);
        assert_eq!(effective_threads(2), 2, "never more workers than jobs");
        set_thread_override(Some(1));
        assert_eq!(effective_threads(10), 1);
        set_thread_override(None);
        assert!(effective_threads(10) >= 1);
    }

    #[test]
    fn empty_batch_is_fine() {
        assert!(run_batch(Vec::new()).is_empty());
    }
}
