//! The paper's evaluation scenarios (§5).
//!
//! All scenarios run the Barnes-Hut-profile iterative workload on a DAS-2
//! pool. The paper's "reasonable" configuration is 36 nodes spread over 3
//! clusters (12 each), at which the application runs at efficiency ≈ 0.5;
//! one iteration takes ~10 s there. Scenario perturbations follow the paper:
//! heavy CPU load (×10) on one cluster at t = 200 s, an uplink shaped to
//! ~100 KB/s, a light load making nodes ~2–3× slower, and two of three
//! clusters crashing at t = 200 s.

use sagrid_adapt::AdaptPolicy;
use sagrid_core::config::GridConfig;
use sagrid_core::ids::ClusterId;
use sagrid_core::time::SimTime;
use sagrid_core::workload::barnes_hut_profile;
use sagrid_simgrid::{AdaptMode, SimConfig, StealPolicy, TimingConfig};
use sagrid_simnet::{Injection, InjectionSchedule, ScheduledInjection};

/// Identifier of a paper scenario.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum ScenarioId {
    /// Ideal run: measures adaptivity overhead (runtime1/2/3).
    S1Overhead,
    /// Expanding from too few nodes; sub-scenario a/b/c starts on 8/16/24.
    S2Expand(SubScenario),
    /// Heavy artificial load on one cluster's processors at t = 200 s.
    S3OverloadedCpus,
    /// One cluster's uplink shaped to ~100 KB/s.
    S4OverloadedLink,
    /// Shaped uplink + light load on a second cluster.
    S5CpusAndLink,
    /// Two of three clusters crash at t = 200 s.
    S6Crash,
}

/// Sub-scenarios of scenario 2 (initial node counts).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum SubScenario {
    /// Start on 8 nodes in 1 cluster.
    A,
    /// Start on 16 nodes in 2 clusters.
    B,
    /// Start on 24 nodes in 3 clusters.
    C,
}

impl ScenarioId {
    /// Every scenario, in paper order.
    pub fn all() -> Vec<ScenarioId> {
        vec![
            ScenarioId::S1Overhead,
            ScenarioId::S2Expand(SubScenario::A),
            ScenarioId::S2Expand(SubScenario::B),
            ScenarioId::S2Expand(SubScenario::C),
            ScenarioId::S3OverloadedCpus,
            ScenarioId::S4OverloadedLink,
            ScenarioId::S5CpusAndLink,
            ScenarioId::S6Crash,
        ]
    }

    /// Short label used in reports ("1", "2a", … "6").
    pub fn label(&self) -> &'static str {
        match self {
            ScenarioId::S1Overhead => "1",
            ScenarioId::S2Expand(SubScenario::A) => "2a",
            ScenarioId::S2Expand(SubScenario::B) => "2b",
            ScenarioId::S2Expand(SubScenario::C) => "2c",
            ScenarioId::S3OverloadedCpus => "3",
            ScenarioId::S4OverloadedLink => "4",
            ScenarioId::S5CpusAndLink => "5",
            ScenarioId::S6Crash => "6",
        }
    }

    /// Human-readable description for report headers.
    pub fn description(&self) -> &'static str {
        match self {
            ScenarioId::S1Overhead => "ideal run (adaptivity overhead)",
            ScenarioId::S2Expand(SubScenario::A) => "expanding: start on 8 nodes",
            ScenarioId::S2Expand(SubScenario::B) => "expanding: start on 16 nodes",
            ScenarioId::S2Expand(SubScenario::C) => "expanding: start on 24 nodes",
            ScenarioId::S3OverloadedCpus => "overloaded processors",
            ScenarioId::S4OverloadedLink => "overloaded network link",
            ScenarioId::S5CpusAndLink => "overloaded processors + network link",
            ScenarioId::S6Crash => "crashing nodes (2 of 3 clusters)",
        }
    }
}

/// A fully-specified experiment: scenario id + tuning shared across modes.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Which paper scenario this is.
    pub id: ScenarioId,
    /// Number of Barnes-Hut iterations.
    pub iterations: usize,
    /// Workload/engine RNG seed.
    pub seed: u64,
}

/// Number of nodes per cluster in the paper's configuration.
pub const NODES_PER_CLUSTER: usize = 12;
/// The paper's "reasonable" total node count.
pub const REASONABLE_NODES: usize = 3 * NODES_PER_CLUSTER;
/// Target iteration duration at the reasonable configuration (seconds).
pub const TARGET_ITER_SECS: f64 = 10.0;
/// Iterations per run (the paper's figures span ~30–40 iterations).
pub const DEFAULT_ITERATIONS: usize = 48;
/// The shaped uplink bandwidth of scenarios 4 and 5 (bytes/second).
pub const SHAPED_UPLINK_BPS: f64 = 100_000.0;
/// When the scenario-3/6 perturbations strike (seconds).
pub const DISTURBANCE_AT_SECS: u64 = 200;

impl Scenario {
    /// The scenario with default length and seed.
    pub fn new(id: ScenarioId) -> Self {
        Self {
            id,
            iterations: DEFAULT_ITERATIONS,
            seed: 0x5A6D_1D00 + id.label().as_bytes()[0] as u64,
        }
    }

    /// A shortened variant for fast tests/benches.
    pub fn quick(id: ScenarioId) -> Self {
        Self {
            iterations: 10,
            ..Self::new(id)
        }
    }

    /// Builds the `SimConfig` for this scenario in the given mode.
    pub fn config(&self, mode: AdaptMode) -> SimConfig {
        let grid = GridConfig::das2();
        let policy = AdaptPolicy::default();
        let timing = TimingConfig::default();
        let workload = barnes_hut_profile(
            self.iterations,
            REASONABLE_NODES,
            TARGET_ITER_SECS,
            self.seed,
        );
        let three_clusters = vec![
            (ClusterId(0), NODES_PER_CLUSTER),
            (ClusterId(1), NODES_PER_CLUSTER),
            (ClusterId(2), NODES_PER_CLUSTER),
        ];
        let disturbance = SimTime::from_secs(DISTURBANCE_AT_SECS);
        let (initial_layout, injections) = match self.id {
            ScenarioId::S1Overhead => (three_clusters, InjectionSchedule::empty()),
            ScenarioId::S2Expand(sub) => {
                let layout = match sub {
                    SubScenario::A => vec![(ClusterId(0), 8)],
                    SubScenario::B => vec![(ClusterId(0), 8), (ClusterId(1), 8)],
                    SubScenario::C => vec![(ClusterId(0), 8), (ClusterId(1), 8), (ClusterId(2), 8)],
                };
                (layout, InjectionSchedule::empty())
            }
            ScenarioId::S3OverloadedCpus => (
                three_clusters,
                InjectionSchedule::new(vec![ScheduledInjection {
                    at: disturbance,
                    injection: Injection::CpuLoad {
                        cluster: ClusterId(1),
                        count: None,
                        factor: 10.0,
                    },
                }]),
            ),
            ScenarioId::S4OverloadedLink => (
                three_clusters,
                InjectionSchedule::new(vec![ScheduledInjection {
                    at: SimTime::ZERO,
                    injection: Injection::UplinkBandwidth {
                        cluster: ClusterId(2),
                        bandwidth_bps: SHAPED_UPLINK_BPS,
                    },
                }]),
            ),
            ScenarioId::S5CpusAndLink => (
                three_clusters,
                InjectionSchedule::new(vec![
                    ScheduledInjection {
                        at: SimTime::ZERO,
                        injection: Injection::UplinkBandwidth {
                            cluster: ClusterId(2),
                            bandwidth_bps: SHAPED_UPLINK_BPS,
                        },
                    },
                    ScheduledInjection {
                        at: SimTime::ZERO,
                        injection: Injection::CpuLoad {
                            cluster: ClusterId(1),
                            count: None,
                            factor: 2.5,
                        },
                    },
                ]),
            ),
            ScenarioId::S6Crash => (
                three_clusters,
                InjectionSchedule::new(vec![
                    ScheduledInjection {
                        at: disturbance,
                        injection: Injection::CrashCluster {
                            cluster: ClusterId(1),
                        },
                    },
                    ScheduledInjection {
                        at: disturbance,
                        injection: Injection::CrashCluster {
                            cluster: ClusterId(2),
                        },
                    },
                ]),
            ),
        };
        SimConfig {
            grid,
            policy,
            initial_layout,
            workload,
            injections,
            mode,
            steal_policy: StealPolicy::ClusterAware,
            timing,
            record_trace: false,
            feedback_tuning: false,
            hierarchical_coordinator: false,
            seed: self.seed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_scenarios_build_valid_configs() {
        for id in ScenarioId::all() {
            let s = Scenario::quick(id);
            for mode in [AdaptMode::NoAdapt, AdaptMode::MonitorOnly, AdaptMode::Adapt] {
                s.config(mode)
                    .validate()
                    .unwrap_or_else(|e| panic!("scenario {} invalid: {e}", id.label()));
            }
        }
    }

    #[test]
    fn labels_are_unique() {
        let mut labels: Vec<&str> = ScenarioId::all().iter().map(|s| s.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), ScenarioId::all().len());
    }

    #[test]
    fn scenario2_layouts_grow_a_to_c() {
        let a = Scenario::new(ScenarioId::S2Expand(SubScenario::A))
            .config(AdaptMode::Adapt)
            .initial_nodes();
        let b = Scenario::new(ScenarioId::S2Expand(SubScenario::B))
            .config(AdaptMode::Adapt)
            .initial_nodes();
        let c = Scenario::new(ScenarioId::S2Expand(SubScenario::C))
            .config(AdaptMode::Adapt)
            .initial_nodes();
        assert_eq!((a, b, c), (8, 16, 24));
    }

    #[test]
    fn disturbance_scenarios_carry_injections() {
        for id in [
            ScenarioId::S3OverloadedCpus,
            ScenarioId::S4OverloadedLink,
            ScenarioId::S5CpusAndLink,
            ScenarioId::S6Crash,
        ] {
            let cfg = Scenario::quick(id).config(AdaptMode::Adapt);
            assert!(
                cfg.injections.remaining() > 0,
                "{} lacks injections",
                id.label()
            );
        }
    }
}
