//! The paper's evaluation scenarios (§5).
//!
//! All scenarios run the Barnes-Hut-profile iterative workload on a DAS-2
//! pool. The paper's "reasonable" configuration is 36 nodes spread over 3
//! clusters (12 each), at which the application runs at efficiency ≈ 0.5;
//! one iteration takes ~10 s there. Scenario perturbations follow the paper:
//! heavy CPU load (×10) on one cluster at t = 200 s, an uplink shaped to
//! ~100 KB/s, a light load making nodes ~2–3× slower, and two of three
//! clusters crashing at t = 200 s.

use sagrid_adapt::AdaptPolicy;
use sagrid_core::config::GridConfig;
use sagrid_core::ids::ClusterId;
use sagrid_core::rng::Xoshiro256StarStar;
use sagrid_core::time::{SimDuration, SimTime};
use sagrid_core::workload::{barnes_hut_profile, IterativeWorkload, TreeShape};
use sagrid_simgrid::{AdaptMode, SimConfig, StealPolicy, TimingConfig};
use sagrid_simnet::{Injection, InjectionSchedule, ScheduledInjection};

/// Identifier of a paper scenario.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum ScenarioId {
    /// Ideal run: measures adaptivity overhead (runtime1/2/3).
    S1Overhead,
    /// Expanding from too few nodes; sub-scenario a/b/c starts on 8/16/24.
    S2Expand(SubScenario),
    /// Heavy artificial load on one cluster's processors at t = 200 s.
    S3OverloadedCpus,
    /// One cluster's uplink shaped to ~100 KB/s.
    S4OverloadedLink,
    /// Shaped uplink + light load on a second cluster.
    S5CpusAndLink,
    /// Two of three clusters crash at t = 200 s.
    S6Crash,
    /// Million-node stress scenario: ~1 M nodes over 8 192 clusters with
    /// crash, slow-down and growth dynamics. Not part of the paper's
    /// evaluation (and deliberately excluded from [`ScenarioId::all`]) —
    /// it exists to exercise the timer-wheel event queue and the
    /// hierarchical coordinator at a scale where O(log n) event-queue and
    /// O(#clusters) victim-selection costs would dominate.
    MillionNode,
}

/// Sub-scenarios of scenario 2 (initial node counts).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum SubScenario {
    /// Start on 8 nodes in 1 cluster.
    A,
    /// Start on 16 nodes in 2 clusters.
    B,
    /// Start on 24 nodes in 3 clusters.
    C,
}

impl ScenarioId {
    /// Every *paper* scenario, in paper order. [`ScenarioId::MillionNode`]
    /// is intentionally absent: reports and figure-regeneration sweeps
    /// iterate this list, and a million-node run has no figure to
    /// reproduce (benchmarks construct it explicitly via
    /// [`Scenario::million`]).
    pub fn all() -> Vec<ScenarioId> {
        vec![
            ScenarioId::S1Overhead,
            ScenarioId::S2Expand(SubScenario::A),
            ScenarioId::S2Expand(SubScenario::B),
            ScenarioId::S2Expand(SubScenario::C),
            ScenarioId::S3OverloadedCpus,
            ScenarioId::S4OverloadedLink,
            ScenarioId::S5CpusAndLink,
            ScenarioId::S6Crash,
        ]
    }

    /// Short label used in reports ("1", "2a", … "6").
    pub fn label(&self) -> &'static str {
        match self {
            ScenarioId::S1Overhead => "1",
            ScenarioId::S2Expand(SubScenario::A) => "2a",
            ScenarioId::S2Expand(SubScenario::B) => "2b",
            ScenarioId::S2Expand(SubScenario::C) => "2c",
            ScenarioId::S3OverloadedCpus => "3",
            ScenarioId::S4OverloadedLink => "4",
            ScenarioId::S5CpusAndLink => "5",
            ScenarioId::S6Crash => "6",
            ScenarioId::MillionNode => "M",
        }
    }

    /// Human-readable description for report headers.
    pub fn description(&self) -> &'static str {
        match self {
            ScenarioId::S1Overhead => "ideal run (adaptivity overhead)",
            ScenarioId::S2Expand(SubScenario::A) => "expanding: start on 8 nodes",
            ScenarioId::S2Expand(SubScenario::B) => "expanding: start on 16 nodes",
            ScenarioId::S2Expand(SubScenario::C) => "expanding: start on 24 nodes",
            ScenarioId::S3OverloadedCpus => "overloaded processors",
            ScenarioId::S4OverloadedLink => "overloaded network link",
            ScenarioId::S5CpusAndLink => "overloaded processors + network link",
            ScenarioId::S6Crash => "crashing nodes (2 of 3 clusters)",
            ScenarioId::MillionNode => "million-node stress (crash + load + growth)",
        }
    }
}

/// A fully-specified experiment: scenario id + tuning shared across modes.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Which paper scenario this is.
    pub id: ScenarioId,
    /// Number of Barnes-Hut iterations.
    pub iterations: usize,
    /// Workload/engine RNG seed.
    pub seed: u64,
}

/// Number of nodes per cluster in the paper's configuration.
pub const NODES_PER_CLUSTER: usize = 12;
/// The paper's "reasonable" total node count.
pub const REASONABLE_NODES: usize = 3 * NODES_PER_CLUSTER;
/// Target iteration duration at the reasonable configuration (seconds).
pub const TARGET_ITER_SECS: f64 = 10.0;
/// Iterations per run (the paper's figures span ~30–40 iterations).
pub const DEFAULT_ITERATIONS: usize = 48;
/// The shaped uplink bandwidth of scenarios 4 and 5 (bytes/second).
pub const SHAPED_UPLINK_BPS: f64 = 100_000.0;
/// When the scenario-3/6 perturbations strike (seconds).
pub const DISTURBANCE_AT_SECS: u64 = 200;

/// Clusters in the million-node stress scenario.
pub const MILLION_NODE_CLUSTERS: usize = 8_192;
/// Nodes per cluster in the million-node stress scenario (total 2^20).
pub const MILLION_NODE_PER_CLUSTER: usize = 128;
/// Clusters populated at t = 0 in the million-node scenario; the remaining
/// capacity is what adaptive growth can expand into.
pub const MILLION_NODE_INITIAL_CLUSTERS: usize = 7_680;

impl Scenario {
    /// The scenario with default length and seed.
    pub fn new(id: ScenarioId) -> Self {
        Self {
            id,
            iterations: DEFAULT_ITERATIONS,
            seed: 0x5A6D_1D00 + id.label().as_bytes()[0] as u64,
        }
    }

    /// A shortened variant for fast tests/benches.
    pub fn quick(id: ScenarioId) -> Self {
        Self {
            iterations: 10,
            ..Self::new(id)
        }
    }

    /// The million-node stress scenario. One iteration: a 2^20-node grid
    /// produces tens of millions of events (and ~30 s of virtual time —
    /// enough to cover every injection) per iteration, so the paper
    /// default of 48 would make a single benchmark run take an hour.
    pub fn million() -> Self {
        Self {
            iterations: 1,
            ..Self::new(ScenarioId::MillionNode)
        }
    }

    /// Builds the `SimConfig` for this scenario in the given mode.
    pub fn config(&self, mode: AdaptMode) -> SimConfig {
        if self.id == ScenarioId::MillionNode {
            return self.million_node_config(mode);
        }
        let grid = GridConfig::das2();
        let policy = AdaptPolicy::default();
        let timing = TimingConfig::default();
        let workload = barnes_hut_profile(
            self.iterations,
            REASONABLE_NODES,
            TARGET_ITER_SECS,
            self.seed,
        );
        let three_clusters = vec![
            (ClusterId(0), NODES_PER_CLUSTER),
            (ClusterId(1), NODES_PER_CLUSTER),
            (ClusterId(2), NODES_PER_CLUSTER),
        ];
        let disturbance = SimTime::from_secs(DISTURBANCE_AT_SECS);
        let (initial_layout, injections) = match self.id {
            // Handled by the early return above; unreachable here.
            ScenarioId::MillionNode => unreachable!("million-node uses its own config path"),
            ScenarioId::S1Overhead => (three_clusters, InjectionSchedule::empty()),
            ScenarioId::S2Expand(sub) => {
                let layout = match sub {
                    SubScenario::A => vec![(ClusterId(0), 8)],
                    SubScenario::B => vec![(ClusterId(0), 8), (ClusterId(1), 8)],
                    SubScenario::C => vec![(ClusterId(0), 8), (ClusterId(1), 8), (ClusterId(2), 8)],
                };
                (layout, InjectionSchedule::empty())
            }
            ScenarioId::S3OverloadedCpus => (
                three_clusters,
                InjectionSchedule::new(vec![ScheduledInjection {
                    at: disturbance,
                    injection: Injection::CpuLoad {
                        cluster: ClusterId(1),
                        count: None,
                        factor: 10.0,
                    },
                }]),
            ),
            ScenarioId::S4OverloadedLink => (
                three_clusters,
                InjectionSchedule::new(vec![ScheduledInjection {
                    at: SimTime::ZERO,
                    injection: Injection::UplinkBandwidth {
                        cluster: ClusterId(2),
                        bandwidth_bps: SHAPED_UPLINK_BPS,
                    },
                }]),
            ),
            ScenarioId::S5CpusAndLink => (
                three_clusters,
                InjectionSchedule::new(vec![
                    ScheduledInjection {
                        at: SimTime::ZERO,
                        injection: Injection::UplinkBandwidth {
                            cluster: ClusterId(2),
                            bandwidth_bps: SHAPED_UPLINK_BPS,
                        },
                    },
                    ScheduledInjection {
                        at: SimTime::ZERO,
                        injection: Injection::CpuLoad {
                            cluster: ClusterId(1),
                            count: None,
                            factor: 2.5,
                        },
                    },
                ]),
            ),
            ScenarioId::S6Crash => (
                three_clusters,
                InjectionSchedule::new(vec![
                    ScheduledInjection {
                        at: disturbance,
                        injection: Injection::CrashCluster {
                            cluster: ClusterId(1),
                        },
                    },
                    ScheduledInjection {
                        at: disturbance,
                        injection: Injection::CrashCluster {
                            cluster: ClusterId(2),
                        },
                    },
                ]),
            ),
        };
        SimConfig {
            grid,
            policy,
            initial_layout,
            workload,
            injections,
            mode,
            steal_policy: StealPolicy::ClusterAware,
            timing,
            record_trace: false,
            feedback_tuning: false,
            hierarchical_coordinator: false,
            queue_backend: Default::default(),
            seed: self.seed,
        }
    }

    /// The million-node stress configuration (see [`ScenarioId::MillionNode`]).
    ///
    /// * **Grid**: [`MILLION_NODE_CLUSTERS`] uniform clusters of
    ///   [`MILLION_NODE_PER_CLUSTER`] nodes (2^20 total);
    ///   [`MILLION_NODE_INITIAL_CLUSTERS`] of them are populated at t = 0,
    ///   leaving headroom for adaptive **growth**.
    /// * **Workload**: a deep irregular tree (≈ 100 k tasks per iteration)
    ///   so a meaningful fraction of the grid computes while the rest
    ///   exercises the steal/park/retry machinery — the event mix that
    ///   stresses near-future queue inserts.
    /// * **Perturbations**: heavy CPU load on 8 clusters at t = 2 s
    ///   (**slow**) and 4 whole-cluster crashes at t = 3 s (**crash**),
    ///   which at 128 nodes per cluster also drives the batched
    ///   crash-recovery path.
    fn million_node_config(&self, mode: AdaptMode) -> SimConfig {
        let grid = GridConfig::uniform(MILLION_NODE_CLUSTERS, MILLION_NODE_PER_CLUSTER);
        // ~160 k tasks (5-6-ary, depth 7) with chunky 10 s leaves and a
        // narrow spread. The run is a *bounded slice* of virtual time (see
        // `max_virtual_time` below): at this scale single-root random work
        // stealing needs minutes of virtual time to saturate the grid, and
        // every starved virtual second costs ~1 M probe events, so a
        // complete drain would take hundreds of millions of events without
        // exercising anything new after the first ~20 s.
        let shape = TreeShape {
            depth: 7,
            min_branch: 5,
            max_branch: 6,
            mean_leaf_work: SimDuration::from_secs(10),
            work_spread: 1.5,
            divide_work: SimDuration::from_millis(1),
            payload_bytes: 2 * 1024,
        };
        let mut rng = Xoshiro256StarStar::seeded(self.seed);
        let iterations: Vec<_> = (0..self.iterations)
            .map(|_| {
                let mut tree = shape.generate(&mut rng);
                tree.scale_payloads_by_subtree(shape.payload_bytes);
                tree
            })
            .collect();
        let workload = IterativeWorkload {
            name: format!("million-node(it={})", self.iterations),
            iterations,
        };
        let initial_layout = (0..MILLION_NODE_INITIAL_CLUSTERS)
            .map(|c| (ClusterId(c as u16), MILLION_NODE_PER_CLUSTER))
            .collect();
        let mut injections = Vec::new();
        for c in 0..8u16 {
            injections.push(ScheduledInjection {
                at: SimTime::from_secs(2),
                injection: Injection::CpuLoad {
                    cluster: ClusterId(c),
                    count: None,
                    factor: 2.0,
                },
            });
        }
        for c in 8..12u16 {
            injections.push(ScheduledInjection {
                at: SimTime::from_secs(3),
                injection: Injection::CrashCluster {
                    cluster: ClusterId(c),
                },
            });
        }
        SimConfig {
            grid,
            policy: AdaptPolicy::default(),
            initial_layout,
            workload,
            injections: InjectionSchedule::new(injections),
            mode,
            steal_policy: StealPolicy::ClusterAware,
            timing: TimingConfig {
                // A starved million-node grid generates hundreds of millions
                // of idle probes at the default 20 ms back-off base; pacing
                // retries 5x slower keeps the probe storm proportionate
                // without changing the dynamics.
                idle_retry_backoff: SimDuration::from_millis(100),
                // The bench measures a fixed 10 s slice of virtual time:
                // activation wave, benchmark wave, work distribution, the
                // t = 2 s load and t = 3 s crash perturbations, recovery and
                // adaptive growth all land inside it; what follows is just
                // more of the same steady-state mix. The run reports
                // `timed_out = true` by construction.
                max_virtual_time: SimDuration::from_secs(10),
                ..TimingConfig::default()
            },
            record_trace: false,
            feedback_tuning: false,
            hierarchical_coordinator: true,
            queue_backend: Default::default(),
            seed: self.seed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_scenarios_build_valid_configs() {
        for id in ScenarioId::all() {
            let s = Scenario::quick(id);
            for mode in [AdaptMode::NoAdapt, AdaptMode::MonitorOnly, AdaptMode::Adapt] {
                s.config(mode)
                    .validate()
                    .unwrap_or_else(|e| panic!("scenario {} invalid: {e}", id.label()));
            }
        }
    }

    #[test]
    fn labels_are_unique() {
        let mut labels: Vec<&str> = ScenarioId::all().iter().map(|s| s.label()).collect();
        labels.push(ScenarioId::MillionNode.label());
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), ScenarioId::all().len() + 1);
    }

    #[test]
    fn million_node_config_is_valid_and_full_scale() {
        let cfg = Scenario::million().config(AdaptMode::Adapt);
        cfg.validate().expect("million-node config invalid");
        assert_eq!(cfg.grid.total_nodes(), 1 << 20);
        assert_eq!(
            cfg.initial_nodes(),
            MILLION_NODE_INITIAL_CLUSTERS * MILLION_NODE_PER_CLUSTER
        );
        assert!(cfg.injections.remaining() > 0);
        assert!(cfg.hierarchical_coordinator);
        // The workload must be big enough to put a real fraction of the
        // grid to work (≈ 100 k tasks per iteration).
        assert!(cfg.workload.iterations[0].len() > 50_000);
    }

    #[test]
    fn scenario2_layouts_grow_a_to_c() {
        let a = Scenario::new(ScenarioId::S2Expand(SubScenario::A))
            .config(AdaptMode::Adapt)
            .initial_nodes();
        let b = Scenario::new(ScenarioId::S2Expand(SubScenario::B))
            .config(AdaptMode::Adapt)
            .initial_nodes();
        let c = Scenario::new(ScenarioId::S2Expand(SubScenario::C))
            .config(AdaptMode::Adapt)
            .initial_nodes();
        assert_eq!((a, b, c), (8, 16, 24));
    }

    #[test]
    fn disturbance_scenarios_carry_injections() {
        for id in [
            ScenarioId::S3OverloadedCpus,
            ScenarioId::S4OverloadedLink,
            ScenarioId::S5CpusAndLink,
            ScenarioId::S6Crash,
        ] {
            let cfg = Scenario::quick(id).config(AdaptMode::Adapt);
            assert!(
                cfg.injections.remaining() > 0,
                "{} lacks injections",
                id.label()
            );
        }
    }
}
