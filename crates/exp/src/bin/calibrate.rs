//! `calibrate` — workload calibration probe.
//!
//! Runs the scenario-1 configuration (and a node-count sweep) in
//! monitor-only mode and prints the weighted-average-efficiency trace, so
//! the Barnes-Hut-profile parameters can be tuned until the paper's
//! "reasonable configuration" property holds: at 36 nodes over 3 clusters
//! the application runs at wa_efficiency ≈ 0.4–0.5 and one iteration takes
//! ≈ 10 s.

use sagrid_core::ids::ClusterId;
use sagrid_exp::scenarios::{Scenario, ScenarioId};
use sagrid_simgrid::{AdaptMode, GridSim};

fn probe_scenario(id: ScenarioId) {
    let s = Scenario::new(id);
    let r = GridSim::run(s.config(AdaptMode::MonitorOnly));
    println!(
        "scenario {} (monitor-only): runtime {:.1}s",
        id.label(),
        r.total_runtime.as_secs_f64()
    );
    for (t, per_cluster) in &r.cluster_ic_timeline {
        let row: Vec<String> = per_cluster
            .iter()
            .map(|(c, ic)| format!("{c}:{ic:.3}"))
            .collect();
        println!("  t={:>7.1}s  ic=[{}]", t.as_secs_f64(), row.join(" "));
    }
}

fn main() {
    let mut iterations = 12usize;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--iterations" {
            iterations = args
                .next()
                .and_then(|s| s.parse().ok())
                .expect("--iterations N");
        }
    }
    probe_scenario(ScenarioId::S1Overhead);
    probe_scenario(ScenarioId::S4OverloadedLink);
    probe_scenario(ScenarioId::S5CpusAndLink);
    for nodes_per_cluster in [4usize, 8, 12, 16] {
        let mut s = Scenario::new(ScenarioId::S1Overhead);
        s.iterations = iterations;
        let mut cfg = s.config(AdaptMode::MonitorOnly);
        cfg.initial_layout = vec![
            (ClusterId(0), nodes_per_cluster),
            (ClusterId(1), nodes_per_cluster),
            (ClusterId(2), nodes_per_cluster),
        ];
        let r = GridSim::run(cfg);
        let eff: Vec<String> = r
            .efficiency_timeline
            .iter()
            .map(|(_, e)| format!("{e:.3}"))
            .collect();
        println!(
            "nodes={:>3}  iters={}  mean_iter={:>6.2}s  sd={:>5.2}s  runtime={:>7.1}s  timed_out={}  events={}  wa_eff=[{}]",
            nodes_per_cluster * 3,
            r.iteration_durations.len(),
            r.mean_iteration_secs(),
            r.iteration_stddev_secs(),
            r.total_runtime.as_secs_f64(),
            r.timed_out,
            r.events_processed,
            eff.join(", ")
        );
    }
}
