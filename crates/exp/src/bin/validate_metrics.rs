//! `validate_metrics DIR` — sanity-checks a `--emit-metrics` output
//! directory: every `run_*.jsonl` line must parse as a JSON object with a
//! known `type` tag, and every `run_*_gantt.csv` must carry the documented
//! header. Prints a one-line summary per file; exits non-zero on the first
//! malformed file, so CI can use it as a smoke test.

use sagrid_core::json::parse_json;
use std::path::Path;
use std::process::ExitCode;

fn check_jsonl(path: &Path) -> Result<(usize, usize), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read: {e}"))?;
    let mut records = 0;
    let mut events = 0;
    for (lineno, line) in text.lines().enumerate() {
        let v = parse_json(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let ty = v
            .get("type")
            .and_then(|t| t.as_str())
            .ok_or_else(|| format!("line {}: record without a type tag", lineno + 1))?;
        match ty {
            "event" => {
                events += 1;
                if v.get("kind").and_then(|k| k.as_str()).is_none() {
                    return Err(format!("line {}: event without a kind", lineno + 1));
                }
            }
            "counter" | "gauge" | "histogram" => {
                if v.get("name").and_then(|n| n.as_str()).is_none() {
                    return Err(format!("line {}: {ty} without a name", lineno + 1));
                }
            }
            other => return Err(format!("line {}: unknown record type {other}", lineno + 1)),
        }
        records += 1;
    }
    if records == 0 {
        return Err("empty metrics stream".into());
    }
    Ok((records, events))
}

fn check_gantt(path: &Path) -> Result<usize, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read: {e}"))?;
    let mut lines = text.lines();
    if lines.next() != Some("node,start,end,kind") {
        return Err("missing node,start,end,kind header".into());
    }
    let mut spans = 0;
    for (lineno, line) in lines.enumerate() {
        if line.split(',').count() != 4 {
            return Err(format!("line {}: expected 4 columns", lineno + 2));
        }
        spans += 1;
    }
    Ok(spans)
}

fn main() -> ExitCode {
    let dir = match std::env::args().nth(1) {
        Some(d) => d,
        None => {
            eprintln!("usage: validate_metrics DIR");
            return ExitCode::FAILURE;
        }
    };
    let mut names: Vec<_> = match std::fs::read_dir(&dir) {
        Ok(entries) => entries
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("run_"))
            })
            .collect(),
        Err(e) => {
            eprintln!("validate_metrics: cannot read {dir}: {e}");
            return ExitCode::FAILURE;
        }
    };
    names.sort();
    if names.is_empty() {
        eprintln!("validate_metrics: no run_* files in {dir}");
        return ExitCode::FAILURE;
    }
    let mut checked = 0;
    for path in &names {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("?");
        let outcome = if name.ends_with(".jsonl") {
            check_jsonl(path)
                .map(|(records, events)| format!("{records} records ({events} events)"))
        } else if name.ends_with(".csv") {
            check_gantt(path).map(|spans| format!("{spans} spans"))
        } else {
            continue;
        };
        match outcome {
            Ok(summary) => println!("{name}: ok, {summary}"),
            Err(e) => {
                eprintln!("{name}: INVALID — {e}");
                return ExitCode::FAILURE;
            }
        }
        checked += 1;
    }
    println!("validate_metrics: {checked} files ok");
    ExitCode::SUCCESS
}
